//! A small union-find (disjoint-set) structure with path compression and
//! union by size, used to compute link-connected components.

/// Disjoint sets over `0..n`.
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `true` when they
    /// were previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// All components: sorted by smallest member, each sorted ascending.
    pub fn components(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|c| c[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut d = DisjointSets::new(4);
        assert_eq!(d.components(), vec![vec![0], vec![1], vec![2], vec![3]]);
        assert!(!d.connected(0, 1));
    }

    #[test]
    fn union_merges_and_reports() {
        let mut d = DisjointSets::new(5);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0), "already merged");
        assert!(d.union(2, 3));
        assert!(d.union(0, 3));
        assert!(d.connected(1, 2));
        assert!(!d.connected(0, 4));
        assert_eq!(d.components(), vec![vec![0, 1, 2, 3], vec![4]]);
    }

    #[test]
    fn transitive_chains() {
        let mut d = DisjointSets::new(6);
        for i in 0..5 {
            d.union(i, i + 1);
        }
        assert!(d.connected(0, 5));
        assert_eq!(d.components().len(), 1);
    }

    #[test]
    fn empty_structure() {
        let mut d = DisjointSets::new(0);
        assert!(d.components().is_empty());
    }
}
