//! LT-consistency and historical k-anonymity (Definitions 7 and 8).

use crate::SpRequest;
use hka_geo::StBox;
use hka_trajectory::{Phl, TrajectoryStore, UserId};

/// Definition 7: a PHL "is said to be location-time-consistent … with a
/// set of requests r_1,…,r_n issued to an SP if for each request r_i there
/// exists an element ⟨x_j, y_j, t_j⟩ in the PHL such that the area of r_i
/// contains the location identified by the point ⟨x_j, y_j⟩ and the time
/// interval of r_i contains the instant t_j."
///
/// The empty request set is vacuously consistent with every PHL.
pub fn lt_consistent(phl: &Phl, contexts: &[StBox]) -> bool {
    contexts.iter().all(|b| phl.crosses(b))
}

/// Outcome of a historical k-anonymity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HkOutcome {
    /// Whether the request set satisfies historical k-anonymity for the
    /// requested k.
    pub satisfied: bool,
    /// The value of k that was requested.
    pub k: usize,
    /// Users (other than the issuer) whose PHLs are LT-consistent with
    /// every request — the candidate "k−1 other users". May be larger than
    /// `k − 1`; its size + 1 is the effective anonymity level.
    pub witnesses: Vec<UserId>,
}

impl HkOutcome {
    /// The effective anonymity level: the issuer plus every witness.
    pub fn effective_k(&self) -> usize {
        self.witnesses.len() + 1
    }
}

/// Definition 8: "a subset of requests R = {r_1,…,r_m} issued by the same
/// user U is said to satisfy Historical k-Anonymity if there exist k−1
/// PHLs P_1,…,P_{k−1} for k−1 users different from U, such that each P_j
/// … is LT-consistent with R."
///
/// Scans every other user's PHL; `contexts` are the generalized
/// `⟨Area, TimeInterval⟩` boxes of U's requests as the provider saw them.
///
/// ```
/// use hka_anonymity::historical_k_anonymity;
/// use hka_geo::{Rect, StBox, StPoint, TimeInterval, TimeSec};
/// use hka_trajectory::{TrajectoryStore, UserId};
///
/// let mut store = TrajectoryStore::new();
/// store.record(UserId(1), StPoint::xyt(10.0, 10.0, TimeSec(100)));
/// store.record(UserId(2), StPoint::xyt(12.0, 11.0, TimeSec(110)));
/// let context = StBox::new(
///     Rect::from_bounds(0.0, 0.0, 20.0, 20.0),
///     TimeInterval::new(TimeSec(0), TimeSec(200)),
/// );
/// let out = historical_k_anonymity(&store, UserId(1), &[context], 2);
/// assert!(out.satisfied);
/// assert_eq!(out.witnesses, vec![UserId(2)]);
/// ```
pub fn historical_k_anonymity(
    store: &TrajectoryStore,
    issuer: UserId,
    contexts: &[StBox],
    k: usize,
) -> HkOutcome {
    let witnesses: Vec<UserId> = store
        .iter()
        .filter(|(u, _)| *u != issuer)
        .filter(|(_, phl)| lt_consistent(phl, contexts))
        .map(|(u, _)| u)
        .collect();
    HkOutcome {
        satisfied: witnesses.len() + 1 >= k,
        k,
        witnesses,
    }
}

/// The anonymity set of a single generalized request (Section 5.1): every
/// user who was inside the context and thus "may have issued the request"
/// — the k-*potential*-senders semantics this paper argues for, in
/// contrast to the k-*actual*-senders semantics of Gedik–Liu \[9\].
pub fn anonymity_set(store: &TrajectoryStore, context: &StBox) -> Vec<UserId> {
    store.users_crossing(context)
}

/// Convenience: evaluates Definition 8 directly from provider-visible
/// requests (extracting their contexts).
pub fn historical_k_anonymity_of_requests(
    store: &TrajectoryStore,
    issuer: UserId,
    requests: &[SpRequest],
    k: usize,
) -> HkOutcome {
    let contexts: Vec<StBox> = requests.iter().map(|r| r.context).collect();
    historical_k_anonymity(store, issuer, &contexts, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{Rect, StPoint, TimeInterval, TimeSec};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn ctx(x1: f64, y1: f64, x2: f64, y2: f64, t1: i64, t2: i64) -> StBox {
        StBox::new(
            Rect::from_bounds(x1, y1, x2, y2),
            TimeInterval::new(TimeSec(t1), TimeSec(t2)),
        )
    }

    /// Three users: 1 and 2 commute together (co-located morning and
    /// evening); 3 only shares the morning.
    fn commuting_store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        for (u, dx) in [(1u64, 0.0), (2, 5.0), (3, 2.0)] {
            s.record(UserId(u), sp(10.0 + dx, 10.0, 100)); // morning, home area
        }
        for (u, dx) in [(1u64, 0.0), (2, 5.0)] {
            s.record(UserId(u), sp(910.0 + dx, 910.0, 5000)); // evening, office
        }
        s.record(UserId(3), sp(500.0, 500.0, 5000)); // user 3 elsewhere
        s
    }

    #[test]
    fn lt_consistency_definition() {
        let s = commuting_store();
        let morning = ctx(0.0, 0.0, 100.0, 100.0, 0, 200);
        let evening = ctx(900.0, 900.0, 1000.0, 1000.0, 4000, 6000);
        let phl3 = s.phl(UserId(3)).unwrap();
        assert!(lt_consistent(phl3, &[morning]));
        assert!(!lt_consistent(phl3, &[morning, evening]));
        // Vacuous truth on the empty set.
        assert!(lt_consistent(phl3, &[]));
    }

    #[test]
    fn historical_k_anonymity_counts_other_users() {
        let s = commuting_store();
        let contexts = [
            ctx(0.0, 0.0, 100.0, 100.0, 0, 200),
            ctx(900.0, 900.0, 1000.0, 1000.0, 4000, 6000),
        ];
        // User 1's requests: only user 2 is consistent with both.
        let out = historical_k_anonymity(&s, UserId(1), &contexts, 2);
        assert!(out.satisfied);
        assert_eq!(out.witnesses, vec![UserId(2)]);
        assert_eq!(out.effective_k(), 2);
        // k = 3 fails: user 3 broke off before the evening.
        let out = historical_k_anonymity(&s, UserId(1), &contexts, 3);
        assert!(!out.satisfied);
    }

    #[test]
    fn issuer_is_never_a_witness() {
        let s = commuting_store();
        let contexts = [ctx(0.0, 0.0, 100.0, 100.0, 0, 200)];
        let out = historical_k_anonymity(&s, UserId(1), &contexts, 1);
        assert!(!out.witnesses.contains(&UserId(1)));
        // k = 1 is trivially satisfied (the issuer alone).
        assert!(out.satisfied);
    }

    #[test]
    fn shrinking_context_loses_witnesses() {
        let s = commuting_store();
        // A tight box around user 1's exact morning point excludes 2 and 3.
        let tight = [ctx(9.0, 9.0, 11.0, 11.0, 90, 110)];
        let out = historical_k_anonymity(&s, UserId(1), &tight, 2);
        assert!(!out.satisfied);
        assert!(out.witnesses.is_empty());
    }

    #[test]
    fn empty_request_set_is_fully_anonymous() {
        let s = commuting_store();
        let out = historical_k_anonymity(&s, UserId(1), &[], 3);
        assert!(out.satisfied, "no requests reveal nothing");
        assert_eq!(out.witnesses.len(), 2);
    }

    #[test]
    fn anonymity_set_is_potential_senders() {
        let s = commuting_store();
        let morning = ctx(0.0, 0.0, 100.0, 100.0, 0, 200);
        let set = anonymity_set(&s, &morning);
        assert_eq!(set, vec![UserId(1), UserId(2), UserId(3)]);
    }

    #[test]
    fn request_based_wrapper_extracts_contexts() {
        use crate::{MsgId, Pseudonym, ServiceId};
        let s = commuting_store();
        let reqs = vec![SpRequest::new(
            MsgId(0),
            Pseudonym(1),
            ctx(0.0, 0.0, 100.0, 100.0, 0, 200),
            ServiceId(0),
        )];
        let out = historical_k_anonymity_of_requests(&s, UserId(1), &reqs, 3);
        assert!(out.satisfied);
        assert_eq!(out.witnesses, vec![UserId(2), UserId(3)]);
    }
}
