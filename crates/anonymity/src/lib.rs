//! # hka-anonymity
//!
//! The privacy-evaluation framework of Section 5: service-request
//! linkability, LT-consistency, and **historical k-anonymity**.
//!
//! * [`Pseudonym`] / [`MsgId`] / [`SpRequest`] — the service model's
//!   request shape: "Service Providers (SP) receive from TS service
//!   requests of the form (msgid, UserPseudonym, Area, TimeInterval,
//!   Data)" (Section 3).
//! * [`Linker`] (Definition 4) — "linkability is represented by a partial
//!   function Link() from R × R to \[0,1\]", with the symmetry and
//!   reflexivity properties the paper requires. [`PseudonymLinker`] links
//!   requests sharing a pseudonym; [`TrackerLinker`] implements the
//!   multi-target-tracking association of the paper's ref. \[12\]
//!   (max-speed feasibility gating plus proximity likelihood);
//!   [`CompositeLinker`] takes the best attack.
//! * [`link_components`] (Definition 5) — maximal Θ-link-connected subsets
//!   as connected components of the threshold graph.
//! * [`lt_consistent`] (Definition 7) — whether a PHL is location-time-
//!   consistent with a set of generalized requests.
//! * [`historical_k_anonymity`] (Definition 8) — whether k−1 *other*
//!   users' PHLs are LT-consistent with a user's request set, with the
//!   witness set for auditing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dsu;
mod hkanon;
mod linker;
mod request;

pub use dsu::DisjointSets;
pub use hkanon::{
    anonymity_set, historical_k_anonymity, historical_k_anonymity_of_requests, lt_consistent,
    HkOutcome,
};
pub use linker::{CompositeLinker, Linker, PseudonymLinker, TrackerLinker, TrackerParams};
pub use request::{MsgId, Pseudonym, ServiceId, SpRequest};

/// Maximal Θ-link-connected subsets of `requests` (Definition 5), as index
/// sets into the input slice — the connected components of the graph with
/// an edge wherever `Link(r_i, r_j) ≥ θ`.
///
/// Components are returned sorted by their smallest index; each component
/// is sorted ascending.
pub fn link_components<L: Linker + ?Sized>(
    requests: &[SpRequest],
    linker: &L,
    theta: f64,
) -> Vec<Vec<usize>> {
    let mut dsu = DisjointSets::new(requests.len());
    for i in 0..requests.len() {
        for j in (i + 1)..requests.len() {
            if linker.link(&requests[i], &requests[j]) >= theta {
                dsu.union(i, j);
            }
        }
    }
    dsu.components()
}

/// Definition 5, verbatim: whether the subset `R′` of `requests`
/// (given by indices) "is link-connected with likelihood Θ", i.e. every
/// pair of its members is joined by a chain `r_{i1}, …, r_{ik}` **drawn
/// from R′ itself** with `Link(r_il, r_il+1) ≥ Θ` along the chain.
///
/// Note this is strictly stronger than the pair lying in the same
/// component of the *full* request set: the definition requires the
/// connecting chain to stay inside R′. The vacuous cases (empty and
/// singleton subsets) are link-connected.
pub fn is_link_connected<L: Linker + ?Sized>(
    requests: &[SpRequest],
    subset: &[usize],
    linker: &L,
    theta: f64,
) -> bool {
    if subset.len() <= 1 {
        return true;
    }
    let mut dsu = DisjointSets::new(subset.len());
    for a in 0..subset.len() {
        for b in (a + 1)..subset.len() {
            if linker.link(&requests[subset[a]], &requests[subset[b]]) >= theta {
                dsu.union(a, b);
            }
        }
    }
    (1..subset.len()).all(|b| dsu.connected(0, b))
}
