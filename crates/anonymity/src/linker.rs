//! Service-request linkability (Definition 4).
//!
//! "Linkability is represented by a partial function Link() from R × R to
//! [0,1], intuitively defining for a pair of requests r_i and r_j … the
//! likelihood value of the two requests being issued by the same
//! individual." The trusted server "can replicate the techniques used by a
//! possible attacker, hence computing a likelihood value for the
//! linkability of any pair of issued requests."

use crate::SpRequest;

/// A linkability function over provider-visible requests.
///
/// Implementations must be symmetric (`link(a,b) == link(b,a)`) and
/// reflexive (`link(r,r) == 1`), the two properties Definition 4 assumes;
/// the property tests enforce both for every implementation in this crate.
pub trait Linker {
    /// Likelihood, in `[0, 1]`, that `a` and `b` were issued by the same
    /// individual.
    fn link(&self, a: &SpRequest, b: &SpRequest) -> f64;
}

/// Links requests sharing a pseudonym: "any two requests with the same
/// UserPseudonym are clearly linkable, since we assume that pseudonyms are
/// not shared by different individuals."
#[derive(Debug, Clone, Copy, Default)]
pub struct PseudonymLinker;

impl Linker for PseudonymLinker {
    fn link(&self, a: &SpRequest, b: &SpRequest) -> f64 {
        let _span = hka_obs::span("linker.link");
        if a.pseudonym == b.pseudonym {
            1.0
        } else {
            0.0
        }
    }
}

/// Parameters of the trajectory-tracking attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerParams {
    /// Hard feasibility gate: a user cannot move faster than this (m/s).
    pub max_speed: f64,
    /// Typical movement speed (m/s); the likelihood of an association
    /// decays as the required speed approaches `max_speed` relative to
    /// this comfort point.
    pub typical_speed: f64,
    /// Temporal horizon (s): associations across gaps much longer than
    /// this decay towards 0 (crowds mix over time).
    pub horizon: f64,
}

impl Default for TrackerParams {
    fn default() -> Self {
        TrackerParams {
            max_speed: 15.0,    // fast urban driving
            typical_speed: 2.0, // brisk walk
            horizon: 1_800.0,   // 30 minutes
        }
    }
}

/// The multi-target-tracking attack of the paper's ref. \[12\]
/// (Gruteser–Hoh, "On the Anonymity of Periodic Location Samples"),
/// reduced to its decision core: gate candidate associations on physical
/// reachability, then weight by how ordinary the implied movement is.
///
/// Two requests from different pseudonyms receive likelihood
///
/// * `0` when their contexts overlap in time but not in space (one body
///   cannot be in two places at once — note that *overlapping* contexts
///   are compatible and link strongly);
/// * `0` when bridging the spatial gap within the temporal gap would
///   require exceeding `max_speed`;
/// * otherwise `exp(−v/typical_speed) · exp(−Δt/horizon)` where `v` is the
///   required speed — near-in-space, near-in-time request pairs link
///   strongly, distant ones weakly.
///
/// Same-pseudonym pairs link at `1` (the pseudonym itself is the link).
#[derive(Debug, Clone, Copy, Default)]
pub struct TrackerLinker {
    /// Attack parameters.
    pub params: TrackerParams,
}

impl TrackerLinker {
    /// Creates a tracker with the given parameters.
    pub fn new(params: TrackerParams) -> Self {
        TrackerLinker { params }
    }
}

impl Linker for TrackerLinker {
    fn link(&self, a: &SpRequest, b: &SpRequest) -> f64 {
        let _span = hka_obs::span("linker.link");
        if a.pseudonym == b.pseudonym {
            return 1.0;
        }
        let (ca, cb) = (&a.context, &b.context);
        // Spatial gap between the two areas (0 when they overlap).
        let gap = {
            // Exact minimum distance between the rectangles (separable per
            // axis; 0 when they overlap). Symmetric by construction.
            let dx = (cb.rect.min().x - ca.rect.max().x)
                .max(ca.rect.min().x - cb.rect.max().x)
                .max(0.0);
            let dy = (cb.rect.min().y - ca.rect.max().y)
                .max(ca.rect.min().y - cb.rect.max().y)
                .max(0.0);
            (dx * dx + dy * dy).sqrt()
        };
        // Temporal gap between the two intervals (0 when they overlap).
        let dt = if ca.span.intersects(&cb.span) {
            0.0
        } else if ca.span.end() < cb.span.start() {
            (cb.span.start() - ca.span.end()) as f64
        } else {
            (ca.span.start() - cb.span.end()) as f64
        };

        if dt == 0.0 {
            // Simultaneous (overlapping intervals): compatible only when
            // the areas also overlap.
            return if gap == 0.0 { 1.0 } else { 0.0 };
        }
        let required = gap / dt;
        if required > self.params.max_speed {
            return 0.0;
        }
        let speed_factor = (-required / self.params.typical_speed).exp();
        let time_factor = (-dt / self.params.horizon).exp();
        speed_factor * time_factor
    }
}

/// The strongest of several attacks: `Link(a,b) = max_i Link_i(a,b)`.
/// The TS must defend against the best technique available, so composing
/// linkers with `max` is the conservative choice.
pub struct CompositeLinker {
    linkers: Vec<Box<dyn Linker + Send + Sync>>,
}

impl CompositeLinker {
    /// Composes the given linkers.
    pub fn new(linkers: Vec<Box<dyn Linker + Send + Sync>>) -> Self {
        CompositeLinker { linkers }
    }

    /// Pseudonym + default tracker: the attack model used throughout the
    /// experiments.
    pub fn standard() -> Self {
        CompositeLinker::new(vec![
            Box::new(PseudonymLinker),
            Box::new(TrackerLinker::default()),
        ])
    }
}

impl Linker for CompositeLinker {
    fn link(&self, a: &SpRequest, b: &SpRequest) -> f64 {
        self.linkers
            .iter()
            .map(|l| l.link(a, b))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MsgId, Pseudonym, ServiceId};
    use hka_geo::{Rect, StBox, TimeInterval, TimeSec};

    fn req(pseudo: u64, x: f64, t: i64) -> SpRequest {
        SpRequest::new(
            MsgId(0),
            Pseudonym(pseudo),
            StBox::new(
                Rect::from_bounds(x, 0.0, x + 10.0, 10.0),
                TimeInterval::new(TimeSec(t), TimeSec(t + 10)),
            ),
            ServiceId(0),
        )
    }

    #[test]
    fn pseudonym_linker_is_equality() {
        let l = PseudonymLinker;
        assert_eq!(l.link(&req(1, 0.0, 0), &req(1, 500.0, 0)), 1.0);
        assert_eq!(l.link(&req(1, 0.0, 0), &req(2, 0.0, 0)), 0.0);
    }

    #[test]
    fn tracker_same_pseudonym_links_fully() {
        let l = TrackerLinker::default();
        assert_eq!(l.link(&req(1, 0.0, 0), &req(1, 9999.0, 1)), 1.0);
    }

    #[test]
    fn tracker_simultaneous_distant_requests_cannot_link() {
        let l = TrackerLinker::default();
        // Overlapping time intervals, disjoint areas.
        assert_eq!(l.link(&req(1, 0.0, 0), &req(2, 500.0, 5)), 0.0);
    }

    #[test]
    fn tracker_overlapping_contexts_link_strongly() {
        let l = TrackerLinker::default();
        assert_eq!(l.link(&req(1, 0.0, 0), &req(2, 5.0, 5)), 1.0);
    }

    #[test]
    fn tracker_gates_on_max_speed() {
        let l = TrackerLinker::default();
        // 10 km gap, 60 s apart → 166 m/s, impossible.
        assert_eq!(l.link(&req(1, 0.0, 0), &req(2, 10_000.0, 70)), 0.0);
        // 60 m gap (rect edges 60 apart), 60 s apart → 1 m/s, plausible.
        let v = l.link(&req(1, 0.0, 0), &req(2, 70.0, 70));
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn tracker_likelihood_decays_with_distance_and_time() {
        let l = TrackerLinker::default();
        let near = l.link(&req(1, 0.0, 0), &req(2, 20.0, 60));
        let far = l.link(&req(1, 0.0, 0), &req(2, 200.0, 60));
        assert!(near > far, "{near} should exceed {far}");
        let soon = l.link(&req(1, 0.0, 0), &req(2, 20.0, 60));
        let late = l.link(&req(1, 0.0, 0), &req(2, 20.0, 4000));
        assert!(soon > late, "{soon} should exceed {late}");
    }

    #[test]
    fn tracker_is_symmetric_and_reflexive() {
        let l = TrackerLinker::default();
        let (a, b) = (req(1, 0.0, 0), req(2, 30.0, 100));
        assert_eq!(l.link(&a, &b), l.link(&b, &a));
        assert_eq!(l.link(&a, &a), 1.0);
    }

    #[test]
    fn composite_takes_the_best_attack() {
        let l = CompositeLinker::standard();
        // Different pseudonyms, plausible movement: tracker contributes.
        let v = l.link(&req(1, 0.0, 0), &req(2, 30.0, 60));
        assert!(v > 0.0);
        // Same pseudonym, impossible movement: pseudonym contributes.
        assert_eq!(l.link(&req(3, 0.0, 0), &req(3, 1e6, 1)), 1.0);
    }

    #[test]
    fn likelihoods_stay_in_unit_interval() {
        let l = CompositeLinker::standard();
        for (x, t) in [(0.0, 0), (5.0, 3), (100.0, 30), (1e5, 50), (0.0, 100_000)] {
            let v = l.link(&req(1, 0.0, 0), &req(2, x, t));
            assert!((0.0..=1.0).contains(&v), "link({x},{t}) = {v}");
        }
    }
}
