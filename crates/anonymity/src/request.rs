//! The service-request shape seen by providers (Section 3).

use hka_geo::{StBox, StPoint};
use std::fmt;

/// A pseudonym, "used to hide the user identity while allowing the SP to
/// authenticate the user, to connect multiple requests from the same user,
/// and possibly to charge the user for the service" (Section 3).
///
/// Pseudonyms are not shared between users, but one user may hold several
/// over time (unlinking replaces the current one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pseudonym(pub u64);

impl fmt::Display for Pseudonym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{:08x}", self.0)
    }
}

/// Message identifier, "used to hide the user network address … used by
/// the TS to forward the answer to the user's device".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub u64);

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifier of a service provider / service class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub u32);

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc{}", self.0)
    }
}

/// A request as received by a service provider:
/// `(msgid, UserPseudonym, Area, TimeInterval, Data)`.
///
/// The `context` field carries the *generalized* spatio-temporal context —
/// "both Area and TimeInterval provide possibly generalized information in
/// the form of an area containing the exact location point, and of a time
/// interval containing the exact instant". The exact point never appears
/// in this type; only the trusted server knows it.
#[derive(Debug, Clone, PartialEq)]
pub struct SpRequest {
    /// Routing handle (hides the network address).
    pub msg_id: MsgId,
    /// The sender's current pseudonym.
    pub pseudonym: Pseudonym,
    /// Generalized `⟨Area, TimeInterval⟩`.
    pub context: StBox,
    /// Target service.
    pub service: ServiceId,
    /// Service-specific attribute–value pairs (possibly sensitive).
    pub data: Vec<(String, String)>,
}

impl SpRequest {
    /// Creates a request with empty data.
    pub fn new(msg_id: MsgId, pseudonym: Pseudonym, context: StBox, service: ServiceId) -> Self {
        SpRequest {
            msg_id,
            pseudonym,
            context,
            service,
            data: Vec::new(),
        }
    }

    /// Whether the generalized context is consistent with an exact point —
    /// the correctness invariant of every cloaking algorithm: the reported
    /// box must contain the true request point.
    pub fn covers(&self, exact: &StPoint) -> bool {
        self.context.contains(exact)
    }
}

impl fmt::Display for SpRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {}, {})",
            self.msg_id, self.pseudonym, self.context, self.service
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{Rect, TimeInterval, TimeSec};

    #[test]
    fn covers_checks_containment() {
        let ctx = StBox::new(
            Rect::from_bounds(0.0, 0.0, 10.0, 10.0),
            TimeInterval::new(TimeSec(0), TimeSec(60)),
        );
        let r = SpRequest::new(MsgId(1), Pseudonym(7), ctx, ServiceId(0));
        assert!(r.covers(&StPoint::xyt(5.0, 5.0, TimeSec(30))));
        assert!(!r.covers(&StPoint::xyt(50.0, 5.0, TimeSec(30))));
        assert!(!r.covers(&StPoint::xyt(5.0, 5.0, TimeSec(120))));
    }

    #[test]
    fn display_is_compact() {
        let ctx = StBox::point(StPoint::xyt(1.0, 2.0, TimeSec(3)));
        let r = SpRequest::new(MsgId(9), Pseudonym(0xff), ctx, ServiceId(2));
        let s = r.to_string();
        assert!(s.contains("m9"));
        assert!(s.contains("p000000ff"));
        assert!(s.contains("svc2"));
    }
}
