//! Property tests: Definition-4 linker laws, Definition-5 component
//! structure, and Definition-7/8 monotonicity.

use hka_anonymity::{
    historical_k_anonymity, is_link_connected, link_components, lt_consistent, CompositeLinker,
    Linker, MsgId, Pseudonym, PseudonymLinker, ServiceId, SpRequest, TrackerLinker,
};
use hka_geo::{Rect, StBox, StPoint, TimeInterval, TimeSec};
use hka_trajectory::{Phl, TrajectoryStore, UserId};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = SpRequest> {
    (
        0u64..6, // pseudonym pool (collisions intended)
        0.0f64..3_000.0,
        0.0f64..3_000.0,
        0.0f64..400.0,
        0.0f64..400.0,
        0i64..7_200,
        0i64..600,
    )
        .prop_map(|(pseudo, x, y, w, h, t, d)| {
            SpRequest::new(
                MsgId(0),
                Pseudonym(pseudo),
                StBox::new(
                    Rect::from_bounds(x, y, x + w, y + h),
                    TimeInterval::new(TimeSec(t), TimeSec(t + d)),
                ),
                ServiceId(0),
            )
        })
}

fn arb_stpoint() -> impl Strategy<Value = StPoint> {
    (0.0f64..3_000.0, 0.0f64..3_000.0, 0i64..7_200)
        .prop_map(|(x, y, t)| StPoint::xyt(x, y, TimeSec(t)))
}

fn arb_box() -> impl Strategy<Value = StBox> {
    (arb_stpoint(), arb_stpoint())
        .prop_map(|(a, b)| StBox::new(Rect::new(a.pos, b.pos), TimeInterval::new(a.t, b.t)))
}

/// Naive reachability over the threshold graph, for cross-checking the
/// union-find implementation.
fn naive_components<L: Linker>(reqs: &[SpRequest], linker: &L, theta: f64) -> Vec<Vec<usize>> {
    let n = reqs.len();
    let mut adj = vec![vec![]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if linker.link(&reqs[i], &reqs[j]) >= theta {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![start];
        let mut comp = Vec::new();
        seen[start] = true;
        while let Some(x) = stack.pop() {
            comp.push(x);
            for &y in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out.sort_by_key(|c| c[0]);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Definition 4's stated laws: symmetry, reflexivity, unit range —
    /// for every linker in the crate.
    #[test]
    fn linker_laws(a in arb_request(), b in arb_request()) {
        let pseudo = PseudonymLinker;
        let tracker = TrackerLinker::default();
        let composite = CompositeLinker::standard();
        for (name, l) in [
            ("pseudonym", &pseudo as &dyn Linker),
            ("tracker", &tracker),
            ("composite", &composite),
        ] {
            let ab = l.link(&a, &b);
            let ba = l.link(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12, "{}: {} vs {}", name, ab, ba);
            prop_assert!((0.0..=1.0).contains(&ab), "{}: {}", name, ab);
            prop_assert!((l.link(&a, &a) - 1.0).abs() < 1e-12, "{} reflexivity", name);
        }
    }

    /// link_components equals naive graph reachability.
    #[test]
    fn components_match_naive(
        reqs in prop::collection::vec(arb_request(), 0..25),
        theta in 0.05f64..1.0,
    ) {
        let linker = CompositeLinker::standard();
        let fast = link_components(&reqs, &linker, theta);
        let slow = naive_components(&reqs, &linker, theta);
        prop_assert_eq!(fast, slow);
    }

    /// Components partition the request set, and same-pseudonym requests
    /// always land in the same component (for θ ≤ 1).
    #[test]
    fn components_partition_and_respect_pseudonyms(
        reqs in prop::collection::vec(arb_request(), 1..25),
        theta in 0.05f64..=1.0,
    ) {
        let linker = PseudonymLinker;
        let comps = link_components(&reqs, &linker, theta);
        let mut seen = vec![false; reqs.len()];
        for c in &comps {
            for &i in c {
                prop_assert!(!seen[i], "request {} in two components", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|s| *s), "every request in a component");
        // Same pseudonym ⇒ same component.
        let comp_of = |i: usize| comps.iter().position(|c| c.contains(&i)).unwrap();
        for i in 0..reqs.len() {
            for j in (i + 1)..reqs.len() {
                if reqs[i].pseudonym == reqs[j].pseudonym {
                    prop_assert_eq!(comp_of(i), comp_of(j));
                }
            }
        }
    }

    /// Raising θ only splits components (refinement).
    #[test]
    fn higher_theta_refines(
        reqs in prop::collection::vec(arb_request(), 0..20),
        lo in 0.05f64..0.5,
        hi in 0.5f64..1.0,
    ) {
        let linker = CompositeLinker::standard();
        let coarse = link_components(&reqs, &linker, lo);
        let fine = link_components(&reqs, &linker, hi);
        // Every fine component is contained in some coarse component.
        for f in &fine {
            let host = coarse.iter().find(|c| c.contains(&f[0])).unwrap();
            for i in f {
                prop_assert!(host.contains(i));
            }
        }
    }

    /// Definition 5 coherence: every component returned by
    /// `link_components` is itself link-connected (the chain exists within
    /// it), and unions of two distinct components are not.
    #[test]
    fn components_are_link_connected_subsets(
        reqs in prop::collection::vec(arb_request(), 0..18),
        theta in 0.1f64..1.0,
    ) {
        let linker = CompositeLinker::standard();
        let comps = link_components(&reqs, &linker, theta);
        for c in &comps {
            prop_assert!(is_link_connected(&reqs, c, &linker, theta));
        }
        if comps.len() >= 2 {
            let merged: Vec<usize> = comps[0].iter().chain(comps[1].iter()).copied().collect();
            prop_assert!(!is_link_connected(&reqs, &merged, &linker, theta));
        }
        // Vacuous cases.
        prop_assert!(is_link_connected(&reqs, &[], &linker, theta));
        if !reqs.is_empty() {
            prop_assert!(is_link_connected(&reqs, &[0], &linker, theta));
        }
    }

    /// LT-consistency is anti-monotone in the request set and monotone in
    /// the contexts.
    #[test]
    fn lt_consistency_monotonicity(
        pts in prop::collection::vec(arb_stpoint(), 1..20),
        ctxs in prop::collection::vec(arb_box(), 0..8),
        extra in arb_box(),
    ) {
        let phl = Phl::from_points(pts);
        let mut more = ctxs.clone();
        more.push(extra);
        // Adding a context can only break consistency, never create it.
        if lt_consistent(&phl, &more) {
            prop_assert!(lt_consistent(&phl, &ctxs));
        }
        // Growing every context preserves consistency.
        if lt_consistent(&phl, &ctxs) {
            let grown: Vec<StBox> = ctxs
                .iter()
                .map(|b| StBox::new(b.rect.buffer(10.0), b.span.union(&b.span)))
                .collect();
            prop_assert!(lt_consistent(&phl, &grown));
        }
    }

    /// Historical k-anonymity: monotone in k (downwards), anti-monotone
    /// in the context set; witnesses really are LT-consistent.
    #[test]
    fn hk_anonymity_structure(
        users in prop::collection::btree_map(0u64..8, prop::collection::vec(arb_stpoint(), 1..10), 1..8),
        ctxs in prop::collection::vec(arb_box(), 0..5),
        k in 1usize..6,
    ) {
        let mut store = TrajectoryStore::new();
        for (u, pts) in users {
            let phl = Phl::from_points(pts);
            for p in phl.points() {
                store.record(UserId(u), *p);
            }
        }
        let out = historical_k_anonymity(&store, UserId(0), &ctxs, k);
        for w in &out.witnesses {
            prop_assert!(*w != UserId(0));
            prop_assert!(lt_consistent(store.phl(*w).unwrap(), &ctxs));
        }
        if out.satisfied && k > 1 {
            let weaker = historical_k_anonymity(&store, UserId(0), &ctxs, k - 1);
            prop_assert!(weaker.satisfied, "satisfaction is monotone downward in k");
        }
        // Dropping contexts can only add witnesses.
        if !ctxs.is_empty() {
            let fewer = historical_k_anonymity(&store, UserId(0), &ctxs[..ctxs.len() - 1], k);
            prop_assert!(fewer.witnesses.len() >= out.witnesses.len());
        }
    }
}
