//! `hka-audit` — replay and audit a hash-chained journal offline.
//!
//! ```text
//! hka-audit --journal ts.journal [--snapshot FILE] [--json audit.json]
//!           [--quiet] [--space-tol M2] [--time-tol SECS]
//! ```
//!
//! With `--snapshot`, the audit resumes from a checkpoint snapshot and
//! replays only the journal suffix after its anchor record — the
//! outcome is byte-identical to a genesis replay of the same chain, and
//! any snapshot/anchor mismatch is a hard error (exit 2), never a
//! silently different audit.
//!
//! Exit status: 0 clean, 1 chain verification failed, 2 chain intact
//! but Theorem-1 / fail-closed violations or schema issues found (also
//! used for usage/IO/snapshot-binding errors).

use std::path::PathBuf;
use std::process::ExitCode;

use hka_audit::{replay_file, resume_from_snapshot, AuditConfig};

struct Args {
    journal: PathBuf,
    snapshot: Option<PathBuf>,
    json_out: Option<PathBuf>,
    quiet: bool,
    cfg: AuditConfig,
}

const USAGE: &str = "usage: hka-audit --journal FILE [--snapshot FILE] [--json FILE] [--quiet] \
                     [--space-tol M2] [--time-tol SECS]";

fn parse_args() -> Result<Args, String> {
    let mut journal = None;
    let mut snapshot = None;
    let mut json_out = None;
    let mut quiet = false;
    let mut cfg = AuditConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--journal" => journal = Some(PathBuf::from(value("--journal")?)),
            "--snapshot" => snapshot = Some(PathBuf::from(value("--snapshot")?)),
            "--json" => json_out = Some(PathBuf::from(value("--json")?)),
            "--quiet" => quiet = true,
            "--space-tol" => {
                let v = value("--space-tol")?;
                cfg.space_tol = Some(
                    v.parse()
                        .map_err(|_| format!("--space-tol: bad number '{v}'"))?,
                );
            }
            "--time-tol" => {
                let v = value("--time-tol")?;
                cfg.time_tol = Some(
                    v.parse()
                        .map_err(|_| format!("--time-tol: bad number '{v}'"))?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    let journal = journal.ok_or_else(|| format!("--journal is required\n{USAGE}"))?;
    Ok(Args {
        journal,
        snapshot,
        json_out,
        quiet,
        cfg,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hka-audit: {e}");
            return ExitCode::from(2);
        }
    };

    let outcome = match &args.snapshot {
        // The snapshot's embedded config wins on resume; tolerance
        // flags apply to genesis replays only.
        Some(snap) => resume_from_snapshot(&args.journal, snap),
        None => replay_file(&args.journal, args.cfg),
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hka-audit: cannot audit {}: {e}", args.journal.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json_out {
        if let Err(e) = std::fs::write(path, outcome.to_json().to_string() + "\n") {
            eprintln!("hka-audit: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if !args.quiet {
        print!("{}", outcome.render());
    }

    if !outcome.chain.verified() {
        ExitCode::from(1)
    } else if outcome.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
