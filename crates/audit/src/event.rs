//! Decoding journal records into the audit event vocabulary.
//!
//! The decoder works from the on-disk payload schema alone (kind tags
//! and field names as written by `hka-core`'s `TsEvent::payload`), not
//! from the server's types: the auditor is a second, independent
//! implementation of the schema, which is exactly what makes it a drift
//! guard. A known kind with missing or mistyped required fields decodes
//! to an error; an unknown kind is tolerated and counted (forward
//! compatibility within a journal version: fields and kinds may be
//! added, never changed or removed).

use hka_obs::{JournalRecord, Json};

/// Server operating mode as journaled in `ts.mode_changed` records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mode {
    /// Full service.
    Normal,
    /// Journal writes failing: only demonstrably protected requests flow.
    Degraded,
    /// Journal down: nothing flows.
    ReadOnly,
}

impl Mode {
    /// Parses the on-disk mode string.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "normal" => Some(Mode::Normal),
            "degraded" => Some(Mode::Degraded),
            "read_only" => Some(Mode::ReadOnly),
            _ => None,
        }
    }

    /// The on-disk mode string.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Normal => "normal",
            Mode::Degraded => "degraded",
            Mode::ReadOnly => "read_only",
        }
    }
}

/// One journal record decoded for analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEvent {
    /// A request went out to a service provider.
    Forwarded {
        /// Issuing user.
        user: u64,
        /// Request instant (seconds).
        at: i64,
        /// Area of the disclosed context, m² (0 for exact points).
        area: f64,
        /// Duration of the disclosed context, seconds.
        duration: i64,
        /// Whether the context was generalized by Algorithm 1.
        generalized: bool,
        /// Whether the generalization met full HK-anonymity.
        hk_ok: bool,
        /// Service class (absent in pre-audit v1 journals).
        service: Option<u64>,
        /// Requested k after the k′ schedule (absent in older journals).
        k_req: Option<u64>,
        /// Achieved anonymity-set size (absent in older journals).
        k_got: Option<u64>,
        /// Matched LBQID name (null/absent for non-pattern forwards).
        lbqid: Option<String>,
    },
    /// A request was suppressed.
    Suppressed {
        /// Issuing user.
        user: u64,
        /// Request instant.
        at: i64,
        /// On-disk reason string (`mix_zone`, `risk_policy`, `degraded`).
        reason: String,
        /// Service class (absent in older journals).
        service: Option<u64>,
    },
    /// A successful unlink changed the user's pseudonym.
    PseudonymChanged {
        /// The user.
        user: u64,
        /// When.
        at: i64,
    },
    /// Generalization failed and unlinking was infeasible.
    AtRisk {
        /// The user.
        user: u64,
        /// When.
        at: i64,
        /// LBQID concerned.
        lbqid: String,
    },
    /// A full LBQID match completed under one pseudonym.
    LbqidMatched {
        /// The user.
        user: u64,
        /// When.
        at: i64,
        /// The LBQID.
        lbqid: String,
    },
    /// The server's operating mode changed.
    ModeChanged {
        /// When.
        at: i64,
        /// Mode left behind.
        from: Mode,
        /// Mode entered.
        to: Mode,
    },
    /// `Journal::recover` truncated a crashed file.
    JournalRecovered {
        /// Bytes dropped off the torn tail.
        truncated_bytes: u64,
        /// Records in the surviving prefix.
        valid_records: u64,
    },
    /// A checkpoint snapshot was anchored into the chain.
    Checkpoint {
        /// Chain records the snapshot covers (= the record's seq).
        records: u64,
        /// Snapshot file name.
        file: String,
        /// Content hash the snapshot file must have.
        snapshot: String,
    },
    /// A kind this auditor does not know — tolerated and counted.
    Unknown,
}

fn req_int(p: &Json, kind: &str, name: &str) -> Result<i64, String> {
    p.get(name)
        .and_then(Json::as_int)
        .ok_or_else(|| format!("{kind}: missing or mistyped '{name}'"))
}

fn req_u64(p: &Json, kind: &str, name: &str) -> Result<u64, String> {
    let v = req_int(p, kind, name)?;
    u64::try_from(v).map_err(|_| format!("{kind}: '{name}' is negative"))
}

fn req_f64(p: &Json, kind: &str, name: &str) -> Result<f64, String> {
    p.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{kind}: missing or mistyped '{name}'"))
}

fn req_bool(p: &Json, kind: &str, name: &str) -> Result<bool, String> {
    p.get(name)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("{kind}: missing or mistyped '{name}'"))
}

fn req_str(p: &Json, kind: &str, name: &str) -> Result<String, String> {
    p.get(name)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{kind}: missing or mistyped '{name}'"))
}

fn opt_u64(p: &Json, name: &str) -> Option<u64> {
    p.get(name)
        .and_then(Json::as_int)
        .and_then(|v| u64::try_from(v).ok())
}

/// Decodes one verified journal record. `Err` means a *known* kind did
/// not carry its required v1 fields — schema drift the audit must
/// surface, not paper over.
pub fn decode(record: &JournalRecord) -> Result<AuditEvent, String> {
    let p = &record.payload;
    let kind = record.kind.as_str();
    match kind {
        "ts.forwarded" => {
            let x_min = req_f64(p, kind, "x_min")?;
            let y_min = req_f64(p, kind, "y_min")?;
            let x_max = req_f64(p, kind, "x_max")?;
            let y_max = req_f64(p, kind, "y_max")?;
            let t_start = req_int(p, kind, "t_start")?;
            let t_end = req_int(p, kind, "t_end")?;
            Ok(AuditEvent::Forwarded {
                user: req_u64(p, kind, "user")?,
                at: req_int(p, kind, "at")?,
                area: (x_max - x_min) * (y_max - y_min),
                duration: t_end - t_start,
                generalized: req_bool(p, kind, "generalized")?,
                hk_ok: req_bool(p, kind, "hk_ok")?,
                service: opt_u64(p, "service"),
                k_req: opt_u64(p, "k_req"),
                k_got: opt_u64(p, "k_got"),
                lbqid: p.get("lbqid").and_then(Json::as_str).map(str::to_string),
            })
        }
        "ts.suppressed" => Ok(AuditEvent::Suppressed {
            user: req_u64(p, kind, "user")?,
            at: req_int(p, kind, "at")?,
            reason: req_str(p, kind, "reason")?,
            service: opt_u64(p, "service"),
        }),
        "ts.pseudonym_changed" => Ok(AuditEvent::PseudonymChanged {
            user: req_u64(p, kind, "user")?,
            at: req_int(p, kind, "at")?,
        }),
        "ts.at_risk" => Ok(AuditEvent::AtRisk {
            user: req_u64(p, kind, "user")?,
            at: req_int(p, kind, "at")?,
            lbqid: req_str(p, kind, "lbqid")?,
        }),
        "ts.lbqid_matched" => Ok(AuditEvent::LbqidMatched {
            user: req_u64(p, kind, "user")?,
            at: req_int(p, kind, "at")?,
            lbqid: req_str(p, kind, "lbqid")?,
        }),
        "ts.mode_changed" => {
            let from = req_str(p, kind, "from")?;
            let to = req_str(p, kind, "to")?;
            Ok(AuditEvent::ModeChanged {
                at: req_int(p, kind, "at")?,
                from: Mode::parse(&from).ok_or_else(|| format!("{kind}: unknown mode '{from}'"))?,
                to: Mode::parse(&to).ok_or_else(|| format!("{kind}: unknown mode '{to}'"))?,
            })
        }
        "journal.recovered" => Ok(AuditEvent::JournalRecovered {
            truncated_bytes: req_u64(p, kind, "truncated_bytes")?,
            valid_records: req_u64(p, kind, "valid_records")?,
        }),
        "checkpoint" => {
            let records = req_u64(p, kind, "records")?;
            let head = req_str(p, kind, "head")?;
            // The anchor rule is part of the schema: the payload must
            // agree with the record's own chain position. A checkpoint
            // record that lies about where it sits is drift the audit
            // surfaces, exactly like a missing field.
            if records != record.seq {
                return Err(format!(
                    "{kind}: anchor covers {records} records but record sits at seq {}",
                    record.seq
                ));
            }
            if head != record.prev {
                return Err(format!("{kind}: anchor head does not match record prev"));
            }
            Ok(AuditEvent::Checkpoint {
                records,
                file: req_str(p, kind, "file")?,
                snapshot: req_str(p, kind, "snapshot")?,
            })
        }
        _ => Ok(AuditEvent::Unknown),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: &str, payload: Json) -> JournalRecord {
        JournalRecord {
            version: 1,
            seq: 0,
            kind: kind.to_string(),
            payload,
            prev: String::new(),
            hash: String::new(),
        }
    }

    #[test]
    fn forwarded_decodes_area_and_optional_audit_fields() {
        let payload = Json::obj([
            ("user", Json::Int(7)),
            ("at", Json::Int(100)),
            ("x_min", Json::Num(0.0)),
            ("y_min", Json::Num(0.0)),
            ("x_max", Json::Num(10.0)),
            ("y_max", Json::Num(20.0)),
            ("t_start", Json::Int(90)),
            ("t_end", Json::Int(110)),
            ("generalized", Json::Bool(true)),
            ("hk_ok", Json::Bool(true)),
            ("service", Json::Int(2)),
            ("k_req", Json::Int(5)),
            ("k_got", Json::Int(5)),
            ("lbqid", Json::from("commute")),
        ]);
        match decode(&record("ts.forwarded", payload)).unwrap() {
            AuditEvent::Forwarded {
                user,
                area,
                duration,
                service,
                k_req,
                lbqid,
                ..
            } => {
                assert_eq!(user, 7);
                assert_eq!(area, 200.0);
                assert_eq!(duration, 20);
                assert_eq!(service, Some(2));
                assert_eq!(k_req, Some(5));
                assert_eq!(lbqid.as_deref(), Some("commute"));
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn forwarded_without_audit_fields_still_decodes() {
        // A journal written before the audit fields existed (same v1
        // schema, additive fields): required fields suffice.
        let payload = Json::obj([
            ("user", Json::Int(1)),
            ("at", Json::Int(0)),
            ("x_min", Json::Num(1.0)),
            ("y_min", Json::Num(1.0)),
            ("x_max", Json::Num(1.0)),
            ("y_max", Json::Num(1.0)),
            ("t_start", Json::Int(0)),
            ("t_end", Json::Int(0)),
            ("generalized", Json::Bool(false)),
            ("hk_ok", Json::Bool(true)),
        ]);
        match decode(&record("ts.forwarded", payload)).unwrap() {
            AuditEvent::Forwarded {
                service,
                k_req,
                k_got,
                lbqid,
                ..
            } => {
                assert_eq!((service, k_req, k_got, lbqid), (None, None, None, None));
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn missing_required_field_is_a_schema_issue() {
        let payload = Json::obj([("at", Json::Int(0))]);
        let err = decode(&record("ts.suppressed", payload)).unwrap_err();
        assert!(err.contains("user"), "error names the field: {err}");
    }

    #[test]
    fn unknown_kind_is_tolerated() {
        assert_eq!(
            decode(&record("ts.some_future_thing", Json::Null)).unwrap(),
            AuditEvent::Unknown
        );
    }

    #[test]
    fn checkpoint_decode_enforces_the_anchor_rule() {
        let payload = |records: i64, head: &str| {
            Json::obj([
                ("records", Json::Int(records)),
                ("head", Json::from(head)),
                ("file", Json::from("checkpoint-000005.snap")),
                ("snapshot", Json::from("abc123")),
            ])
        };
        let mut rec = record("checkpoint", payload(5, "feedbeef"));
        rec.seq = 5;
        rec.prev = "feedbeef".to_string();
        match decode(&rec).unwrap() {
            AuditEvent::Checkpoint {
                records,
                file,
                snapshot,
            } => {
                assert_eq!(records, 5);
                assert_eq!(file, "checkpoint-000005.snap");
                assert_eq!(snapshot, "abc123");
            }
            other => panic!("decoded {other:?}"),
        }

        // Wrong seq: the payload claims a different chain position.
        let mut lies = record("checkpoint", payload(4, "feedbeef"));
        lies.seq = 5;
        lies.prev = "feedbeef".to_string();
        let err = decode(&lies).unwrap_err();
        assert!(err.contains("seq"), "error names the mismatch: {err}");

        // Wrong head: the payload disagrees with the record's prev hash.
        let mut lies = record("checkpoint", payload(5, "0000beef"));
        lies.seq = 5;
        lies.prev = "feedbeef".to_string();
        let err = decode(&lies).unwrap_err();
        assert!(err.contains("prev"), "error names the mismatch: {err}");
    }

    #[test]
    fn mode_strings_round_trip() {
        for m in [Mode::Normal, Mode::Degraded, Mode::ReadOnly] {
            assert_eq!(Mode::parse(m.as_str()), Some(m));
        }
        assert_eq!(Mode::parse("sideways"), None);
    }
}
