//! Offline audit of the trusted server's hash-chained journal.
//!
//! `hka-obs` gives the pipeline a tamper-evident record of every
//! decision; this crate is the consumer that turns the record into
//! analysis. [`replay`] streams a journal through
//! [`hka_obs::JournalReader`] — verifying the SHA-256 chain as it goes —
//! and reconstructs:
//!
//! * **per-user anonymity timelines** ([`UserTimeline`]): k over time,
//!   generalization area/duration, suppressions, unlink and at-risk
//!   events;
//! * **the mode ladder** ([`ModeTransition`]): every journaled
//!   Normal ⇄ Degraded ⇄ ReadOnly transition, checked for consistency;
//! * **violations** ([`Violation`]): Theorem-1 bookkeeping breaks
//!   (unexplained sub-k clamps) and fail-closed breaks (forwards under
//!   degraded/read-only modes);
//! * **trade-off tables** ([`ServiceRow`], [`LbqidRow`]): the paper's
//!   QoS vs degree-of-anonymity vs unlink-frequency triangle, per
//!   service class and per LBQID.
//!
//! The decoder works from the on-disk v1 schema alone (it depends only
//! on `hka-obs`, not on the server), so it doubles as a drift guard:
//! a journal the server writes that the auditor cannot read is a bug by
//! construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod report;
pub mod state;
pub mod tail;
pub mod timeline;

pub use event::{AuditEvent, Mode};
pub use report::{AuditOutcome, ChainSummary};
pub use tail::{TailAuditor, TailPoll, WatchFrame};
pub use timeline::{
    AuditConfig, Auditor, KSample, LbqidRow, ModeTransition, ServiceRow, Totals, UserTimeline,
    Violation, ViolationKind,
};

use std::io::{BufRead, Seek, SeekFrom};
use std::path::Path;

use hka_obs::checkpoint::{CheckpointAnchor, Snapshot};
use hka_obs::{JournalReader, JournalRecord};

/// Section name under which checkpoint snapshots carry serialized audit
/// state (see [`Auditor::to_state`]).
pub const AUDIT_SECTION: &str = "audit";

/// Replays a journal: verifies the chain record by record and folds
/// every verified record into the audit state. A chain failure stops
/// the replay — everything after the first bad record chains through it
/// and cannot be trusted — and is reported in the outcome rather than
/// returned as an error, so a tampered journal still yields the
/// analysis of its valid prefix.
pub fn replay(input: impl BufRead, cfg: AuditConfig) -> AuditOutcome {
    let mut reader = JournalReader::new(input);
    let mut auditor = Auditor::new(cfg);
    let mut error = None;
    for record in reader.by_ref() {
        match record {
            Ok(r) => auditor.ingest(&r),
            Err(e) => {
                error = Some(e.to_string());
                break;
            }
        }
    }
    auditor.finish(ChainSummary {
        records: reader.records_read(),
        head: reader.head().to_string(),
        error,
    })
}

/// [`replay`] over a journal file on disk.
pub fn replay_file(path: &Path, cfg: AuditConfig) -> std::io::Result<AuditOutcome> {
    let file = std::fs::File::open(path)?;
    Ok(replay(std::io::BufReader::new(file), cfg))
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Restores the auditor held in a snapshot's `audit` section.
pub(crate) fn restore_auditor(
    snapshot: &Snapshot,
    snapshot_path: &Path,
) -> std::io::Result<Auditor> {
    let state = snapshot.section(AUDIT_SECTION).ok_or_else(|| {
        invalid(format!(
            "{}: snapshot has no 'audit' section",
            snapshot_path.display()
        ))
    })?;
    Auditor::from_state(state)
        .map_err(|e| invalid(format!("{}: bad audit state: {e}", snapshot_path.display())))
}

/// Finds the byte offset of the checkpoint anchor record binding
/// `snapshot` into `journal`, verifying every binding (chain position,
/// head, snapshot content hash) before returning. Fail-closed: any
/// mismatch or a missing anchor is an `InvalidData` error.
///
/// The scan is a cheap line search — only complete lines that name the
/// checkpoint kind are parsed at all — so it stays far cheaper than a
/// per-record hash replay.
pub(crate) fn locate_anchor(
    journal: &Path,
    snapshot: &Snapshot,
    file_hash: &str,
    snapshot_path: &Path,
) -> std::io::Result<u64> {
    let mut input = std::io::BufReader::new(std::fs::File::open(journal)?);
    let mut offset: u64 = 0;
    let mut line = Vec::new();
    let needle = format!("\"kind\":\"{}\"", hka_obs::CHECKPOINT_KIND);
    loop {
        line.clear();
        let n = input.read_until(b'\n', &mut line)?;
        if n == 0 || !line.ends_with(b"\n") {
            return Err(invalid(format!(
                "{}: no checkpoint anchor at seq {} — cannot resume from {}",
                journal.display(),
                snapshot.records,
                snapshot_path.display()
            )));
        }
        if let Ok(text) = std::str::from_utf8(&line) {
            if text.contains(&needle) {
                if let Ok(record) = JournalRecord::parse_line(text.trim_end_matches(['\n', '\r'])) {
                    if record.seq == snapshot.records {
                        let anchor = CheckpointAnchor::of_record(&record)
                            .map_err(|e| invalid(format!("{}: {e}", journal.display())))?
                            .ok_or_else(|| invalid("checkpoint record lost its kind mid-parse"))?;
                        if anchor.head != snapshot.head {
                            return Err(invalid(format!(
                                "{}: anchor head does not match snapshot head",
                                journal.display()
                            )));
                        }
                        if anchor.snapshot != file_hash {
                            return Err(invalid(format!(
                                "{}: snapshot content hash {file_hash} does not match anchor {}",
                                snapshot_path.display(),
                                anchor.snapshot
                            )));
                        }
                        return Ok(offset);
                    }
                }
            }
        }
        offset += n as u64;
    }
}

/// Replays `snapshot + journal suffix` to the byte-identical outcome of
/// a genesis [`replay_file`] over the same chain.
///
/// The snapshot's `audit` section restores the replay state covering
/// records `0..snapshot.records`; the journal is then scanned for the
/// checkpoint anchor at seq `snapshot.records` and verification resumes
/// from there, ingesting the anchor record and everything after it. The
/// scan is a cheap line search (no per-record hashing), which is where
/// the speedup over a genesis replay comes from. Works on full journals
/// and on journals whose prefix was truncated away at the anchor.
///
/// Fail-closed: every binding is checked before any state is trusted —
/// the snapshot file must hash to what the anchor recorded, and the
/// anchor must sit at the snapshot's exact chain position. Any mismatch
/// (or a missing anchor) is an [`std::io::ErrorKind::InvalidData`]
/// error; callers fall back to the previous checkpoint or to a genesis
/// replay, never to a partially-trusted resume.
pub fn resume_from_snapshot(journal: &Path, snapshot_path: &Path) -> std::io::Result<AuditOutcome> {
    let (snapshot, file_hash) = Snapshot::read(snapshot_path)?;
    let auditor = restore_auditor(&snapshot, snapshot_path)?;
    let anchor_offset = locate_anchor(journal, &snapshot, &file_hash, snapshot_path)?;

    // Resume chain verification at the anchor: its prev is the snapshot
    // head, so the anchor record itself is the first one admitted, and
    // both replay paths ingest it — byte-identical outcomes.
    let mut file = std::fs::File::open(journal)?;
    file.seek(SeekFrom::Start(anchor_offset))?;
    let mut reader = JournalReader::resume(
        std::io::BufReader::new(file),
        snapshot.records,
        snapshot.head.clone(),
    );
    let mut auditor = auditor;
    let mut error = None;
    for record in reader.by_ref() {
        match record {
            Ok(r) => auditor.ingest(&r),
            Err(e) => {
                error = Some(e.to_string());
                break;
            }
        }
    }
    Ok(auditor.finish(ChainSummary {
        records: reader.records_read(),
        head: reader.head().to_string(),
        error,
    }))
}

/// Replays `journal` to its end and returns the auditor's serialized
/// state ([`Auditor::to_state`]) together with the chain position
/// `(records, head)` it covers — the raw material of a checkpoint
/// snapshot's `audit` section.
///
/// When `resume` names a previous snapshot file, the replay starts from
/// its `audit` section at the bound anchor instead of genesis, so
/// building checkpoint *n + 1* costs one journal *suffix*, not the whole
/// history. Unlike [`replay`], any chain error here is fatal
/// ([`std::io::ErrorKind::InvalidData`]): the caller is about to anchor
/// a snapshot into the chain, and anchoring state derived from an
/// unverifiable journal would launder the corruption into every future
/// resume.
pub fn state_at(
    journal: &Path,
    resume: Option<&Path>,
    cfg: AuditConfig,
) -> std::io::Result<(hka_obs::Json, u64, String)> {
    match resume {
        Some(snapshot_path) => {
            let (snapshot, file_hash) = Snapshot::read(snapshot_path)?;
            let auditor = restore_auditor(&snapshot, snapshot_path)?;
            let offset = locate_anchor(journal, &snapshot, &file_hash, snapshot_path)?;
            let mut file = std::fs::File::open(journal)?;
            file.seek(SeekFrom::Start(offset))?;
            let reader = JournalReader::resume(
                std::io::BufReader::new(file),
                snapshot.records,
                snapshot.head.clone(),
            );
            finish_state(auditor, reader)
        }
        None => {
            let file = std::fs::File::open(journal)?;
            let reader = JournalReader::new(std::io::BufReader::new(file));
            finish_state(Auditor::new(cfg), reader)
        }
    }
}

fn finish_state<R: BufRead>(
    mut auditor: Auditor,
    mut reader: JournalReader<R>,
) -> std::io::Result<(hka_obs::Json, u64, String)> {
    for record in reader.by_ref() {
        auditor.ingest(&record.map_err(|e| invalid(e.to_string()))?);
    }
    Ok((
        auditor.to_state(),
        reader.records_read(),
        reader.head().to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_obs::{Journal, Json};

    /// Builds a journal in memory from `(kind, payload)` pairs.
    fn journal_of(events: &[(&str, Json)]) -> Vec<u8> {
        let mut j = Journal::new(Vec::new());
        for (kind, payload) in events {
            j.append(kind, payload.clone()).unwrap();
        }
        j.into_inner()
    }

    fn fwd(user: i64, at: i64, generalized: bool, hk_ok: bool, k_req: i64, k_got: i64) -> Json {
        let side = if generalized { 100.0 } else { 0.0 };
        Json::obj([
            ("user", Json::Int(user)),
            ("at", Json::Int(at)),
            ("x_min", Json::Num(0.0)),
            ("y_min", Json::Num(0.0)),
            ("x_max", Json::Num(side)),
            ("y_max", Json::Num(side)),
            ("t_start", Json::Int(at - 30)),
            ("t_end", Json::Int(at + 30)),
            ("generalized", Json::Bool(generalized)),
            ("hk_ok", Json::Bool(hk_ok)),
            ("service", Json::Int(1)),
            ("k_req", Json::Int(k_req)),
            ("k_got", Json::Int(k_got)),
            (
                "lbqid",
                if generalized {
                    Json::from("commute")
                } else {
                    Json::Null
                },
            ),
        ])
    }

    fn mode_change(at: i64, from: &str, to: &str) -> Json {
        Json::obj([
            ("at", Json::Int(at)),
            ("from", Json::from(from)),
            ("to", Json::from(to)),
        ])
    }

    #[test]
    fn clean_replay_builds_timelines_and_tables() {
        let bytes = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("ts.forwarded", fwd(1, 200, true, true, 4, 6)),
            (
                "ts.suppressed",
                Json::obj([
                    ("user", Json::Int(2)),
                    ("at", Json::Int(150)),
                    ("reason", Json::from("mix_zone")),
                    ("service", Json::Int(1)),
                ]),
            ),
            (
                "ts.lbqid_matched",
                Json::obj([
                    ("user", Json::Int(1)),
                    ("at", Json::Int(200)),
                    ("lbqid", Json::from("commute")),
                ]),
            ),
        ]);
        let out = replay(&bytes[..], AuditConfig::default());
        assert!(out.ok(), "violations: {:?}", out.violations);
        assert!(out.chain.verified());
        assert_eq!(out.chain.records, 4);
        assert_eq!(out.totals.forwarded(), 2);
        assert_eq!(out.totals.requests(), 3);
        assert_eq!(out.totals.lbqid_matches, 1);

        let u1 = out.users.iter().find(|u| u.user == 1).unwrap();
        assert_eq!(
            u1.k_samples,
            vec![
                KSample {
                    at: 100,
                    k_req: 5,
                    k_got: 5
                },
                KSample {
                    at: 200,
                    k_req: 4,
                    k_got: 6
                },
            ]
        );
        assert_eq!(u1.min_k, Some(5));
        assert_eq!(u1.mean_area(), 10_000.0);
        assert_eq!(u1.mean_duration(), 60.0);

        let svc = out.services.iter().find(|s| s.service == 1).unwrap();
        assert_eq!(svc.forwarded(), 2);
        assert_eq!(svc.suppressed, 1);
        assert_eq!(svc.mean_k_req(), 4.5);
        let lb = out.lbqids.iter().find(|l| l.lbqid == "commute").unwrap();
        assert_eq!(lb.forwarded_ok, 2);
        assert_eq!(lb.matches, 1);
    }

    #[test]
    fn clamp_after_at_risk_is_explained_without_is_violation() {
        // Clamp preceded by an at-risk notification: Theorem-1 honoured.
        let explained = journal_of(&[
            (
                "ts.at_risk",
                Json::obj([
                    ("user", Json::Int(1)),
                    ("at", Json::Int(90)),
                    ("lbqid", Json::from("commute")),
                ]),
            ),
            ("ts.forwarded", fwd(1, 100, true, false, 5, 2)),
        ]);
        let out = replay(&explained[..], AuditConfig::default());
        assert!(out.ok(), "violations: {:?}", out.violations);
        let u = &out.users[0];
        assert_eq!(u.at_risk_windows, vec![(90, None)]);
        assert_eq!(u.forwarded_clamped, 1);

        // The same clamp with no at-risk anywhere: violation.
        let unexplained = journal_of(&[("ts.forwarded", fwd(1, 100, true, false, 5, 2))]);
        let out = replay(&unexplained[..], AuditConfig::default());
        assert!(!out.ok());
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].kind, ViolationKind::UnexplainedClamp);
        assert_eq!(out.violations[0].user, Some(1));
    }

    #[test]
    fn pseudonym_change_closes_the_at_risk_window() {
        let bytes = journal_of(&[
            (
                "ts.at_risk",
                Json::obj([
                    ("user", Json::Int(1)),
                    ("at", Json::Int(50)),
                    ("lbqid", Json::from("commute")),
                ]),
            ),
            (
                "ts.pseudonym_changed",
                Json::obj([
                    ("user", Json::Int(1)),
                    ("old", Json::Int(10)),
                    ("new", Json::Int(11)),
                    ("at", Json::Int(60)),
                ]),
            ),
            // A clamp *after* the window closed is unexplained again.
            ("ts.forwarded", fwd(1, 100, true, false, 5, 2)),
        ]);
        let out = replay(&bytes[..], AuditConfig::default());
        let u = &out.users[0];
        assert_eq!(u.at_risk_windows, vec![(50, Some(60))]);
        assert_eq!(u.unlinks, vec![60]);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].kind, ViolationKind::UnexplainedClamp);
    }

    #[test]
    fn forwards_under_degraded_and_read_only_modes_are_violations() {
        let bytes = journal_of(&[
            ("ts.mode_changed", mode_change(10, "normal", "degraded")),
            // Exact forward while degraded: fail-closed broken.
            ("ts.forwarded", fwd(1, 20, false, true, 0, 0)),
            // Protected forward while degraded: allowed.
            ("ts.forwarded", fwd(1, 30, true, true, 5, 5)),
            ("ts.mode_changed", mode_change(40, "degraded", "read_only")),
            // Anything while read-only: broken.
            ("ts.forwarded", fwd(1, 50, true, true, 5, 5)),
        ]);
        let out = replay(&bytes[..], AuditConfig::default());
        let kinds: Vec<ViolationKind> = out.violations.iter().map(|v| v.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ViolationKind::ForwardWhileDegraded,
                ViolationKind::ForwardWhileReadOnly,
            ]
        );
        assert!(out.mode_consistent);
        assert_eq!(out.mode_transitions.len(), 2);
    }

    #[test]
    fn inconsistent_mode_ladder_is_flagged() {
        let bytes = journal_of(&[
            ("ts.mode_changed", mode_change(10, "normal", "degraded")),
            // Claims to come from normal, but the journal said degraded.
            ("ts.mode_changed", mode_change(20, "normal", "read_only")),
        ]);
        let out = replay(&bytes[..], AuditConfig::default());
        assert!(!out.mode_consistent);
        assert_eq!(out.violations[0].kind, ViolationKind::ModeLadderGap);
    }

    #[test]
    fn tampered_journal_reports_chain_error_and_keeps_prefix() {
        let bytes = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("ts.forwarded", fwd(2, 200, true, true, 5, 5)),
            ("ts.forwarded", fwd(3, 300, true, true, 5, 5)),
        ]);
        let text = String::from_utf8(bytes).unwrap();
        let tampered = text.replacen("\"user\":2", "\"user\":9", 1);
        let out = replay(tampered.as_bytes(), AuditConfig::default());
        assert!(!out.ok());
        assert!(!out.chain.verified());
        assert_eq!(out.chain.records, 1, "only the prefix before the tamper");
        assert_eq!(out.totals.forwarded(), 1);
        assert!(out.chain.error.as_deref().unwrap().contains("hash"));
    }

    #[test]
    fn schema_drift_is_surfaced_not_ignored() {
        // A known kind missing a required field fails the audit...
        let bytes = journal_of(&[(
            "ts.forwarded",
            Json::obj([("user", Json::Int(1)), ("at", Json::Int(0))]),
        )]);
        let out = replay(&bytes[..], AuditConfig::default());
        assert!(!out.ok());
        assert_eq!(out.schema_issues.len(), 1);

        // ...while an unknown kind is tolerated and counted.
        let bytes = journal_of(&[("ts.future", Json::obj([("x", Json::Int(1))]))]);
        let out = replay(&bytes[..], AuditConfig::default());
        assert!(out.ok());
        assert_eq!(out.totals.unknown_kinds, 1);
    }

    #[test]
    fn recovery_marker_is_reported() {
        let bytes = journal_of(&[(
            "journal.recovered",
            Json::obj([
                ("truncated_bytes", Json::Int(57)),
                ("valid_records", Json::Int(12)),
            ]),
        )]);
        let out = replay(&bytes[..], AuditConfig::default());
        assert_eq!(out.recoveries, vec![(57, 12)]);
    }

    #[test]
    fn json_output_is_canonical_and_round_trips() {
        let bytes = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("ts.mode_changed", mode_change(10, "normal", "degraded")),
        ]);
        let out = replay(
            &bytes[..],
            AuditConfig {
                space_tol: Some(1e6),
                time_tol: Some(600),
                ..AuditConfig::default()
            },
        );
        let json = out.to_json();
        let text = json.to_string();
        let reparsed = hka_obs::json::parse(&text).unwrap();
        assert_eq!(reparsed.to_string(), text, "canonical serialization");
        assert_eq!(
            reparsed.get("chain").unwrap().get("verified"),
            Some(&Json::Bool(true))
        );
        assert!(reparsed.get("trade_off").unwrap().get("overall").is_some());
        // Inflation ratios present when tolerances are configured.
        let overall = json.get("trade_off").unwrap().get("overall").unwrap();
        assert!(overall.get("area_inflation").unwrap().as_f64().unwrap() > 0.0);
        // Text render names the headline facts.
        let text = out.render();
        assert!(text.contains("chain: VERIFIED"));
        assert!(text.contains("violations"));
    }

    #[test]
    fn empty_journal_is_clean() {
        let out = replay(&b""[..], AuditConfig::default());
        assert!(out.ok());
        assert_eq!(out.totals.events, 0);
        assert_eq!(out.users.len(), 0);
    }

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("hka-audit-ckpt-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Builds, on disk, a journal whose prefix is covered by a real
    /// checkpoint snapshot bound in by an anchor record, followed by
    /// `suffix` events on the same chain. Returns
    /// `(journal_path, snapshot_path)`.
    fn checkpointed(
        dir: &std::path::Path,
        prefix: &[(&str, Json)],
        suffix: &[(&str, Json)],
    ) -> (std::path::PathBuf, std::path::PathBuf) {
        let mut j = Journal::new(Vec::new());
        for (kind, payload) in prefix {
            j.append(kind, payload.clone()).unwrap();
        }
        let records = j.next_seq();
        let head = j.head().to_string();
        let bytes = j.into_inner();

        let mut auditor = Auditor::new(AuditConfig::default());
        for r in hka_obs::JournalReader::new(&bytes[..]) {
            auditor.ingest(&r.unwrap());
        }
        let mut snap = Snapshot::new(records, head.clone());
        snap.set_section(AUDIT_SECTION, auditor.to_state());
        let file = format!("checkpoint-{records:06}.snap");
        let snap_path = dir.join(&file);
        let hash = hka_obs::checkpoint::write_atomic(&snap, &snap_path).unwrap();

        let mut j = Journal::resume(bytes, records, head.clone());
        j.append(
            hka_obs::CHECKPOINT_KIND,
            hka_obs::checkpoint::anchor_payload(&file, records, &head, &hash),
        )
        .unwrap();
        for (kind, payload) in suffix {
            j.append(kind, payload.clone()).unwrap();
        }
        let journal_path = dir.join("journal.jsonl");
        std::fs::write(&journal_path, j.into_inner()).unwrap();
        (journal_path, snap_path)
    }

    fn prefix_events() -> Vec<(&'static str, Json)> {
        vec![
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("ts.mode_changed", mode_change(110, "normal", "degraded")),
            (
                "ts.suppressed",
                Json::obj([
                    ("user", Json::Int(2)),
                    ("at", Json::Int(120)),
                    ("reason", Json::from("degraded")),
                    ("service", Json::Int(1)),
                ]),
            ),
        ]
    }

    fn suffix_events() -> Vec<(&'static str, Json)> {
        vec![
            ("ts.mode_changed", mode_change(130, "degraded", "normal")),
            ("ts.forwarded", fwd(1, 140, true, true, 4, 6)),
            ("ts.forwarded", fwd(3, 150, true, false, 5, 2)),
        ]
    }

    #[test]
    fn snapshot_plus_suffix_is_byte_identical_to_genesis_replay() {
        let dir = TempDir::new("equiv");
        let (journal, snap) = checkpointed(&dir.0, &prefix_events(), &suffix_events());

        let genesis = replay_file(&journal, AuditConfig::default()).unwrap();
        let resumed = resume_from_snapshot(&journal, &snap).unwrap();
        assert!(genesis.chain.verified());
        assert_eq!(genesis.totals.checkpoints, 1);
        assert_eq!(
            resumed.to_json().to_string(),
            genesis.to_json().to_string(),
            "snapshot + suffix must replay to the genesis outcome, byte for byte"
        );
    }

    #[test]
    fn resume_works_after_prefix_truncation() {
        let dir = TempDir::new("trunc");
        let (journal, snap) = checkpointed(&dir.0, &prefix_events(), &suffix_events());
        let genesis = replay_file(&journal, AuditConfig::default()).unwrap();

        let dropped = hka_obs::checkpoint::truncate_to_anchor(&journal, 3).unwrap();
        assert!(!dropped.is_empty(), "prefix was archived away");

        let resumed = resume_from_snapshot(&journal, &snap).unwrap();
        assert_eq!(
            resumed.to_json().to_string(),
            genesis.to_json().to_string(),
            "truncation must be invisible to the resumed audit"
        );
    }

    #[test]
    fn resume_fails_closed_on_a_doctored_snapshot() {
        let dir = TempDir::new("doctored");
        let (journal, snap) = checkpointed(&dir.0, &prefix_events(), &suffix_events());

        // Flip one audit-state byte and re-encode: still a well-formed
        // snapshot, but its content hash no longer matches the anchor.
        let text = std::fs::read_to_string(&snap).unwrap();
        let doctored = text.replace("\"forwarded_ok\":1", "\"forwarded_ok\":7");
        assert_ne!(doctored, text, "fixture must actually change the state");
        std::fs::write(&snap, doctored).unwrap();

        let err = resume_from_snapshot(&journal, &snap).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("hash"),
            "refusal names the hash: {err}"
        );
    }

    #[test]
    fn resume_fails_closed_when_the_anchor_is_missing() {
        let dir = TempDir::new("missing");
        let (journal, snap) = checkpointed(&dir.0, &prefix_events(), &suffix_events());

        // A journal from a different run: same length, no anchor.
        let mut j = Journal::new(Vec::new());
        for (kind, payload) in prefix_events().iter().chain(suffix_events().iter()) {
            j.append(kind, payload.clone()).unwrap();
        }
        std::fs::write(&journal, j.into_inner()).unwrap();

        let err = resume_from_snapshot(&journal, &snap).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("no checkpoint anchor"));
    }

    #[test]
    fn resumed_tail_agrees_with_a_genesis_tail() {
        let dir = TempDir::new("tail");
        let (journal, snap) = checkpointed(&dir.0, &prefix_events(), &suffix_events());

        let mut genesis = TailAuditor::open(&journal, AuditConfig::default());
        genesis.poll();
        let mut resumed = TailAuditor::resume_from_snapshot(&journal, &snap).unwrap();
        resumed.poll();
        assert_eq!(
            resumed.snapshot().to_json().to_string(),
            genesis.snapshot().to_json().to_string()
        );
        let frame = resumed.frame();
        assert_eq!(frame.checkpoints, 1);
        assert_eq!(frame.checkpoint_seq, Some(3));
    }

    #[test]
    fn state_at_resumed_matches_state_at_genesis() {
        let dir = TempDir::new("state-at");
        let (journal, snap) = checkpointed(&dir.0, &prefix_events(), &suffix_events());

        let genesis = state_at(&journal, None, AuditConfig::default()).unwrap();
        let resumed = state_at(&journal, Some(&snap), AuditConfig::default()).unwrap();
        assert_eq!(resumed.1, genesis.1, "same records");
        assert_eq!(resumed.2, genesis.2, "same head");
        assert_eq!(
            resumed.0.to_string(),
            genesis.0.to_string(),
            "resumed state must be byte-identical to the genesis state"
        );
        // The position covers the whole file: prefix + anchor + suffix.
        assert_eq!(
            genesis.1,
            prefix_events().len() as u64 + 1 + suffix_events().len() as u64
        );
    }

    #[test]
    fn state_at_fails_closed_on_a_torn_tail() {
        let dir = TempDir::new("state-at-torn");
        let (journal, _snap) = checkpointed(&dir.0, &prefix_events(), &suffix_events());
        let mut bytes = std::fs::read(&journal).unwrap();
        bytes.extend_from_slice(br#"{"hash":"torn"#);
        std::fs::write(&journal, bytes).unwrap();

        let err = state_at(&journal, None, AuditConfig::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
