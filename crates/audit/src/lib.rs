//! Offline audit of the trusted server's hash-chained journal.
//!
//! `hka-obs` gives the pipeline a tamper-evident record of every
//! decision; this crate is the consumer that turns the record into
//! analysis. [`replay`] streams a journal through
//! [`hka_obs::JournalReader`] — verifying the SHA-256 chain as it goes —
//! and reconstructs:
//!
//! * **per-user anonymity timelines** ([`UserTimeline`]): k over time,
//!   generalization area/duration, suppressions, unlink and at-risk
//!   events;
//! * **the mode ladder** ([`ModeTransition`]): every journaled
//!   Normal ⇄ Degraded ⇄ ReadOnly transition, checked for consistency;
//! * **violations** ([`Violation`]): Theorem-1 bookkeeping breaks
//!   (unexplained sub-k clamps) and fail-closed breaks (forwards under
//!   degraded/read-only modes);
//! * **trade-off tables** ([`ServiceRow`], [`LbqidRow`]): the paper's
//!   QoS vs degree-of-anonymity vs unlink-frequency triangle, per
//!   service class and per LBQID.
//!
//! The decoder works from the on-disk v1 schema alone (it depends only
//! on `hka-obs`, not on the server), so it doubles as a drift guard:
//! a journal the server writes that the auditor cannot read is a bug by
//! construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod report;
pub mod tail;
pub mod timeline;

pub use event::{AuditEvent, Mode};
pub use report::{AuditOutcome, ChainSummary};
pub use tail::{TailAuditor, TailPoll, WatchFrame};
pub use timeline::{
    AuditConfig, Auditor, KSample, LbqidRow, ModeTransition, ServiceRow, Totals, UserTimeline,
    Violation, ViolationKind,
};

use std::io::BufRead;
use std::path::Path;

use hka_obs::JournalReader;

/// Replays a journal: verifies the chain record by record and folds
/// every verified record into the audit state. A chain failure stops
/// the replay — everything after the first bad record chains through it
/// and cannot be trusted — and is reported in the outcome rather than
/// returned as an error, so a tampered journal still yields the
/// analysis of its valid prefix.
pub fn replay(input: impl BufRead, cfg: AuditConfig) -> AuditOutcome {
    let mut reader = JournalReader::new(input);
    let mut auditor = Auditor::new(cfg);
    let mut error = None;
    for record in reader.by_ref() {
        match record {
            Ok(r) => auditor.ingest(&r),
            Err(e) => {
                error = Some(e.to_string());
                break;
            }
        }
    }
    auditor.finish(ChainSummary {
        records: reader.records_read(),
        head: reader.head().to_string(),
        error,
    })
}

/// [`replay`] over a journal file on disk.
pub fn replay_file(path: &Path, cfg: AuditConfig) -> std::io::Result<AuditOutcome> {
    let file = std::fs::File::open(path)?;
    Ok(replay(std::io::BufReader::new(file), cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_obs::{Journal, Json};

    /// Builds a journal in memory from `(kind, payload)` pairs.
    fn journal_of(events: &[(&str, Json)]) -> Vec<u8> {
        let mut j = Journal::new(Vec::new());
        for (kind, payload) in events {
            j.append(kind, payload.clone()).unwrap();
        }
        j.into_inner()
    }

    fn fwd(user: i64, at: i64, generalized: bool, hk_ok: bool, k_req: i64, k_got: i64) -> Json {
        let side = if generalized { 100.0 } else { 0.0 };
        Json::obj([
            ("user", Json::Int(user)),
            ("at", Json::Int(at)),
            ("x_min", Json::Num(0.0)),
            ("y_min", Json::Num(0.0)),
            ("x_max", Json::Num(side)),
            ("y_max", Json::Num(side)),
            ("t_start", Json::Int(at - 30)),
            ("t_end", Json::Int(at + 30)),
            ("generalized", Json::Bool(generalized)),
            ("hk_ok", Json::Bool(hk_ok)),
            ("service", Json::Int(1)),
            ("k_req", Json::Int(k_req)),
            ("k_got", Json::Int(k_got)),
            (
                "lbqid",
                if generalized { Json::from("commute") } else { Json::Null },
            ),
        ])
    }

    fn mode_change(at: i64, from: &str, to: &str) -> Json {
        Json::obj([
            ("at", Json::Int(at)),
            ("from", Json::from(from)),
            ("to", Json::from(to)),
        ])
    }

    #[test]
    fn clean_replay_builds_timelines_and_tables() {
        let bytes = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("ts.forwarded", fwd(1, 200, true, true, 4, 6)),
            (
                "ts.suppressed",
                Json::obj([
                    ("user", Json::Int(2)),
                    ("at", Json::Int(150)),
                    ("reason", Json::from("mix_zone")),
                    ("service", Json::Int(1)),
                ]),
            ),
            (
                "ts.lbqid_matched",
                Json::obj([
                    ("user", Json::Int(1)),
                    ("at", Json::Int(200)),
                    ("lbqid", Json::from("commute")),
                ]),
            ),
        ]);
        let out = replay(&bytes[..], AuditConfig::default());
        assert!(out.ok(), "violations: {:?}", out.violations);
        assert!(out.chain.verified());
        assert_eq!(out.chain.records, 4);
        assert_eq!(out.totals.forwarded(), 2);
        assert_eq!(out.totals.requests(), 3);
        assert_eq!(out.totals.lbqid_matches, 1);

        let u1 = out.users.iter().find(|u| u.user == 1).unwrap();
        assert_eq!(
            u1.k_samples,
            vec![
                KSample { at: 100, k_req: 5, k_got: 5 },
                KSample { at: 200, k_req: 4, k_got: 6 },
            ]
        );
        assert_eq!(u1.min_k, Some(5));
        assert_eq!(u1.mean_area(), 10_000.0);
        assert_eq!(u1.mean_duration(), 60.0);

        let svc = out.services.iter().find(|s| s.service == 1).unwrap();
        assert_eq!(svc.forwarded(), 2);
        assert_eq!(svc.suppressed, 1);
        assert_eq!(svc.mean_k_req(), 4.5);
        let lb = out.lbqids.iter().find(|l| l.lbqid == "commute").unwrap();
        assert_eq!(lb.forwarded_ok, 2);
        assert_eq!(lb.matches, 1);
    }

    #[test]
    fn clamp_after_at_risk_is_explained_without_is_violation() {
        // Clamp preceded by an at-risk notification: Theorem-1 honoured.
        let explained = journal_of(&[
            (
                "ts.at_risk",
                Json::obj([
                    ("user", Json::Int(1)),
                    ("at", Json::Int(90)),
                    ("lbqid", Json::from("commute")),
                ]),
            ),
            ("ts.forwarded", fwd(1, 100, true, false, 5, 2)),
        ]);
        let out = replay(&explained[..], AuditConfig::default());
        assert!(out.ok(), "violations: {:?}", out.violations);
        let u = &out.users[0];
        assert_eq!(u.at_risk_windows, vec![(90, None)]);
        assert_eq!(u.forwarded_clamped, 1);

        // The same clamp with no at-risk anywhere: violation.
        let unexplained = journal_of(&[("ts.forwarded", fwd(1, 100, true, false, 5, 2))]);
        let out = replay(&unexplained[..], AuditConfig::default());
        assert!(!out.ok());
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].kind, ViolationKind::UnexplainedClamp);
        assert_eq!(out.violations[0].user, Some(1));
    }

    #[test]
    fn pseudonym_change_closes_the_at_risk_window() {
        let bytes = journal_of(&[
            (
                "ts.at_risk",
                Json::obj([
                    ("user", Json::Int(1)),
                    ("at", Json::Int(50)),
                    ("lbqid", Json::from("commute")),
                ]),
            ),
            (
                "ts.pseudonym_changed",
                Json::obj([
                    ("user", Json::Int(1)),
                    ("old", Json::Int(10)),
                    ("new", Json::Int(11)),
                    ("at", Json::Int(60)),
                ]),
            ),
            // A clamp *after* the window closed is unexplained again.
            ("ts.forwarded", fwd(1, 100, true, false, 5, 2)),
        ]);
        let out = replay(&bytes[..], AuditConfig::default());
        let u = &out.users[0];
        assert_eq!(u.at_risk_windows, vec![(50, Some(60))]);
        assert_eq!(u.unlinks, vec![60]);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].kind, ViolationKind::UnexplainedClamp);
    }

    #[test]
    fn forwards_under_degraded_and_read_only_modes_are_violations() {
        let bytes = journal_of(&[
            ("ts.mode_changed", mode_change(10, "normal", "degraded")),
            // Exact forward while degraded: fail-closed broken.
            ("ts.forwarded", fwd(1, 20, false, true, 0, 0)),
            // Protected forward while degraded: allowed.
            ("ts.forwarded", fwd(1, 30, true, true, 5, 5)),
            ("ts.mode_changed", mode_change(40, "degraded", "read_only")),
            // Anything while read-only: broken.
            ("ts.forwarded", fwd(1, 50, true, true, 5, 5)),
        ]);
        let out = replay(&bytes[..], AuditConfig::default());
        let kinds: Vec<ViolationKind> = out.violations.iter().map(|v| v.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ViolationKind::ForwardWhileDegraded,
                ViolationKind::ForwardWhileReadOnly,
            ]
        );
        assert!(out.mode_consistent);
        assert_eq!(out.mode_transitions.len(), 2);
    }

    #[test]
    fn inconsistent_mode_ladder_is_flagged() {
        let bytes = journal_of(&[
            ("ts.mode_changed", mode_change(10, "normal", "degraded")),
            // Claims to come from normal, but the journal said degraded.
            ("ts.mode_changed", mode_change(20, "normal", "read_only")),
        ]);
        let out = replay(&bytes[..], AuditConfig::default());
        assert!(!out.mode_consistent);
        assert_eq!(out.violations[0].kind, ViolationKind::ModeLadderGap);
    }

    #[test]
    fn tampered_journal_reports_chain_error_and_keeps_prefix() {
        let bytes = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("ts.forwarded", fwd(2, 200, true, true, 5, 5)),
            ("ts.forwarded", fwd(3, 300, true, true, 5, 5)),
        ]);
        let text = String::from_utf8(bytes).unwrap();
        let tampered = text.replacen("\"user\":2", "\"user\":9", 1);
        let out = replay(tampered.as_bytes(), AuditConfig::default());
        assert!(!out.ok());
        assert!(!out.chain.verified());
        assert_eq!(out.chain.records, 1, "only the prefix before the tamper");
        assert_eq!(out.totals.forwarded(), 1);
        assert!(out.chain.error.as_deref().unwrap().contains("hash"));
    }

    #[test]
    fn schema_drift_is_surfaced_not_ignored() {
        // A known kind missing a required field fails the audit...
        let bytes = journal_of(&[(
            "ts.forwarded",
            Json::obj([("user", Json::Int(1)), ("at", Json::Int(0))]),
        )]);
        let out = replay(&bytes[..], AuditConfig::default());
        assert!(!out.ok());
        assert_eq!(out.schema_issues.len(), 1);

        // ...while an unknown kind is tolerated and counted.
        let bytes = journal_of(&[("ts.future", Json::obj([("x", Json::Int(1))]))]);
        let out = replay(&bytes[..], AuditConfig::default());
        assert!(out.ok());
        assert_eq!(out.totals.unknown_kinds, 1);
    }

    #[test]
    fn recovery_marker_is_reported() {
        let bytes = journal_of(&[(
            "journal.recovered",
            Json::obj([
                ("truncated_bytes", Json::Int(57)),
                ("valid_records", Json::Int(12)),
            ]),
        )]);
        let out = replay(&bytes[..], AuditConfig::default());
        assert_eq!(out.recoveries, vec![(57, 12)]);
    }

    #[test]
    fn json_output_is_canonical_and_round_trips() {
        let bytes = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("ts.mode_changed", mode_change(10, "normal", "degraded")),
        ]);
        let out = replay(
            &bytes[..],
            AuditConfig {
                space_tol: Some(1e6),
                time_tol: Some(600),
                ..AuditConfig::default()
            },
        );
        let json = out.to_json();
        let text = json.to_string();
        let reparsed = hka_obs::json::parse(&text).unwrap();
        assert_eq!(reparsed.to_string(), text, "canonical serialization");
        assert_eq!(
            reparsed.get("chain").unwrap().get("verified"),
            Some(&Json::Bool(true))
        );
        assert!(reparsed.get("trade_off").unwrap().get("overall").is_some());
        // Inflation ratios present when tolerances are configured.
        let overall = json.get("trade_off").unwrap().get("overall").unwrap();
        assert!(overall.get("area_inflation").unwrap().as_f64().unwrap() > 0.0);
        // Text render names the headline facts.
        let text = out.render();
        assert!(text.contains("chain: VERIFIED"));
        assert!(text.contains("violations"));
    }

    #[test]
    fn empty_journal_is_clean() {
        let out = replay(&b""[..], AuditConfig::default());
        assert!(out.ok());
        assert_eq!(out.totals.events, 0);
        assert_eq!(out.users.len(), 0);
    }
}
