//! The audit outcome: canonical JSON and a plain-text report.

use hka_obs::Json;

use crate::timeline::{
    AuditConfig, LbqidRow, ModeTransition, ServiceRow, Totals, UserTimeline, Violation,
};

/// What the streaming chain verification saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSummary {
    /// Records that verified (the whole journal when `error` is none).
    pub records: u64,
    /// Hash of the last verified record.
    pub head: String,
    /// The first chain failure, if any — rendered as the reason the
    /// journal cannot be trusted past `records`.
    pub error: Option<String>,
}

impl ChainSummary {
    /// Whether every record verified.
    pub fn verified(&self) -> bool {
        self.error.is_none()
    }
}

/// Everything the replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditOutcome {
    /// Chain verification summary.
    pub chain: ChainSummary,
    /// The reference tolerances the report was computed against.
    pub cfg: AuditConfig,
    /// Per-user anonymity timelines, ordered by user id.
    pub users: Vec<UserTimeline>,
    /// Per-service trade-off rows, ordered by service id.
    pub services: Vec<ServiceRow>,
    /// Per-LBQID trade-off rows, ordered by name.
    pub lbqids: Vec<LbqidRow>,
    /// Journaled mode transitions, in journal order.
    pub mode_transitions: Vec<ModeTransition>,
    /// Whether every transition's `from` matched the established mode.
    pub mode_consistent: bool,
    /// Detected violations, in journal order.
    pub violations: Vec<Violation>,
    /// Known kinds whose payloads were missing required v1 fields:
    /// `(seq, description)` — schema drift, surfaced loudly.
    pub schema_issues: Vec<(u64, String)>,
    /// `journal.recovered` records seen: `(truncated_bytes, valid_records)`.
    pub recoveries: Vec<(u64, u64)>,
    /// Checkpoint anchors seen: `(seq, snapshot content hash)`.
    pub checkpoints: Vec<(u64, String)>,
    /// Whole-journal aggregates.
    pub totals: Totals,
    pub(crate) overall_k_req_sum: u64,
    pub(crate) overall_k_got_sum: u64,
    pub(crate) overall_k_samples: u64,
    pub(crate) overall_area_sum: f64,
    pub(crate) overall_duration_sum: i64,
}

impl AuditOutcome {
    /// Whether the journal is clean: chain verified, no violations, no
    /// schema drift.
    pub fn ok(&self) -> bool {
        self.chain.verified() && self.violations.is_empty() && self.schema_issues.is_empty()
    }

    /// Mean requested k over generalized forwards with audit fields.
    pub fn mean_k_req(&self) -> f64 {
        if self.overall_k_samples == 0 {
            0.0
        } else {
            self.overall_k_req_sum as f64 / self.overall_k_samples as f64
        }
    }

    /// Mean achieved k over the same forwards.
    pub fn mean_k_got(&self) -> f64 {
        if self.overall_k_samples == 0 {
            0.0
        } else {
            self.overall_k_got_sum as f64 / self.overall_k_samples as f64
        }
    }

    /// Mean generalized area, m².
    pub fn mean_area(&self) -> f64 {
        let g = self.totals.forwarded_ok + self.totals.forwarded_clamped;
        if g == 0 {
            0.0
        } else {
            self.overall_area_sum / g as f64
        }
    }

    /// Mean generalized duration, seconds.
    pub fn mean_duration(&self) -> f64 {
        let g = self.totals.forwarded_ok + self.totals.forwarded_clamped;
        if g == 0 {
            0.0
        } else {
            self.overall_duration_sum as f64 / g as f64
        }
    }

    /// Mean area as a fraction of the reference spatial tolerance —
    /// the QoS-loss axis of the trade-off triangle. `None` without a
    /// configured tolerance.
    pub fn area_inflation(&self) -> Option<f64> {
        self.cfg.space_tol.map(|tol| {
            if tol <= 0.0 {
                0.0
            } else {
                self.mean_area() / tol
            }
        })
    }

    /// Mean duration as a fraction of the reference temporal tolerance.
    pub fn duration_inflation(&self) -> Option<f64> {
        self.cfg.time_tol.map(|tol| {
            if tol <= 0 {
                0.0
            } else {
                self.mean_duration() / tol as f64
            }
        })
    }

    /// The whole outcome as canonical JSON (sorted keys, one line via
    /// `to_string`).
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
        let chain = Json::obj([
            (
                "error",
                self.chain.error.as_deref().map_or(Json::Null, Json::from),
            ),
            ("head", Json::from(self.chain.head.as_str())),
            ("records", Json::from(self.chain.records)),
            ("verified", Json::Bool(self.chain.verified())),
        ]);
        let config = Json::obj([
            (
                "sample_cap",
                self.cfg
                    .sample_cap
                    .map_or(Json::Null, |c| Json::Int(c as i64)),
            ),
            ("space_tol", opt_num(self.cfg.space_tol)),
            ("time_tol", self.cfg.time_tol.map_or(Json::Null, Json::Int)),
        ]);
        let modes = Json::obj([
            ("consistent", Json::Bool(self.mode_consistent)),
            (
                "transitions",
                Json::Arr(
                    self.mode_transitions
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("at", Json::Int(t.at)),
                                ("from", Json::from(t.from.as_str())),
                                ("seq", Json::from(t.seq)),
                                ("to", Json::from(t.to.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let suppressed = |map: &std::collections::BTreeMap<String, u64>| {
            Json::Obj(
                map.iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v)))
                    .collect(),
            )
        };
        let totals = Json::obj([
            ("at_risk", Json::from(self.totals.at_risk)),
            ("events", Json::from(self.totals.events)),
            ("forwarded", Json::from(self.totals.forwarded())),
            (
                "forwarded_clamped",
                Json::from(self.totals.forwarded_clamped),
            ),
            ("forwarded_exact", Json::from(self.totals.forwarded_exact)),
            ("forwarded_ok", Json::from(self.totals.forwarded_ok)),
            ("hk_success_rate", Json::Num(self.totals.hk_success_rate())),
            ("lbqid_matches", Json::from(self.totals.lbqid_matches)),
            ("requests", Json::from(self.totals.requests())),
            ("suppressed", suppressed(&self.totals.suppressed)),
            (
                "suppressed_total",
                Json::from(self.totals.suppressed_total()),
            ),
            ("unknown_kinds", Json::from(self.totals.unknown_kinds)),
            (
                "unlink_frequency",
                Json::Num(self.totals.unlink_frequency()),
            ),
            ("unlinks", Json::from(self.totals.unlinks)),
        ]);
        let per_service = Json::Arr(
            self.services
                .iter()
                .map(|s| {
                    Json::obj([
                        ("forwarded", Json::from(s.forwarded())),
                        ("forwarded_clamped", Json::from(s.forwarded_clamped)),
                        ("forwarded_exact", Json::from(s.forwarded_exact)),
                        ("forwarded_ok", Json::from(s.forwarded_ok)),
                        ("hk_success_rate", Json::Num(s.hk_success_rate())),
                        ("interruption_rate", Json::Num(s.interruption_rate())),
                        ("mean_area", Json::Num(s.mean_area())),
                        ("mean_duration", Json::Num(s.mean_duration())),
                        ("mean_k_got", Json::Num(s.mean_k_got())),
                        ("mean_k_req", Json::Num(s.mean_k_req())),
                        ("service", Json::from(s.service)),
                        ("suppressed", Json::from(s.suppressed)),
                    ])
                })
                .collect(),
        );
        let per_lbqid = Json::Arr(
            self.lbqids
                .iter()
                .map(|l| {
                    Json::obj([
                        ("at_risk", Json::from(l.at_risk)),
                        ("forwarded_clamped", Json::from(l.forwarded_clamped)),
                        ("forwarded_ok", Json::from(l.forwarded_ok)),
                        ("lbqid", Json::from(l.lbqid.as_str())),
                        ("matches", Json::from(l.matches)),
                        ("mean_area", Json::Num(l.mean_area())),
                        ("mean_duration", Json::Num(l.mean_duration())),
                        ("mean_k_got", Json::Num(l.mean_k_got())),
                    ])
                })
                .collect(),
        );
        let overall = Json::obj([
            ("area_inflation", opt_num(self.area_inflation())),
            ("duration_inflation", opt_num(self.duration_inflation())),
            ("hk_success_rate", Json::Num(self.totals.hk_success_rate())),
            ("mean_area", Json::Num(self.mean_area())),
            ("mean_duration", Json::Num(self.mean_duration())),
            ("mean_k_got", Json::Num(self.mean_k_got())),
            ("mean_k_req", Json::Num(self.mean_k_req())),
            (
                "unlink_frequency",
                Json::Num(self.totals.unlink_frequency()),
            ),
        ]);
        let users = Json::Arr(
            self.users
                .iter()
                .map(|u| {
                    Json::obj([
                        (
                            "at_risk_windows",
                            Json::Arr(
                                u.at_risk_windows
                                    .iter()
                                    .map(|(start, end)| {
                                        Json::Arr(vec![
                                            Json::Int(*start),
                                            end.map_or(Json::Null, Json::Int),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "forwarded",
                            Json::obj([
                                ("clamped", Json::from(u.forwarded_clamped)),
                                ("exact", Json::from(u.forwarded_exact)),
                                ("ok", Json::from(u.forwarded_ok)),
                            ]),
                        ),
                        (
                            "k_timeline",
                            Json::Arr(
                                u.k_samples
                                    .iter()
                                    .map(|s| {
                                        Json::Arr(vec![
                                            Json::Int(s.at),
                                            Json::from(s.k_req),
                                            Json::from(s.k_got),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        ("mean_area", Json::Num(u.mean_area())),
                        ("mean_duration", Json::Num(u.mean_duration())),
                        ("min_k", u.min_k.map_or(Json::Null, Json::from)),
                        ("suppressed", suppressed(&u.suppressed)),
                        (
                            "unlinks",
                            Json::Arr(u.unlinks.iter().map(|t| Json::Int(*t)).collect()),
                        ),
                        ("user", Json::from(u.user)),
                    ])
                })
                .collect(),
        );
        let violations = Json::Arr(
            self.violations
                .iter()
                .map(|v| {
                    Json::obj([
                        ("at", Json::Int(v.at)),
                        ("detail", Json::from(v.detail.as_str())),
                        ("kind", Json::from(v.kind.as_str())),
                        ("seq", Json::from(v.seq)),
                        ("user", v.user.map_or(Json::Null, Json::from)),
                    ])
                })
                .collect(),
        );
        let schema_issues = Json::Arr(
            self.schema_issues
                .iter()
                .map(|(seq, issue)| {
                    Json::obj([
                        ("issue", Json::from(issue.as_str())),
                        ("seq", Json::from(*seq)),
                    ])
                })
                .collect(),
        );
        let recoveries = Json::Arr(
            self.recoveries
                .iter()
                .map(|(bytes, records)| {
                    Json::obj([
                        ("truncated_bytes", Json::from(*bytes)),
                        ("valid_records", Json::from(*records)),
                    ])
                })
                .collect(),
        );
        let checkpoints = Json::Arr(
            self.checkpoints
                .iter()
                .map(|(seq, hash)| {
                    Json::obj([
                        ("seq", Json::from(*seq)),
                        ("snapshot", Json::from(hash.as_str())),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("chain", chain),
            ("checkpoints", checkpoints),
            ("config", config),
            ("modes", modes),
            ("ok", Json::Bool(self.ok())),
            ("recoveries", recoveries),
            ("schema_issues", schema_issues),
            ("totals", totals),
            (
                "trade_off",
                Json::obj([
                    ("overall", overall),
                    ("per_lbqid", per_lbqid),
                    ("per_service", per_service),
                ]),
            ),
            ("users", users),
            ("violations", violations),
        ])
    }

    /// A plain-text report for terminals.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "hka-audit report");
        match &self.chain.error {
            None => {
                let _ = writeln!(
                    out,
                    "  chain: VERIFIED ({} records, head {}…)",
                    self.chain.records,
                    &self.chain.head[..12.min(self.chain.head.len())]
                );
            }
            Some(e) => {
                let _ = writeln!(
                    out,
                    "  chain: FAILED after {} verified records: {e}",
                    self.chain.records
                );
            }
        }
        let t = &self.totals;
        let _ = writeln!(
            out,
            "  events: {} | forwarded {} (exact {}, hk-ok {}, clamped {}) | suppressed {} | \
             unlinks {} | at-risk {} | matches {}",
            t.events,
            t.forwarded(),
            t.forwarded_exact,
            t.forwarded_ok,
            t.forwarded_clamped,
            t.suppressed_total(),
            t.unlinks,
            t.at_risk,
            t.lbqid_matches,
        );
        if !self.recoveries.is_empty() {
            let bytes: u64 = self.recoveries.iter().map(|(b, _)| *b).sum();
            let _ = writeln!(
                out,
                "  recoveries: {} (total {} bytes truncated)",
                self.recoveries.len(),
                bytes
            );
        }
        if !self.checkpoints.is_empty() {
            let (seq, hash) = self.checkpoints.last().unwrap();
            let _ = writeln!(
                out,
                "  checkpoints: {} (latest at seq {seq}, snapshot {}…)",
                self.checkpoints.len(),
                &hash[..12.min(hash.len())]
            );
        }
        let _ = writeln!(
            out,
            "  mode ladder: {} ({} transitions)",
            if self.mode_consistent {
                "consistent"
            } else {
                "INCONSISTENT"
            },
            self.mode_transitions.len()
        );
        for tr in &self.mode_transitions {
            let _ = writeln!(
                out,
                "    [seq {:>6}] t={:<10} {} -> {}",
                tr.seq,
                tr.at,
                tr.from.as_str(),
                tr.to.as_str()
            );
        }
        let _ = writeln!(
            out,
            "  trade-off: mean k_req {:.2}, mean k_got {:.2}, hk-success {:.1}%, mean area \
             {:.0} m², mean duration {:.0} s, unlink frequency {:.4}",
            self.mean_k_req(),
            self.mean_k_got(),
            100.0 * t.hk_success_rate(),
            self.mean_area(),
            self.mean_duration(),
            t.unlink_frequency(),
        );
        if let (Some(a), Some(d)) = (self.area_inflation(), self.duration_inflation()) {
            let _ = writeln!(
                out,
                "  QoS inflation vs tolerance: area {:.1}%, duration {:.1}%",
                100.0 * a,
                100.0 * d
            );
        }
        if !self.services.is_empty() {
            let _ = writeln!(
                out,
                "  per service:  service    fwd  exact  hk-ok%  mean-k  mean-area  \
                 mean-dur  suppr  interrupt%"
            );
            for s in &self.services {
                let _ = writeln!(
                    out,
                    "                {:>7} {:>6} {:>6} {:>6.1} {:>7.2} {:>10.0} {:>9.0} {:>6} {:>10.1}",
                    s.service,
                    s.forwarded(),
                    s.forwarded_exact,
                    100.0 * s.hk_success_rate(),
                    s.mean_k_got(),
                    s.mean_area(),
                    s.mean_duration(),
                    s.suppressed,
                    100.0 * s.interruption_rate(),
                );
            }
        }
        if !self.lbqids.is_empty() {
            let _ = writeln!(
                out,
                "  per LBQID:    name                 hk-ok  clamped  matches  at-risk  mean-k"
            );
            for l in &self.lbqids {
                let _ = writeln!(
                    out,
                    "                {:<20} {:>5} {:>8} {:>8} {:>8} {:>7.2}",
                    l.lbqid,
                    l.forwarded_ok,
                    l.forwarded_clamped,
                    l.matches,
                    l.at_risk,
                    l.mean_k_got(),
                );
            }
        }
        let protected = self.users.iter().filter(|u| u.generalized() > 0).count();
        let _ = writeln!(
            out,
            "  users audited: {} ({} with generalized traffic)",
            self.users.len(),
            protected
        );
        if !self.schema_issues.is_empty() {
            let _ = writeln!(out, "  SCHEMA ISSUES: {}", self.schema_issues.len());
            for (seq, issue) in self.schema_issues.iter().take(10) {
                let _ = writeln!(out, "    [seq {seq:>6}] {issue}");
            }
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "  theorem-1 / fail-closed violations: none");
        } else {
            let _ = writeln!(
                out,
                "  theorem-1 / fail-closed VIOLATIONS: {}",
                self.violations.len()
            );
            for v in self.violations.iter().take(20) {
                let _ = writeln!(
                    out,
                    "    [seq {:>6}] t={:<10} user={} {}: {}",
                    v.seq,
                    v.at,
                    v.user.map_or("-".to_string(), |u| u.to_string()),
                    v.kind.as_str(),
                    v.detail
                );
            }
        }
        out
    }
}
