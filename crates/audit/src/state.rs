//! Serializing replay state for checkpoint snapshots.
//!
//! A checkpoint snapshot carries the auditor's *entire* replay state at
//! the anchor's chain position so that `snapshot + journal suffix`
//! replays to the byte-identical outcome of a genesis replay. The codec
//! therefore covers every field of [`Auditor`] — counters, per-user
//! timelines, per-service and per-LBQID rows, the mode ladder,
//! violations, schema issues, recoveries, and prior checkpoint anchors.
//!
//! Numbers survive exactly: the canonical [`Json`] writer round-trips
//! every finite `f64` (integral floats keep a trailing `.0`), so
//! restoring `area_sum` from a snapshot yields the same bits the live
//! auditor held. Decoding is strict — a missing or mistyped field is an
//! error, never a default — because a partially-restored auditor would
//! *silently* diverge from the genesis replay, which is exactly the
//! failure mode checkpoints must never introduce.

use std::collections::BTreeMap;

use hka_obs::Json;

use crate::event::Mode;
use crate::timeline::{
    AuditConfig, Auditor, KSample, LbqidRow, ModeTransition, ServiceRow, Totals, UserTimeline,
    Violation, ViolationKind,
};

fn parse_violation_kind(s: &str) -> Option<ViolationKind> {
    match s {
        "unexplained_clamp" => Some(ViolationKind::UnexplainedClamp),
        "forward_while_degraded" => Some(ViolationKind::ForwardWhileDegraded),
        "forward_while_read_only" => Some(ViolationKind::ForwardWhileReadOnly),
        "mode_ladder_gap" => Some(ViolationKind::ModeLadderGap),
        _ => None,
    }
}

fn opt_int(v: Option<i64>) -> Json {
    v.map_or(Json::Null, Json::Int)
}

fn opt_u64_json(v: Option<u64>) -> Json {
    v.map_or(Json::Null, Json::from)
}

fn counts_obj(map: &BTreeMap<String, u64>) -> Json {
    Json::Obj(
        map.iter()
            .map(|(k, v)| (k.clone(), Json::from(*v)))
            .collect(),
    )
}

fn req<'a>(o: &'a Json, what: &str, name: &str) -> Result<&'a Json, String> {
    o.get(name)
        .ok_or_else(|| format!("{what}: missing '{name}'"))
}

fn req_u64(o: &Json, what: &str, name: &str) -> Result<u64, String> {
    req(o, what, name)?
        .as_int()
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| format!("{what}: mistyped '{name}'"))
}

fn req_i64(o: &Json, what: &str, name: &str) -> Result<i64, String> {
    req(o, what, name)?
        .as_int()
        .ok_or_else(|| format!("{what}: mistyped '{name}'"))
}

fn req_f64(o: &Json, what: &str, name: &str) -> Result<f64, String> {
    req(o, what, name)?
        .as_f64()
        .ok_or_else(|| format!("{what}: mistyped '{name}'"))
}

fn req_str(o: &Json, what: &str, name: &str) -> Result<String, String> {
    req(o, what, name)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what}: mistyped '{name}'"))
}

fn req_arr<'a>(o: &'a Json, what: &str, name: &str) -> Result<&'a [Json], String> {
    match req(o, what, name)? {
        Json::Arr(items) => Ok(items),
        _ => Err(format!("{what}: '{name}' is not an array")),
    }
}

fn opt_u64_of(o: &Json, what: &str, name: &str) -> Result<Option<u64>, String> {
    match req(o, what, name)? {
        Json::Null => Ok(None),
        Json::Int(v) => u64::try_from(*v)
            .map(Some)
            .map_err(|_| format!("{what}: '{name}' is negative")),
        _ => Err(format!("{what}: mistyped '{name}'")),
    }
}

fn opt_i64_of(o: &Json, what: &str, name: &str) -> Result<Option<i64>, String> {
    match req(o, what, name)? {
        Json::Null => Ok(None),
        Json::Int(v) => Ok(Some(*v)),
        _ => Err(format!("{what}: mistyped '{name}'")),
    }
}

fn counts_of(o: &Json, what: &str, name: &str) -> Result<BTreeMap<String, u64>, String> {
    match req(o, what, name)? {
        Json::Obj(map) => map
            .iter()
            .map(|(k, v)| {
                v.as_int()
                    .and_then(|v| u64::try_from(v).ok())
                    .map(|v| (k.clone(), v))
                    .ok_or_else(|| format!("{what}: '{name}.{k}' is not a count"))
            })
            .collect(),
        _ => Err(format!("{what}: '{name}' is not an object")),
    }
}

fn user_to_json(u: &UserTimeline) -> Json {
    Json::obj([
        ("user", Json::from(u.user)),
        (
            "k_samples",
            Json::Arr(
                u.k_samples
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("at", Json::Int(s.at)),
                            ("k_req", Json::from(s.k_req)),
                            ("k_got", Json::from(s.k_got)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("forwarded_exact", Json::from(u.forwarded_exact)),
        ("forwarded_ok", Json::from(u.forwarded_ok)),
        ("forwarded_clamped", Json::from(u.forwarded_clamped)),
        ("suppressed", counts_obj(&u.suppressed)),
        (
            "unlinks",
            Json::Arr(u.unlinks.iter().map(|at| Json::Int(*at)).collect()),
        ),
        (
            "at_risk_windows",
            Json::Arr(
                u.at_risk_windows
                    .iter()
                    .map(|(open, close)| {
                        Json::obj([("opened", Json::Int(*open)), ("closed", opt_int(*close))])
                    })
                    .collect(),
            ),
        ),
        ("min_k", opt_u64_json(u.min_k)),
        ("area_sum", Json::Num(u.area_sum)),
        ("duration_sum", Json::Int(u.duration_sum)),
    ])
}

fn user_of_json(j: &Json) -> Result<UserTimeline, String> {
    let what = "user";
    let mut k_samples = Vec::new();
    for s in req_arr(j, what, "k_samples")? {
        k_samples.push(KSample {
            at: req_i64(s, "k_sample", "at")?,
            k_req: req_u64(s, "k_sample", "k_req")?,
            k_got: req_u64(s, "k_sample", "k_got")?,
        });
    }
    let mut unlinks = Vec::new();
    for at in req_arr(j, what, "unlinks")? {
        unlinks.push(at.as_int().ok_or("user: mistyped unlink instant")?);
    }
    let mut at_risk_windows = Vec::new();
    for w in req_arr(j, what, "at_risk_windows")? {
        at_risk_windows.push((
            req_i64(w, "at_risk_window", "opened")?,
            opt_i64_of(w, "at_risk_window", "closed")?,
        ));
    }
    Ok(UserTimeline {
        user: req_u64(j, what, "user")?,
        k_samples,
        forwarded_exact: req_u64(j, what, "forwarded_exact")?,
        forwarded_ok: req_u64(j, what, "forwarded_ok")?,
        forwarded_clamped: req_u64(j, what, "forwarded_clamped")?,
        suppressed: counts_of(j, what, "suppressed")?,
        unlinks,
        at_risk_windows,
        min_k: opt_u64_of(j, what, "min_k")?,
        area_sum: req_f64(j, what, "area_sum")?,
        duration_sum: req_i64(j, what, "duration_sum")?,
    })
}

fn service_to_json(s: &ServiceRow) -> Json {
    Json::obj([
        ("service", Json::from(s.service)),
        ("forwarded_exact", Json::from(s.forwarded_exact)),
        ("forwarded_ok", Json::from(s.forwarded_ok)),
        ("forwarded_clamped", Json::from(s.forwarded_clamped)),
        ("suppressed", Json::from(s.suppressed)),
        ("k_req_sum", Json::from(s.k_req_sum)),
        ("k_got_sum", Json::from(s.k_got_sum)),
        ("k_samples", Json::from(s.k_samples)),
        ("area_sum", Json::Num(s.area_sum)),
        ("duration_sum", Json::Int(s.duration_sum)),
    ])
}

fn service_of_json(j: &Json) -> Result<ServiceRow, String> {
    let what = "service";
    Ok(ServiceRow {
        service: req_u64(j, what, "service")?,
        forwarded_exact: req_u64(j, what, "forwarded_exact")?,
        forwarded_ok: req_u64(j, what, "forwarded_ok")?,
        forwarded_clamped: req_u64(j, what, "forwarded_clamped")?,
        suppressed: req_u64(j, what, "suppressed")?,
        k_req_sum: req_u64(j, what, "k_req_sum")?,
        k_got_sum: req_u64(j, what, "k_got_sum")?,
        k_samples: req_u64(j, what, "k_samples")?,
        area_sum: req_f64(j, what, "area_sum")?,
        duration_sum: req_i64(j, what, "duration_sum")?,
    })
}

fn lbqid_to_json(l: &LbqidRow) -> Json {
    Json::obj([
        ("lbqid", Json::from(l.lbqid.as_str())),
        ("forwarded_ok", Json::from(l.forwarded_ok)),
        ("forwarded_clamped", Json::from(l.forwarded_clamped)),
        ("matches", Json::from(l.matches)),
        ("at_risk", Json::from(l.at_risk)),
        ("k_got_sum", Json::from(l.k_got_sum)),
        ("k_samples", Json::from(l.k_samples)),
        ("area_sum", Json::Num(l.area_sum)),
        ("duration_sum", Json::Int(l.duration_sum)),
    ])
}

fn lbqid_of_json(j: &Json) -> Result<LbqidRow, String> {
    let what = "lbqid";
    Ok(LbqidRow {
        lbqid: req_str(j, what, "lbqid")?,
        forwarded_ok: req_u64(j, what, "forwarded_ok")?,
        forwarded_clamped: req_u64(j, what, "forwarded_clamped")?,
        matches: req_u64(j, what, "matches")?,
        at_risk: req_u64(j, what, "at_risk")?,
        k_got_sum: req_u64(j, what, "k_got_sum")?,
        k_samples: req_u64(j, what, "k_samples")?,
        area_sum: req_f64(j, what, "area_sum")?,
        duration_sum: req_i64(j, what, "duration_sum")?,
    })
}

impl Auditor {
    /// Serializes the complete replay state as canonical [`Json`] — the
    /// `audit` section of a checkpoint snapshot. [`Auditor::from_state`]
    /// inverts it exactly.
    pub fn to_state(&self) -> Json {
        Json::obj([
            (
                "cfg",
                Json::obj([
                    (
                        "space_tol",
                        self.cfg.space_tol.map_or(Json::Null, Json::Num),
                    ),
                    ("time_tol", opt_int(self.cfg.time_tol)),
                    (
                        "sample_cap",
                        self.cfg
                            .sample_cap
                            .map_or(Json::Null, |c| Json::from(c as u64)),
                    ),
                ]),
            ),
            (
                "users",
                Json::Arr(self.users.values().map(user_to_json).collect()),
            ),
            (
                "services",
                Json::Arr(self.services.values().map(service_to_json).collect()),
            ),
            (
                "lbqids",
                Json::Arr(self.lbqids.values().map(lbqid_to_json).collect()),
            ),
            (
                "mode",
                self.mode.map_or(Json::Null, |m| Json::from(m.as_str())),
            ),
            (
                "mode_transitions",
                Json::Arr(
                    self.mode_transitions
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("seq", Json::from(t.seq)),
                                ("at", Json::Int(t.at)),
                                ("from", Json::from(t.from.as_str())),
                                ("to", Json::from(t.to.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::obj([
                                ("seq", Json::from(v.seq)),
                                ("at", Json::Int(v.at)),
                                ("user", opt_u64_json(v.user)),
                                ("kind", Json::from(v.kind.as_str())),
                                ("detail", Json::from(v.detail.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "schema_issues",
                Json::Arr(
                    self.schema_issues
                        .iter()
                        .map(|(seq, msg)| {
                            Json::obj([
                                ("seq", Json::from(*seq)),
                                ("issue", Json::from(msg.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "recoveries",
                Json::Arr(
                    self.recoveries
                        .iter()
                        .map(|(bytes, records)| {
                            Json::obj([
                                ("truncated_bytes", Json::from(*bytes)),
                                ("valid_records", Json::from(*records)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "checkpoints",
                Json::Arr(
                    self.checkpoints
                        .iter()
                        .map(|(seq, hash)| {
                            Json::obj([
                                ("seq", Json::from(*seq)),
                                ("snapshot", Json::from(hash.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "totals",
                Json::obj([
                    ("events", Json::from(self.totals.events)),
                    ("forwarded_exact", Json::from(self.totals.forwarded_exact)),
                    ("forwarded_ok", Json::from(self.totals.forwarded_ok)),
                    (
                        "forwarded_clamped",
                        Json::from(self.totals.forwarded_clamped),
                    ),
                    ("suppressed", counts_obj(&self.totals.suppressed)),
                    ("unlinks", Json::from(self.totals.unlinks)),
                    ("at_risk", Json::from(self.totals.at_risk)),
                    ("lbqid_matches", Json::from(self.totals.lbqid_matches)),
                    ("checkpoints", Json::from(self.totals.checkpoints)),
                    ("unknown_kinds", Json::from(self.totals.unknown_kinds)),
                ]),
            ),
            ("overall_k_req_sum", Json::from(self.overall_k_req_sum)),
            ("overall_k_got_sum", Json::from(self.overall_k_got_sum)),
            ("overall_k_samples", Json::from(self.overall_k_samples)),
            ("overall_area_sum", Json::Num(self.overall_area_sum)),
            ("overall_duration_sum", Json::Int(self.overall_duration_sum)),
        ])
    }

    /// Restores an auditor from a state produced by
    /// [`Auditor::to_state`]. Strict: any missing or mistyped field is
    /// an error, because a partially-restored auditor would silently
    /// diverge from a genesis replay.
    pub fn from_state(state: &Json) -> Result<Auditor, String> {
        let what = "audit state";
        let cfg_j = req(state, what, "cfg")?;
        let cfg = AuditConfig {
            space_tol: match req(cfg_j, "cfg", "space_tol")? {
                Json::Null => None,
                j => Some(j.as_f64().ok_or("cfg: mistyped 'space_tol'")?),
            },
            time_tol: opt_i64_of(cfg_j, "cfg", "time_tol")?,
            sample_cap: opt_u64_of(cfg_j, "cfg", "sample_cap")?.map(|c| c as usize),
        };

        let mut users = BTreeMap::new();
        for j in req_arr(state, what, "users")? {
            let u = user_of_json(j)?;
            users.insert(u.user, u);
        }
        let mut services = BTreeMap::new();
        for j in req_arr(state, what, "services")? {
            let s = service_of_json(j)?;
            services.insert(s.service, s);
        }
        let mut lbqids = BTreeMap::new();
        for j in req_arr(state, what, "lbqids")? {
            let l = lbqid_of_json(j)?;
            lbqids.insert(l.lbqid.clone(), l);
        }

        let mode = match req(state, what, "mode")? {
            Json::Null => None,
            j => {
                let s = j.as_str().ok_or("audit state: mistyped 'mode'")?;
                Some(Mode::parse(s).ok_or_else(|| format!("audit state: unknown mode '{s}'"))?)
            }
        };

        let mut mode_transitions = Vec::new();
        for j in req_arr(state, what, "mode_transitions")? {
            let from = req_str(j, "mode_transition", "from")?;
            let to = req_str(j, "mode_transition", "to")?;
            mode_transitions.push(ModeTransition {
                seq: req_u64(j, "mode_transition", "seq")?,
                at: req_i64(j, "mode_transition", "at")?,
                from: Mode::parse(&from)
                    .ok_or_else(|| format!("mode_transition: unknown mode '{from}'"))?,
                to: Mode::parse(&to)
                    .ok_or_else(|| format!("mode_transition: unknown mode '{to}'"))?,
            });
        }

        let mut violations = Vec::new();
        for j in req_arr(state, what, "violations")? {
            let kind = req_str(j, "violation", "kind")?;
            violations.push(Violation {
                seq: req_u64(j, "violation", "seq")?,
                at: req_i64(j, "violation", "at")?,
                user: opt_u64_of(j, "violation", "user")?,
                kind: parse_violation_kind(&kind)
                    .ok_or_else(|| format!("violation: unknown kind '{kind}'"))?,
                detail: req_str(j, "violation", "detail")?,
            });
        }

        let mut schema_issues = Vec::new();
        for j in req_arr(state, what, "schema_issues")? {
            schema_issues.push((
                req_u64(j, "schema_issue", "seq")?,
                req_str(j, "schema_issue", "issue")?,
            ));
        }
        let mut recoveries = Vec::new();
        for j in req_arr(state, what, "recoveries")? {
            recoveries.push((
                req_u64(j, "recovery", "truncated_bytes")?,
                req_u64(j, "recovery", "valid_records")?,
            ));
        }
        let mut checkpoints = Vec::new();
        for j in req_arr(state, what, "checkpoints")? {
            checkpoints.push((
                req_u64(j, "checkpoint", "seq")?,
                req_str(j, "checkpoint", "snapshot")?,
            ));
        }

        let t = req(state, what, "totals")?;
        let totals = Totals {
            events: req_u64(t, "totals", "events")?,
            forwarded_exact: req_u64(t, "totals", "forwarded_exact")?,
            forwarded_ok: req_u64(t, "totals", "forwarded_ok")?,
            forwarded_clamped: req_u64(t, "totals", "forwarded_clamped")?,
            suppressed: counts_of(t, "totals", "suppressed")?,
            unlinks: req_u64(t, "totals", "unlinks")?,
            at_risk: req_u64(t, "totals", "at_risk")?,
            lbqid_matches: req_u64(t, "totals", "lbqid_matches")?,
            checkpoints: req_u64(t, "totals", "checkpoints")?,
            unknown_kinds: req_u64(t, "totals", "unknown_kinds")?,
        };

        Ok(Auditor {
            cfg,
            users,
            services,
            lbqids,
            mode,
            mode_transitions,
            violations,
            schema_issues,
            recoveries,
            checkpoints,
            totals,
            overall_k_req_sum: req_u64(state, what, "overall_k_req_sum")?,
            overall_k_got_sum: req_u64(state, what, "overall_k_got_sum")?,
            overall_k_samples: req_u64(state, what, "overall_k_samples")?,
            overall_area_sum: req_f64(state, what, "overall_area_sum")?,
            overall_duration_sum: req_i64(state, what, "overall_duration_sum")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_obs::{Journal, JournalReader};

    fn busy_auditor() -> Auditor {
        // Drive a real journal through the auditor so every field of the
        // state machine is populated the way production populates it.
        let mut events: Vec<(&str, Json)> = Vec::new();
        events.push((
            "ts.mode_changed",
            Json::obj([
                ("at", Json::Int(5)),
                ("from", Json::from("normal")),
                ("to", Json::from("degraded")),
            ]),
        ));
        for i in 0..4i64 {
            events.push((
                "ts.forwarded",
                Json::obj([
                    ("user", Json::Int(i % 2)),
                    ("at", Json::Int(10 + i)),
                    ("x_min", Json::Num(0.0)),
                    ("y_min", Json::Num(0.0)),
                    ("x_max", Json::Num(10.5 + i as f64)),
                    ("y_max", Json::Num(7.25)),
                    ("t_start", Json::Int(10 + i)),
                    ("t_end", Json::Int(20 + i)),
                    ("generalized", Json::Bool(true)),
                    ("hk_ok", Json::Bool(i != 3)),
                    ("service", Json::Int(i % 2)),
                    ("k_req", Json::Int(5)),
                    ("k_got", Json::Int(if i == 3 { 3 } else { 5 })),
                    ("lbqid", Json::from("commute")),
                ]),
            ));
        }
        events.push((
            "ts.suppressed",
            Json::obj([
                ("user", Json::Int(1)),
                ("at", Json::Int(30)),
                ("reason", Json::from("mix_zone")),
                ("service", Json::Int(0)),
            ]),
        ));
        events.push((
            "ts.at_risk",
            Json::obj([
                ("user", Json::Int(0)),
                ("at", Json::Int(31)),
                ("lbqid", Json::from("commute")),
            ]),
        ));
        events.push((
            "ts.pseudonym_changed",
            Json::obj([("user", Json::Int(0)), ("at", Json::Int(32))]),
        ));
        events.push((
            "ts.lbqid_matched",
            Json::obj([
                ("user", Json::Int(1)),
                ("at", Json::Int(33)),
                ("lbqid", Json::from("commute")),
            ]),
        ));
        events.push(("ts.future_kind", Json::obj([("at", Json::Int(34))])));
        events.push(("ts.suppressed", Json::obj([("at", Json::Int(35))])));
        events.push((
            "journal.recovered",
            Json::obj([
                ("truncated_bytes", Json::Int(17)),
                ("valid_records", Json::Int(9)),
            ]),
        ));

        let mut journal = Journal::new(Vec::new());
        for (kind, payload) in events {
            journal.append(kind, payload).unwrap();
        }
        let bytes = journal.into_inner();
        let mut auditor = Auditor::new(AuditConfig {
            space_tol: Some(1000.0),
            time_tol: Some(60),
            sample_cap: None,
        });
        for record in JournalReader::new(&bytes[..]) {
            auditor.ingest(&record.unwrap());
        }
        auditor.checkpoints.push((3, "deadbeef".repeat(8)));
        auditor.totals.checkpoints += 1;
        auditor
    }

    #[test]
    fn state_round_trips_every_field() {
        let auditor = busy_auditor();
        assert!(!auditor.users.is_empty());
        assert!(
            !auditor.violations.is_empty(),
            "fixture must exercise violations"
        );
        assert!(
            !auditor.schema_issues.is_empty(),
            "fixture must exercise schema issues"
        );

        let state = auditor.to_state();
        let restored = Auditor::from_state(&state).expect("state decodes");
        // Canonical serialization is the equality oracle: identical
        // state ⇒ identical bytes ⇒ identical downstream reports.
        assert_eq!(format!("{}", restored.to_state()), format!("{state}"));
        assert_eq!(restored.users, auditor.users);
        assert_eq!(restored.violations, auditor.violations);
        assert_eq!(restored.totals, auditor.totals);
        assert_eq!(restored.mode, auditor.mode);
    }

    #[test]
    fn state_survives_a_text_round_trip() {
        // The snapshot file stores the state as text; parse(print(x))
        // must reproduce x including non-integral float sums.
        let auditor = busy_auditor();
        let state = auditor.to_state();
        let text = format!("{state}");
        let reparsed = hka_obs::json::parse(&text).expect("canonical text parses");
        let restored = Auditor::from_state(&reparsed).expect("reparsed state decodes");
        assert_eq!(restored.overall_area_sum, auditor.overall_area_sum);
        assert_eq!(restored.users, auditor.users);
    }

    #[test]
    fn from_state_rejects_missing_fields() {
        let auditor = Auditor::new(AuditConfig::default());
        let state = auditor.to_state();
        let Json::Obj(mut map) = state else {
            panic!("state is an object")
        };
        map.remove("totals");
        let err = Auditor::from_state(&Json::Obj(map)).unwrap_err();
        assert!(err.contains("totals"), "error names the field: {err}");
    }

    #[test]
    fn from_state_rejects_unknown_violation_kinds() {
        let state = busy_auditor().to_state();
        let text = format!("{state}").replace("unexplained_clamp", "sideways_clamp");
        let reparsed = hka_obs::json::parse(&text).unwrap();
        let err = Auditor::from_state(&reparsed).unwrap_err();
        assert!(
            err.contains("sideways_clamp"),
            "error names the kind: {err}"
        );
    }
}
