//! The live audit: a [`JournalTailer`] feeding the incremental
//! [`Auditor`] state machine, polled while the serving process is still
//! appending.
//!
//! [`TailAuditor`] is what `hka-sim watch` and `serve-drill
//! --audit-tail` run: each [`poll`](TailAuditor::poll) consumes
//! whatever fully hash-chained records the journal grew, folds them
//! into the audit state, and reports any *new* violations anchored to
//! the byte offset of the offending record — the stable address an
//! operator can seek to in the journal file. Torn tails are tolerated
//! exactly as the tailer tolerates them: reported as in-flight bytes,
//! never as a chain failure.
//!
//! The equivalence contract: once the writer has flushed and stopped,
//! a `TailAuditor` that has caught up produces — via
//! [`snapshot`](TailAuditor::snapshot) — an [`AuditOutcome`] whose
//! canonical JSON is byte-identical to offline
//! [`replay_file`](crate::replay_file) on the same journal. The tail
//! path and the batch path share every moving part ([`ChainCursor`]
//! for verification, [`Auditor::ingest`] for state), so the guarantee
//! is structural, and `tests/tail.rs` enforces it under chaos
//! schedules too.
//!
//! [`ChainCursor`]: hka_obs::ChainCursor

use std::path::Path;

use hka_obs::journal::ChainError;
use hka_obs::{JournalTailer, Json};

use crate::event::Mode;
use crate::report::{AuditOutcome, ChainSummary};
use crate::timeline::{AuditConfig, Auditor, Violation};

/// What one [`TailAuditor::poll`] changed.
#[derive(Debug, Clone, Default)]
pub struct TailPoll {
    /// Records verified and ingested by this poll.
    pub new_records: u64,
    /// Violations first detected by this poll, each anchored to the
    /// journal byte offset of the record that exhibits it.
    pub new_violations: Vec<(u64, Violation)>,
    /// Bytes of torn/in-flight tail left unconsumed.
    pub torn_bytes: u64,
    /// The chain failure, if the tail has ended. Sticky: every poll
    /// after the first failure reports the same error.
    pub chain_error: Option<ChainError>,
}

/// One periodic status frame — the unit `hka-sim watch` prints.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchFrame {
    /// Records verified so far.
    pub records: u64,
    /// Byte offset one past the last verified record.
    pub offset: u64,
    /// Torn/in-flight bytes past the verified offset at the last poll.
    pub torn_bytes: u64,
    /// Chain head hash.
    pub head: String,
    /// Mode the journal last established.
    pub mode: Option<Mode>,
    /// Users with journaled activity.
    pub users: usize,
    /// Smallest achieved anonymity-set size across all users.
    pub min_k: Option<u64>,
    /// Total forwards so far.
    pub forwarded: u64,
    /// Total suppressions so far.
    pub suppressed: u64,
    /// At-risk notifications so far.
    pub at_risk: u64,
    /// Pseudonym changes so far.
    pub unlinks: u64,
    /// Violations detected so far.
    pub violations: u64,
    /// Schema issues detected so far.
    pub schema_issues: u64,
    /// Checkpoint anchors seen so far (including any the resume
    /// snapshot already covered).
    pub checkpoints: u64,
    /// Chain position of the most recent checkpoint anchor.
    pub checkpoint_seq: Option<u64>,
    /// SLO objectives currently in breach (journaled `ts.slo_breach`
    /// without a matching `ts.slo_recovered` yet), sorted.
    pub slo_active: Vec<String>,
    /// Total `ts.slo_breach` events seen so far.
    pub slo_breaches: u64,
    /// Trace id of the worst-latency request in the watchdog's window,
    /// as carried by the most recent SLO transition.
    pub worst_trace: Option<u64>,
    /// That request's latency, microseconds.
    pub worst_us: Option<u64>,
    /// Connections the gateway has accepted, from the most recent
    /// journaled `gw.stats` record (`None` for in-process runs that
    /// never journal one).
    pub gw_conns: Option<u64>,
    /// Drain barriers the gateway has run.
    pub gw_drains: Option<u64>,
    /// Inflight-queue depth at the gateway's last stats emission.
    pub gw_queue: Option<u64>,
    /// The chain failure, rendered, if the tail has ended.
    pub chain_error: Option<String>,
}

impl WatchFrame {
    /// The frame as canonical JSON (sorted keys).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("at_risk", Json::from(self.at_risk)),
            (
                "chain_error",
                self.chain_error.as_deref().map_or(Json::Null, Json::from),
            ),
            (
                "checkpoint_seq",
                self.checkpoint_seq.map_or(Json::Null, Json::from),
            ),
            ("checkpoints", Json::from(self.checkpoints)),
            ("forwarded", Json::from(self.forwarded)),
            ("gw_conns", self.gw_conns.map_or(Json::Null, Json::from)),
            ("gw_drains", self.gw_drains.map_or(Json::Null, Json::from)),
            ("gw_queue", self.gw_queue.map_or(Json::Null, Json::from)),
            ("head", Json::from(self.head.as_str())),
            ("min_k", self.min_k.map_or(Json::Null, Json::from)),
            (
                "mode",
                self.mode.map_or(Json::Null, |m| Json::from(m.as_str())),
            ),
            ("offset", Json::from(self.offset)),
            ("records", Json::from(self.records)),
            ("schema_issues", Json::from(self.schema_issues)),
            (
                "slo_active",
                Json::Arr(
                    self.slo_active
                        .iter()
                        .map(|s| Json::from(s.as_str()))
                        .collect(),
                ),
            ),
            ("slo_breaches", Json::from(self.slo_breaches)),
            ("suppressed", Json::from(self.suppressed)),
            ("torn_bytes", Json::from(self.torn_bytes)),
            ("unlinks", Json::from(self.unlinks)),
            ("users", Json::from(self.users as u64)),
            ("violations", Json::from(self.violations)),
            (
                "worst_trace",
                self.worst_trace.map_or(Json::Null, Json::from),
            ),
            ("worst_us", self.worst_us.map_or(Json::Null, Json::from)),
        ])
    }

    /// One status line for the text watch surface.
    pub fn render(&self) -> String {
        let head = if self.head.len() >= 12 {
            &self.head[..12]
        } else {
            &self.head
        };
        let mode = self.mode.map_or("-", |m| m.as_str());
        let min_k = self
            .min_k
            .map_or_else(|| "-".to_string(), |k| k.to_string());
        let mut line = format!(
            "records={} head={head} mode={mode} users={} min_k={min_k} \
             forwarded={} suppressed={} at_risk={} unlinks={} violations={} torn={}B",
            self.records,
            self.users,
            self.forwarded,
            self.suppressed,
            self.at_risk,
            self.unlinks,
            self.violations,
            self.torn_bytes,
        );
        if self.checkpoints > 0 {
            let seq = self
                .checkpoint_seq
                .map_or_else(|| "-".to_string(), |s| s.to_string());
            line.push_str(&format!(" checkpoints={}@{seq}", self.checkpoints));
        }
        if let Some(conns) = self.gw_conns {
            line.push_str(&format!(
                " gw=conns:{conns}/drains:{}/queue:{}",
                self.gw_drains.unwrap_or(0),
                self.gw_queue.unwrap_or(0),
            ));
        }
        if let Some(t) = self.worst_trace {
            let us = self.worst_us.unwrap_or(0);
            line.push_str(&format!(" worst=t{t:08x}/{us}us"));
        }
        if !self.slo_active.is_empty() {
            line.push_str(&format!(" SLO-BREACH[{}]", self.slo_active.join(",")));
        }
        if let Some(e) = &self.chain_error {
            line.push_str(&format!(" CHAIN-ERROR: {e}"));
        }
        line
    }
}

/// A tailing auditor over a live journal file: the composition of
/// [`JournalTailer`] (verified streaming reads) and [`Auditor`]
/// (incremental replay state). See the module docs for the equivalence
/// contract with the offline audit.
#[derive(Debug)]
pub struct TailAuditor {
    tailer: JournalTailer,
    auditor: Auditor,
    torn_bytes: u64,
    /// SLO objectives currently in breach, from journaled watchdog
    /// transitions. Watch-surface state only — it never feeds the audit
    /// outcome, so tail/offline byte-equality is untouched.
    slo_active: std::collections::BTreeSet<String>,
    slo_breaches: u64,
    worst_trace: Option<(u64, u64)>,
    /// Latest journaled gateway stats `(conns, drains, queue_depth)`.
    /// Watch-surface only, like the SLO banner state.
    gw_stats: Option<(u64, u64, u64)>,
}

impl TailAuditor {
    /// A tail positioned at the start of `path` (which may not exist
    /// yet — polls before the writer's first append are clean no-ops).
    pub fn open(path: &Path, cfg: AuditConfig) -> Self {
        TailAuditor {
            tailer: JournalTailer::open(path),
            auditor: Auditor::new(cfg),
            torn_bytes: 0,
            slo_active: std::collections::BTreeSet::new(),
            slo_breaches: 0,
            worst_trace: None,
            gw_stats: None,
        }
    }

    /// A tail resumed from a checkpoint snapshot: the auditor state
    /// covering the snapshot's prefix is restored from the snapshot's
    /// `audit` section (the snapshot's embedded config wins) and the
    /// tailer is positioned at the anchor record, so the first poll
    /// ingests the anchor and then only the suffix. Once caught up, the
    /// [`snapshot`](TailAuditor::snapshot) outcome is byte-identical to
    /// a genesis tail of the same journal. Fail-closed like
    /// [`crate::resume_from_snapshot`]: any anchor/hash mismatch is an
    /// error, never a silently different audit.
    pub fn resume_from_snapshot(path: &Path, snapshot_path: &Path) -> std::io::Result<Self> {
        let (snapshot, file_hash) = hka_obs::Snapshot::read(snapshot_path)?;
        let auditor = crate::restore_auditor(&snapshot, snapshot_path)?;
        let offset = crate::locate_anchor(path, &snapshot, &file_hash, snapshot_path)?;
        Ok(TailAuditor {
            tailer: JournalTailer::resume(path, offset, snapshot.records, snapshot.head.clone()),
            auditor,
            torn_bytes: 0,
            slo_active: std::collections::BTreeSet::new(),
            slo_breaches: 0,
            worst_trace: None,
            gw_stats: None,
        })
    }

    /// Folds one journaled SLO transition into the watch-surface state.
    fn note_slo(&mut self, kind: &str, payload: &Json) {
        let name = payload
            .get("slo")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        match kind {
            "ts.slo_breach" => {
                self.slo_breaches += 1;
                self.slo_active.insert(name);
                let trace = payload.get("worst_trace").and_then(Json::as_int);
                let us = payload.get("worst_us").and_then(Json::as_int);
                if let Some(t) = trace {
                    self.worst_trace = Some((t as u64, us.unwrap_or(0) as u64));
                }
            }
            "ts.slo_recovered" => {
                self.slo_active.remove(&name);
            }
            _ => {}
        }
    }

    /// Folds one journaled gateway stats record into the watch-surface
    /// state. Like [`TailAuditor::note_slo`], this never feeds the
    /// audit outcome.
    fn note_gw(&mut self, payload: &Json) {
        let n = |key: &str| payload.get(key).and_then(Json::as_int).unwrap_or(0) as u64;
        self.gw_stats = Some((n("conns"), n("drains"), n("queue_depth")));
    }

    /// Consumes and audits whatever the journal grew since the last
    /// poll.
    pub fn poll(&mut self) -> TailPoll {
        let mut out = TailPoll::default();
        match self.tailer.poll() {
            Ok(batch) => {
                out.torn_bytes = batch.torn_bytes;
                self.torn_bytes = batch.torn_bytes;
                for tr in &batch.records {
                    if tr.record.kind.starts_with("ts.slo_") {
                        self.note_slo(&tr.record.kind, &tr.record.payload);
                    } else if tr.record.kind == "gw.stats" {
                        self.note_gw(&tr.record.payload);
                    }
                    let before = self.auditor.violations().len();
                    self.auditor.ingest(&tr.record);
                    for v in &self.auditor.violations()[before..] {
                        out.new_violations.push((tr.offset, v.clone()));
                    }
                    out.new_records += 1;
                }
                // A mid-batch chain failure is latched on the tailer
                // while the verified prefix above still gets delivered;
                // report both in the same poll.
                out.chain_error = self.tailer.error().cloned();
            }
            Err(e) => out.chain_error = Some(e),
        }
        out
    }

    /// Records verified and ingested so far.
    pub fn records(&self) -> u64 {
        self.tailer.records_read()
    }

    /// Chain head hash.
    pub fn head(&self) -> &str {
        self.tailer.head()
    }

    /// Byte offset one past the last verified record.
    pub fn offset(&self) -> u64 {
        self.tailer.offset()
    }

    /// The sticky chain failure, if the tail has ended.
    pub fn chain_error(&self) -> Option<&ChainError> {
        self.tailer.error()
    }

    /// The incremental audit state (read-only).
    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }

    fn chain(&self) -> ChainSummary {
        ChainSummary {
            records: self.tailer.records_read(),
            head: self.tailer.head().to_string(),
            error: self.tailer.error().map(|e| e.to_string()),
        }
    }

    /// Renders the audit state so far as a full [`AuditOutcome`] —
    /// byte-identical (canonical JSON) to the offline audit of the
    /// journal prefix consumed so far.
    pub fn snapshot(&self) -> AuditOutcome {
        self.auditor.snapshot(self.chain())
    }

    /// The current status frame.
    pub fn frame(&self) -> WatchFrame {
        let totals = self.auditor.totals();
        WatchFrame {
            records: self.records(),
            offset: self.offset(),
            torn_bytes: self.torn_bytes,
            head: self.head().to_string(),
            mode: self.auditor.mode(),
            users: self.auditor.users_tracked(),
            min_k: self.auditor.min_k(),
            forwarded: totals.forwarded(),
            suppressed: totals.suppressed_total(),
            at_risk: totals.at_risk,
            unlinks: totals.unlinks,
            violations: self.auditor.violations().len() as u64,
            schema_issues: self.auditor.schema_issues().len() as u64,
            checkpoints: totals.checkpoints,
            checkpoint_seq: self.auditor.checkpoints().last().map(|(seq, _)| *seq),
            slo_active: self.slo_active.iter().cloned().collect(),
            slo_breaches: self.slo_breaches,
            worst_trace: self.worst_trace.map(|(t, _)| t),
            worst_us: self.worst_trace.map(|(_, us)| us),
            gw_conns: self.gw_stats.map(|(c, _, _)| c),
            gw_drains: self.gw_stats.map(|(_, d, _)| d),
            gw_queue: self.gw_stats.map(|(_, _, q)| q),
            chain_error: self.tailer.error().map(|e| e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay;
    use hka_obs::{Journal, JournalRecord};
    use std::path::PathBuf;

    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir()
                .join(format!("hka-audit-tail-{}-{tag}.jsonl", std::process::id()));
            let _ = std::fs::remove_file(&path);
            TempPath(path)
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn fwd(user: i64, at: i64, generalized: bool, hk_ok: bool, k_req: i64, k_got: i64) -> Json {
        let side = if generalized { 100.0 } else { 0.0 };
        Json::obj([
            ("user", Json::Int(user)),
            ("at", Json::Int(at)),
            ("x_min", Json::Num(0.0)),
            ("y_min", Json::Num(0.0)),
            ("x_max", Json::Num(side)),
            ("y_max", Json::Num(side)),
            ("t_start", Json::Int(at - 30)),
            ("t_end", Json::Int(at + 30)),
            ("generalized", Json::Bool(generalized)),
            ("hk_ok", Json::Bool(hk_ok)),
            ("service", Json::Int(1)),
            ("k_req", Json::Int(k_req)),
            ("k_got", Json::Int(k_got)),
            ("lbqid", Json::from("commute")),
        ])
    }

    fn journal_of(events: &[(&str, Json)]) -> Vec<u8> {
        let mut j = Journal::new(Vec::new());
        for (kind, payload) in events {
            j.append(kind, payload.clone()).unwrap();
        }
        j.into_inner()
    }

    #[test]
    fn tail_snapshot_is_byte_identical_to_offline_replay() {
        let tmp = TempPath::new("equiv");
        let bytes = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("ts.forwarded", fwd(2, 150, false, true, 0, 0)),
            (
                "ts.suppressed",
                Json::obj([
                    ("user", Json::Int(3)),
                    ("at", Json::Int(160)),
                    ("reason", Json::from("mix_zone")),
                    ("service", Json::Int(1)),
                ]),
            ),
            ("ts.forwarded", fwd(1, 200, true, true, 4, 6)),
        ]);
        std::fs::write(&tmp.0, &bytes).unwrap();

        let mut tail = TailAuditor::open(&tmp.0, AuditConfig::default());
        let poll = tail.poll();
        assert_eq!(poll.new_records, 4);
        assert!(poll.new_violations.is_empty());

        let offline = replay(&bytes[..], AuditConfig::default());
        assert_eq!(
            tail.snapshot().to_json().to_string(),
            offline.to_json().to_string(),
            "tail and offline audit must agree byte-for-byte"
        );
    }

    #[test]
    fn mid_stream_snapshot_matches_offline_replay_of_the_prefix() {
        let tmp = TempPath::new("prefix");
        let full = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("ts.forwarded", fwd(2, 150, true, true, 5, 7)),
            ("ts.forwarded", fwd(1, 200, true, true, 4, 6)),
        ]);
        let text = String::from_utf8(full.clone()).unwrap();
        let prefix_len: usize = text.lines().take(2).map(|l| l.len() + 1).sum();
        std::fs::write(&tmp.0, &full[..prefix_len]).unwrap();

        let mut tail = TailAuditor::open(&tmp.0, AuditConfig::default());
        tail.poll();
        let offline = replay(&full[..prefix_len], AuditConfig::default());
        assert_eq!(
            tail.snapshot().to_json().to_string(),
            offline.to_json().to_string()
        );

        // The file grows; the tail catches up and agrees with the full
        // offline replay.
        std::fs::write(&tmp.0, &full).unwrap();
        tail.poll();
        let offline = replay(&full[..], AuditConfig::default());
        assert_eq!(
            tail.snapshot().to_json().to_string(),
            offline.to_json().to_string()
        );
    }

    #[test]
    fn new_violations_are_anchored_to_record_offsets() {
        let tmp = TempPath::new("anchor");
        let bytes = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            // Unexplained sub-k clamp: a violation on the second record.
            ("ts.forwarded", fwd(2, 150, true, false, 5, 2)),
        ]);
        std::fs::write(&tmp.0, &bytes).unwrap();

        let mut tail = TailAuditor::open(&tmp.0, AuditConfig::default());
        let poll = tail.poll();
        assert_eq!(poll.new_violations.len(), 1);
        let (offset, v) = &poll.new_violations[0];
        assert_eq!(v.user, Some(2));
        // The offset addresses the offending record in the file.
        let text = String::from_utf8(bytes).unwrap();
        let line = text[*offset as usize..].lines().next().unwrap();
        let rec = JournalRecord::parse_line(line).unwrap();
        assert_eq!(rec.seq, v.seq);

        // A later poll does not re-report the same violation.
        assert!(tail.poll().new_violations.is_empty());
        assert_eq!(tail.frame().violations, 1);
    }

    #[test]
    fn frame_summarizes_the_live_state() {
        let tmp = TempPath::new("frame");
        let bytes = journal_of(&[
            (
                "ts.mode_changed",
                Json::obj([
                    ("at", Json::Int(10)),
                    ("from", Json::from("normal")),
                    ("to", Json::from("degraded")),
                ]),
            ),
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
        ]);
        std::fs::write(&tmp.0, &bytes).unwrap();
        let mut tail = TailAuditor::open(&tmp.0, AuditConfig::default());
        tail.poll();
        let frame = tail.frame();
        assert_eq!(frame.records, 2);
        assert_eq!(frame.mode, Some(Mode::Degraded));
        assert_eq!(frame.min_k, Some(5));
        assert_eq!(frame.users, 1);
        assert_eq!(frame.chain_error, None);
        let line = frame.render();
        assert!(line.contains("mode=degraded"));
        assert!(line.contains("min_k=5"));
        let json = frame.to_json().to_string();
        assert!(json.contains("\"records\":2"));
        let reparsed = hka_obs::json::parse(&json).unwrap();
        assert_eq!(reparsed.to_string(), json, "canonical frame JSON");
    }

    #[test]
    fn sample_cap_bounds_per_user_history() {
        let tmp = TempPath::new("cap");
        let events: Vec<(&str, Json)> = (0..50)
            .map(|i| ("ts.forwarded", fwd(1, 100 + i, true, true, 5, 5 + (i % 3))))
            .collect();
        let bytes = journal_of(&events);
        std::fs::write(&tmp.0, &bytes).unwrap();

        let cfg = AuditConfig {
            sample_cap: Some(8),
            ..AuditConfig::default()
        };
        let mut tail = TailAuditor::open(&tmp.0, cfg);
        tail.poll();
        let out = tail.snapshot();
        let u = &out.users[0];
        assert_eq!(u.k_samples.len(), 8, "history capped");
        assert_eq!(u.forwarded_ok, 50, "aggregates keep full counts");
        assert_eq!(u.min_k, Some(5), "min_k spans the whole run");
        // Capped tail == capped offline: equivalence holds per-config.
        let offline = replay(&bytes[..], cfg);
        assert_eq!(out.to_json().to_string(), offline.to_json().to_string());
    }

    #[test]
    fn slo_transitions_drive_the_watch_banner_without_touching_the_audit() {
        let tmp = TempPath::new("slo");
        let slo = |breached: bool| {
            let mut j = Json::obj([
                ("at", Json::Int(100)),
                ("slo", Json::from("latency_p99")),
                ("value", Json::Num(9.0e7)),
                ("threshold", Json::Num(5.0e7)),
                ("worst_trace", Json::Int(42)),
                ("worst_us", Json::Int(90_000)),
            ]);
            if !breached {
                if let Json::Obj(m) = &mut j {
                    m.remove("worst_trace");
                    m.remove("worst_us");
                }
            }
            j
        };
        let bytes = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("ts.slo_breach", slo(true)),
            ("ts.forwarded", fwd(1, 200, true, true, 5, 5)),
        ]);
        std::fs::write(&tmp.0, &bytes).unwrap();

        let mut tail = TailAuditor::open(&tmp.0, AuditConfig::default());
        tail.poll();
        let frame = tail.frame();
        assert_eq!(frame.slo_active, vec!["latency_p99".to_string()]);
        assert_eq!(frame.slo_breaches, 1);
        assert_eq!(frame.worst_trace, Some(42));
        assert_eq!(frame.worst_us, Some(90_000));
        let line = frame.render();
        assert!(line.contains("SLO-BREACH[latency_p99]"), "{line}");
        assert!(line.contains("worst=t0000002a/90000us"), "{line}");
        // Watchdog telemetry never dirties the audit.
        let out = tail.snapshot();
        assert!(out.ok(), "{:?}", out.violations);
        assert_eq!(out.totals.unknown_kinds, 1);

        // A recovery clears the banner; the trace pointer persists.
        let mut j = Journal::resume(
            std::fs::OpenOptions::new()
                .append(true)
                .open(&tmp.0)
                .unwrap(),
            3,
            tail.head().to_string(),
        );
        j.append("ts.slo_recovered", slo(false)).unwrap();
        drop(j);
        tail.poll();
        let frame = tail.frame();
        assert!(frame.slo_active.is_empty());
        assert_eq!(frame.slo_breaches, 1);
        assert_eq!(frame.worst_trace, Some(42));
        assert!(!frame.render().contains("SLO-BREACH"), "{}", frame.render());
        let json = frame.to_json().to_string();
        let reparsed = hka_obs::json::parse(&json).unwrap();
        assert_eq!(reparsed.to_string(), json, "canonical frame JSON");
    }

    #[test]
    fn gateway_stats_drive_the_watch_banner_without_touching_the_audit() {
        let tmp = TempPath::new("gw");
        let gw = |conns: i64, drains: i64, queue: i64| {
            Json::obj([
                ("at", Json::Int(100)),
                ("conns", Json::Int(conns)),
                ("drains", Json::Int(drains)),
                ("queue_depth", Json::Int(queue)),
            ])
        };
        let bytes = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("gw.stats", gw(3, 1, 7)),
            ("ts.forwarded", fwd(1, 200, true, true, 5, 5)),
            // The banner tracks the latest emission, not a sum.
            ("gw.stats", gw(4, 2, 0)),
        ]);
        std::fs::write(&tmp.0, &bytes).unwrap();

        let mut tail = TailAuditor::open(&tmp.0, AuditConfig::default());
        tail.poll();
        let frame = tail.frame();
        assert_eq!(frame.gw_conns, Some(4));
        assert_eq!(frame.gw_drains, Some(2));
        assert_eq!(frame.gw_queue, Some(0));
        let line = frame.render();
        assert!(line.contains("gw=conns:4/drains:2/queue:0"), "{line}");
        let json = frame.to_json().to_string();
        assert!(json.contains("\"gw_conns\":4"), "{json}");
        let reparsed = hka_obs::json::parse(&json).unwrap();
        assert_eq!(reparsed.to_string(), json, "canonical frame JSON");
        // Gateway telemetry never dirties the audit; the records count
        // as unknown kinds like the SLO transitions do.
        let out = tail.snapshot();
        assert!(out.ok(), "{:?}", out.violations);
        assert_eq!(out.totals.unknown_kinds, 2);

        // In-process journals (no gw.stats) render no gateway segment.
        let tmp2 = TempPath::new("gw-none");
        std::fs::write(
            &tmp2.0,
            journal_of(&[("ts.forwarded", fwd(1, 100, true, true, 5, 5))]),
        )
        .unwrap();
        let mut plain = TailAuditor::open(&tmp2.0, AuditConfig::default());
        plain.poll();
        let frame = plain.frame();
        assert_eq!(frame.gw_conns, None);
        assert!(!frame.render().contains("gw="), "{}", frame.render());
        assert!(frame.to_json().to_string().contains("\"gw_conns\":null"));
    }

    #[test]
    fn chain_failure_is_sticky_and_reported_in_frames() {
        let tmp = TempPath::new("fail");
        let bytes = journal_of(&[
            ("ts.forwarded", fwd(1, 100, true, true, 5, 5)),
            ("ts.forwarded", fwd(2, 150, true, true, 5, 5)),
        ]);
        let text = String::from_utf8(bytes).unwrap();
        std::fs::write(&tmp.0, text.replacen("\"user\":2", "\"user\":9", 1)).unwrap();

        let mut tail = TailAuditor::open(&tmp.0, AuditConfig::default());
        let poll = tail.poll();
        assert!(poll.chain_error.is_some());
        assert_eq!(tail.records(), 1, "valid prefix still audited");
        assert!(tail.frame().chain_error.is_some());
        assert!(!tail.snapshot().ok());
        // Sticky across polls.
        assert!(tail.poll().chain_error.is_some());
    }
}
