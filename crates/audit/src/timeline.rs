//! The replay state machine: per-user anonymity timelines, mode-ladder
//! tracking, and Theorem-1 violation detection.
//!
//! The paper's Theorem 1 says the Section-6.1 strategy preserves
//! historical k-anonymity *provided* every failed generalization is
//! followed by an unlink or an explicit at-risk notification, and the
//! robustness layer's fail-closed invariant says a degraded server never
//! forwards anything it cannot prove protected. The auditor replays the
//! journal and checks both from the outside:
//!
//! * a clamped (sub-k) forward for a user who was **not** notified
//!   at-risk is an [`ViolationKind::UnexplainedClamp`];
//! * any forward that is not a generalized, HK-anonymity-preserving
//!   one while the journaled mode is `degraded` is a
//!   [`ViolationKind::ForwardWhileDegraded`]; any forward at all while
//!   `read_only` is a [`ViolationKind::ForwardWhileReadOnly`];
//! * a `ts.mode_changed` whose `from` disagrees with the mode the
//!   journal itself established is a [`ViolationKind::ModeLadderGap`].
//!
//! A user's at-risk window opens at `ts.at_risk` and closes at the next
//! `ts.pseudonym_changed` (the unlink resets pattern state), mirroring
//! the server's own bookkeeping.

use std::collections::BTreeMap;

use hka_obs::JournalRecord;

use crate::event::{decode, AuditEvent, Mode};

/// Reference tolerances for QoS-inflation ratios in the report. `None`
/// disables the corresponding ratio (tolerances are per-service in the
/// server; the audit only sees what the journal carries).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AuditConfig {
    /// Reference spatial tolerance, m².
    pub space_tol: Option<f64>,
    /// Reference temporal tolerance, seconds.
    pub time_tol: Option<i64>,
    /// Bound on per-user history vectors (`k_samples`, `unlinks`,
    /// `at_risk_windows`): when set, only the most recent `cap` entries
    /// are retained, so a tailing auditor holds bounded memory over an
    /// unbounded journal. `None` (the default, and what the offline
    /// audit uses) keeps everything. Capping never touches the *open*
    /// at-risk window — only closed history is dropped — so violation
    /// detection is unaffected.
    pub sample_cap: Option<usize>,
}

/// What kind of guarantee a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A sub-k generalized forward with no preceding at-risk
    /// notification for that user (Theorem-1 bookkeeping broken).
    UnexplainedClamp,
    /// A forward that is not generalized-and-hk-ok while the journaled
    /// mode was `degraded` (fail-closed invariant broken).
    ForwardWhileDegraded,
    /// Any forward while the journaled mode was `read_only`.
    ForwardWhileReadOnly,
    /// A `ts.mode_changed` record whose `from` mode disagrees with the
    /// mode the journal itself last established.
    ModeLadderGap,
}

impl ViolationKind {
    /// Stable machine-readable tag.
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationKind::UnexplainedClamp => "unexplained_clamp",
            ViolationKind::ForwardWhileDegraded => "forward_while_degraded",
            ViolationKind::ForwardWhileReadOnly => "forward_while_read_only",
            ViolationKind::ModeLadderGap => "mode_ladder_gap",
        }
    }
}

/// One detected violation, anchored to the journal record that shows it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Sequence number of the offending record.
    pub seq: u64,
    /// Event time of the offending record.
    pub at: i64,
    /// The user concerned (`None` for server-scoped records).
    pub user: Option<u64>,
    /// What guarantee broke.
    pub kind: ViolationKind,
    /// Human-readable specifics.
    pub detail: String,
}

/// One `(at, k_req, k_got)` sample on a user's anonymity timeline —
/// every generalized forward contributes one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KSample {
    /// When.
    pub at: i64,
    /// Requested anonymity at that step.
    pub k_req: u64,
    /// Achieved anonymity-set size.
    pub k_got: u64,
}

/// Everything the journal shows about one user.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UserTimeline {
    /// The user.
    pub user: u64,
    /// k over time: one sample per generalized forward that carried the
    /// audit fields (older journals yield an empty timeline).
    pub k_samples: Vec<KSample>,
    /// Exact (non-pattern) forwards.
    pub forwarded_exact: u64,
    /// Generalized forwards that kept HK-anonymity.
    pub forwarded_ok: u64,
    /// Generalized forwards that were clamped (sub-k).
    pub forwarded_clamped: u64,
    /// Suppressions by on-disk reason string.
    pub suppressed: BTreeMap<String, u64>,
    /// Times the user's pseudonym changed (successful unlinks).
    pub unlinks: Vec<i64>,
    /// At-risk windows `(opened, closed)`; `None` = never closed —
    /// these are the Theorem-1 violation windows the report flags.
    pub at_risk_windows: Vec<(i64, Option<i64>)>,
    /// Smallest achieved anonymity-set size over all samples.
    pub min_k: Option<u64>,
    /// Sum of generalized context areas, m².
    pub area_sum: f64,
    /// Sum of generalized context durations, seconds.
    pub duration_sum: i64,
}

impl UserTimeline {
    /// All generalized forwards.
    pub fn generalized(&self) -> u64 {
        self.forwarded_ok + self.forwarded_clamped
    }

    /// Mean generalized area, m² (0 when nothing was generalized).
    pub fn mean_area(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.area_sum / g as f64
        }
    }

    /// Mean generalized duration, seconds (0 when nothing generalized).
    pub fn mean_duration(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.duration_sum as f64 / g as f64
        }
    }

    /// Whether an at-risk window is currently open.
    fn at_risk_open(&self) -> bool {
        self.at_risk_windows
            .last()
            .is_some_and(|(_, end)| end.is_none())
    }
}

/// One journaled mode transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeTransition {
    /// Sequence number of the `ts.mode_changed` record.
    pub seq: u64,
    /// When.
    pub at: i64,
    /// Mode left behind.
    pub from: Mode,
    /// Mode entered.
    pub to: Mode,
}

/// Per-service-class aggregate — one row of the QoS/k/unlink trade-off
/// table. Rows exist only for events that carried a `service` field.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceRow {
    /// The service class.
    pub service: u64,
    /// Exact forwards.
    pub forwarded_exact: u64,
    /// HK-ok generalized forwards.
    pub forwarded_ok: u64,
    /// Clamped generalized forwards.
    pub forwarded_clamped: u64,
    /// Suppressions (all reasons) — the service interruptions the paper
    /// trades against anonymity.
    pub suppressed: u64,
    /// Sum of requested k over generalized forwards with audit fields.
    pub k_req_sum: u64,
    /// Sum of achieved k over the same forwards.
    pub k_got_sum: u64,
    /// Generalized forwards carrying audit fields (divisor for k means).
    pub k_samples: u64,
    /// Sum of generalized areas, m².
    pub area_sum: f64,
    /// Sum of generalized durations, seconds.
    pub duration_sum: i64,
}

impl ServiceRow {
    /// All generalized forwards.
    pub fn generalized(&self) -> u64 {
        self.forwarded_ok + self.forwarded_clamped
    }

    /// All forwards.
    pub fn forwarded(&self) -> u64 {
        self.forwarded_exact + self.generalized()
    }

    /// Fraction of generalized forwards that kept HK-anonymity (0 when
    /// nothing was generalized).
    pub fn hk_success_rate(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.forwarded_ok as f64 / g as f64
        }
    }

    /// Fraction of this service's requests that were suppressed.
    pub fn interruption_rate(&self) -> f64 {
        let total = self.forwarded() + self.suppressed;
        if total == 0 {
            0.0
        } else {
            self.suppressed as f64 / total as f64
        }
    }

    /// Mean requested k (0 without audit-field samples).
    pub fn mean_k_req(&self) -> f64 {
        if self.k_samples == 0 {
            0.0
        } else {
            self.k_req_sum as f64 / self.k_samples as f64
        }
    }

    /// Mean achieved k (0 without audit-field samples).
    pub fn mean_k_got(&self) -> f64 {
        if self.k_samples == 0 {
            0.0
        } else {
            self.k_got_sum as f64 / self.k_samples as f64
        }
    }

    /// Mean generalized area, m².
    pub fn mean_area(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.area_sum / g as f64
        }
    }

    /// Mean generalized duration, seconds.
    pub fn mean_duration(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.duration_sum as f64 / g as f64
        }
    }
}

/// Per-LBQID aggregate — anonymity outcomes along one quasi-identifier.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LbqidRow {
    /// The LBQID name.
    pub lbqid: String,
    /// HK-ok generalized forwards attributed to this LBQID.
    pub forwarded_ok: u64,
    /// Clamped forwards attributed to this LBQID.
    pub forwarded_clamped: u64,
    /// Completed full matches (`ts.lbqid_matched`).
    pub matches: u64,
    /// At-risk notifications naming this LBQID.
    pub at_risk: u64,
    /// Sum of achieved k over forwards with audit fields.
    pub k_got_sum: u64,
    /// Forwards contributing to `k_got_sum`.
    pub k_samples: u64,
    /// Sum of generalized areas, m².
    pub area_sum: f64,
    /// Sum of generalized durations, seconds.
    pub duration_sum: i64,
}

impl LbqidRow {
    /// Mean achieved k (0 without samples).
    pub fn mean_k_got(&self) -> f64 {
        if self.k_samples == 0 {
            0.0
        } else {
            self.k_got_sum as f64 / self.k_samples as f64
        }
    }

    /// All generalized forwards on this LBQID.
    pub fn generalized(&self) -> u64 {
        self.forwarded_ok + self.forwarded_clamped
    }

    /// Mean generalized area, m².
    pub fn mean_area(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.area_sum / g as f64
        }
    }

    /// Mean generalized duration, seconds.
    pub fn mean_duration(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.duration_sum as f64 / g as f64
        }
    }
}

/// Whole-journal aggregate counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Totals {
    /// Records replayed (all kinds, unknown included).
    pub events: u64,
    /// Exact forwards.
    pub forwarded_exact: u64,
    /// HK-ok generalized forwards.
    pub forwarded_ok: u64,
    /// Clamped generalized forwards.
    pub forwarded_clamped: u64,
    /// Suppressions by on-disk reason string.
    pub suppressed: BTreeMap<String, u64>,
    /// Pseudonym changes.
    pub unlinks: u64,
    /// At-risk notifications.
    pub at_risk: u64,
    /// Completed LBQID matches.
    pub lbqid_matches: u64,
    /// Checkpoint anchors seen.
    pub checkpoints: u64,
    /// Records with kinds this auditor does not know.
    pub unknown_kinds: u64,
}

impl Totals {
    /// All forwards.
    pub fn forwarded(&self) -> u64 {
        self.forwarded_exact + self.forwarded_ok + self.forwarded_clamped
    }

    /// All suppressions.
    pub fn suppressed_total(&self) -> u64 {
        self.suppressed.values().sum()
    }

    /// All requests that reached a decision (forwarded or suppressed).
    pub fn requests(&self) -> u64 {
        self.forwarded() + self.suppressed_total()
    }

    /// Unlinks per decided request — the paper's "frequency of
    /// unlinking" corner of the trade-off triangle. 0 when no requests.
    pub fn unlink_frequency(&self) -> f64 {
        let r = self.requests();
        if r == 0 {
            0.0
        } else {
            self.unlinks as f64 / r as f64
        }
    }

    /// Fraction of generalized forwards that kept HK-anonymity.
    pub fn hk_success_rate(&self) -> f64 {
        let g = self.forwarded_ok + self.forwarded_clamped;
        if g == 0 {
            0.0
        } else {
            self.forwarded_ok as f64 / g as f64
        }
    }
}

/// Drops the oldest entries beyond `cap`; no-op when `cap` is `None`.
/// Front-draining keeps the *most recent* entries, which is also what
/// the violation checks look at (the last at-risk window).
fn trim_front<T>(cap: Option<usize>, v: &mut Vec<T>) {
    if let Some(cap) = cap {
        if v.len() > cap {
            let excess = v.len() - cap;
            v.drain(..excess);
        }
    }
}

/// Streaming replay state — an incremental state machine. Feed
/// verified records one at a time with [`Auditor::ingest`]; at any
/// point [`Auditor::snapshot`] renders the state so far without
/// consuming it (the live-tail path), and [`Auditor::finish`] consumes
/// it into the final outcome (the batch path). Both produce identical
/// reports for the same records, so a tailing auditor that catches up
/// to end-of-journal emits byte-for-byte the offline audit.
#[derive(Debug, Clone, Default)]
pub struct Auditor {
    pub(crate) cfg: AuditConfig,
    pub(crate) users: BTreeMap<u64, UserTimeline>,
    pub(crate) services: BTreeMap<u64, ServiceRow>,
    pub(crate) lbqids: BTreeMap<String, LbqidRow>,
    pub(crate) mode: Option<Mode>,
    pub(crate) mode_transitions: Vec<ModeTransition>,
    pub(crate) violations: Vec<Violation>,
    pub(crate) schema_issues: Vec<(u64, String)>,
    pub(crate) recoveries: Vec<(u64, u64)>,
    /// Checkpoint anchors seen: `(seq, snapshot content hash)`.
    pub(crate) checkpoints: Vec<(u64, String)>,
    pub(crate) totals: Totals,
    pub(crate) overall_k_req_sum: u64,
    pub(crate) overall_k_got_sum: u64,
    pub(crate) overall_k_samples: u64,
    pub(crate) overall_area_sum: f64,
    pub(crate) overall_duration_sum: i64,
}

impl Auditor {
    /// A fresh auditor.
    pub fn new(cfg: AuditConfig) -> Self {
        Auditor {
            cfg,
            ..Auditor::default()
        }
    }

    fn user(&mut self, user: u64) -> &mut UserTimeline {
        self.users.entry(user).or_insert_with(|| UserTimeline {
            user,
            ..UserTimeline::default()
        })
    }

    /// Folds one verified journal record into the replay state. Alias
    /// for [`ingest`](Auditor::ingest), kept for the batch-replay
    /// callers that predate the streaming API.
    pub fn observe(&mut self, record: &JournalRecord) {
        self.ingest(record);
    }

    /// Folds one verified journal record into the replay state. This is
    /// the streaming entry point: state after N calls depends only on
    /// the first N records, and memory is bounded when
    /// [`AuditConfig::sample_cap`] is set.
    pub fn ingest(&mut self, record: &JournalRecord) {
        self.totals.events += 1;
        let event = match decode(record) {
            Ok(e) => e,
            Err(issue) => {
                self.schema_issues.push((record.seq, issue));
                return;
            }
        };
        match event {
            AuditEvent::Forwarded {
                user,
                at,
                area,
                duration,
                generalized,
                hk_ok,
                service,
                k_req,
                k_got,
                lbqid,
            } => self.observe_forwarded(
                record.seq,
                user,
                at,
                area,
                duration,
                generalized,
                hk_ok,
                service,
                k_req,
                k_got,
                lbqid,
            ),
            AuditEvent::Suppressed {
                user,
                at: _,
                reason,
                service,
            } => {
                *self.totals.suppressed.entry(reason.clone()).or_default() += 1;
                *self.user(user).suppressed.entry(reason).or_default() += 1;
                if let Some(s) = service {
                    self.service(s).suppressed += 1;
                }
            }
            AuditEvent::PseudonymChanged { user, at } => {
                self.totals.unlinks += 1;
                let cap = self.cfg.sample_cap;
                let u = self.user(user);
                u.unlinks.push(at);
                trim_front(cap, &mut u.unlinks);
                if let Some((_, end)) = u.at_risk_windows.last_mut() {
                    if end.is_none() {
                        *end = Some(at);
                    }
                }
            }
            AuditEvent::AtRisk { user, at, lbqid } => {
                self.totals.at_risk += 1;
                self.lbqid(&lbqid).at_risk += 1;
                let cap = self.cfg.sample_cap;
                let u = self.user(user);
                if !u.at_risk_open() {
                    u.at_risk_windows.push((at, None));
                    trim_front(cap, &mut u.at_risk_windows);
                }
            }
            AuditEvent::LbqidMatched {
                user: _,
                at: _,
                lbqid,
            } => {
                self.totals.lbqid_matches += 1;
                self.lbqid(&lbqid).matches += 1;
            }
            AuditEvent::ModeChanged { at, from, to } => {
                if let Some(current) = self.mode {
                    if from != current {
                        self.violations.push(Violation {
                            seq: record.seq,
                            at,
                            user: None,
                            kind: ViolationKind::ModeLadderGap,
                            detail: format!(
                                "transition claims from={} but the journal last established {}",
                                from.as_str(),
                                current.as_str()
                            ),
                        });
                    }
                }
                self.mode = Some(to);
                self.mode_transitions.push(ModeTransition {
                    seq: record.seq,
                    at,
                    from,
                    to,
                });
            }
            AuditEvent::JournalRecovered {
                truncated_bytes,
                valid_records,
            } => self.recoveries.push((truncated_bytes, valid_records)),
            AuditEvent::Checkpoint { snapshot, .. } => {
                self.totals.checkpoints += 1;
                self.checkpoints.push((record.seq, snapshot));
                trim_front(self.cfg.sample_cap, &mut self.checkpoints);
            }
            AuditEvent::Unknown => self.totals.unknown_kinds += 1,
        }
    }

    fn service(&mut self, service: u64) -> &mut ServiceRow {
        self.services.entry(service).or_insert_with(|| ServiceRow {
            service,
            ..ServiceRow::default()
        })
    }

    fn lbqid(&mut self, name: &str) -> &mut LbqidRow {
        self.lbqids
            .entry(name.to_string())
            .or_insert_with(|| LbqidRow {
                lbqid: name.to_string(),
                ..LbqidRow::default()
            })
    }

    #[allow(clippy::too_many_arguments)]
    fn observe_forwarded(
        &mut self,
        seq: u64,
        user: u64,
        at: i64,
        area: f64,
        duration: i64,
        generalized: bool,
        hk_ok: bool,
        service: Option<u64>,
        k_req: Option<u64>,
        k_got: Option<u64>,
        lbqid: Option<String>,
    ) {
        // Mode-gate checks: the journal itself establishes the mode, so
        // a forward it shows under degraded/read-only is the server
        // contradicting its own audit trail.
        match self.mode.unwrap_or(Mode::Normal) {
            Mode::ReadOnly => self.violations.push(Violation {
                seq,
                at,
                user: Some(user),
                kind: ViolationKind::ForwardWhileReadOnly,
                detail: "request forwarded while the journaled mode was read_only".into(),
            }),
            Mode::Degraded if !(generalized && hk_ok) => self.violations.push(Violation {
                seq,
                at,
                user: Some(user),
                kind: ViolationKind::ForwardWhileDegraded,
                detail: format!(
                    "non-protected forward (generalized={generalized}, hk_ok={hk_ok}) \
                     while the journaled mode was degraded"
                ),
            }),
            _ => {}
        }

        let at_risk_open = self.user(user).at_risk_open();
        if generalized && !hk_ok && !at_risk_open {
            self.violations.push(Violation {
                seq,
                at,
                user: Some(user),
                kind: ViolationKind::UnexplainedClamp,
                detail: "sub-k forward with no preceding at-risk notification".into(),
            });
        }

        if !generalized {
            self.totals.forwarded_exact += 1;
            self.user(user).forwarded_exact += 1;
            if let Some(s) = service {
                self.service(s).forwarded_exact += 1;
            }
            return;
        }

        if hk_ok {
            self.totals.forwarded_ok += 1;
            self.user(user).forwarded_ok += 1;
        } else {
            self.totals.forwarded_clamped += 1;
            self.user(user).forwarded_clamped += 1;
        }
        self.overall_area_sum += area;
        self.overall_duration_sum += duration;
        {
            let cap = self.cfg.sample_cap;
            let u = self.user(user);
            u.area_sum += area;
            u.duration_sum += duration;
            if let (Some(req), Some(got)) = (k_req, k_got) {
                u.k_samples.push(KSample {
                    at,
                    k_req: req,
                    k_got: got,
                });
                trim_front(cap, &mut u.k_samples);
                u.min_k = Some(u.min_k.map_or(got, |m| m.min(got)));
            }
        }
        if let Some(s) = service {
            let row = self.service(s);
            if hk_ok {
                row.forwarded_ok += 1;
            } else {
                row.forwarded_clamped += 1;
            }
            row.area_sum += area;
            row.duration_sum += duration;
            if let (Some(req), Some(got)) = (k_req, k_got) {
                row.k_req_sum += req;
                row.k_got_sum += got;
                row.k_samples += 1;
            }
        }
        if let Some(name) = lbqid {
            let row = self.lbqid(&name);
            if hk_ok {
                row.forwarded_ok += 1;
            } else {
                row.forwarded_clamped += 1;
            }
            row.area_sum += area;
            row.duration_sum += duration;
            if let Some(got) = k_got {
                row.k_got_sum += got;
                row.k_samples += 1;
            }
        }
        if let (Some(req), Some(got)) = (k_req, k_got) {
            self.overall_k_req_sum += req;
            self.overall_k_got_sum += got;
            self.overall_k_samples += 1;
        }
    }

    /// Violations detected so far, in journal order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Aggregate counters so far.
    pub fn totals(&self) -> &Totals {
        &self.totals
    }

    /// The mode the journal last established (`None` before the first
    /// `ts.mode_changed`).
    pub fn mode(&self) -> Option<Mode> {
        self.mode
    }

    /// Users with any journaled activity so far.
    pub fn users_tracked(&self) -> usize {
        self.users.len()
    }

    /// Schema issues recorded so far, as `(seq, message)` pairs.
    pub fn schema_issues(&self) -> &[(u64, String)] {
        &self.schema_issues
    }

    /// Checkpoint anchors seen so far, as `(seq, snapshot hash)` pairs
    /// (bounded by [`AuditConfig::sample_cap`] like other history).
    pub fn checkpoints(&self) -> &[(u64, String)] {
        &self.checkpoints
    }

    /// Smallest achieved anonymity-set size across every user so far.
    pub fn min_k(&self) -> Option<u64> {
        self.users.values().filter_map(|u| u.min_k).min()
    }

    /// Renders the state so far into an outcome **without** consuming
    /// the auditor — the live-tail path. For the same ingested records
    /// and the same `chain`, the result is identical to what
    /// [`finish`](Auditor::finish) would return.
    pub fn snapshot(&self, chain: crate::report::ChainSummary) -> crate::report::AuditOutcome {
        self.clone().finish(chain)
    }

    /// Consumes the replay state into the final outcome. `chain`
    /// summarizes what the [`hka_obs::JournalReader`] saw.
    pub fn finish(self, chain: crate::report::ChainSummary) -> crate::report::AuditOutcome {
        let mode_consistent = !self
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::ModeLadderGap);
        crate::report::AuditOutcome {
            chain,
            cfg: self.cfg,
            users: self.users.into_values().collect(),
            services: self.services.into_values().collect(),
            lbqids: self.lbqids.into_values().collect(),
            mode_transitions: self.mode_transitions,
            mode_consistent,
            violations: self.violations,
            schema_issues: self.schema_issues,
            recoveries: self.recoveries,
            checkpoints: self.checkpoints,
            totals: self.totals,
            overall_k_req_sum: self.overall_k_req_sum,
            overall_k_got_sum: self.overall_k_got_sum,
            overall_k_samples: self.overall_k_samples,
            overall_area_sum: self.overall_area_sum,
            overall_duration_sum: self.overall_duration_sum,
        }
    }
}
