//! The *k actual senders* semantics of Gedik–Liu (paper ref. \[9\],
//! "A Customizable k-Anonymity Model for Protecting Location Privacy",
//! ICDCS 2005).
//!
//! Under this semantics "a message sent to a service provider \[is\]
//! k-anonymous, only if there are other k−1 users in the same
//! spatio-temporal context that actually send a message". The engine
//! below is a simplified CliqueCloak: requests are buffered; a request is
//! released when k requests from k distinct users fit inside a common box
//! no larger than the spatial/temporal bounds; requests that cannot be
//! grouped within `max_wait` are dropped.
//!
//! The Bettini–Wang–Jajodia paper argues its own *potential senders*
//! requirement "is a much weaker requirement" — i.e. far easier to
//! satisfy at equal k. Experiment T4 measures exactly that gap.

use hka_geo::{Duration, StBox, StPoint, TimeInterval};
use hka_trajectory::UserId;

/// Grouping constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActualSendersConfig {
    /// Required number of distinct senders per released group.
    pub k: usize,
    /// Maximum side (meters) of the common cloaking box.
    pub max_side: f64,
    /// Maximum time (seconds) a request may wait for companions before
    /// being dropped.
    pub max_wait: Duration,
}

/// Outcome for one submitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum SenderOutcome {
    /// Released inside this shared context, with this delivery delay.
    Released {
        /// The shared cloaking box of the group.
        context: StBox,
        /// Seconds the request waited in the buffer.
        delay: Duration,
    },
    /// Dropped: no qualifying group formed within `max_wait`.
    Dropped,
}

#[derive(Debug, Clone)]
struct Pending {
    idx: usize,
    user: UserId,
    at: StPoint,
}

/// A batch engine: feed the full workload (time-sorted) and get one
/// outcome per request.
pub fn evaluate(requests: &[(UserId, StPoint)], cfg: &ActualSendersConfig) -> Vec<SenderOutcome> {
    assert!(cfg.k >= 1, "k must be ≥ 1");
    let mut outcomes = vec![SenderOutcome::Dropped; requests.len()];
    let mut buffer: Vec<Pending> = Vec::new();

    for (idx, (user, at)) in requests.iter().enumerate() {
        debug_assert!(
            idx == 0 || requests[idx - 1].1.t <= at.t,
            "requests must be time-sorted"
        );
        // Expire requests that waited too long.
        buffer.retain(|p| at.t - p.at.t <= cfg.max_wait);
        buffer.push(Pending {
            idx,
            user: *user,
            at: *at,
        });

        // Try to form a group around the newest request: companions must
        // fit with it inside a max_side box (checked pairwise via
        // coordinate ranges) and be from distinct users.
        let candidates: Vec<&Pending> = buffer
            .iter()
            .filter(|p| {
                (p.at.pos.x - at.pos.x).abs() <= cfg.max_side
                    && (p.at.pos.y - at.pos.y).abs() <= cfg.max_side
            })
            .collect();
        // Keep one (the earliest) request per user.
        let mut per_user: std::collections::BTreeMap<UserId, &Pending> = Default::default();
        for p in candidates {
            per_user.entry(p.user).or_insert(p);
        }
        if per_user.len() < cfg.k {
            continue;
        }
        // Verify the actual bounding box fits the side bound.
        let members: Vec<&Pending> = per_user.values().copied().collect();
        let bbox = StBox::mbb(members.iter().map(|p| &p.at)).expect("non-empty");
        if bbox.rect.width() > cfg.max_side || bbox.rect.height() > cfg.max_side {
            continue;
        }
        let context = StBox::new(bbox.rect, TimeInterval::new(bbox.span.start(), at.t));
        let released: Vec<usize> = members.iter().map(|p| p.idx).collect();
        for p in &members {
            outcomes[p.idx] = SenderOutcome::Released {
                context,
                delay: at.t - p.at.t,
            };
        }
        buffer.retain(|p| !released.contains(&p.idx));
    }
    outcomes
}

/// Fraction of requests released.
pub fn release_rate(outcomes: &[SenderOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes
        .iter()
        .filter(|o| matches!(o, SenderOutcome::Released { .. }))
        .count() as f64
        / outcomes.len() as f64
}

/// Mean delivery delay of released requests, seconds.
pub fn mean_delay(outcomes: &[SenderOutcome]) -> f64 {
    let delays: Vec<Duration> = outcomes
        .iter()
        .filter_map(|o| match o {
            SenderOutcome::Released { delay, .. } => Some(*delay),
            SenderOutcome::Dropped => None,
        })
        .collect();
    if delays.is_empty() {
        0.0
    } else {
        delays.iter().sum::<Duration>() as f64 / delays.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::TimeSec;

    fn r(user: u64, x: f64, y: f64, t: i64) -> (UserId, StPoint) {
        (UserId(user), StPoint::xyt(x, y, TimeSec(t)))
    }

    fn cfg(k: usize) -> ActualSendersConfig {
        ActualSendersConfig {
            k,
            max_side: 100.0,
            max_wait: 300,
        }
    }

    #[test]
    fn colocated_simultaneous_senders_release() {
        let reqs = vec![r(1, 0.0, 0.0, 0), r(2, 10.0, 10.0, 5), r(3, 20.0, 0.0, 9)];
        let out = evaluate(&reqs, &cfg(3));
        assert!(out
            .iter()
            .all(|o| matches!(o, SenderOutcome::Released { .. })));
        if let SenderOutcome::Released { context, delay } = &out[0] {
            assert!(context.rect.contains(&reqs[0].1.pos));
            assert_eq!(*delay, 9);
        }
        assert_eq!(release_rate(&out), 1.0);
        assert_eq!(mean_delay(&out), (9.0 + 4.0 + 0.0) / 3.0);
    }

    #[test]
    fn lone_sender_is_dropped() {
        let reqs = vec![r(1, 0.0, 0.0, 0)];
        let out = evaluate(&reqs, &cfg(2));
        assert_eq!(out, vec![SenderOutcome::Dropped]);
        assert_eq!(release_rate(&out), 0.0);
        assert_eq!(mean_delay(&out), 0.0);
    }

    #[test]
    fn same_user_repeats_do_not_count_twice() {
        let reqs = vec![r(1, 0.0, 0.0, 0), r(1, 5.0, 0.0, 10), r(1, 10.0, 0.0, 20)];
        let out = evaluate(&reqs, &cfg(2));
        assert!(out.iter().all(|o| *o == SenderOutcome::Dropped));
    }

    #[test]
    fn distant_senders_do_not_group() {
        let reqs = vec![r(1, 0.0, 0.0, 0), r(2, 5_000.0, 0.0, 5)];
        let out = evaluate(&reqs, &cfg(2));
        assert!(out.iter().all(|o| *o == SenderOutcome::Dropped));
    }

    #[test]
    fn stale_requests_expire() {
        let reqs = vec![r(1, 0.0, 0.0, 0), r(2, 10.0, 0.0, 1_000)];
        let out = evaluate(&reqs, &cfg(2));
        assert!(out.iter().all(|o| *o == SenderOutcome::Dropped), "{out:?}");
    }

    #[test]
    fn released_groups_leave_the_buffer() {
        // Users 1,2 release at t=5; user 3 arrives at t=8 and finds no
        // companions left.
        let reqs = vec![r(1, 0.0, 0.0, 0), r(2, 10.0, 0.0, 5), r(3, 5.0, 0.0, 8)];
        let out = evaluate(&reqs, &cfg(2));
        assert!(matches!(out[0], SenderOutcome::Released { .. }));
        assert!(matches!(out[1], SenderOutcome::Released { .. }));
        assert_eq!(out[2], SenderOutcome::Dropped);
    }

    #[test]
    fn k1_releases_immediately_with_exact_context() {
        let reqs = vec![r(1, 3.0, 4.0, 7)];
        let out = evaluate(&reqs, &cfg(1));
        match &out[0] {
            SenderOutcome::Released { context, delay } => {
                assert_eq!(*delay, 0);
                assert_eq!(context.rect.area(), 0.0);
            }
            other => panic!("{other:?}"),
        }
    }
}
