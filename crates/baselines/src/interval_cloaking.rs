//! Gruteser–Grunwald spatial and temporal cloaking (paper ref. \[11\],
//! *Anonymous Usage of Location-Based Services Through Spatial and
//! Temporal Cloaking*, MobiSys 2003).
//!
//! **Spatial cloaking** — "choose the quadrant that includes the
//! requester; if it still contains at least k_min (other) subjects,
//! recurse; otherwise return the previous quadrant": a quadtree descent
//! from the whole service area. The anonymity set is a *potential-senders*
//! set: every subject inside the returned quadrant could have issued the
//! request.
//!
//! **Temporal cloaking** — for applications needing finer spatial
//! resolution: fix the area, then delay/widen the reported time interval
//! until at least k subjects have visited the area.

use hka_geo::{Rect, StBox, StPoint, TimeInterval};
use hka_trajectory::{SpatialIndex, UserId};

/// Quadtree spatial cloaking. Returns the smallest quadrant of `domain`
/// that contains `at.pos` and is crossed by at least `k` distinct users
/// (the requester's own trajectory counts — it is one of the potential
/// senders) during the `snapshot` interval around the request time, or
/// `None` when even the whole domain fails.
///
/// `max_depth` bounds the descent (the original system stops at the
/// positioning accuracy).
pub fn spatial_cloak(
    index: &(impl SpatialIndex + ?Sized),
    domain: Rect,
    at: &StPoint,
    k: usize,
    snapshot: i64,
    max_depth: u32,
) -> Option<Rect> {
    let window = TimeInterval::new(at.t - snapshot, at.t);
    let population = |r: &Rect| index.count_users_crossing(&StBox::new(*r, window), k);
    if population(&domain) < k || !domain.contains(&at.pos) {
        return None;
    }
    let mut current = domain;
    for _ in 0..max_depth {
        let quadrant = current.quadrants()[current.quadrant_of(&at.pos)];
        if population(&quadrant) >= k {
            current = quadrant;
        } else {
            break;
        }
    }
    Some(current)
}

/// Temporal cloaking: keeps the area fixed at `area` and widens the time
/// interval backwards from the request instant (in `step`-second
/// increments, up to `max_lookback`) until at least `k` distinct users
/// have visited the area within it. Returns `None` if even the widest
/// interval fails.
pub fn temporal_cloak(
    index: &(impl SpatialIndex + ?Sized),
    area: Rect,
    at: &StPoint,
    k: usize,
    step: i64,
    max_lookback: i64,
) -> Option<TimeInterval> {
    assert!(step > 0, "step must be positive");
    let mut lookback = step;
    while lookback <= max_lookback {
        let window = TimeInterval::new(at.t - lookback, at.t);
        if index.count_users_crossing(&StBox::new(area, window), k) >= k {
            return Some(window);
        }
        lookback += step;
    }
    None
}

/// The anonymity set of a spatially cloaked request, for evaluation.
pub fn anonymity_set(
    index: &(impl SpatialIndex + ?Sized),
    area: Rect,
    window: TimeInterval,
) -> std::collections::BTreeSet<UserId> {
    index.users_crossing(&StBox::new(area, window))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{SpaceTimeScale, TimeSec};
    use hka_trajectory::{GridIndex, GridIndexConfig, TrajectoryStore};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    /// A 1000×1000 domain; a crowd of `n` users clustered in the SW
    /// corner around (100,100) at t≈1000, requester included.
    fn crowd_index(n: u64) -> GridIndex {
        let mut store = TrajectoryStore::new();
        for u in 0..n {
            store.record(
                UserId(u),
                sp(
                    90.0 + (u % 5) as f64 * 5.0,
                    90.0 + (u / 5) as f64 * 5.0,
                    1000,
                ),
            );
        }
        GridIndex::build(
            &store,
            GridIndexConfig {
                cell_size: 50.0,
                cell_duration: 120,
                scale: SpaceTimeScale::new(1.0),
            },
        )
    }

    fn domain() -> Rect {
        Rect::from_bounds(0.0, 0.0, 1000.0, 1000.0)
    }

    #[test]
    fn spatial_cloak_descends_towards_the_crowd() {
        let index = crowd_index(10);
        let at = sp(100.0, 100.0, 1000);
        let r = spatial_cloak(&index, domain(), &at, 5, 300, 10).unwrap();
        assert!(r.contains(&at.pos));
        // The crowd is tight: the cloak should be much smaller than the
        // domain.
        assert!(r.area() < domain().area() / 4.0);
        // And still hold 5 users.
        let window = TimeInterval::new(at.t - 300, at.t);
        assert!(anonymity_set(&index, r, window).len() >= 5);
    }

    #[test]
    fn spatial_cloak_grows_with_k() {
        let index = crowd_index(30);
        let at = sp(100.0, 100.0, 1000);
        let small = spatial_cloak(&index, domain(), &at, 2, 300, 12).unwrap();
        let large = spatial_cloak(&index, domain(), &at, 30, 300, 12).unwrap();
        assert!(small.area() <= large.area());
    }

    #[test]
    fn spatial_cloak_fails_without_population() {
        let index = crowd_index(3);
        let at = sp(100.0, 100.0, 1000);
        assert!(spatial_cloak(&index, domain(), &at, 10, 300, 10).is_none());
        // Requester outside the domain.
        let outside = sp(5000.0, 100.0, 1000);
        assert!(spatial_cloak(&index, domain(), &outside, 2, 300, 10).is_none());
    }

    #[test]
    fn zero_depth_returns_domain() {
        let index = crowd_index(10);
        let at = sp(100.0, 100.0, 1000);
        assert_eq!(
            spatial_cloak(&index, domain(), &at, 5, 300, 0),
            Some(domain())
        );
    }

    #[test]
    fn temporal_cloak_widens_until_k() {
        // Users visit the area one per 100 s.
        let mut store = TrajectoryStore::new();
        for u in 0..6u64 {
            store.record(UserId(u), sp(10.0, 10.0, 1000 - (u as i64) * 100));
        }
        let index = GridIndex::build(
            &store,
            GridIndexConfig {
                cell_size: 50.0,
                cell_duration: 60,
                scale: SpaceTimeScale::new(1.0),
            },
        );
        let area = Rect::from_bounds(0.0, 0.0, 50.0, 50.0);
        let at = sp(10.0, 10.0, 1000);
        let w3 = temporal_cloak(&index, area, &at, 3, 60, 3_600).unwrap();
        let w6 = temporal_cloak(&index, area, &at, 6, 60, 3_600).unwrap();
        assert!(w3.duration() <= w6.duration());
        assert!(w6.duration() >= 500);
        // Impossible k times out.
        assert!(temporal_cloak(&index, area, &at, 7, 60, 3_600).is_none());
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn temporal_cloak_rejects_zero_step() {
        let index = crowd_index(2);
        let _ = temporal_cloak(&index, domain(), &sp(0.0, 0.0, 0), 2, 0, 100);
    }
}
