//! # hka-baselines
//!
//! The comparator algorithms from the paper's related-work discussion
//! (Section 2), re-implemented so the experiments can compare against
//! them:
//!
//! * [`interval_cloaking`] — Gruteser–Grunwald spatial and temporal
//!   cloaking (paper ref. \[11\]): quadtree descent until the requester's
//!   quadrant holds at least k *potential senders*, and interval
//!   extension until k users have visited the area. "The idea of adapting
//!   spatio-temporal resolution to provide a form of location k-anonymity
//!   can be found in \[11\]" — it treats every single request as
//!   quasi-identifying, with no notion of histories.
//! * [`actual_senders`] — the Gedik–Liu semantics (paper ref. \[9\]): "the
//!   authors consider a message sent to a service provider to be
//!   k-anonymous, only if there are other k−1 users in the same
//!   spatio-temporal context that actually send a message" — a much
//!   stronger requirement than the potential-senders reading this paper
//!   (and \[11\]) uses; experiment T4 quantifies the difference.
//! * [`UniformCloak`] — the strawman the paper dismisses in the
//!   introduction: "an obvious solution might be to make all requests
//!   very coarse in terms of spatial and temporal resolution" — fixed
//!   grid snapping with no population awareness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actual_senders;
pub mod interval_cloaking;
mod uniform;

pub use uniform::UniformCloak;
