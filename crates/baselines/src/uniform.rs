//! The strawman: uniform coarsening.
//!
//! "An obvious solution might be to make all requests very coarse in
//! terms of spatial and temporal resolution. However, for some services
//! to be useful, sufficiently fine resolution must be used." — this
//! population-blind baseline snaps every request to a fixed grid cell and
//! time slot. It guarantees nothing (a lone user in a rural cell is still
//! alone) and degrades QoS uniformly, but it is the natural lower bar for
//! experiment F2.

use hka_geo::{Duration, Rect, StBox, StPoint, TimeInterval, TimeSec};

/// Fixed-grid spatio-temporal coarsening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformCloak {
    /// Grid cell side, meters.
    pub cell: f64,
    /// Time slot length, seconds.
    pub slot: Duration,
}

impl UniformCloak {
    /// Creates a coarsener.
    pub fn new(cell: f64, slot: Duration) -> Self {
        assert!(cell > 0.0 && slot > 0, "cell and slot must be positive");
        UniformCloak { cell, slot }
    }

    /// The grid cell × time slot containing the exact point.
    pub fn cloak(&self, at: &StPoint) -> StBox {
        let cx = (at.pos.x / self.cell).floor();
        let cy = (at.pos.y / self.cell).floor();
        let ct = at.t.0.div_euclid(self.slot);
        StBox::new(
            Rect::from_bounds(
                cx * self.cell,
                cy * self.cell,
                (cx + 1.0) * self.cell,
                (cy + 1.0) * self.cell,
            ),
            TimeInterval::new(TimeSec(ct * self.slot), TimeSec((ct + 1) * self.slot - 1)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloak_contains_point_and_has_fixed_size() {
        let c = UniformCloak::new(500.0, 600);
        let at = StPoint::xyt(1234.0, -77.0, TimeSec(7_000));
        let b = c.cloak(&at);
        assert!(b.contains(&at));
        assert_eq!(b.rect.width(), 500.0);
        assert_eq!(b.rect.height(), 500.0);
        assert_eq!(b.duration(), 599);
    }

    #[test]
    fn nearby_points_share_a_cloak() {
        let c = UniformCloak::new(500.0, 600);
        let a = c.cloak(&StPoint::xyt(10.0, 10.0, TimeSec(0)));
        let b = c.cloak(&StPoint::xyt(490.0, 499.0, TimeSec(599)));
        assert_eq!(a, b);
        let d = c.cloak(&StPoint::xyt(510.0, 10.0, TimeSec(0)));
        assert_ne!(a, d);
    }

    #[test]
    fn negative_coordinates_snap_consistently() {
        let c = UniformCloak::new(100.0, 60);
        let b = c.cloak(&StPoint::xyt(-50.0, -150.0, TimeSec(-30)));
        assert!(b.contains(&StPoint::xyt(-50.0, -150.0, TimeSec(-30))));
        assert_eq!(b.rect.min().x, -100.0);
        assert_eq!(b.rect.min().y, -200.0);
        assert_eq!(b.span.start(), TimeSec(-60));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_rejected() {
        let _ = UniformCloak::new(0.0, 60);
    }
}
