//! Property tests for the baseline cloaking algorithms.

use hka_baselines::{actual_senders, interval_cloaking, UniformCloak};
use hka_geo::{Rect, SpaceTimeScale, StPoint, TimeInterval, TimeSec};
use hka_trajectory::{GridIndex, GridIndexConfig, TrajectoryStore, UserId};
use proptest::prelude::*;

fn arb_stpoint() -> impl Strategy<Value = StPoint> {
    (0.0f64..1_000.0, 0.0f64..1_000.0, 0i64..3_600)
        .prop_map(|(x, y, t)| StPoint::xyt(x, y, TimeSec(t)))
}

fn arb_index() -> impl Strategy<Value = GridIndex> {
    prop::collection::vec((0u64..15, arb_stpoint()), 1..60).prop_map(|obs| {
        let mut by_user: std::collections::BTreeMap<u64, Vec<StPoint>> = Default::default();
        for (u, p) in obs {
            by_user.entry(u).or_default().push(p);
        }
        let mut store = TrajectoryStore::new();
        for (u, mut pts) in by_user {
            pts.sort_by_key(|p| p.t);
            for p in pts {
                store.record(UserId(u), p);
            }
        }
        GridIndex::build(
            &store,
            GridIndexConfig {
                cell_size: 100.0,
                cell_duration: 300,
                scale: SpaceTimeScale::new(1.0),
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Spatial cloaks contain the requester, lie inside the domain, and
    /// actually hold k users.
    #[test]
    fn spatial_cloak_contract(index in arb_index(), at in arb_stpoint(), k in 1usize..8) {
        let domain = Rect::from_bounds(0.0, 0.0, 1_000.0, 1_000.0);
        if let Some(r) = interval_cloaking::spatial_cloak(&index, domain, &at, k, 600, 12) {
            prop_assert!(r.contains(&at.pos));
            prop_assert!(domain.contains_rect(&r));
            let window = TimeInterval::new(at.t - 600, at.t);
            prop_assert!(interval_cloaking::anonymity_set(&index, r, window).len() >= k);
        }
    }

    /// Spatial cloak area is monotone non-decreasing in k.
    #[test]
    fn spatial_cloak_monotone_in_k(index in arb_index(), at in arb_stpoint(), k in 1usize..6) {
        let domain = Rect::from_bounds(0.0, 0.0, 1_000.0, 1_000.0);
        let small = interval_cloaking::spatial_cloak(&index, domain, &at, k, 600, 12);
        let large = interval_cloaking::spatial_cloak(&index, domain, &at, k + 1, 600, 12);
        match (small, large) {
            (Some(s), Some(l)) => prop_assert!(s.area() <= l.area() + 1e-9),
            (None, Some(_)) => prop_assert!(false, "harder k succeeded where easier failed"),
            _ => {}
        }
    }

    /// Temporal cloaks end at the request instant, meet k, and are
    /// monotone in k.
    #[test]
    fn temporal_cloak_contract(index in arb_index(), at in arb_stpoint(), k in 1usize..6) {
        let area = Rect::from_bounds(0.0, 0.0, 1_000.0, 1_000.0);
        if let Some(w) = interval_cloaking::temporal_cloak(&index, area, &at, k, 60, 7_200) {
            prop_assert_eq!(w.end(), at.t);
            prop_assert!(interval_cloaking::anonymity_set(&index, area, w).len() >= k);
            if let Some(w2) = interval_cloaking::temporal_cloak(&index, area, &at, k + 1, 60, 7_200) {
                prop_assert!(w2.duration() >= w.duration());
            }
        }
    }

    /// Uniform cloaking is a congruence: it always contains the point,
    /// has the configured size, and two points share a cloak iff they
    /// share the cell.
    #[test]
    fn uniform_cloak_contract(a in arb_stpoint(), b in arb_stpoint(), cell in 50.0f64..500.0, slot in 60i64..900) {
        let c = UniformCloak::new(cell, slot);
        let ca = c.cloak(&a);
        prop_assert!(ca.contains(&a));
        prop_assert!((ca.rect.width() - cell).abs() < 1e-9);
        prop_assert_eq!(ca.duration(), slot - 1);
        let cb = c.cloak(&b);
        prop_assert_eq!(ca == cb, ca.contains(&b));
    }

    /// Actual-senders outcomes: released groups have ≥ k distinct users,
    /// shared contexts that cover every member, and delays within the
    /// wait budget.
    #[test]
    fn actual_senders_contract(
        reqs in prop::collection::vec((0u64..10, arb_stpoint()), 0..40),
        k in 1usize..5,
    ) {
        let mut sorted: Vec<(UserId, StPoint)> =
            reqs.into_iter().map(|(u, p)| (UserId(u), p)).collect();
        sorted.sort_by_key(|(_, p)| p.t);
        let cfg = actual_senders::ActualSendersConfig {
            k,
            max_side: 300.0,
            max_wait: 600,
        };
        let outcomes = actual_senders::evaluate(&sorted, &cfg);
        prop_assert_eq!(outcomes.len(), sorted.len());
        // Collect released groups by context.
        let mut groups: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
        for (i, o) in outcomes.iter().enumerate() {
            if let actual_senders::SenderOutcome::Released { context, delay } = o {
                prop_assert!(*delay >= 0 && *delay <= cfg.max_wait);
                prop_assert!(context.rect.contains(&sorted[i].1.pos));
                prop_assert!(context.rect.width() <= cfg.max_side + 1e-9);
                prop_assert!(context.rect.height() <= cfg.max_side + 1e-9);
                groups.entry(format!("{context}")).or_default().push(i);
            }
        }
        for (_, members) in groups {
            let users: std::collections::BTreeSet<UserId> =
                members.iter().map(|&i| sorted[i].0).collect();
            prop_assert!(users.len() >= k, "released group below k");
        }
    }
}
