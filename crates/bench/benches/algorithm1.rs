//! Criterion microbenches: Algorithm 1's two branches, parameterized
//! over every [`SpatialIndex`] backend (the first branch runs the
//! identical code through the trait for each).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hka_core::{algorithm1_first, algorithm1_subsequent, Tolerance};
use hka_geo::{StPoint, TimeSec};
use hka_mobility::{CityConfig, World, WorldConfig};
use hka_trajectory::{GridIndexConfig, IndexBackend, TrajectoryStore, UserId};
use std::hint::black_box;

fn setup() -> TrajectoryStore {
    World::generate(&WorldConfig {
        seed: 5,
        days: 3,
        n_commuters: 20,
        n_roamers: 60,
        n_poi_regulars: 10,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        background_request_rate: 0.0,
        ..WorldConfig::default()
    })
    .store()
}

fn bench_first_branch(c: &mut Criterion) {
    let store = setup();
    let tolerance = Tolerance::new(f64::MAX, i64::MAX);
    let seed = StPoint::xyt(800.0, 900.0, TimeSec::at_hm(1, 8, 30));
    let mut group = c.benchmark_group("algorithm1_first");
    for backend in IndexBackend::ALL {
        let index = backend.build(&store, GridIndexConfig::default());
        for k in [2usize, 5, 20] {
            group.bench_with_input(BenchmarkId::new(backend.name(), k), &k, |b, &k| {
                b.iter(|| {
                    black_box(algorithm1_first(
                        index.as_ref(),
                        &seed,
                        UserId(0),
                        k,
                        &tolerance,
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_subsequent_branch(c: &mut Criterion) {
    let store = setup();
    let index = IndexBackend::Grid.build(&store, GridIndexConfig::default());
    let scale = *index.scale();
    let tolerance = Tolerance::new(f64::MAX, i64::MAX);
    let seed = StPoint::xyt(800.0, 900.0, TimeSec::at_hm(1, 8, 30));
    // A realistic stored set: the 10 nearest users at the morning anchor.
    let stored: Vec<UserId> = index
        .k_nearest_users(&seed, 10, Some(UserId(0)))
        .into_iter()
        .map(|(u, _)| u)
        .collect();
    let evening = StPoint::xyt(820.0, 950.0, TimeSec::at_hm(1, 17, 30));
    c.bench_function("algorithm1_subsequent/k5_of_10", |b| {
        b.iter(|| {
            black_box(algorithm1_subsequent(
                &store, &evening, &stored, 5, &tolerance, &scale,
            ))
        })
    });
}

criterion_group!(benches, bench_first_branch, bench_subsequent_branch);
criterion_main!(benches);
