//! Criterion microbenches: spatio-temporal index queries, one series
//! per [`SpatialIndex`] backend (grid, R-tree, and the brute oracle all
//! answer through the same trait).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hka_geo::{Rect, StBox, StPoint, TimeInterval, TimeSec};
use hka_mobility::{CityConfig, World, WorldConfig};
use hka_trajectory::{GridIndexConfig, IndexBackend, TrajectoryStore, UserId};
use std::hint::black_box;

fn world_store(users: usize, days: i64) -> TrajectoryStore {
    World::generate(&WorldConfig {
        seed: 5,
        days,
        n_commuters: users / 4,
        n_roamers: users / 2,
        n_poi_regulars: users / 4,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        background_request_rate: 0.0,
        ..WorldConfig::default()
    })
    .store()
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("k_nearest_users");
    for users in [40usize, 160] {
        let store = world_store(users, 2);
        let seed = StPoint::xyt(1_000.0, 1_000.0, TimeSec::at_hm(1, 12, 0));
        for backend in IndexBackend::ALL {
            let index = backend.build(&store, GridIndexConfig::default());
            group.bench_with_input(BenchmarkId::new(backend.name(), users), &users, |b, _| {
                b.iter(|| black_box(index.k_nearest_users(&seed, 5, Some(UserId(0)))))
            });
        }
    }
    group.finish();
}

fn bench_users_crossing(c: &mut Criterion) {
    let store = world_store(80, 2);
    let b = StBox::new(
        Rect::from_bounds(500.0, 500.0, 1_500.0, 1_500.0),
        TimeInterval::new(TimeSec::at_hm(1, 11, 0), TimeSec::at_hm(1, 13, 0)),
    );
    for backend in IndexBackend::ALL {
        let index = backend.build(&store, GridIndexConfig::default());
        c.bench_function(&format!("users_crossing/{backend}"), |bch| {
            bch.iter(|| black_box(index.users_crossing(&b)))
        });
        c.bench_function(&format!("count_users_crossing/limit5/{backend}"), |bch| {
            bch.iter(|| black_box(index.count_users_crossing(&b, 5)))
        });
    }
}

criterion_group!(benches, bench_knn, bench_users_crossing);
criterion_main!(benches);
