//! Criterion microbenches: linkability functions and link-connected
//! component computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hka_anonymity::{
    link_components, CompositeLinker, Linker, MsgId, Pseudonym, PseudonymLinker, ServiceId,
    SpRequest, TrackerLinker,
};
use hka_geo::{Rect, StBox, TimeInterval, TimeSec};
use std::hint::black_box;

fn requests(n: usize) -> Vec<SpRequest> {
    (0..n)
        .map(|i| {
            let x = (i % 17) as f64 * 120.0;
            let t = (i * 67) as i64;
            SpRequest::new(
                MsgId(i as u64),
                Pseudonym((i % 23) as u64),
                StBox::new(
                    Rect::from_bounds(x, 0.0, x + 200.0, 200.0),
                    TimeInterval::new(TimeSec(t), TimeSec(t + 120)),
                ),
                ServiceId(0),
            )
        })
        .collect()
}

fn bench_link(c: &mut Criterion) {
    let reqs = requests(2);
    let (a, b) = (&reqs[0], &reqs[1]);
    let tracker = TrackerLinker::default();
    let composite = CompositeLinker::standard();
    c.bench_function("link/pseudonym", |bch| {
        bch.iter(|| black_box(PseudonymLinker.link(black_box(a), black_box(b))))
    });
    c.bench_function("link/tracker", |bch| {
        bch.iter(|| black_box(tracker.link(black_box(a), black_box(b))))
    });
    c.bench_function("link/composite", |bch| {
        bch.iter(|| black_box(composite.link(black_box(a), black_box(b))))
    });
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_components");
    for n in [50usize, 200, 800] {
        let reqs = requests(n);
        let linker = CompositeLinker::standard();
        group.bench_with_input(BenchmarkId::new("composite", n), &reqs, |b, reqs| {
            b.iter(|| black_box(link_components(reqs, &linker, 0.5)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_link, bench_components);
criterion_main!(benches);
