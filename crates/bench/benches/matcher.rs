//! Criterion microbenches: online LBQID matching throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hka_geo::{Rect, StPoint, TimeSec};
use hka_lbqid::{offline, Lbqid, Monitor};
use std::hint::black_box;

fn commute() -> Lbqid {
    Lbqid::example_commute(
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0),
        Rect::from_bounds(900.0, 900.0, 1_000.0, 1_000.0),
    )
}

/// Two weeks of round trips plus lunch-time noise.
fn stream() -> Vec<StPoint> {
    let mut out = Vec::new();
    for day in 0..14 {
        out.push(StPoint::xyt(50.0, 50.0, TimeSec::at_hm(day, 7, 30)));
        out.push(StPoint::xyt(950.0, 950.0, TimeSec::at_hm(day, 8, 30)));
        out.push(StPoint::xyt(500.0, 500.0, TimeSec::at_hm(day, 12, 0)));
        out.push(StPoint::xyt(950.0, 950.0, TimeSec::at_hm(day, 17, 0)));
        out.push(StPoint::xyt(50.0, 50.0, TimeSec::at_hm(day, 18, 0)));
    }
    out
}

fn bench_online(c: &mut Criterion) {
    let events = stream();
    c.bench_function("monitor/observe_two_weeks", |b| {
        b.iter(|| {
            let mut m = Monitor::new(commute());
            for p in &events {
                black_box(m.observe(*p));
            }
            black_box(m.is_fully_matched())
        })
    });
    // Worst-case fan-out: every request can start a traversal.
    let greedy = Lbqid::new(
        "greedy",
        vec![hka_lbqid::Element::new(
            Rect::from_bounds(0.0, 0.0, 1_000.0, 1_000.0),
            hka_geo::DayWindow::all_day(),
        )],
        "400.Days".parse().unwrap(),
    )
    .unwrap();
    c.bench_function("monitor/observe_catch_all", |b| {
        b.iter(|| {
            let mut m = Monitor::new(greedy.clone());
            for p in &events {
                black_box(m.observe(*p));
            }
        })
    });
}

fn bench_offline(c: &mut Criterion) {
    // Exhaustive Definition-3 checking on a small but nontrivial set.
    let events: Vec<StPoint> = stream().into_iter().take(15).collect();
    let q = commute();
    c.bench_function("offline/matches_15_requests", |b| {
        b.iter(|| black_box(offline::matches(&q, &events)))
    });
}

criterion_group!(benches, bench_online, bench_offline);
criterion_main!(benches);
