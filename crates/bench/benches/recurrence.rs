//! Criterion microbenches: recurrence-formula evaluation and calendar
//! arithmetic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hka_geo::{TimeInterval, TimeSec, HOUR};
use hka_granules::{calendar, Granularity, Recurrence};
use std::hint::black_box;

fn observations(n: usize) -> Vec<TimeInterval> {
    (0..n)
        .map(|i| {
            let day = (i / 2) as i64;
            let start = TimeSec::at(day, 7 * HOUR + (i % 2) as i64 * 4 * HOUR);
            TimeInterval::new(start, start + HOUR)
        })
        .collect()
}

fn bench_is_satisfied(c: &mut Criterion) {
    let commute: Recurrence = "3.Weekdays * 2.Weeks".parse().unwrap();
    let deep: Recurrence = "2.Days * 2.Weeks * 2.Months".parse().unwrap();
    let mut group = c.benchmark_group("recurrence_is_satisfied");
    for n in [8usize, 64, 512] {
        let obs = observations(n);
        group.bench_with_input(BenchmarkId::new("commute", n), &obs, |b, obs| {
            b.iter(|| black_box(commute.is_satisfied(obs)))
        });
        group.bench_with_input(BenchmarkId::new("three-level", n), &obs, |b, obs| {
            b.iter(|| black_box(deep.is_satisfied(obs)))
        });
    }
    group.finish();
}

fn bench_granules(c: &mut Criterion) {
    let t = TimeSec::at_hm(1_000, 13, 37);
    c.bench_function("granule_of/weekdays", |b| {
        b.iter(|| black_box(Granularity::Weekdays.granule_of(black_box(t))))
    });
    c.bench_function("granule_of/months", |b| {
        b.iter(|| black_box(Granularity::Months.granule_of(black_box(t))))
    });
    c.bench_function("calendar/date_of_day", |b| {
        b.iter(|| black_box(calendar::date_of_day(black_box(123_456))))
    });
    c.bench_function("recurrence/parse", |b| {
        b.iter(|| black_box("3.Weekdays * 2.Weeks".parse::<Recurrence>().unwrap()))
    });
}

criterion_group!(benches, bench_is_satisfied, bench_granules);
criterion_main!(benches);
