//! **Continuous benchmark: crash recovery from snapshot + suffix, and
//! PHL compaction memory bounds.**
//!
//! Two halves, matching the two resource claims of the checkpoint
//! design:
//!
//! * **Recovery.** A synthetic journal of schema-valid `ts.forwarded`
//!   records over a user-scale ladder, with a checkpoint snapshot
//!   anchored into the chain near the end (a ~2% suffix follows it).
//!   The bench times a full genesis replay (`hka_audit::replay_file`)
//!   against `resume_from_snapshot` over the same file, and checks the
//!   two reports are byte-identical. The gate is the acceptance
//!   criterion from the checkpoint design: at the 100k-user rung,
//!   snapshot + suffix must be at least **5× faster** than replaying
//!   from genesis.
//!
//! * **Compaction.** One million users receive paced location fixes
//!   day by day, with a granularity-aware compaction pass
//!   (`CompactionPolicy`, `Days`) after each simulated day — the
//!   steady-state loop a long-lived trusted server runs. The gate:
//!   retained points never exceed the analytic fold bound (≤ 6
//!   representatives per granule plus the untouched recent window),
//!   and resident history bytes stay under half of what the appended
//!   fixes would occupy uncompacted.
//!
//! Writes `BENCH_checkpoint.json` and exits non-zero if a report
//! mismatches, the speedup gate fails, or compaction breaches either
//! bound.
//!
//! ```text
//! cargo run --release -p hka-bench --bin bench_checkpoint -- [--out DIR]
//! ```

use std::path::Path;
use std::time::Instant;

use hka_audit::{replay_file, resume_from_snapshot, state_at, AuditConfig, AUDIT_SECTION};
use hka_geo::{Point, StPoint, TimeSec, DAY};
use hka_granules::Granularity;
use hka_obs::checkpoint::{anchor_payload, Snapshot};
use hka_obs::{Journal, Json, CHECKPOINT_KIND};
use hka_trajectory::{CompactionPolicy, TrajectoryStore, UserId};

/// User-scale ladder for the recovery half. The top rung carries the
/// speedup gate.
const USER_SCALES: [u64; 2] = [10_000, 100_000];

/// Journal records per user in the checkpointed prefix — a served
/// request every so often over the deployment's history.
const RECORDS_PER_USER: u64 = 8;

/// Suffix records (per user, as a fraction): the traffic that arrived
/// after the last checkpoint and must be replayed either way.
const SUFFIX_DIVISOR: u64 = 50;

/// The recovery gate: snapshot + suffix at the top rung must beat a
/// genesis replay by at least this factor.
const GATE_SPEEDUP: f64 = 5.0;

/// Compaction half: population size and per-day fix rate.
const COMPACT_USERS: u64 = 1_000_000;
const COMPACT_DAYS: u64 = 5;
const FIXES_PER_DAY: u64 = 24;

/// The memory gate: resident history bytes after the run must be under
/// this fraction of the uncompacted total.
const GATE_RESIDENT_RATIO: f64 = 0.5;

/// A schema-valid exact-point forward so the auditor decodes every
/// record cleanly; `i` spreads users and time deterministically.
fn forwarded_payload(i: u64, users: u64) -> Json {
    let at = i as i64;
    let x = (i % 97) as f64;
    let y = (i % 89) as f64;
    Json::obj([
        ("user", Json::Int((i % users) as i64)),
        ("at", Json::Int(at)),
        ("x_min", Json::Num(x)),
        ("y_min", Json::Num(y)),
        ("x_max", Json::Num(x)),
        ("y_max", Json::Num(y)),
        ("t_start", Json::Int(at)),
        ("t_end", Json::Int(at)),
        ("generalized", Json::Bool(false)),
        ("hk_ok", Json::Bool(true)),
    ])
}

struct RecoveryRung {
    users: u64,
    prefix: u64,
    suffix: u64,
    snapshot_bytes: u64,
    genesis_secs: f64,
    resume_secs: f64,
    speedup: f64,
    identical: bool,
}

/// Builds a journal of `prefix` records, snapshots the audit state at
/// that position, anchors the snapshot into the chain, appends `suffix`
/// more records, and returns the snapshot path.
fn build_journal(path: &Path, snap: &Path, users: u64, prefix: u64, suffix: u64) -> u64 {
    let cfg = AuditConfig::default();
    let file = std::fs::File::create(path).expect("create bench journal");
    let mut journal = Journal::new(file);
    for i in 0..prefix {
        journal
            .append("ts.forwarded", forwarded_payload(i, users))
            .expect("append prefix");
    }
    journal.flush().expect("flush prefix");

    let (audit_state, records, head) = state_at(path, None, cfg).expect("audit state at prefix");
    assert_eq!(records, prefix, "prefix replay covers every record");
    let mut snapshot = Snapshot::new(records, head.clone());
    snapshot.set_section(AUDIT_SECTION, audit_state);
    let encoded = snapshot.encode();
    std::fs::write(snap, &encoded).expect("write snapshot");
    let hash = snapshot.content_hash();
    let name = snap.file_name().unwrap().to_string_lossy().into_owned();

    journal
        .append(
            CHECKPOINT_KIND,
            anchor_payload(&name, records, &head, &hash),
        )
        .expect("append anchor");
    for i in 0..suffix {
        journal
            .append("ts.forwarded", forwarded_payload(prefix + i, users))
            .expect("append suffix");
    }
    journal.flush().expect("flush suffix");
    encoded.len() as u64
}

fn run_recovery(users: u64) -> RecoveryRung {
    let cfg = AuditConfig::default();
    let tmp = std::env::temp_dir();
    let path = tmp.join(format!("bench-ckpt-{}-{users}.journal", std::process::id()));
    let snap = tmp.join(format!("bench-ckpt-{}-{users}.snap", std::process::id()));
    let prefix = users * RECORDS_PER_USER;
    let suffix = users / SUFFIX_DIVISOR;
    let snapshot_bytes = build_journal(&path, &snap, users, prefix, suffix);

    let t0 = Instant::now();
    let genesis = replay_file(&path, cfg).expect("genesis replay");
    let genesis_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let resumed = resume_from_snapshot(&path, &snap).expect("snapshot resume");
    let resume_secs = t0.elapsed().as_secs_f64();

    let identical = genesis.to_json().to_string() == resumed.to_json().to_string();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&snap);
    RecoveryRung {
        users,
        prefix,
        suffix,
        snapshot_bytes,
        genesis_secs,
        resume_secs,
        speedup: genesis_secs / resume_secs,
        identical,
    }
}

struct CompactionRun {
    appended_points: u64,
    retained_points: u64,
    bound_points: u64,
    peak_points: u64,
    resident_bytes: u64,
    uncompacted_bytes: u64,
    secs: f64,
}

/// Day-by-day append-then-compact loop at `COMPACT_USERS` users. Every
/// user gets `FIXES_PER_DAY` fixes per day; the nightly pass folds
/// everything older than one day at `Days` granularity.
fn run_compaction() -> CompactionRun {
    let t0 = Instant::now();
    let policy = CompactionPolicy::new(DAY, Granularity::Days);
    let mut store = TrajectoryStore::default();
    let mut peak_points = 0u64;
    for day in 0..COMPACT_DAYS {
        for u in 0..COMPACT_USERS {
            for f in 0..FIXES_PER_DAY {
                let t = day as i64 * DAY + (f as i64 * DAY) / FIXES_PER_DAY as i64;
                let p = Point {
                    x: ((u + f) % 997) as f64,
                    y: ((u ^ f) % 991) as f64,
                };
                store.record(
                    UserId(u),
                    StPoint {
                        pos: p,
                        t: TimeSec(t),
                    },
                );
            }
        }
        peak_points = peak_points.max(store.total_points() as u64);
        store.compact(TimeSec((day as i64 + 1) * DAY), &policy);
    }
    let appended = COMPACT_USERS * COMPACT_DAYS * FIXES_PER_DAY;
    // Fold bound: ≤ 6 representatives per folded granule (one full day
    // each for every day but the last) plus the untouched recent day.
    let bound = COMPACT_USERS * (6 * (COMPACT_DAYS - 1) + FIXES_PER_DAY);
    let point_bytes = std::mem::size_of::<StPoint>() as u64;
    CompactionRun {
        appended_points: appended,
        retained_points: store.total_points() as u64,
        bound_points: bound,
        peak_points,
        resident_bytes: store.approx_bytes() as u64,
        uncompacted_bytes: appended * point_bytes,
        secs: t0.elapsed().as_secs_f64(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_dir = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("usage: bench_checkpoint [--out DIR] (got '{other}')");
                std::process::exit(2);
            }
        }
    }

    let mut failed = false;
    let mut rows = Vec::new();
    let mut top_speedup = 0.0f64;
    for users in USER_SCALES {
        let r = run_recovery(users);
        println!(
            "recover {:>7} users: {} + {} records | genesis {:.3}s, resume {:.3}s — {:.1}x{}",
            r.users,
            r.prefix,
            r.suffix,
            r.genesis_secs,
            r.resume_secs,
            r.speedup,
            if r.identical { "" } else { " REPORT-MISMATCH" },
        );
        if !r.identical {
            failed = true;
        }
        if users == USER_SCALES[USER_SCALES.len() - 1] {
            top_speedup = r.speedup;
        }
        rows.push(Json::obj([
            ("users", Json::from(r.users)),
            ("prefix_records", Json::from(r.prefix)),
            ("suffix_records", Json::from(r.suffix)),
            ("snapshot_bytes", Json::from(r.snapshot_bytes)),
            ("genesis_secs", Json::Num(r.genesis_secs)),
            ("resume_secs", Json::Num(r.resume_secs)),
            ("speedup", Json::Num(r.speedup)),
            ("reports_identical", Json::Bool(r.identical)),
        ]));
    }
    if top_speedup < GATE_SPEEDUP {
        failed = true;
    }

    let c = run_compaction();
    let ratio = c.resident_bytes as f64 / c.uncompacted_bytes as f64;
    println!(
        "compact {} users x {} days x {} fixes/day: {} appended -> {} retained \
         (bound {}, peak {}) | resident {:.1} MiB of {:.1} MiB uncompacted ({:.0}%) in {:.1}s",
        COMPACT_USERS,
        COMPACT_DAYS,
        FIXES_PER_DAY,
        c.appended_points,
        c.retained_points,
        c.bound_points,
        c.peak_points,
        c.resident_bytes as f64 / (1 << 20) as f64,
        c.uncompacted_bytes as f64 / (1 << 20) as f64,
        ratio * 100.0,
        c.secs,
    );
    if c.retained_points > c.bound_points || ratio >= GATE_RESIDENT_RATIO {
        failed = true;
    }

    let json = Json::obj([
        ("bench", Json::from("checkpoint")),
        (
            "definition",
            Json::from(
                "recovery: wall-clock of a genesis replay_file vs resume_from_snapshot over \
                 the same journal (checkpoint anchored before a ~2% suffix), reports compared \
                 byte-for-byte; compaction: day-by-day append-then-compact at Days granularity, \
                 retained points checked against the 6-per-granule fold bound",
            ),
        ),
        ("records_per_user", Json::from(RECORDS_PER_USER)),
        ("recovery", Json::Arr(rows)),
        (
            "compaction",
            Json::obj([
                ("users", Json::from(COMPACT_USERS)),
                ("days", Json::from(COMPACT_DAYS)),
                ("fixes_per_day", Json::from(FIXES_PER_DAY)),
                ("appended_points", Json::from(c.appended_points)),
                ("retained_points", Json::from(c.retained_points)),
                ("bound_points", Json::from(c.bound_points)),
                ("peak_points", Json::from(c.peak_points)),
                ("resident_bytes", Json::from(c.resident_bytes)),
                ("uncompacted_bytes", Json::from(c.uncompacted_bytes)),
                ("resident_ratio", Json::Num(ratio)),
                ("secs", Json::Num(c.secs)),
            ]),
        ),
        (
            "gate",
            Json::obj([
                ("speedup_at_top_rung_at_least", Json::Num(GATE_SPEEDUP)),
                ("speedup_at_top_rung", Json::Num(top_speedup)),
                ("resident_ratio_below", Json::Num(GATE_RESIDENT_RATIO)),
                ("pass", Json::Bool(!failed)),
            ]),
        ),
    ]);

    let path = format!("{out_dir}/BENCH_checkpoint.json");
    std::fs::write(&path, json.to_string() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {path}");

    if failed {
        eprintln!(
            "FAIL: report mismatch, speedup below {GATE_SPEEDUP}x, or a compaction bound breached"
        );
        std::process::exit(1);
    }
}
