//! **Continuous benchmark: TCP gateway under open-loop load.**
//!
//! Measures what serving the Trusted Server over the wire costs,
//! against the in-process ceiling on the same machine:
//!
//! 1. drives the standard protected-city workload through an
//!    in-process [`RequestService`] with a journal attached — the
//!    durable no-network baseline (events/sec, ns/request);
//! 2. replays the *same* pre-serialized envelope stream through a
//!    fresh gateway at several offered arrival rates. The generator is
//!    **open-loop**: every envelope has a scheduled send time fixed
//!    before the run, and request latency is measured from the
//!    *scheduled* send to response receipt — a sender that falls
//!    behind charges its backlog to latency instead of silently
//!    lowering the load (no coordinated omission);
//! 3. reports p50/p99/p999 per rate, the saturation point (first rate
//!    whose achieved throughput drops below 90% of offered), and two
//!    acceptance gates:
//!      * p99 at the lowest rate < 10× the in-process per-request
//!        wall time (the wire must cost single-digit multiples, not
//!        orders of magnitude);
//!      * peak achieved throughput ≥ 50% of the in-process rate.
//!
//! Writes `BENCH_gateway.json`. Exits non-zero when a gate fails
//! (full mode only — `--smoke` runs a reduced workload for CI and
//! records the gates without enforcing them, since shared runners
//! make sub-millisecond latency promises unkeepable).
//!
//! ```text
//! cargo run --release -p hka-bench --bin bench_gateway -- [--out DIR] [--smoke]
//! ```

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use hka_bench::{build, ScenarioConfig};
use hka_core::{parse_wire_reply, RequestEnvelope, RequestService, TrustedServer, WireReply};
use hka_gateway::{Gateway, GatewayConfig};
use hka_mobility::World;
use hka_obs::Json;

fn envelopes(world: &World) -> Vec<RequestEnvelope> {
    use hka_anonymity::ServiceId;
    use hka_mobility::EventKind;
    world
        .events
        .iter()
        .enumerate()
        .map(|(i, e)| match e.kind {
            EventKind::Location => RequestEnvelope::location(i as u64, e.user, e.at),
            EventKind::Request { service } => {
                RequestEnvelope::request(i as u64, e.user, e.at, ServiceId(service))
            }
        })
        .collect()
}

/// A file sink that fsyncs every write — the same "durable after every
/// event" contract as `bench_shard`'s sequential baseline, so the two
/// artifacts' throughput numbers are directly comparable.
struct FsyncEachWrite(std::fs::File);

impl Write for FsyncEachWrite {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write_all(buf)?;
        self.0.sync_data()?;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

/// A durably-journaled server for one run. Both sides of the
/// comparison — the in-process baseline and the backend behind the
/// gateway — use the identical sink, so the rate sweep isolates the
/// cost of the wire, not a difference in durability.
fn backend(cfg: &ScenarioConfig, path: &std::path::Path) -> TrustedServer {
    let mut scenario = build(cfg);
    scenario
        .ts
        .attach_journal(hka_obs::Journal::new(Box::new(FsyncEachWrite(
            std::fs::File::create(path).expect("create journal"),
        ))
            as Box<dyn Write + Send + Sync>));
    scenario.ts
}

fn percentile(sorted: &[u64], thousandths: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * thousandths / 1000).min(sorted.len() - 1);
    sorted[idx]
}

struct RateResult {
    offered_eps: f64,
    achieved_eps: f64,
    sent: usize,
    responses: usize,
    overloads: u64,
    shed_locations: u64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
}

/// Concurrent client connections per run. One connection serializes
/// every frame through a single gateway reader thread, which caps the
/// measurable throughput at the JSON parse rate regardless of how fast
/// the backend is; a small fan-out models independent clients and lets
/// the gateway's thread-per-connection design actually parallelize
/// framing. Envelopes are dealt round-robin, and every envelope keeps
/// its *global* schedule slot, so the offered rate is exact. On a
/// single-core host extra connections only add scheduling thrash, so
/// the fan-out follows the hardware.
fn connections() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4)
}

/// One open-loop run: a fresh backend behind a fresh gateway, the full
/// envelope stream offered at `rate` events/sec across
/// [`connections`] client connections.
fn run_rate(
    cfg: &ScenarioConfig,
    envs: &[RequestEnvelope],
    lines: &[String],
    rate: f64,
    journal: &std::path::Path,
) -> RateResult {
    let gw = Gateway::spawn(
        "127.0.0.1:0",
        Box::new(backend(cfg, journal)),
        GatewayConfig::default(),
    )
    .expect("gateway binds");

    let n_conns = connections();
    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let mut got: Vec<(u64, Instant)> = Vec::new();
    let mut send_wall = Duration::ZERO;

    std::thread::scope(|scope| {
        let mut receivers = Vec::new();
        let mut senders = Vec::new();
        for conn in 0..n_conns {
            let stream = TcpStream::connect(gw.addr()).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let read_half = stream.try_clone().expect("clone stream");
            let my_requests = envs
                .iter()
                .skip(conn)
                .step_by(n_conns)
                .filter(|e| e.is_request())
                .count();

            // Receiver: every request on this connection produces
            // exactly one response (a real decision or a fail-closed
            // overload refusal), so the count is known up front.
            receivers.push(scope.spawn(move || {
                let mut reader = BufReader::new(read_half);
                let mut got: Vec<(u64, Instant)> = Vec::with_capacity(my_requests);
                let mut line = String::new();
                while got.len() < my_requests {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                    if let Ok(WireReply::Resp(resp)) = parse_wire_reply(&line) {
                        got.push((resp.req_id, Instant::now()));
                    }
                }
                got
            }));

            // Open-loop sender: scheduled offsets are fixed by the
            // offered rate; when behind schedule it sends as fast as
            // it can and the backlog shows up in measured latency.
            senders.push(scope.spawn(move || {
                let mut out = BufWriter::new(stream);
                for (i, (env, line)) in envs
                    .iter()
                    .zip(lines)
                    .enumerate()
                    .skip(conn)
                    .step_by(n_conns)
                {
                    let scheduled = start + interval * (i as u32);
                    loop {
                        let now = Instant::now();
                        if now >= scheduled {
                            break;
                        }
                        // Ahead of schedule: everything buffered is on
                        // the wire before we sleep, so latency never
                        // includes idle buffer residence.
                        out.flush().expect("flush");
                        std::thread::sleep((scheduled - now).min(Duration::from_micros(200)));
                    }
                    out.write_all(line.as_bytes()).expect("send");
                    out.write_all(b"\n").expect("send");
                    if env.is_request() {
                        out.flush().expect("flush request");
                    }
                }
                out.flush().expect("final flush");
                start.elapsed()
            }));
        }
        for s in senders {
            send_wall = send_wall.max(s.join().expect("sender thread"));
        }
        for r in receivers {
            got.extend(r.join().expect("receiver thread"));
        }
    });
    let last_recv = got
        .iter()
        .map(|(_, t)| *t)
        .max()
        .unwrap_or_else(Instant::now);
    let wall = last_recv.duration_since(start).max(send_wall);

    let snap = gw.stats().snapshot();
    drop(gw.shutdown());
    // Achieved throughput counts what the backend actually processed:
    // shed locations and overload refusals are load the gateway
    // *survived*, not load it served.
    let processed = envs.len() as u64 - snap.shed_locations - snap.overloads;

    let mut latencies: Vec<u64> = got
        .iter()
        .map(|(req_id, recv)| {
            let scheduled = start + interval * (*req_id as u32);
            u64::try_from(recv.duration_since(scheduled).as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    latencies.sort_unstable();

    RateResult {
        offered_eps: rate,
        achieved_eps: processed as f64 / wall.as_secs_f64(),
        sent: envs.len(),
        responses: got.len(),
        overloads: snap.overloads,
        shed_locations: snap.shed_locations,
        p50_ns: percentile(&latencies, 500),
        p99_ns: percentile(&latencies, 990),
        p999_ns: percentile(&latencies, 999),
    }
}

/// The sustained-throughput probe: everything the paced sweep is not.
/// The inflight queue is sized to the whole workload so nothing is
/// ever shed (asserted), the client blasts the pre-serialized stream
/// through one connection with large buffered writes, and the clock
/// stops at the last response. This measures the pipeline's drain
/// rate — client serialization, gateway framing + parse, backend
/// processing, durable journal — with zero pacing overhead, which is
/// what "the gateway sustains X events/sec" means.
fn run_peak(
    cfg: &ScenarioConfig,
    envs: &[RequestEnvelope],
    lines: &[String],
    journal: &std::path::Path,
) -> (u64, f64) {
    let n_requests = envs.iter().filter(|e| e.is_request()).count();
    let config = GatewayConfig {
        inflight: envs.len() + 16,
        ..GatewayConfig::default()
    };
    let gw = Gateway::spawn("127.0.0.1:0", Box::new(backend(cfg, journal)), config)
        .expect("gateway binds");
    let stream = TcpStream::connect(gw.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let read_half = stream.try_clone().expect("clone stream");

    let start = Instant::now();
    let receiver = std::thread::spawn(move || {
        let mut reader = BufReader::new(read_half);
        let mut seen = 0usize;
        let mut line = String::new();
        while seen < n_requests {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            if matches!(parse_wire_reply(&line), Ok(WireReply::Resp(_))) {
                seen += 1;
            }
        }
        (seen, Instant::now())
    });
    let mut out = BufWriter::with_capacity(256 * 1024, stream);
    for line in lines {
        out.write_all(line.as_bytes()).expect("send");
        out.write_all(b"\n").expect("send");
    }
    out.flush().expect("final flush");
    let (seen, last) = receiver.join().expect("receiver thread");
    let wall = last.duration_since(start);

    let snap = gw.stats().snapshot();
    drop(gw.shutdown());
    assert_eq!(seen, n_requests, "peak probe lost responses");
    assert_eq!(snap.shed_locations, 0, "peak probe must not shed");
    assert_eq!(snap.overloads, 0, "peak probe must not overload");
    let wall_ns = wall.as_nanos() as u64;
    (wall_ns, envs.len() as f64 / wall.as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_dir = args[i + 1].clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => {
                eprintln!("usage: bench_gateway [--out DIR] [--smoke] (got '{other}')");
                std::process::exit(2);
            }
        }
    }

    let cfg = if smoke {
        ScenarioConfig {
            seed: 1,
            days: 1,
            n_commuters: 3,
            n_roamers: 12,
            ..ScenarioConfig::default()
        }
    } else {
        ScenarioConfig {
            seed: 1,
            days: 2,
            n_commuters: 6,
            n_roamers: 30,
            ..ScenarioConfig::default()
        }
    };

    let scenario = build(&cfg);
    let envs = envelopes(&scenario.world);
    let lines: Vec<String> = envs.iter().map(|e| e.to_wire()).collect();
    let n_requests = envs.iter().filter(|e| e.is_request()).count();
    drop(scenario);

    let tmp = std::env::temp_dir().join(format!("hka-bench-gw-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("temp dir");

    // --- In-process durable baseline: the no-network ceiling. ---------
    let inproc_journal = tmp.join("inproc.jsonl");
    let mut ts = backend(&cfg, &inproc_journal);
    let svc: &mut dyn RequestService = &mut ts;
    let mut inproc_lat: Vec<u64> = Vec::with_capacity(n_requests);
    let t0 = Instant::now();
    for env in &envs {
        if env.is_request() {
            // The sequential server decides inside submit, so this is
            // the full in-process per-request latency distribution —
            // the tail (Algorithm-1 window passes, per-record fsync)
            // exists without any network and is the fair yardstick for
            // the gateway's tail.
            let t = Instant::now();
            svc.submit(env);
            inproc_lat.push(t.elapsed().as_nanos() as u64);
        } else {
            svc.submit(env);
        }
    }
    let responses = svc.drain();
    svc.flush_journal().expect("flush baseline journal");
    let inproc_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(responses.len(), n_requests);
    drop(ts);
    inproc_lat.sort_unstable();
    let inproc_eps = envs.len() as f64 / (inproc_ns as f64 / 1e9);
    let inproc_per_request_ns = inproc_ns as f64 / n_requests.max(1) as f64;
    let inproc_p99_ns = percentile(&inproc_lat, 990);

    // --- Offered rates, scaled off the in-process ceiling. ------------
    let fractions: &[f64] = if smoke {
        &[0.1, 0.25, 0.5]
    } else {
        &[0.1, 0.25, 0.5, 1.0]
    };
    let mut results = Vec::new();
    for (ri, frac) in fractions.iter().enumerate() {
        let rate = (inproc_eps * frac).max(1_000.0);
        let journal = tmp.join(format!("gw-{ri}.jsonl"));
        let res = run_rate(&cfg, &envs, &lines, rate, &journal);
        println!(
            "rate {:>9.0}/s: achieved {:>9.0}/s, {} responses, p50 {:>7.1} us, p99 {:>8.1} us, p999 {:>8.1} us{}",
            res.offered_eps,
            res.achieved_eps,
            res.responses,
            res.p50_ns as f64 / 1e3,
            res.p99_ns as f64 / 1e3,
            res.p999_ns as f64 / 1e3,
            if res.overloads > 0 || res.shed_locations > 0 {
                format!(
                    " ({} overloads, {} shed)",
                    res.overloads, res.shed_locations
                )
            } else {
                String::new()
            }
        );
        results.push(res);
    }

    // --- Sustained-throughput probe (closed-loop, nothing shed). ------
    let (peak_wall_ns, peak_eps) = run_peak(&cfg, &envs, &lines, &tmp.join("gw-peak.jsonl"));
    let _ = std::fs::remove_dir_all(&tmp);

    let saturation = results
        .iter()
        .find(|r| r.achieved_eps < 0.9 * r.offered_eps)
        .map(|r| r.offered_eps);
    let lowest = &results[0];
    // The wire may cost single-digit multiples of the in-process
    // request tail, never orders of magnitude. The yardstick is the
    // larger of the in-process p99 and mean: on a quiet disk the p99
    // dominates; on a noisy one the mean keeps the bound meaningful.
    let latency_bound_ns = 10.0 * (inproc_p99_ns as f64).max(inproc_per_request_ns);
    let gate_latency = (lowest.p99_ns as f64) < latency_bound_ns;
    let gate_throughput = peak_eps >= 0.5 * inproc_eps;

    let json = Json::obj([
        ("bench", Json::from("gateway")),
        ("smoke", Json::Bool(smoke)),
        (
            "scenario",
            Json::obj([
                ("seed", Json::from(cfg.seed)),
                ("days", Json::Int(cfg.days)),
                ("commuters", Json::from(cfg.n_commuters as u64)),
                ("roamers", Json::from(cfg.n_roamers as u64)),
                ("k", Json::from(cfg.params.k as u64)),
                ("events", Json::from(envs.len() as u64)),
                ("requests", Json::from(n_requests as u64)),
            ]),
        ),
        (
            "inproc",
            Json::obj([
                ("wall_ns", Json::from(inproc_ns)),
                ("events_per_sec", Json::Num(inproc_eps)),
                ("per_request_ns", Json::Num(inproc_per_request_ns)),
                ("request_p50_ns", Json::from(percentile(&inproc_lat, 500))),
                ("request_p99_ns", Json::from(inproc_p99_ns)),
            ]),
        ),
        (
            "rates",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("offered_eps", Json::Num(r.offered_eps)),
                            ("achieved_eps", Json::Num(r.achieved_eps)),
                            ("sent", Json::from(r.sent as u64)),
                            ("responses", Json::from(r.responses as u64)),
                            ("overloads", Json::from(r.overloads)),
                            ("shed_locations", Json::from(r.shed_locations)),
                            ("p50_ns", Json::from(r.p50_ns)),
                            ("p99_ns", Json::from(r.p99_ns)),
                            ("p999_ns", Json::from(r.p999_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "saturation_eps",
            saturation.map(Json::Num).unwrap_or(Json::Null),
        ),
        (
            "peak",
            Json::obj([
                ("wall_ns", Json::from(peak_wall_ns)),
                ("events_per_sec", Json::Num(peak_eps)),
            ]),
        ),
        (
            "gates",
            Json::obj([
                (
                    "p99_lowest_rate_under_10x_inproc_request",
                    Json::Bool(gate_latency),
                ),
                (
                    "peak_throughput_at_least_half_inproc",
                    Json::Bool(gate_throughput),
                ),
            ]),
        ),
    ]);

    let path = format!("{out_dir}/BENCH_gateway.json");
    std::fs::write(&path, json.to_string() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {path}");
    println!(
        "inproc {:.0} events/s ({:.1} us/request, p99 {:.1} us) | gateway sustains {:.0} events/s | saturation {}",
        inproc_eps,
        inproc_per_request_ns / 1e3,
        inproc_p99_ns as f64 / 1e3,
        peak_eps,
        saturation.map_or("none observed".to_string(), |s| format!("{s:.0}/s")),
    );

    if !smoke {
        if !gate_latency {
            eprintln!(
                "FAIL: p99 at lowest rate ({:.1} us) >= 10x in-process request latency \
                 (p99 {:.1} us, mean {:.1} us)",
                lowest.p99_ns as f64 / 1e3,
                inproc_p99_ns as f64 / 1e3,
                inproc_per_request_ns / 1e3,
            );
            std::process::exit(1);
        }
        if !gate_throughput {
            eprintln!(
                "FAIL: peak gateway throughput {peak_eps:.0}/s < 50% of in-process {inproc_eps:.0}/s"
            );
            std::process::exit(1);
        }
    }
}
