//! **Continuous benchmark: `SpatialIndex` backends on the Algorithm-1
//! query path.**
//!
//! Runs the first-element branch of Algorithm 1 (`algorithm1_first`,
//! the k-nearest-users window query that dominates the preservation
//! strategy's cost) through every backend — grid, R-tree, SoA, and the
//! brute-force oracle — over the identical seeded query sample at four
//! store sizes (the largest ~4M points), and writes a one-line
//! `BENCH_index.json` so future perf PRs have a tracked baseline.
//!
//! Three gates make this a regression check rather than a scoreboard:
//!
//! * every backend's Algorithm-1 result is compared against the brute
//!   oracle on every sampled query (exit non-zero on any divergence);
//! * at the largest size, each true *index* (grid, rtree) must beat the
//!   O(k·n) brute scan (exit non-zero otherwise — an index slower than
//!   the exhaustive scan at ~4M points is a structural regression, with
//!   generous slack for shared-host noise; the SoA layout is itself a
//!   scan, so it is reported but not gated);
//! * on the 1M-point store, the incrementally maintained [`UnionIndex`]
//!   must answer the protected-request window query at least **2×**
//!   faster than the per-request re-union baseline (a fresh
//!   [`IndexSnapshot`] fanned out over 4 and 8 user-disjoint shard
//!   indexes), after matching it answer-for-answer.
//!
//! ```text
//! cargo run --release -p hka-bench --bin bench_index -- [--out DIR] [--backends grid,rtree,soa,brute]
//! ```

use hka_bench::{median, parse_backends, time_ns, Cell, Report};
use hka_core::{algorithm1_first, Tolerance};
use hka_geo::StPoint;
use hka_mobility::{CityConfig, EventKind, World, WorldConfig};
use hka_obs::Json;
use hka_trajectory::{
    BruteIndex, GridIndexConfig, IndexBackend, IndexSnapshot, TrajectoryStore, UnionIndex, UserId,
};

const SEED: u64 = 77;
const K: usize = 5;
const QUERIES: usize = 40;
const SIZES: [(usize, i64); 4] = [(20, 1), (80, 4), (160, 8), (540, 8)];
/// Shard counts for the union-vs-re-union ladder at the largest size.
const UNION_SHARDS: [usize; 2] = [4, 8];
/// Minimum acceptable union speedup over the re-union baseline.
const UNION_GATE: f64 = 2.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_dir = args[i + 1].clone();
                i += 2;
            }
            "--backends" if i + 1 < args.len() => i += 2,
            other => {
                eprintln!(
                    "usage: bench_index [--out DIR] [--backends grid,rtree,soa,brute] (got '{other}')"
                );
                std::process::exit(2);
            }
        }
    }
    let backends = parse_backends(args);
    let tolerance = Tolerance::new(f64::MAX, i64::MAX);

    let mut columns = vec!["n points".to_string(), "users".to_string()];
    for b in &backends {
        columns.push(format!("{b} µs"));
    }
    let column_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "bench_index",
        "Algorithm-1 window queries per SpatialIndex backend (median µs)",
    )
    .columns(&column_refs);

    let mut sizes_json = Vec::new();
    let mut speedup_largest: Option<f64> = None;
    let mut union_json = Vec::new();
    let mut union_speedup: Option<f64> = None;
    let mut union_report = Report::new(
        "bench_index_union",
        "Incremental union vs per-request re-union on the ~4M-point store (µs per window query)",
    )
    .columns(&[
        "shards",
        "re-union µs",
        "union µs",
        "memo-hit µs",
        "rebuild ms",
        "speedup",
    ]);
    for (users, days) in SIZES {
        let world = World::generate(&WorldConfig {
            seed: SEED,
            days,
            sample_interval: 60,
            n_commuters: users / 4,
            n_roamers: users / 2,
            n_poi_regulars: users / 4,
            city: CityConfig {
                width: 2_000.0,
                height: 2_000.0,
                ..CityConfig::default()
            },
            background_request_rate: 0.0,
            ..WorldConfig::default()
        });
        let store = world.store();
        let n = store.total_points();
        let queries: Vec<(UserId, StPoint)> = world
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Location)
            .step_by((world.events.len() / 50).max(1))
            .map(|e| (e.user, e.at))
            .take(QUERIES)
            .collect();

        // The oracle is always built, even if not benchmarked: it is the
        // per-query equivalence gate for whatever backends run. Its
        // answers are computed once per size, not once per backend.
        let oracle = BruteIndex::build(&store, GridIndexConfig::default().scale);
        let wants: Vec<_> = queries
            .iter()
            .map(|(u, q)| algorithm1_first(&oracle, q, *u, K, &tolerance))
            .collect();

        let mut per_backend = Vec::new();
        let mut brute_us: Option<f64> = None;
        let mut worst_indexed_us: f64 = 0.0;
        for backend in &backends {
            let index = backend.build(&store, GridIndexConfig::default());
            let mut samples = Vec::with_capacity(queries.len());
            for ((u, q), want) in queries.iter().zip(&wants) {
                let got = algorithm1_first(index.as_ref(), q, *u, K, &tolerance);
                if &got != want {
                    eprintln!(
                        "FAIL: {backend} diverged from brute oracle at n={n} \
                         user={u:?} seed={q:?}"
                    );
                    std::process::exit(1);
                }
                samples.push(time_ns(3, || {
                    std::hint::black_box(algorithm1_first(index.as_ref(), q, *u, K, &tolerance));
                }));
            }
            let us = median(&samples) / 1_000.0;
            if *backend == IndexBackend::Brute {
                brute_us = Some(us);
            } else if !backend.is_scan() {
                // Scan layouts (soa) are reported for the record but not
                // held to the beats-the-scan gate — they *are* scans.
                worst_indexed_us = worst_indexed_us.max(us);
            }
            per_backend.push((*backend, us));
        }

        let mut row = vec![Cell::int(n as i64), Cell::int(store.user_count() as i64)];
        row.extend(per_backend.iter().map(|(_, us)| Cell::num(*us, 1)));
        report.row(row);

        if (users, days) == SIZES[SIZES.len() - 1] {
            if let (Some(b), true) = (brute_us, worst_indexed_us > 0.0) {
                speedup_largest = Some(b / worst_indexed_us);
            }

            // --- Union ladder: the sharded protected-request path. ----
            // Re-union baseline: every request fans a fresh
            // IndexSnapshot out over the shard indexes. Union: one
            // incrementally maintained index, queried directly.
            for shards in UNION_SHARDS {
                let cfg = GridIndexConfig::default();
                // User-disjoint partitions, routed the way ShardedTs
                // routes users to shard workers.
                let mut shard_stores: Vec<TrajectoryStore> =
                    (0..shards).map(|_| TrajectoryStore::new()).collect();
                for (u, phl) in store.iter() {
                    for p in phl.points() {
                        shard_stores[(u.raw() as usize) % shards].record(u, *p);
                    }
                }
                let parts: Vec<_> = shard_stores
                    .iter()
                    .map(|s| IndexBackend::Grid.build(s, cfg))
                    .collect();
                let mut union = UnionIndex::new(IndexBackend::Grid, cfg, shards);
                let t0 = std::time::Instant::now();
                union.rebuild(shard_stores.iter(), shards);
                let rebuild_ms = t0.elapsed().as_nanos() as f64 / 1e6;

                // Answer-for-answer first: a fast-but-wrong union fails
                // the bench, not the chart.
                for (u, q) in &queries {
                    let snap = IndexSnapshot::new(parts.iter().map(|p| p.as_ref()).collect());
                    let want = snap.k_nearest_users(q, K, Some(*u));
                    if union.k_nearest_users(q, K, Some(*u)) != want {
                        eprintln!(
                            "FAIL: union diverged from the snapshot re-union at \
                             {shards} shards, user={u:?} seed={q:?}"
                        );
                        std::process::exit(1);
                    }
                }

                let nq = queries.len() as f64;
                let reunion_us = time_ns(3, || {
                    for (u, q) in &queries {
                        let snap = IndexSnapshot::new(parts.iter().map(|p| p.as_ref()).collect());
                        std::hint::black_box(snap.k_nearest_users(q, K, Some(*u)));
                    }
                }) / nq
                    / 1_000.0;
                // Memo-miss path: every co-arriving request asks a
                // distinct window query.
                let union_us = time_ns(3, || {
                    union.clear_memo();
                    for (u, q) in &queries {
                        std::hint::black_box(union.k_nearest_users(q, K, Some(*u)));
                    }
                }) / nq
                    / 1_000.0;
                // Memo-hit path: a batch member re-asking a window query
                // an earlier member already answered this generation.
                let memo_us = time_ns(3, || {
                    for (u, q) in &queries {
                        std::hint::black_box(union.k_nearest_users(q, K, Some(*u)));
                    }
                }) / nq
                    / 1_000.0;

                let speedup = reunion_us / union_us;
                union_speedup = Some(union_speedup.map_or(speedup, |m: f64| m.min(speedup)));
                union_report.row(vec![
                    Cell::int(shards as i64),
                    Cell::num(reunion_us, 1),
                    Cell::num(union_us, 1),
                    Cell::num(memo_us, 2),
                    Cell::num(rebuild_ms, 1),
                    Cell::num(speedup, 2),
                ]);
                union_json.push(Json::obj([
                    ("shards", Json::from(shards as u64)),
                    ("reunion_us", Json::Num(reunion_us)),
                    ("union_us", Json::Num(union_us)),
                    ("memo_hit_us", Json::Num(memo_us)),
                    ("rebuild_ms", Json::Num(rebuild_ms)),
                    ("speedup", Json::Num(speedup)),
                ]));
            }
        }
        sizes_json.push(Json::obj([
            ("points", Json::from(n as u64)),
            ("users", Json::from(store.user_count() as u64)),
            (
                "median_us",
                Json::Obj(
                    per_backend
                        .iter()
                        .map(|(b, us)| (b.name().to_string(), Json::Num(*us)))
                        .collect(),
                ),
            ),
        ]));
    }

    report.note("Every backend answers the identical algorithm1_first call through the");
    report.note("SpatialIndex trait; each sampled query is checked against the brute oracle");
    report.note("before timing, so a wrong-but-fast index fails the bench, not the chart.");
    report.emit();
    println!();
    union_report.note("re-union = a fresh IndexSnapshot fanned out over the shard indexes per");
    union_report.note("request; union = the generation-stamped incremental UnionIndex. 'union µs'");
    union_report.note("is the memo-miss path (memo cleared between rounds); 'memo-hit µs' is a");
    union_report.note("batch re-asking an identical window query. Gate: min speedup >= 2.0.");
    union_report.emit();

    let json = Json::obj([
        ("bench", Json::from("index")),
        (
            "scenario",
            Json::obj([
                ("seed", Json::from(SEED)),
                ("k", Json::from(K as u64)),
                ("queries", Json::from(QUERIES as u64)),
            ]),
        ),
        (
            "backends",
            Json::Arr(backends.iter().map(|b| Json::from(b.name())).collect()),
        ),
        ("sizes", Json::Arr(sizes_json)),
        (
            "speedup_largest",
            speedup_largest.map(Json::Num).unwrap_or(Json::Null),
        ),
        (
            "speedup_definition",
            Json::from(
                "speedup_largest = brute median / slowest indexed backend median on \
                 Algorithm-1 window queries at the largest store size. Each per-query \
                 sample is the median of 3 timed calls after one untimed warmup call.",
            ),
        ),
        ("union", Json::Arr(union_json)),
        (
            "union_speedup",
            union_speedup.map(Json::Num).unwrap_or(Json::Null),
        ),
        (
            "union_speedup_definition",
            Json::from(
                "union_speedup = min over the 4- and 8-shard ladders of (re-union per-query \
                 median / incremental-union per-query median) on the ~4M-point store, \
                 memo-miss path, after an answer-for-answer equivalence check. Gated >= 2.0.",
            ),
        ),
    ]);
    let path = format!("{out_dir}/BENCH_index.json");
    std::fs::write(&path, json.to_string() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {path}");

    // Structural gate: at ~4M points an index slower than the O(k·n)
    // scan has regressed. 1.0 (not, say, 2.0) keeps shared-CI noise from
    // flaking the job; the JSON keeps the real ratio for trend-watching.
    if let Some(s) = speedup_largest {
        if s < 1.0 {
            eprintln!("FAIL: an indexed backend is {s:.2}x the brute scan at the largest size");
            std::process::exit(1);
        }
    }

    // Incremental-path gate: the protected-request window query through
    // the maintained union must beat per-request re-union by 2x on the
    // 1M-point store at both shard counts.
    if let Some(s) = union_speedup {
        if s < UNION_GATE {
            eprintln!(
                "FAIL: incremental union speedup over per-request re-union is \
                 {s:.2}x (< {UNION_GATE:.1}x)"
            );
            std::process::exit(1);
        }
    }
}
