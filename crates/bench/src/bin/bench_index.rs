//! **Continuous benchmark: `SpatialIndex` backends on the Algorithm-1
//! query path.**
//!
//! Runs the first-element branch of Algorithm 1 (`algorithm1_first`,
//! the k-nearest-users window query that dominates the preservation
//! strategy's cost) through every backend — grid, R-tree, and the
//! brute-force oracle — over the identical seeded query sample at three
//! store sizes, and writes a one-line `BENCH_index.json` so future perf
//! PRs have a tracked grid-vs-rtree baseline.
//!
//! Two gates make this a regression check rather than a scoreboard:
//!
//! * every backend's Algorithm-1 result is compared against the brute
//!   oracle on every sampled query (exit non-zero on any divergence);
//! * at the largest size, each indexed backend must beat the O(k·n)
//!   brute scan (exit non-zero otherwise — an index slower than the
//!   exhaustive scan at ~300k points is a structural regression, with
//!   generous slack for shared-host noise).
//!
//! ```text
//! cargo run --release -p hka-bench --bin bench_index -- [--out DIR] [--backends grid,rtree,brute]
//! ```

use hka_bench::{median, parse_backends, time_ns, Cell, Report};
use hka_core::{algorithm1_first, Tolerance};
use hka_geo::StPoint;
use hka_mobility::{CityConfig, EventKind, World, WorldConfig};
use hka_obs::Json;
use hka_trajectory::{BruteIndex, GridIndexConfig, IndexBackend, UserId};

const SEED: u64 = 77;
const K: usize = 5;
const QUERIES: usize = 40;
const SIZES: [(usize, i64); 3] = [(20, 1), (80, 4), (160, 8)];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_dir = args[i + 1].clone();
                i += 2;
            }
            "--backends" if i + 1 < args.len() => i += 2,
            other => {
                eprintln!(
                    "usage: bench_index [--out DIR] [--backends grid,rtree,brute] (got '{other}')"
                );
                std::process::exit(2);
            }
        }
    }
    let backends = parse_backends(args);
    let tolerance = Tolerance::new(f64::MAX, i64::MAX);

    let mut columns = vec!["n points".to_string(), "users".to_string()];
    for b in &backends {
        columns.push(format!("{b} µs"));
    }
    let column_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "bench_index",
        "Algorithm-1 window queries per SpatialIndex backend (median µs)",
    )
    .columns(&column_refs);

    let mut sizes_json = Vec::new();
    let mut speedup_largest: Option<f64> = None;
    for (users, days) in SIZES {
        let world = World::generate(&WorldConfig {
            seed: SEED,
            days,
            sample_interval: 60,
            n_commuters: users / 4,
            n_roamers: users / 2,
            n_poi_regulars: users / 4,
            city: CityConfig {
                width: 2_000.0,
                height: 2_000.0,
                ..CityConfig::default()
            },
            background_request_rate: 0.0,
            ..WorldConfig::default()
        });
        let store = world.store();
        let n = store.total_points();
        let queries: Vec<(UserId, StPoint)> = world
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Location)
            .step_by((world.events.len() / 50).max(1))
            .map(|e| (e.user, e.at))
            .take(QUERIES)
            .collect();

        // The oracle is always built, even if not benchmarked: it is the
        // per-query equivalence gate for whatever backends run.
        let oracle = BruteIndex::build(&store, GridIndexConfig::default().scale);

        let mut per_backend = Vec::new();
        let mut brute_us: Option<f64> = None;
        let mut worst_indexed_us: f64 = 0.0;
        for backend in &backends {
            let index = backend.build(&store, GridIndexConfig::default());
            let mut samples = Vec::with_capacity(queries.len());
            for (u, q) in &queries {
                let got = algorithm1_first(index.as_ref(), q, *u, K, &tolerance);
                let want = algorithm1_first(&oracle, q, *u, K, &tolerance);
                if got != want {
                    eprintln!(
                        "FAIL: {backend} diverged from brute oracle at n={n} \
                         user={u:?} seed={q:?}"
                    );
                    std::process::exit(1);
                }
                samples.push(time_ns(3, || {
                    std::hint::black_box(algorithm1_first(index.as_ref(), q, *u, K, &tolerance));
                }));
            }
            let us = median(&samples) / 1_000.0;
            match backend {
                IndexBackend::Brute => brute_us = Some(us),
                _ => worst_indexed_us = worst_indexed_us.max(us),
            }
            per_backend.push((*backend, us));
        }

        let mut row = vec![Cell::int(n as i64), Cell::int(store.user_count() as i64)];
        row.extend(per_backend.iter().map(|(_, us)| Cell::num(*us, 1)));
        report.row(row);

        if (users, days) == SIZES[SIZES.len() - 1] {
            if let (Some(b), true) = (brute_us, worst_indexed_us > 0.0) {
                speedup_largest = Some(b / worst_indexed_us);
            }
        }
        sizes_json.push(Json::obj([
            ("points", Json::from(n as u64)),
            ("users", Json::from(store.user_count() as u64)),
            (
                "median_us",
                Json::Obj(
                    per_backend
                        .iter()
                        .map(|(b, us)| (b.name().to_string(), Json::Num(*us)))
                        .collect(),
                ),
            ),
        ]));
    }

    report.note("Every backend answers the identical algorithm1_first call through the");
    report.note("SpatialIndex trait; each sampled query is checked against the brute oracle");
    report.note("before timing, so a wrong-but-fast index fails the bench, not the chart.");
    report.emit();

    let json = Json::obj([
        ("bench", Json::from("index")),
        (
            "scenario",
            Json::obj([
                ("seed", Json::from(SEED)),
                ("k", Json::from(K as u64)),
                ("queries", Json::from(QUERIES as u64)),
            ]),
        ),
        (
            "backends",
            Json::Arr(backends.iter().map(|b| Json::from(b.name())).collect()),
        ),
        ("sizes", Json::Arr(sizes_json)),
        (
            "speedup_largest",
            speedup_largest.map(Json::Num).unwrap_or(Json::Null),
        ),
        (
            "speedup_definition",
            Json::from(
                "speedup_largest = brute median / slowest indexed backend median on \
                 Algorithm-1 window queries at the largest store size. Medians are \
                 best-of-3 per query to damp shared-host noise.",
            ),
        ),
    ]);
    let path = format!("{out_dir}/BENCH_index.json");
    std::fs::write(&path, json.to_string() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {path}");

    // Structural gate: at ~300k+ points an index slower than the O(k·n)
    // scan has regressed. 1.0 (not, say, 2.0) keeps shared-CI noise from
    // flaking the job; the JSON keeps the real ratio for trend-watching.
    if let Some(s) = speedup_largest {
        if s < 1.0 {
            eprintln!("FAIL: an indexed backend is {s:.2}x the brute scan at the largest size");
            std::process::exit(1);
        }
    }
}
