//! **Continuous benchmark: tracing overhead on the request path.**
//!
//! Drives one seeded protected-city workload through the sharded
//! frontend (`ShardedTs`, group-commit journal, background traffic
//! classified parallel-safe so on multi-core hosts the cross-thread
//! trace handoff is on the measured path; single-core hosts run the
//! same batches inline on the shard tracks) under three observability
//! configurations:
//!
//! 1. **off** — trace collection disabled (the default). Trace ids are
//!    still minted (they are unconditional, so journal bytes cannot
//!    depend on collection state), but no span records are stored.
//! 2. **ring** — collection enabled into the bounded in-memory
//!    `TraceRing`; records are drained after the timed region.
//! 3. **ring_export** — collection enabled *and* the timed region
//!    includes drain + Chrome-trace rendering + validation + writing
//!    the artifact: the full `--trace-export` cost.
//!
//! Writes `BENCH_obs.json` with the throughput of each configuration
//! and the headline `overhead_ring` (ring wall vs tracing-off wall,
//! best-of-trials). The bench **fails** (non-zero exit) if:
//!
//! * ring-only overhead is ≥ 5% — the always-on tracing budget;
//! * the journals written under the three configurations are not
//!   byte-identical — collection state leaked into the decision record;
//! * the exported trace fails `validate_chrome_trace`, or the ring
//!   dropped spans (the capacity below is sized so a drop means the
//!   instrumentation got noisier, not that the workload grew).
//!
//! ```text
//! cargo run --release -p hka-bench --bin bench_obs -- [--out DIR]
//! ```

use std::time::Instant;

use hka_anonymity::ServiceId;
use hka_core::{PrivacyLevel, PrivacyParams, RiskAction, Tolerance, TsConfig};
use hka_geo::MINUTE;
use hka_lbqid::Lbqid;
use hka_mobility::{CityConfig, EventKind, World, WorldConfig, ANCHOR_SERVICE, BACKGROUND_SERVICE};
use hka_obs::{Json, TraceClock};
use hka_shard::ShardedTs;
use hka_trajectory::UserId;

const SEED: u64 = 1;
const DAYS: i64 = 4;
const COMMUTERS: usize = 12;
const ROAMERS: usize = 120;
const K: usize = 5;
const SHARDS: usize = 4;
/// Sized well above the span volume of this workload so `ring` and
/// `ring_export` never drop: a drop would orphan children and fail the
/// export validation gate by design.
const RING_CAPACITY: usize = 1 << 16;
const TRIALS: usize = 15;
const MAX_RING_OVERHEAD: f64 = 0.05;

fn build_world() -> World {
    World::generate(&WorldConfig {
        seed: SEED,
        days: DAYS,
        n_commuters: COMMUTERS,
        n_roamers: ROAMERS,
        n_poi_regulars: ROAMERS / 10,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    })
}

fn setup(world: &World) -> ShardedTs {
    let commuters: Vec<UserId> = world.commuters().collect();
    let mut ts = ShardedTs::new(TsConfig::default(), SHARDS);
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
    for a in &world.agents {
        let level = if commuters.contains(&a.user) {
            PrivacyLevel::Custom(PrivacyParams {
                k: K,
                theta: 0.5,
                k_init: 2 * K,
                k_decrement: 1,
                on_risk: RiskAction::Forward,
            })
        } else {
            PrivacyLevel::Off
        };
        ts.register_user(a.user, level);
    }
    for &u in &commuters {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    // Background traffic is exact-forward for everyone; the explicit
    // override lets the scheduler run those requests on worker threads,
    // so the cross-thread trace handoff is part of what this measures.
    for &u in &commuters {
        ts.set_service_privacy(u, ServiceId(BACKGROUND_SERVICE), PrivacyLevel::Off)
            .expect("registered");
    }
    ts
}

/// Runs the workload once against a fresh server journaling to `path`;
/// returns the wall time of the event loop (plus whatever `after` does,
/// which is timed too — the export configs fold their rendering cost in).
fn run_once(
    world: &World,
    path: &std::path::Path,
    after: impl FnOnce(&mut Vec<hka_obs::SpanRecord>),
) -> u64 {
    hka_obs::global().reset();
    let mut ts = setup(world);
    ts.attach_journal(hka_obs::Journal::new(Box::new(
        std::fs::File::create(path).expect("create journal"),
    )
        as Box<dyn hka_obs::DurableSink>));
    let t0 = Instant::now();
    for e in &world.events {
        match e.kind {
            EventKind::Location => {
                ts.submit_location(e.user, e.at);
            }
            EventKind::Request { service } => {
                ts.submit_request(e.user, e.at, ServiceId(service));
            }
        }
    }
    ts.flush_journal().expect("flush");
    let mut records = if hka_obs::trace::enabled() {
        hka_obs::trace::disable();
        hka_obs::trace::drain()
    } else {
        Vec::new()
    };
    after(&mut records);
    t0.elapsed().as_nanos() as u64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_dir = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("usage: bench_obs [--out DIR] (got '{other}')");
                std::process::exit(2);
            }
        }
    }
    let scratch = std::env::temp_dir().join(format!("hka-bench-obs-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let world = build_world();
    let events = world.events.len();
    let requests = world
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Request { .. }))
        .count();

    // Trials interleave the three configurations (off, ring, ring+export,
    // off, ring, ...) and each scores its best wall: host-load drift over
    // the measurement window then lands on every configuration alike
    // instead of biasing whichever block ran during the quiet stretch.
    let off_path = scratch.join("off.jsonl");
    let ring_path = scratch.join("ring.jsonl");
    let export_path = scratch.join("export.jsonl");
    let artifact = scratch.join("trace.json");
    let mut off_ns = u64::MAX;
    let mut ring_ns = u64::MAX;
    let mut export_ns = u64::MAX;
    let mut spans_captured = 0u64;
    let mut ring_dropped = 0u64;
    let mut export_summary = (0u64, 0u64, 0u64);
    for _ in 0..TRIALS {
        // --- off: collection disabled (ids still minted). ---------------
        hka_obs::trace::disable();
        hka_obs::trace::drain();
        off_ns = off_ns.min(run_once(&world, &off_path, |_| {}));

        // --- ring: collection on; the drain is inside the timed region
        // (it is what `--trace-export` pays before rendering). -----------
        hka_obs::trace::enable(RING_CAPACITY);
        let ns = run_once(&world, &ring_path, |records| {
            spans_captured = records.len() as u64;
        });
        ring_dropped = hka_obs::global().snapshot().counter("obs.trace_dropped");
        ring_ns = ring_ns.min(ns);

        // --- ring_export: collection on + render + validate + write. ----
        hka_obs::trace::enable(RING_CAPACITY);
        export_ns = export_ns.min(run_once(&world, &export_path, |records| {
            let doc = hka_obs::chrome_trace(records, TraceClock::Logical);
            let check = hka_obs::validate_chrome_trace(&doc).unwrap_or_else(|e| {
                eprintln!("FAIL: exported trace invalid: {e}");
                std::process::exit(1);
            });
            export_summary = (check.spans as u64, check.roots as u64, check.tracks as u64);
            std::fs::write(&artifact, doc.to_string() + "\n").expect("write artifact");
        }));
    }

    // --- Gates. ---------------------------------------------------------
    let off_bytes = std::fs::read(&off_path).expect("reread off journal");
    let ring_bytes = std::fs::read(&ring_path).expect("reread ring journal");
    let export_bytes = std::fs::read(&export_path).expect("reread export journal");
    if off_bytes != ring_bytes || off_bytes != export_bytes {
        eprintln!("FAIL: journals differ across tracing configurations");
        std::process::exit(1);
    }
    if ring_dropped > 0 {
        eprintln!("FAIL: trace ring dropped {ring_dropped} spans (raise RING_CAPACITY)");
        std::process::exit(1);
    }
    let overhead_ring = ring_ns as f64 / off_ns as f64 - 1.0;
    let overhead_export = export_ns as f64 / off_ns as f64 - 1.0;
    let artifact_bytes = std::fs::metadata(&artifact).map(|m| m.len()).unwrap_or(0);

    let config = |name: &str, ns: u64, overhead: Option<f64>| {
        let mut obj = vec![
            ("name".to_string(), Json::from(name)),
            ("wall_ns".to_string(), Json::from(ns)),
            (
                "events_per_sec".to_string(),
                Json::Num(events as f64 / (ns as f64 / 1e9)),
            ),
        ];
        if let Some(o) = overhead {
            obj.push(("overhead_vs_off".to_string(), Json::Num(o)));
        }
        Json::Obj(obj.into_iter().collect())
    };
    let json = Json::obj([
        ("bench", Json::from("obs")),
        (
            "scenario",
            Json::obj([
                ("seed", Json::from(SEED)),
                ("days", Json::Int(DAYS)),
                ("commuters", Json::from(COMMUTERS as u64)),
                ("roamers", Json::from(ROAMERS as u64)),
                ("k", Json::from(K as u64)),
            ]),
        ),
        ("events", Json::from(events as u64)),
        ("requests", Json::from(requests as u64)),
        ("trials", Json::from(TRIALS as u64)),
        ("ring_capacity", Json::from(RING_CAPACITY as u64)),
        (
            "configs",
            Json::Arr(vec![
                config("off", off_ns, None),
                config("ring", ring_ns, Some(overhead_ring)),
                config("ring_export", export_ns, Some(overhead_export)),
            ]),
        ),
        ("spans_captured", Json::from(spans_captured)),
        ("trace_dropped", Json::from(ring_dropped)),
        (
            "export",
            Json::obj([
                ("spans", Json::from(export_summary.0)),
                ("roots", Json::from(export_summary.1)),
                ("tracks", Json::from(export_summary.2)),
                ("artifact_bytes", Json::from(artifact_bytes)),
            ]),
        ),
        ("journals_identical", Json::Bool(true)),
        ("overhead_ring", Json::Num(overhead_ring)),
        ("overhead_ring_export", Json::Num(overhead_export)),
        (
            "gate",
            Json::from(
                "overhead_ring = ring wall / tracing-off wall - 1, best-of-trials on the same \
                 seeded workload; must stay under 0.05. ring_export additionally folds drain + \
                 Chrome-trace rendering + validation + artifact write into the timed region, so \
                 it reports the full --trace-export cost and is informational. Journals must be \
                 byte-identical across all three configurations.",
            ),
        ),
    ]);

    let path = format!("{out_dir}/BENCH_obs.json");
    std::fs::write(&path, json.to_string() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {path}");
    println!(
        "off {:.1} ms | ring {:.1} ms ({:+.2}%) | ring+export {:.1} ms ({:+.2}%) | {} spans",
        off_ns as f64 / 1e6,
        ring_ns as f64 / 1e6,
        overhead_ring * 100.0,
        export_ns as f64 / 1e6,
        overhead_export * 100.0,
        spans_captured,
    );
    let _ = std::fs::remove_dir_all(&scratch);

    if overhead_ring >= MAX_RING_OVERHEAD {
        eprintln!(
            "FAIL: ring-only tracing overhead is {:.2}% (>= {:.0}%)",
            overhead_ring * 100.0,
            MAX_RING_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
}
