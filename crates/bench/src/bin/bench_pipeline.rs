//! **Continuous benchmark: pipeline latency breakdown + audit replay.**
//!
//! Runs the standard protected-city scenario with an in-memory journal
//! attached, then:
//!
//! 1. writes `BENCH_pipeline.json` — wall-clock for the whole run plus
//!    the per-stage latency histograms (`ts.stage.*`: ingest → LBQID
//!    match → Algorithm 1 → link check → forward/suppress) and the
//!    end-to-end `ts.handle_request` histogram, each with count, mean,
//!    p50/p95/p99 and the raw log₂ buckets;
//! 2. replays the journal through `hka-audit` (chain verification +
//!    timeline reconstruction), timing it, and writes `BENCH_audit.json`
//!    with replay throughput and the audit verdict.
//!
//! Exits non-zero if the journal's hash chain fails to verify or the
//! audit finds Theorem-1 / fail-closed violations — a regression in the
//! pipeline's bookkeeping fails the bench job, not just a slow run.
//!
//! ```text
//! cargo run --release -p hka-bench --bin bench_pipeline -- [--out DIR]
//! ```

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hka_audit::AuditConfig;
use hka_bench::{build, run_events, ScenarioConfig};
use hka_obs::{global, Json};

/// An in-memory journal sink readable after the run.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // Recover the guard after a panicked writer: one poisoned
        // append must not fail every later flush.
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn histogram_json(snap: &hka_obs::MetricsSnapshot, name: &str) -> Json {
    match snap.histogram(name) {
        Some(h) => h.to_json(),
        None => Json::Null,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_dir = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("usage: bench_pipeline [--out DIR] (got '{other}')");
                std::process::exit(2);
            }
        }
    }

    let cfg = ScenarioConfig {
        seed: 1,
        days: 4,
        n_commuters: 8,
        n_roamers: 40,
        ..ScenarioConfig::default()
    };

    // --- Phase 1: the pipeline under measurement. -----------------------
    global().reset();
    let mut scenario = build(&cfg);
    let sink = SharedBuf::default();
    scenario.ts.attach_journal(hka_obs::Journal::new(
        Box::new(sink.clone()) as Box<dyn Write + Send + Sync>
    ));
    let events = scenario.world.events.len();
    let t0 = Instant::now();
    run_events(&mut scenario);
    scenario
        .ts
        .flush_journal()
        .expect("in-memory sink cannot fail");
    let pipeline_ns = t0.elapsed().as_nanos() as u64;

    let snap = scenario.ts.metrics_snapshot();
    let requests = snap.counter("ts.requests");
    let mut stages = Vec::new();
    for name in hka_obs::stage::ALL {
        stages.push((name.to_string(), histogram_json(&snap, name)));
    }
    stages.push((
        "ts.handle_request".to_string(),
        histogram_json(&snap, "ts.handle_request"),
    ));
    let pipeline_json = Json::obj([
        ("bench", Json::from("pipeline")),
        (
            "scenario",
            Json::obj([
                ("seed", Json::from(cfg.seed)),
                ("days", Json::Int(cfg.days)),
                ("commuters", Json::from(cfg.n_commuters as u64)),
                ("roamers", Json::from(cfg.n_roamers as u64)),
                ("k", Json::from(cfg.params.k as u64)),
            ]),
        ),
        ("events", Json::from(events as u64)),
        ("requests", Json::from(requests)),
        ("wall_ns", Json::from(pipeline_ns)),
        (
            "events_per_sec",
            Json::Num(events as f64 / (pipeline_ns as f64 / 1e9)),
        ),
        ("stages", Json::Obj(stages.into_iter().collect())),
    ]);

    // --- Phase 2: audit replay over the journal just written. -----------
    let journal = sink.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let t1 = Instant::now();
    let outcome = hka_audit::replay(&journal[..], AuditConfig::default());
    let replay_ns = t1.elapsed().as_nanos() as u64;

    let audit_json = Json::obj([
        ("bench", Json::from("audit_replay")),
        ("journal_bytes", Json::from(journal.len() as u64)),
        ("records", Json::from(outcome.chain.records)),
        ("wall_ns", Json::from(replay_ns)),
        (
            "records_per_sec",
            Json::Num(outcome.chain.records as f64 / (replay_ns as f64 / 1e9)),
        ),
        ("chain_verified", Json::Bool(outcome.chain.verified())),
        ("violations", Json::from(outcome.violations.len() as u64)),
        (
            "schema_issues",
            Json::from(outcome.schema_issues.len() as u64),
        ),
        ("users_audited", Json::from(outcome.users.len() as u64)),
    ]);

    for (file, json) in [
        ("BENCH_pipeline.json", &pipeline_json),
        ("BENCH_audit.json", &audit_json),
    ] {
        let path = format!("{out_dir}/{file}");
        std::fs::write(&path, json.to_string() + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    println!(
        "pipeline: {events} events ({requests} requests) in {:.1} ms | replay: {} records in {:.1} ms",
        pipeline_ns as f64 / 1e6,
        outcome.chain.records,
        replay_ns as f64 / 1e6,
    );

    if !outcome.chain.verified() {
        eprintln!(
            "FAIL: journal chain verification failed: {:?}",
            outcome.chain.error
        );
        std::process::exit(1);
    }
    if !outcome.ok() {
        eprintln!(
            "FAIL: audit found {} violations, {} schema issues",
            outcome.violations.len(),
            outcome.schema_issues.len()
        );
        std::process::exit(1);
    }
}
