//! **Continuous benchmark: sharded request pipeline + group-commit
//! journaling.**
//!
//! Drives one seeded protected-city workload through:
//!
//! 1. the **baseline**: the sequential `TrustedServer` with a per-event
//!    *durable* journal — every appended record is individually fsynced,
//!    the durability contract a single-node deployment would run with;
//! 2. the **ladder**: `ShardedTs` with 1 / 2 / 4 / 8 shards, journaling
//!    through the group-commit writer (one batched append + one fsync
//!    per serialization barrier).
//!
//! Writes `BENCH_shard.json` with the throughput of every run, the
//! headline `speedup_4x` (4-shard sharded vs the durability-equivalent
//! sequential baseline — dominated by fsync batching, so it holds even
//! on single-core hosts), the raw shard-vs-shard ladder for hosts
//! with real parallelism, and an informational `union_pipeline_ratio`
//! (the 4-shard run repeated with the incremental union index disabled,
//! i.e. per-request `IndexSnapshot` re-union, against the same outcome
//! and journal checks). Every journal written is chain-verified and
//! replayed through `hka-audit`; the bench exits non-zero on a chain
//! failure, an audit violation, or a per-shard-count outcome mismatch
//! against the baseline — a correctness regression fails the bench job,
//! not just a slow run.
//!
//! ```text
//! cargo run --release -p hka-bench --bin bench_shard -- [--out DIR] [--index grid|rtree]
//! ```
//!
//! `--index` selects the [`SpatialIndex`] backend behind Algorithm 1 on
//! both the baseline and the ladder (the differential outcome check
//! then also validates that backend end-to-end under sharding).

use std::io::Write;
use std::time::Instant;

use hka_anonymity::ServiceId;
use hka_audit::AuditConfig;
use hka_core::{
    PrivacyLevel, PrivacyParams, RequestEnvelope, RequestService, ResponseEnvelope, RiskAction,
    Tolerance, TrustedServer, TsConfig,
};
use hka_geo::MINUTE;
use hka_lbqid::Lbqid;
use hka_mobility::{CityConfig, EventKind, World, WorldConfig, ANCHOR_SERVICE, BACKGROUND_SERVICE};
use hka_obs::Json;
use hka_shard::ShardedTs;
use hka_trajectory::{IndexBackend, UserId};

const SEED: u64 = 1;
const DAYS: i64 = 3;
const COMMUTERS: usize = 8;
const ROAMERS: usize = 40;
const K: usize = 5;

/// A file sink that fsyncs every write: with one `write_all` per journal
/// record, this is exactly "durable after every event" — the baseline
/// durability contract group commit amortizes.
struct FsyncEachWrite(std::fs::File);

impl Write for FsyncEachWrite {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write_all(buf)?;
        self.0.sync_data()?;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

fn build_world() -> World {
    World::generate(&WorldConfig {
        seed: SEED,
        days: DAYS,
        n_commuters: COMMUTERS,
        n_roamers: ROAMERS,
        n_poi_regulars: ROAMERS / 10,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    })
}

fn params() -> PrivacyParams {
    PrivacyParams {
        k: K,
        theta: 0.5,
        k_init: 2 * K,
        k_decrement: 1,
        on_risk: RiskAction::Forward,
    }
}

/// The identical setup script, applied to either server type.
struct Script {
    users: Vec<(UserId, PrivacyLevel)>,
    lbqids: Vec<(UserId, Lbqid)>,
    overrides: Vec<(UserId, ServiceId, PrivacyLevel)>,
}

fn script(world: &World) -> Script {
    let commuters: Vec<UserId> = world.commuters().collect();
    Script {
        users: world
            .agents
            .iter()
            .map(|a| {
                let level = if commuters.contains(&a.user) {
                    PrivacyLevel::Custom(params())
                } else {
                    PrivacyLevel::Off
                };
                (a.user, level)
            })
            .collect(),
        lbqids: commuters
            .iter()
            .map(|&u| {
                (
                    u,
                    Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
                )
            })
            .collect(),
        // The background service is exact-forward for everyone; making
        // that explicit per user lets the sharded scheduler classify
        // those requests parallel-safe (the sequential server resolves
        // the same override to the same decision).
        overrides: commuters
            .iter()
            .map(|&u| (u, ServiceId(BACKGROUND_SERVICE), PrivacyLevel::Off))
            .collect(),
    }
}

fn setup_seq(world: &World, backend: IndexBackend) -> TrustedServer {
    let s = script(world);
    let mut ts = TrustedServer::new(TsConfig {
        backend,
        ..TsConfig::default()
    });
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
    for (u, level) in s.users {
        ts.register_user(u, level);
    }
    for (u, q) in s.lbqids {
        ts.add_lbqid(u, q);
    }
    for (u, svc, level) in s.overrides {
        ts.set_service_privacy(u, svc, level).expect("registered");
    }
    ts
}

fn setup_sharded(world: &World, shards: usize, backend: IndexBackend) -> ShardedTs {
    let s = script(world);
    let mut ts = ShardedTs::new(
        TsConfig {
            backend,
            ..TsConfig::default()
        },
        shards,
    );
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
    for (u, level) in s.users {
        ts.register_user(u, level);
    }
    for (u, q) in s.lbqids {
        ts.add_lbqid(u, q);
    }
    for (u, svc, level) in s.overrides {
        ts.set_service_privacy(u, svc, level).expect("registered");
    }
    ts
}

/// The workload as wire envelopes — what every backend is driven with
/// through the [`RequestService`] seam.
fn envelopes(world: &World) -> Vec<RequestEnvelope> {
    world
        .events
        .iter()
        .enumerate()
        .map(|(i, e)| match e.kind {
            EventKind::Location => RequestEnvelope::location(i as u64, e.user, e.at),
            EventKind::Request { service } => {
                RequestEnvelope::request(i as u64, e.user, e.at, ServiceId(service))
            }
        })
        .collect()
}

/// Submits the whole stream through the seam and drains at the final
/// barrier — identical driving code for the sequential baseline and
/// every ladder rung.
fn drive(svc: &mut dyn RequestService, envs: &[RequestEnvelope]) -> Vec<ResponseEnvelope> {
    for env in envs {
        svc.submit(env);
    }
    svc.drain()
}

/// An id-space-independent fingerprint of a wire response, for the
/// cross-run equivalence check (pseudonyms and best-effort `k_got`
/// enrichment are excluded — decision class, reason, and generalized
/// area must match exactly; the byte-compare below covers the rest).
fn fingerprint(resp: &ResponseEnvelope) -> String {
    format!("{} {} {}", resp.outcome.as_str(), resp.detail, resp.area)
}

/// Chain-verifies and audit-replays one journal file; exits non-zero on
/// any failure.
fn check_journal(path: &std::path::Path, label: &str) -> u64 {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot reopen {label} journal: {e}");
        std::process::exit(1);
    });
    let report = match hka_obs::verify_chain(std::io::BufReader::new(file)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: {label} journal chain broken: {e:?}");
            std::process::exit(1);
        }
    };
    let outcome = hka_audit::replay_file(path, AuditConfig::default()).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot replay {label} journal: {e}");
        std::process::exit(1);
    });
    if !outcome.chain.verified() || !outcome.ok() {
        eprintln!(
            "FAIL: {label} audit: chain error {:?}, {} violations, {} schema issues",
            outcome.chain.error,
            outcome.violations.len(),
            outcome.schema_issues.len()
        );
        std::process::exit(1);
    }
    report.records.len() as u64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut backend = IndexBackend::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_dir = args[i + 1].clone();
                i += 2;
            }
            "--index" if i + 1 < args.len() => {
                backend = IndexBackend::parse(&args[i + 1]).unwrap_or_else(|| {
                    eprintln!("unknown backend '{}' (use grid|rtree|brute)", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("usage: bench_shard [--out DIR] [--index grid|rtree] (got '{other}')");
                std::process::exit(2);
            }
        }
    }
    let scratch = std::env::temp_dir().join(format!("hka-bench-shard-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let world = build_world();
    let envs = envelopes(&world);
    let events = world.events.len();
    let requests = world
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Request { .. }))
        .count();

    // Wall-clock gates on shared hosts are noisy; each configuration runs
    // TRIALS times and scores its best wall (the workload is
    // deterministic, so every trial produces identical outcomes).
    const TRIALS: usize = 3;

    // --- Baseline: sequential server, fsync per journal record. --------
    let seq_path = scratch.join("seq.jsonl");
    let mut seq_ns = u64::MAX;
    let mut seq_outcomes: Vec<String> = Vec::new();
    for _ in 0..TRIALS {
        hka_obs::global().reset();
        let mut seq = setup_seq(&world, backend);
        seq.attach_journal(hka_obs::Journal::new(Box::new(FsyncEachWrite(
            std::fs::File::create(&seq_path).expect("create baseline journal"),
        ))
            as Box<dyn Write + Send + Sync>));
        let t0 = Instant::now();
        let responses = drive(&mut seq, &envs);
        seq.flush_journal().expect("baseline flush");
        seq_ns = seq_ns.min(t0.elapsed().as_nanos() as u64);
        drop(seq);
        seq_outcomes = responses.iter().map(fingerprint).collect();
    }
    let seq_records = check_journal(&seq_path, "baseline");
    let seq_bytes = std::fs::read(&seq_path).expect("baseline journal bytes");

    // --- Ladder: ShardedTs, group-commit journal, 1/2/4/8 shards. ------
    let mut ladder = Vec::new();
    let mut wall_by_shards = std::collections::BTreeMap::new();
    for shards in [1usize, 2, 4, 8] {
        let path = scratch.join(format!("shard{shards}.jsonl"));
        let mut ns = u64::MAX;
        let mut outcomes = Vec::new();
        let mut epochs = 0;
        for _ in 0..TRIALS {
            hka_obs::global().reset();
            let mut ts = setup_sharded(&world, shards, backend);
            ts.attach_journal(hka_obs::Journal::new(Box::new(
                std::fs::File::create(&path).expect("create shard journal"),
            )
                as Box<dyn hka_obs::DurableSink>));
            let t = Instant::now();
            outcomes = drive(&mut ts, &envs);
            ts.flush_journal().expect("shard flush");
            ns = ns.min(t.elapsed().as_nanos() as u64);
            epochs = ts.epoch();
            drop(ts);
        }

        // Differential check: identical per-request outcomes.
        if outcomes.len() != seq_outcomes.len() {
            eprintln!(
                "FAIL: {shards} shards produced {} outcomes, baseline {}",
                outcomes.len(),
                seq_outcomes.len()
            );
            std::process::exit(1);
        }
        for (i, resp) in outcomes.iter().enumerate() {
            let got = fingerprint(resp);
            if got != seq_outcomes[i] {
                eprintln!(
                    "FAIL: {shards} shards diverged from baseline at request {i}: {got} vs {}",
                    seq_outcomes[i]
                );
                std::process::exit(1);
            }
        }
        let records = check_journal(&path, &format!("{shards}-shard"));
        if records != seq_records {
            eprintln!("FAIL: {shards} shards journaled {records} records, baseline {seq_records}");
            std::process::exit(1);
        }
        // Group commit batches appends but chains the same bytes: every
        // rung's journal is byte-identical to the durable baseline's.
        if std::fs::read(&path).expect("shard journal bytes") != seq_bytes {
            eprintln!("FAIL: {shards}-shard journal bytes diverge from the baseline");
            std::process::exit(1);
        }

        wall_by_shards.insert(shards, ns);
        ladder.push(Json::obj([
            ("shards", Json::from(shards as u64)),
            ("wall_ns", Json::from(ns)),
            (
                "events_per_sec",
                Json::Num(events as f64 / (ns as f64 / 1e9)),
            ),
            (
                "requests_per_sec",
                Json::Num(requests as f64 / (ns as f64 / 1e9)),
            ),
            ("epochs", Json::from(epochs)),
            (
                "speedup_vs_durable_baseline",
                Json::Num(seq_ns as f64 / ns as f64),
            ),
        ]));
    }

    // --- Union off: the 4-shard pipeline with per-request re-union. ----
    // Same workload, same journal contract, incremental index disabled —
    // isolates what the maintained union buys the full pipeline. The
    // ratio is reported, not gated: end-to-end walls here are
    // fsync-dominated, so the index win is diluted and noisy; the hard
    // >= 2x gate on the query path itself lives in bench_index.
    let reunion_path = scratch.join("shard4-reunion.jsonl");
    let mut reunion_ns = u64::MAX;
    for _ in 0..TRIALS {
        hka_obs::global().reset();
        let mut ts = setup_sharded(&world, 4, backend);
        ts.set_incremental_index(false);
        ts.attach_journal(hka_obs::Journal::new(Box::new(
            std::fs::File::create(&reunion_path).expect("create re-union journal"),
        )
            as Box<dyn hka_obs::DurableSink>));
        let t = Instant::now();
        let outcomes = drive(&mut ts, &envs);
        ts.flush_journal().expect("re-union flush");
        reunion_ns = reunion_ns.min(t.elapsed().as_nanos() as u64);
        drop(ts);
        for (i, resp) in outcomes.iter().enumerate() {
            let got = fingerprint(resp);
            if got != seq_outcomes[i] {
                eprintln!("FAIL: re-union run diverged from baseline at request {i}: {got}");
                std::process::exit(1);
            }
        }
    }
    if check_journal(&reunion_path, "4-shard re-union") != seq_records {
        eprintln!("FAIL: re-union run journaled a different record count");
        std::process::exit(1);
    }
    let union_pipeline_ratio = reunion_ns as f64 / wall_by_shards[&4] as f64;

    let speedup_4x = seq_ns as f64 / wall_by_shards[&4] as f64;
    let ladder_4v1 = wall_by_shards[&1] as f64 / wall_by_shards[&4] as f64;
    let json = Json::obj([
        ("bench", Json::from("shard")),
        ("index_backend", Json::from(backend.name())),
        (
            "scenario",
            Json::obj([
                ("seed", Json::from(SEED)),
                ("days", Json::Int(DAYS)),
                ("commuters", Json::from(COMMUTERS as u64)),
                ("roamers", Json::from(ROAMERS as u64)),
                ("k", Json::from(K as u64)),
            ]),
        ),
        ("events", Json::from(events as u64)),
        ("requests", Json::from(requests as u64)),
        ("trials", Json::from(TRIALS as u64)),
        ("journal_records", Json::from(seq_records)),
        (
            "baseline",
            Json::obj([
                ("mode", Json::from("sequential, fsync per record")),
                ("wall_ns", Json::from(seq_ns)),
                (
                    "events_per_sec",
                    Json::Num(events as f64 / (seq_ns as f64 / 1e9)),
                ),
                (
                    "requests_per_sec",
                    Json::Num(requests as f64 / (seq_ns as f64 / 1e9)),
                ),
            ]),
        ),
        ("ladder", Json::Arr(ladder)),
        ("speedup_4x", Json::Num(speedup_4x)),
        ("shard_ladder_speedup_4v1", Json::Num(ladder_4v1)),
        ("reunion_4x_wall_ns", Json::from(reunion_ns)),
        ("union_pipeline_ratio", Json::Num(union_pipeline_ratio)),
        (
            "union_pipeline_ratio_definition",
            Json::from(
                "union_pipeline_ratio = 4-shard wall with the incremental union disabled \
                 (per-request IndexSnapshot re-union) / 4-shard wall with it enabled, \
                 identical outcomes and journal bytes. Informational only — end-to-end \
                 walls are fsync-dominated; the gated query-path ratio is in BENCH_index.",
            ),
        ),
        (
            "speedup_definition",
            Json::from(
                "speedup_4x = durable sequential baseline wall / 4-shard ShardedTs wall, at equal \
                 durability (every record on stable storage at the commit boundary). The win comes \
                 from group commit batching fsyncs at serialization barriers; worker parallelism \
                 adds on top on multi-core hosts (shard_ladder_speedup_4v1 reports that raw ratio, \
                 ~1.0 on single-core CI). Walls are best-of-trials to damp shared-host noise.",
            ),
        ),
    ]);

    let path = format!("{out_dir}/BENCH_shard.json");
    std::fs::write(&path, json.to_string() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {path}");
    println!(
        "baseline {:.1} ms | 1 shard {:.1} ms | 4 shards {:.1} ms | speedup_4x {speedup_4x:.2} | ladder 4v1 {ladder_4v1:.2} | union on/off {union_pipeline_ratio:.2}",
        seq_ns as f64 / 1e6,
        wall_by_shards[&1] as f64 / 1e6,
        wall_by_shards[&4] as f64 / 1e6,
    );
    let _ = std::fs::remove_dir_all(&scratch);

    if speedup_4x < 2.0 {
        eprintln!("FAIL: 4-shard speedup over the durable baseline is {speedup_4x:.2} (< 2.0)");
        std::process::exit(1);
    }
}
