//! **Continuous benchmark: live audit-tail lag under paced journal load.**
//!
//! A writer thread appends schema-valid `ts.forwarded` records to an
//! on-disk journal at a fixed offered rate; a concurrent tailer thread
//! follows the same file through [`hka_audit::TailAuditor`] (the same
//! machinery behind `hka-sim watch` and `serve-drill --audit-tail`),
//! polling every few milliseconds. For every record the bench measures
//! *tail lag* — the wall-clock between the writer starting the append
//! and the tailer having verified and ingested it.
//!
//! The offered-rate ladder brackets the journal rates the sharded
//! pipeline actually produces (`BENCH_shard.json` reports the drill
//! workload at roughly 13k requests/s), so the gate below is the
//! acceptance criterion from the live-tailing design: at production
//! journal rates, a watcher stays under one second behind the writer.
//!
//! Writes `BENCH_tail.json` and exits non-zero if any rung breaks the
//! chain, reports a violation, or shows steady-state lag p99 ≥ 1 s.
//!
//! ```text
//! cargo run --release -p hka-bench --bin bench_tail -- [--out DIR]
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hka_audit::{AuditConfig, TailAuditor};
use hka_obs::{Journal, Json};

/// How often the tailer polls the journal file.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Offered journal rates, records/s. The top rung sits above the
/// ~13k records/s the bench_shard drill workload journals at.
const RATES: [u64; 3] = [2_000, 8_000, 16_000];

/// Seconds of paced writing per rung.
const SECONDS_PER_RATE: u64 = 2;

/// The lag gate, milliseconds: steady-state p99 must stay below this.
const GATE_P99_MS: f64 = 1_000.0;

/// A schema-valid exact-point forward, so the tailing auditor decodes
/// every record cleanly (no schema issues, no violations).
fn forwarded_payload(i: u64) -> Json {
    let at = i as i64;
    let x = (i % 97) as f64;
    let y = (i % 89) as f64;
    Json::obj([
        ("user", Json::Int((i % 64) as i64)),
        ("at", Json::Int(at)),
        ("x_min", Json::Num(x)),
        ("y_min", Json::Num(y)),
        ("x_max", Json::Num(x)),
        ("y_max", Json::Num(y)),
        ("t_start", Json::Int(at)),
        ("t_end", Json::Int(at)),
        ("generalized", Json::Bool(false)),
        ("hk_ok", Json::Bool(true)),
    ])
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

struct RungResult {
    offered: u64,
    records: u64,
    write_secs: f64,
    achieved_per_sec: f64,
    lag_p50_ms: f64,
    lag_p99_ms: f64,
    lag_max_ms: f64,
    polls: u64,
    violations: u64,
    chain_error: Option<String>,
}

fn run_rung(offered: u64, path: &std::path::Path) -> RungResult {
    let total = offered * SECONDS_PER_RATE;
    // Append-start instants, indexed by record order. The writer stamps
    // *before* appending so a lag can never come out negative; the
    // tailer only reads entries for records it has already verified,
    // which the writer necessarily stamped first.
    let stamps: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::with_capacity(total as usize)));
    let done = Arc::new(AtomicBool::new(false));

    let file = std::fs::File::create(path).expect("create bench journal");
    let mut journal = Journal::new(file);
    let writer = {
        let stamps = Arc::clone(&stamps);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let t0 = Instant::now();
            for i in 0..total {
                // Pace against the ideal schedule, not the previous
                // append: a slow write is absorbed, not compounded.
                let due = t0 + Duration::from_nanos(i * 1_000_000_000 / offered);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                stamps.lock().unwrap().push(Instant::now());
                journal
                    .append("ts.forwarded", forwarded_payload(i))
                    .expect("append to bench journal");
            }
            journal.flush().expect("flush bench journal");
            let secs = t0.elapsed().as_secs_f64();
            done.store(true, Ordering::SeqCst);
            secs
        })
    };

    let tailer = {
        let stamps = Arc::clone(&stamps);
        let done = Arc::clone(&done);
        let path = path.to_path_buf();
        std::thread::spawn(move || {
            let mut tail = TailAuditor::open(&path, AuditConfig::default());
            let mut lags_ms: Vec<f64> = Vec::with_capacity(total as usize);
            let mut polls = 0u64;
            let deadline = Instant::now() + Duration::from_secs(SECONDS_PER_RATE + 30);
            loop {
                let finished = done.load(Ordering::SeqCst);
                let before = tail.records();
                let poll = tail.poll();
                polls += 1;
                let now = Instant::now();
                if poll.new_records > 0 {
                    let stamps = stamps.lock().unwrap();
                    for i in before..before + poll.new_records {
                        lags_ms.push((now - stamps[i as usize]).as_secs_f64() * 1e3);
                    }
                }
                if poll.chain_error.is_some()
                    || (finished && tail.records() >= total)
                    || now > deadline
                {
                    break;
                }
                std::thread::sleep(POLL_INTERVAL);
            }
            (tail, lags_ms, polls)
        })
    };

    let write_secs = writer.join().expect("writer thread");
    let (tail, mut lags_ms, polls) = tailer.join().expect("tailer thread");

    lags_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let snapshot = tail.snapshot();
    RungResult {
        offered,
        records: tail.records(),
        write_secs,
        achieved_per_sec: total as f64 / write_secs,
        lag_p50_ms: percentile(&lags_ms, 0.50),
        lag_p99_ms: percentile(&lags_ms, 0.99),
        lag_max_ms: percentile(&lags_ms, 1.0),
        polls,
        violations: snapshot.violations.len() as u64,
        chain_error: tail.chain_error().map(|e| e.to_string()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_dir = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("usage: bench_tail [--out DIR] (got '{other}')");
                std::process::exit(2);
            }
        }
    }

    let tmp = std::env::temp_dir();
    let mut rows = Vec::new();
    let mut failed = false;
    for rate in RATES {
        let path = tmp.join(format!("bench-tail-{}-{rate}.journal", std::process::id()));
        let r = run_rung(rate, &path);
        let _ = std::fs::remove_file(&path);
        println!(
            "rate {:>6}/s: {} records in {:.2}s ({:.0}/s) | lag ms p50 {:.2} p99 {:.2} max {:.2} | {} polls{}{}",
            r.offered,
            r.records,
            r.write_secs,
            r.achieved_per_sec,
            r.lag_p50_ms,
            r.lag_p99_ms,
            r.lag_max_ms,
            r.polls,
            if r.violations > 0 { " VIOLATIONS" } else { "" },
            if r.chain_error.is_some() { " CHAIN-ERROR" } else { "" },
        );
        let expected = rate * SECONDS_PER_RATE;
        if r.chain_error.is_some()
            || r.violations > 0
            || r.records != expected
            || r.lag_p99_ms >= GATE_P99_MS
        {
            failed = true;
        }
        rows.push(Json::obj([
            ("offered_per_sec", Json::from(r.offered)),
            ("records", Json::from(r.records)),
            ("write_secs", Json::Num(r.write_secs)),
            ("achieved_per_sec", Json::Num(r.achieved_per_sec)),
            (
                "lag_ms",
                Json::obj([
                    ("p50", Json::Num(r.lag_p50_ms)),
                    ("p99", Json::Num(r.lag_p99_ms)),
                    ("max", Json::Num(r.lag_max_ms)),
                ]),
            ),
            ("polls", Json::from(r.polls)),
            ("violations", Json::from(r.violations)),
            (
                "chain_error",
                r.chain_error.clone().map_or(Json::Null, Json::from),
            ),
        ]));
    }

    let json = Json::obj([
        ("bench", Json::from("tail")),
        (
            "definition",
            Json::from(
                "lag = wall-clock from the writer starting an append to the tailing \
                 auditor having hash-verified and ingested that record; one writer \
                 thread paced at the offered rate, one TailAuditor polling every 5 ms",
            ),
        ),
        (
            "poll_interval_ms",
            Json::from(POLL_INTERVAL.as_millis() as u64),
        ),
        ("seconds_per_rate", Json::from(SECONDS_PER_RATE)),
        ("rates", Json::Arr(rows)),
        (
            "gate",
            Json::obj([
                ("lag_p99_ms_below", Json::Num(GATE_P99_MS)),
                ("pass", Json::Bool(!failed)),
            ]),
        ),
    ]);

    let path = format!("{out_dir}/BENCH_tail.json");
    std::fs::write(&path, json.to_string() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {path}");

    if failed {
        eprintln!("FAIL: a rung broke the chain, reported violations, or exceeded the lag gate");
        std::process::exit(1);
    }
}
