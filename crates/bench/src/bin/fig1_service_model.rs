//! **F1 — Fig. 1, the service provisioning model**, as a runnable trace.
//!
//! The paper's only figure shows users talking to service providers
//! through a Trusted Server. This binary renders the figure as an actual
//! message trace: one morning of one user, showing (a) what the user
//! sends (exact positions), (b) what the provider receives
//! (msgid, pseudonym, generalized Area × TimeInterval), and (c) that the
//! provider never sees identity or exact coordinates.
//!
//! ```text
//! cargo run --release -p hka-bench --bin fig1_service_model
//! ```

use hka_anonymity::ServiceId;
use hka_bench::{build, Cell, Report, ScenarioConfig};
use hka_core::RequestOutcome;
use hka_mobility::EventKind;

fn main() {
    let mut s = build(&ScenarioConfig {
        seed: 3,
        days: 1,
        n_commuters: 5,
        n_roamers: 40,
        ..ScenarioConfig::default()
    });
    let alice = s.protected[0];
    println!("=== F1: the Fig. 1 service model, live ===\n");
    println!("          Users ──(exact x,y,t)──▶ Trusted Server ──(msgid, pseudonym, Area, TimeInterval)──▶ SP\n");

    let mut shown = 0;
    let events = s.world.events.clone();
    for e in &events {
        match e.kind {
            EventKind::Location => s.ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let outcome = s.ts.handle_request(e.user, e.at, ServiceId(service));
                if e.user == alice && shown < 8 {
                    shown += 1;
                    println!(
                        "user {:>4} ──▶ TS   exact ⟨{:.0}, {:.0}⟩ @ {}",
                        e.user, e.at.pos.x, e.at.pos.y, e.at.t
                    );
                    match outcome {
                        RequestOutcome::Forwarded(req) => {
                            println!(
                                "        TS ──▶ {}   ({}, {}, {})",
                                req.service, req.msg_id, req.pseudonym, req.context
                            );
                            println!(
                                "                    identity hidden: pseudonym only; context area {:.0} m², interval {} s\n",
                                req.context.area(),
                                req.context.duration()
                            );
                        }
                        RequestOutcome::Suppressed(reason) => {
                            println!("        TS ∅ suppressed ({reason:?})\n");
                        }
                    }
                }
            }
        }
    }

    let stats = s.ts.log().stats();
    let mut report = Report::new(
        "F1",
        &format!("one-day totals across all {} users", s.world.agents.len()),
    )
    .columns(&[
        "forwarded",
        "exact",
        "generalized",
        "suppressed (mix-zone)",
        "suppressed (risk)",
    ]);
    report.row(vec![
        Cell::int(stats.forwarded() as i64),
        Cell::int(stats.forwarded_exact as i64),
        Cell::int(stats.generalized() as i64),
        Cell::int(stats.suppressed_mixzone as i64),
        Cell::int(stats.suppressed_risk as i64),
    ]);
    report.note("No SpRequest carries a UserId: the type system separates the TS-side");
    report.note("identity (UserId) from the provider-visible Pseudonym (see hka-anonymity).");
    report.emit();
}
