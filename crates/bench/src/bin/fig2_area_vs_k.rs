//! **F2 — cloaked area vs. k: Algorithm 1 against the baselines.**
//!
//! Section 2 positions the paper against Gruteser–Grunwald's interval
//! cloaking \[11\] (population-aware, per-request) and against the naive
//! "make all requests very coarse" approach. This figure plots, per k,
//! the mean cloaked area produced by:
//!
//! * `algo1`   — Algorithm 1's first-element branch (k nearest PHLs);
//! * `quadtree` — Gruteser–Grunwald spatial cloaking (quadtree descent);
//! * `uniform` — fixed-grid coarsening, sized so its *median* cell holds
//!   k users (the best a population-blind scheme can do), with the
//!   fraction of requests whose cell still holds < k users.
//!
//! ```text
//! cargo run --release -p hka-bench --bin fig2_area_vs_k
//! ```

use hka_baselines::{interval_cloaking, UniformCloak};
use hka_bench::{build, mean, Cell, Report, ScenarioConfig};
use hka_core::{algorithm1_first, Tolerance};
use hka_geo::{StPoint, TimeInterval};
use hka_mobility::EventKind;
use hka_trajectory::{GridIndex, GridIndexConfig, UserId};

fn main() {
    let s = build(&ScenarioConfig {
        seed: 8,
        days: 5,
        n_commuters: 10,
        n_roamers: 70,
        ..ScenarioConfig::default()
    });
    let store = s.world.store();
    let index = GridIndex::build(&store, GridIndexConfig::default());
    let domain = s.world.city.bounds;

    // Sample request situations (user, exact point) from the workload.
    let samples: Vec<(UserId, StPoint)> = s
        .world
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Request { .. }))
        .map(|e| (e.user, e.at))
        .take(600)
        .collect();

    let mut report = Report::new(
        "F2",
        &format!(
            "mean cloaked area (m²) vs k — {} request samples",
            samples.len()
        ),
    )
    .columns(&[
        "k",
        "algo1",
        "quadtree",
        "uniform",
        "algo1 ok%",
        "uniform<k%",
    ]);
    let loose = Tolerance::new(f64::MAX, i64::MAX);
    for k in [2usize, 3, 5, 8, 12, 20] {
        let mut a1_areas = vec![];
        let mut a1_ok = 0usize;
        let mut qt_areas = vec![];
        // Size the uniform grid so the average cell population ≈ k:
        // city area / (users / k).
        let users = store.user_count() as f64;
        let cell_side = (domain.area() * k as f64 / users).sqrt();
        let uniform = UniformCloak::new(cell_side, 300);
        let mut uni_small = 0usize;

        for (u, at) in &samples {
            let g = algorithm1_first(&index, at, *u, k, &loose);
            if g.hk_anonymity {
                a1_ok += 1;
                a1_areas.push(g.context.area());
            }
            if let Some(r) = interval_cloaking::spatial_cloak(&index, domain, at, k, 300, 12) {
                qt_areas.push(r.area());
            }
            let b = uniform.cloak(at);
            let window = TimeInterval::new(at.t - 300, at.t);
            let pop = index.count_users_crossing(&hka_geo::StBox::new(b.rect, window), k);
            if pop < k {
                uni_small += 1;
            }
        }
        report.row(vec![
            Cell::int(k as i64),
            Cell::num(mean(&a1_areas), 0),
            Cell::num(mean(&qt_areas), 0),
            Cell::num(cell_side * cell_side, 0),
            Cell::pct(a1_ok as f64 / samples.len() as f64, 1),
            Cell::pct(uni_small as f64 / samples.len() as f64, 1),
        ]);
    }
    report.note("Reading: Algorithm 1's per-user-nearest boxes stay well below the");
    report.note("quadtree cloaks (which can only halve the domain per step), and the");
    report.note("population-blind uniform grid leaves a large fraction of requests");
    report.note("under-anonymized no matter how its cell is sized.");
    report.emit();
}
