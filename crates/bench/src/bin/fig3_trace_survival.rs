//! **F3 — the k′-decreasing schedule ablation.**
//!
//! Section 6.2: "if we want to ensure historical k-anonymity, we should
//! probably use an initial parameter k′ larger than k. Indeed, the longer
//! the trace, the less are the probabilities that the same k individuals
//! will move along the same trace … Starting with a larger k′ and
//! decreasing its value at each point in the trace, until k is reached,
//! should increase the probability to maintain historical k-anonymity
//! for longer traces."
//!
//! We replay each commuter's anchor-request sequence directly through
//! Algorithm 1 (first-element branch at step 0, subsequent branch after)
//! under four schedules — fixed k, two fast-decaying k′ reserves, and a
//! slowly-decaying k′ reserve — and plot the **survival curve**: the
//! fraction of traces for which every step up to length L satisfied the
//! tolerance. The ablation both confirms and sharpens the paper's
//! conjecture: a reserve helps exactly when it decays *fast* (the extra
//! candidates are spent on one selection step), while a slowly decaying
//! k′ forces oversized boxes at every early step and collapses survival
//! (see EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p hka-bench --bin fig3_trace_survival
//! ```

use hka_bench::{build, Cell, Report, ScenarioConfig};
use hka_core::{algorithm1_first, algorithm1_subsequent, PrivacyParams, RiskAction, Tolerance};
use hka_geo::{SpaceTimeScale, StPoint, MINUTE};
use hka_mobility::{EventKind, ANCHOR_SERVICE};
use hka_trajectory::{GridIndex, GridIndexConfig, UserId};

const MAX_LEN: usize = 16;

/// Runs one schedule over a trace; returns how many steps survived
/// (hk_anonymity true) before the first failure.
fn survive(
    index: &GridIndex,
    store: &hka_trajectory::TrajectoryStore,
    scale: &SpaceTimeScale,
    user: UserId,
    trace: &[StPoint],
    params: &PrivacyParams,
    tolerance: &Tolerance,
) -> usize {
    let mut selected: Vec<UserId> = Vec::new();
    for (step, p) in trace.iter().enumerate() {
        let g = if step == 0 {
            algorithm1_first(index, p, user, params.k_at_step(0), tolerance)
        } else {
            algorithm1_subsequent(
                store,
                p,
                &selected,
                params.k_at_step(step),
                tolerance,
                scale,
            )
        };
        if !g.hk_anonymity {
            return step;
        }
        selected = g.selected;
    }
    trace.len()
}

fn main() {
    let k = 5usize;
    let tolerance = Tolerance::new(4e6, 10 * MINUTE);
    // Schedules: the decrement rate decides whether the reserve helps.
    // "Guidance on the choice of k' and on the value by which it should
    // be decremented at each step should come from the analysis of
    // historical data" — fast decay (reach k after one or two steps)
    // buys a one-shot selection advantage; slow decay forces large boxes
    // at every early step.
    let mk = |k_init: usize, k_decrement: usize| PrivacyParams {
        k,
        theta: 0.5,
        k_init,
        k_decrement,
        on_risk: RiskAction::Forward,
    };
    let schedules = [
        ("fixed k", PrivacyParams::fixed(k, 0.5)),
        ("k'=2k fast(-k)", mk(2 * k, k)),
        ("k'=3k fast(-2k)", mk(3 * k, 2 * k)),
        ("k'=2k slow(-1)", mk(2 * k, 1)),
    ];

    // Survival counts per schedule and length.
    let mut survived = vec![[0usize; MAX_LEN + 1]; schedules.len()];
    let mut traces_total = 0usize;

    for seed in 1u64..=6 {
        let s = build(&ScenarioConfig {
            seed,
            days: 10,
            n_commuters: 10,
            n_roamers: 60,
            ..ScenarioConfig::default()
        });
        let store = s.world.store();
        let index = GridIndex::build(&store, GridIndexConfig::default());
        let scale = index.config().scale;
        for &u in &s.protected {
            let trace: Vec<StPoint> = s
                .world
                .events
                .iter()
                .filter(|e| {
                    e.user == u
                        && matches!(e.kind, EventKind::Request { service } if service == ANCHOR_SERVICE)
                })
                .map(|e| e.at)
                .take(MAX_LEN)
                .collect();
            if trace.len() < MAX_LEN {
                continue;
            }
            traces_total += 1;
            for (si, (_, params)) in schedules.iter().enumerate() {
                let steps = survive(&index, &store, &scale, u, &trace, params, &tolerance);
                for slot in survived[si].iter_mut().take(steps + 1) {
                    *slot += 1;
                }
            }
        }
    }

    let mut columns = vec!["L"];
    for (label, _) in &schedules {
        columns.push(label);
    }
    let mut report = Report::new(
        "F3",
        &format!(
            "P(historical k-anonymity survives a trace of length L), k = {k}, {traces_total} traces"
        ),
    )
    .columns(&columns);
    for len in 1..=MAX_LEN {
        let mut row = vec![Cell::int(len as i64)];
        for counts in &survived {
            row.push(Cell::pct(counts[len] as f64 / traces_total as f64, 1));
        }
        report.row(row);
    }
    report.note("Reading: fast-decaying reserves dominate at short-to-medium trace");
    report.note("lengths (the paper's conjecture, with the decay rate made explicit);");
    report.note("a slowly decaying k′ must cover > k candidates at every early step and");
    report.note("collapses. On long periodic traces the home-anchored fixed-k selection");
    report.note("catches up, because commute traces return to where they started —");
    report.note("a nuance the paper's sketch did not anticipate.");
    report.emit();
}
