//! **F4 — adversarial re-identification vs k, with and without
//! unlinking.**
//!
//! The Section-1 motivating attack (phone-book lookup of home
//! coordinates) combined with the Section-5.2 linkability machinery: the
//! provider clusters requests — by pseudonym, and optionally chaining
//! across pseudonym changes with the Gruteser–Hoh tracker at a threshold
//! Θ — and claims identities from unambiguous home evidence.
//!
//! Series: fraction of protected users re-identified, as a function of
//! the anonymity level k, for (a) no protection, (b) generalization only
//! (mix-zones disabled, so no pseudonym changes), (c) the full strategy;
//! each attacked with the plain phone-book lookup, the stronger
//! home/work *pair* attack (Golle–Partridge-style), and tracker chaining
//! at Θ ∈ {0.8, 0.5}.
//!
//! ```text
//! cargo run --release -p hka-bench --bin fig4_attack
//! ```

use hka_anonymity::{CompositeLinker, PseudonymLinker, ServiceId, SpRequest};
use hka_bench::{Cell, Report};
use hka_core::adversary::{pair_attack, Adversary, HomeRegistry, PairRegistry};
use hka_core::{
    MixZoneConfig, PrivacyLevel, PrivacyParams, RiskAction, Tolerance, TrustedServer, TsConfig,
};
use hka_geo::MINUTE;
use hka_lbqid::{parse_lbqid, Lbqid};
use hka_mobility::{CityConfig, EventKind, World, WorldConfig, ANCHOR_SERVICE, BACKGROUND_SERVICE};
use hka_trajectory::UserId;

struct RunOutput {
    requests: Vec<SpRequest>,
    truth: Vec<UserId>,
    registry: HomeRegistry,
    pairs: PairRegistry,
    targets: usize,
}

fn run(world: &World, level: Option<PrivacyParams>, mixzones: bool) -> RunOutput {
    let mut config = TsConfig::default();
    if !mixzones {
        // Setting an impossible divergence requirement disables on-demand
        // zones: unlinking is never feasible.
        config.mixzone = MixZoneConfig {
            min_divergence: 7.0,
            ..MixZoneConfig::default()
        };
    }
    let mut ts = TrustedServer::new(config);
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));

    let mut registry = HomeRegistry::new();
    let mut pairs = PairRegistry::new();
    let mut targets = 0usize;
    for agent in &world.agents {
        let home = world.home_of(agent.user);
        let protected = home.is_some() && level.is_some();
        ts.register_user(
            agent.user,
            match (protected, level) {
                (true, Some(p)) => PrivacyLevel::Custom(p),
                _ => PrivacyLevel::Off,
            },
        );
        if let Some(home) = home {
            registry.add(home, agent.user);
            if let Some(office) = world.office_of(agent.user) {
                pairs.add(home, office, agent.user);
            }
            targets += 1;
            if protected {
                let dsl = format!(
                    "lbqid at_home {{ element area({}, {}, {}, {}) window(00:00, 23:59); recur 2.Days; }}",
                    home.min().x, home.min().y, home.max().x, home.max().y
                );
                ts.add_lbqid(agent.user, parse_lbqid(&dsl).unwrap());
                if let Some(office) = world.office_of(agent.user) {
                    ts.add_lbqid(agent.user, Lbqid::example_commute(home, office));
                }
            }
        }
    }
    for e in &world.events {
        match e.kind {
            EventKind::Location => ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let _ = ts.handle_request(e.user, e.at, ServiceId(service));
            }
        }
    }
    let (truth, requests) = ts.outbox().iter().cloned().unzip();
    RunOutput {
        requests,
        truth,
        registry,
        pairs,
        targets,
    }
}

/// Correctly-identified distinct users under the home/work pair attack.
fn attack_pairs(out: &RunOutput) -> f64 {
    let linker = PseudonymLinker;
    let claims = pair_attack(&linker, 0.9, &out.pairs, &out.requests);
    // Score claims against ground truth: a claim is right when the
    // cluster-anchor request really belongs to the claimed user.
    let correct: std::collections::BTreeSet<UserId> = claims
        .iter()
        .filter(|(anchor, claimed)| out.truth[*anchor] == *claimed)
        .map(|(_, claimed)| *claimed)
        .collect();
    correct.len() as f64 / out.targets as f64
}

fn attack(out: &RunOutput, theta: f64, tracker: bool) -> f64 {
    let report = if tracker {
        let linker = CompositeLinker::standard();
        Adversary::new(&linker, theta, &out.registry).attack(&out.requests, &out.truth)
    } else {
        let linker = PseudonymLinker;
        Adversary::new(&linker, theta, &out.registry).attack(&out.requests, &out.truth)
    };
    report.users_identified as f64 / out.targets as f64
}

fn main() {
    let world = World::generate(&WorldConfig {
        seed: 55,
        days: 8,
        n_commuters: 12,
        n_roamers: 60,
        n_poi_regulars: 8,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        background_request_rate: 0.3,
        ..WorldConfig::default()
    });

    let mut report = Report::new(
        "F4",
        "fraction of home-owning users re-identified by the provider",
    )
    .columns(&[
        "defence",
        "k",
        "phone-book",
        "home+work",
        "tracker Θ=0.8",
        "tracker Θ=0.5",
    ]);
    let attack_row = |report: &mut Report, label: &str, k: &str, out: &RunOutput| {
        report.row(vec![
            Cell::text(label),
            Cell::text(k),
            Cell::pct(attack(out, 0.9, false), 0),
            Cell::pct(attack_pairs(out), 0),
            Cell::pct(attack(out, 0.8, true), 0),
            Cell::pct(attack(out, 0.5, true), 0),
        ]);
    };

    // No protection at all.
    let off = run(&world, None, true);
    attack_row(&mut report, "none (exact contexts)", "-", &off);

    for k in [2usize, 5, 10] {
        let params = PrivacyParams {
            k,
            theta: 0.5,
            k_init: 2 * k,
            k_decrement: 1,
            on_risk: RiskAction::Forward,
        };
        let gen_only = run(&world, Some(params), false);
        attack_row(
            &mut report,
            "generalization only",
            &k.to_string(),
            &gen_only,
        );
        let full = run(&world, Some(params), true);
        attack_row(
            &mut report,
            "full strategy (+unlink)",
            &k.to_string(),
            &full,
        );
    }
    report.note("Reading: without protection the phone-book attack identifies many");
    report.note("home-owners and the home/work pair attack even more. Generalization");
    report.note("makes the evidence ambiguous (cloaks cover several homes/offices) and");
    report.note("kills both attacks by k = 10. Two second-order observations: (1)");
    report.note("aggressive tracker chaining (low Θ) merges too much and self-destructs;");
    report.note("(2) against the *pair* attack, unlinking can backfire at moderate k —");
    report.note("splitting a user's stream into small per-day clusters makes each");
    report.note("cluster's home+work evidence crisper than one big ambiguous cluster.");
    report.note("Protection against pair-style attackers must come from generalization");
    report.note("strength (k), not from pseudonym rotation alone.");
    report.emit();
}
