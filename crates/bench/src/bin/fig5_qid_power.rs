//! **F5 — the identifying power of an LBQID vs its specificity.**
//!
//! Section 4: "the derivation process will have to be based on
//! statistical analysis of the data about users movement history: If a
//! certain pattern turns out to be very common for many users, it is
//! unlikely to be useful for identifying any one of them."
//!
//! For one target commuter we build commute-pattern variants of
//! increasing looseness — growing the areas, widening the windows,
//! weakening the recurrence — and count how many users in the whole city
//! *could* fully match each variant with their movement history (feeding
//! every location sample through the online matcher). The identifying
//! power is `1 / matching-population`: the quasi-identifier is useful
//! exactly while that population is 1.
//!
//! ```text
//! cargo run --release -p hka-bench --bin fig5_qid_power
//! ```

use hka_bench::{Cell, Report};
use hka_geo::{DayWindow, Rect};
use hka_granules::Recurrence;
use hka_lbqid::{Element, Lbqid, Monitor};
use hka_mobility::{CityConfig, EventKind, World, WorldConfig};

/// Commute variant: home/office grown by `grow` meters on every side,
/// windows widened by `widen` hours, with the given recurrence.
fn variant(home: Rect, office: Rect, grow: f64, widen: u32, recur: &str) -> Lbqid {
    let h = home.buffer(grow);
    let o = office.buffer(grow);
    let w = |a: (u32, u32), b: (u32, u32)| {
        DayWindow::hm((a.0.saturating_sub(widen), a.1), (b.0 + widen, b.1))
    };
    Lbqid::new(
        "variant",
        vec![
            Element::new(h, w((7, 0), (8, 0))),
            Element::new(o, w((8, 0), (9, 0))),
            Element::new(o, w((16, 0), (18, 0))),
            Element::new(h, w((17, 0), (19, 0))),
        ],
        recur.parse::<Recurrence>().unwrap(),
    )
    .unwrap()
}

fn main() {
    let world = World::generate(&WorldConfig {
        seed: 15,
        days: 14,
        n_commuters: 20,
        n_roamers: 60,
        n_poi_regulars: 10,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        background_request_rate: 0.0,
        ..WorldConfig::default()
    });
    let target = world.commuters().next().unwrap();
    let home = world.home_of(target).unwrap();
    let office = world.office_of(target).unwrap();

    // Specificity ladder, tightest first.
    let ladder: Vec<(&str, Lbqid)> = vec![
        (
            "exact bldgs, 3.Weekdays*2.Weeks",
            variant(home, office, 0.0, 0, "3.Weekdays * 2.Weeks"),
        ),
        (
            "exact bldgs, 1.Weekdays",
            variant(home, office, 0.0, 0, "1.Weekdays"),
        ),
        (
            "+100 m areas, 3.Weekdays*2.Weeks",
            variant(home, office, 100.0, 0, "3.Weekdays * 2.Weeks"),
        ),
        (
            "+300 m areas, 3.Weekdays*2.Weeks",
            variant(home, office, 300.0, 0, "3.Weekdays * 2.Weeks"),
        ),
        (
            "+300 m, ±1 h windows",
            variant(home, office, 300.0, 1, "3.Weekdays * 2.Weeks"),
        ),
        (
            "+700 m, ±2 h windows",
            variant(home, office, 700.0, 2, "3.Weekdays * 2.Weeks"),
        ),
        (
            "+700 m, ±2 h, 1.Weekdays",
            variant(home, office, 700.0, 2, "1.Weekdays"),
        ),
    ];

    let mut report = Report::new(
        "F5",
        &format!(
            "how many users could match each commute-pattern variant (population {}; target user {target}; every location sample tested)",
            world.agents.len()
        ),
    )
    .columns(&["pattern variant", "matchers", "target in?", "id. power"]);

    for (label, q) in &ladder {
        let mut matchers = 0usize;
        let mut target_matches = false;
        for agent in &world.agents {
            let mut m = Monitor::new(q.clone());
            let mut matched = false;
            for e in world.events.iter().filter(|e| e.user == agent.user) {
                if e.kind != EventKind::Location {
                    continue;
                }
                if let Some(ev) = m.observe(e.at) {
                    if ev.full_match {
                        matched = true;
                        break;
                    }
                }
            }
            if matched {
                matchers += 1;
                if agent.user == target {
                    target_matches = true;
                }
            }
        }
        let power = if matchers == 0 {
            "—".to_string()
        } else {
            format!("1/{matchers}")
        };
        report.row(vec![
            Cell::text(*label),
            Cell::int(matchers as i64),
            Cell::flag(target_matches),
            Cell::text(power),
        ]);
    }
    report.note("Reading: the exact-building pattern singles out the target (power 1/1);");
    report.note("growing the areas and windows sweeps in other commuters until the pattern");
    report.note("'turns out to be very common for many users' and stops identifying —");
    report.note("the statistical basis the paper prescribes for LBQID derivation.");
    report.emit();
}
