//! **T1 — Theorem 1, verified empirically.**
//!
//! > *Theorem 1.* If we apply our strategy with Algorithm 1, and we assume
//! > we can always perform Unlinking for a certain likelihood parameter
//! > Θ, then, given an anonymity value k, any set of requests issued to
//! > an SP by a certain user that matches one of his/her LBQIDs and is
//! > link connected with likelihood Θ, will satisfy Historical
//! > k-anonymity.
//!
//! For each (seed, k, density) cell we run the full strategy over two
//! simulated weeks and audit every protected user's pattern-request set
//! (which is link-connected at any Θ: all its requests share a
//! pseudonym). The column that must be **zero** is `viol(clean)`:
//! violations of historical k-anonymity *not preceded by an at-risk
//! notification* — i.e. violations within the theorem's hypotheses
//! (whenever unlinking was needed it succeeded). `viol(risk)` counts
//! violations where the unlinking hypothesis failed and the TS notified
//! the user (outside the theorem's scope, reported for context). The
//! `unprotected` column replays the same workload with privacy off and
//! counts users whose raw request streams match their LBQID with fewer
//! than k consistent histories — what Theorem 1 is protecting against.
//!
//! ```text
//! cargo run --release -p hka-bench --bin table1_theorem1
//! ```

use hka_anonymity::historical_k_anonymity;
use hka_bench::{build, run_events, Cell, Report, ScenarioConfig};
use hka_core::{PrivacyParams, RiskAction};
use hka_geo::StBox;
use hka_lbqid::{offline, Lbqid};
use hka_mobility::{EventKind, ANCHOR_SERVICE};

fn main() {
    let mut report = Report::new(
        "T1",
        "Theorem 1 — historical k-anonymity of LBQID-matched request sets",
    )
    .columns(&[
        "seed",
        "density",
        "k",
        "users",
        "matched",
        "HK ok",
        "viol(clean)",
        "viol(risk)",
        "unprotected",
    ]);

    let mut total_clean_violations = 0usize;
    for &(density_label, n_roamers) in &[("dense", 80usize), ("sparse", 25usize)] {
        for &k in &[2usize, 5, 10] {
            for seed in 1u64..=4 {
                let params = PrivacyParams {
                    k,
                    theta: 0.5,
                    k_init: 2 * k,
                    k_decrement: 1,
                    on_risk: RiskAction::Forward,
                };
                let cfg = ScenarioConfig {
                    seed,
                    days: 14,
                    n_commuters: 8,
                    n_roamers,
                    params,
                    ..ScenarioConfig::default()
                };
                let mut s = build(&cfg);
                run_events(&mut s);

                let mut matched = 0usize;
                let mut hk_ok = 0usize;
                let mut viol_clean = 0usize;
                let mut viol_risk = 0usize;
                for &u in &s.protected {
                    for (_name, is_matched, hk) in s.ts.audit_patterns(u, k) {
                        if is_matched {
                            matched += 1;
                        }
                        if hk.satisfied {
                            hk_ok += 1;
                        } else if s.ts.is_at_risk(u) {
                            viol_risk += 1;
                        } else {
                            viol_clean += 1;
                        }
                    }
                }
                total_clean_violations += viol_clean;

                // Unprotected baseline: raw anchor streams vs Definition 3
                // + Definition 8 on the degenerate (exact) contexts.
                let store = s.world.store();
                let mut unprotected = 0usize;
                for &u in &s.protected {
                    let lbqid = Lbqid::example_commute(
                        s.world.home_of(u).unwrap(),
                        s.world.office_of(u).unwrap(),
                    );
                    let pts: Vec<_> = s
                        .world
                        .events
                        .iter()
                        .filter(|e| {
                            e.user == u
                                && matches!(e.kind, EventKind::Request { service } if service == ANCHOR_SERVICE)
                        })
                        .map(|e| e.at)
                        .collect();
                    if offline::matches(&lbqid, &pts) {
                        let contexts: Vec<StBox> = pts.iter().map(|p| StBox::point(*p)).collect();
                        if !historical_k_anonymity(&store, u, &contexts, k).satisfied {
                            unprotected += 1;
                        }
                    }
                }

                report.row(vec![
                    Cell::int(seed as i64),
                    Cell::text(density_label),
                    Cell::int(k as i64),
                    Cell::int(s.protected.len() as i64),
                    Cell::int(matched as i64),
                    Cell::int(hk_ok as i64),
                    Cell::int(viol_clean as i64),
                    Cell::int(viol_risk as i64),
                    Cell::int(unprotected as i64),
                ]);
            }
        }
    }
    report.note(&format!(
        "Theorem 1 holds iff every viol(clean) cell is 0. Observed total: {total_clean_violations}"
    ));
    report.emit();
    assert_eq!(
        total_clean_violations, 0,
        "THEOREM 1 VIOLATED — see rows above"
    );
    println!("✓ no clean violations: within its hypotheses, the strategy preserves historical k-anonymity.");
}
