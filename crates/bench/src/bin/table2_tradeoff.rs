//! **T2 — the QoS / anonymity / unlinking trade-off triangle.**
//!
//! Section 6.2: "the most relevant \[issue\] is the trade-off between
//! quality of service (i.e., how strict tolerance constraints should be),
//! degree of anonymity (i.e., choice of k), and frequency of unlinking
//! (i.e., number of possible interruptions of the service)."
//!
//! One row per (k, tolerance) cell, averaged over seeds: generalization
//! success rate, mean forwarded context size (QoS), unlink events and
//! at-risk notifications per 1 000 pattern requests (service disruption).
//!
//! ```text
//! cargo run --release -p hka-bench --bin table2_tradeoff
//! ```

use hka_bench::{build, mean, run_events, Cell, Report, ScenarioConfig};
use hka_core::{PrivacyParams, RiskAction, Tolerance};
use hka_geo::MINUTE;

fn main() {
    let mut report = Report::new(
        "T2",
        "QoS × anonymity × unlinking trade-off (4 seeds × 14 days each)",
    )
    .columns(&[
        "tolerance",
        "k",
        "HK ok %",
        "mean m²",
        "mean s",
        "unlink/1k",
        "at-risk/1k",
    ]);
    let tolerances = [
        (
            "strict (0.25 km², 2 min)",
            Tolerance::new(2.5e5, 2 * MINUTE),
        ),
        ("medium (4 km², 10 min)", Tolerance::new(4e6, 10 * MINUTE)),
        ("loose (25 km², 60 min)", Tolerance::new(2.5e7, 60 * MINUTE)),
    ];
    for (ti, (label, tolerance)) in tolerances.into_iter().enumerate() {
        if ti > 0 {
            report.gap();
        }
        for k in [2usize, 5, 10, 20] {
            let mut rates = vec![];
            let mut areas = vec![];
            let mut durs = vec![];
            let mut unlinks = vec![];
            let mut risks = vec![];
            for seed in 1u64..=4 {
                let mut s = build(&ScenarioConfig {
                    seed,
                    days: 14,
                    n_commuters: 10,
                    n_roamers: 60,
                    params: PrivacyParams {
                        k,
                        theta: 0.5,
                        k_init: 2 * k,
                        k_decrement: 1,
                        on_risk: RiskAction::Forward,
                    },
                    anchor_tolerance: tolerance,
                    background_tolerance: tolerance,
                });
                run_events(&mut s);
                let st = s.ts.log().stats();
                let pattern_reqs =
                    (st.generalized() + st.suppressed_mixzone + st.suppressed_risk).max(1) as f64;
                rates.push(st.hk_success_rate());
                areas.push(st.mean_generalized_area());
                durs.push(st.mean_generalized_duration());
                unlinks.push(1_000.0 * st.pseudonym_changes as f64 / pattern_reqs);
                risks.push(1_000.0 * st.at_risk as f64 / pattern_reqs);
            }
            report.row(vec![
                Cell::text(label),
                Cell::int(k as i64),
                Cell::pct(mean(&rates), 1),
                Cell::num(mean(&areas), 0),
                Cell::num(mean(&durs), 0),
                Cell::num(mean(&unlinks), 1),
                Cell::num(mean(&risks), 1),
            ]);
        }
    }
    report.note("Reading: stricter tolerance and larger k both depress the HK success rate;");
    report.note("failures surface either as unlinking (service interruptions) or at-risk");
    report.note("notifications — the paper's triangle, quantified.");
    report.emit();
}
