//! **T3 — Algorithm 1's expensive step: O(k·n) brute force vs the index.**
//!
//! Section 6.2: "The most time consuming step is the one at line 5. This
//! can be performed using a brute-force algorithm by simply considering
//! the nearest neighbor in the PHL of each user and then taking the
//! closest k points. In this case, the worst case complexity of this step
//! is O(k·n) where n is the number of location points in the TS.
//! Optimizations may be inspired by the work on indexing moving objects."
//!
//! We grow n (total location points) by lengthening the simulation and
//! population, and time the first-element branch under every
//! [`SpatialIndex`] backend over the same query sample — all three run
//! the *same* `algorithm1_first` code through the trait, so the timing
//! differences are purely the index structures. The scaling exponent is
//! estimated from successive size doublings.
//!
//! ```text
//! cargo run --release -p hka-bench --bin table3_index_scaling [-- --backends grid,rtree,brute]
//! ```

use hka_bench::{median, parse_backends, time_ns, Cell, Report};
use hka_core::{algorithm1_first, Tolerance};
use hka_geo::StPoint;
use hka_mobility::{CityConfig, EventKind, World, WorldConfig};
use hka_trajectory::{GridIndexConfig, SpatialIndex, UserId};

fn main() {
    let backends = parse_backends(std::env::args().skip(1));
    let k = 5usize;
    let tolerance = Tolerance::new(f64::MAX, i64::MAX);
    let mut columns = vec!["n points".to_string(), "users".to_string()];
    for b in &backends {
        columns.push(format!("{b} µs"));
    }
    for b in &backends {
        columns.push(format!("{b}×"));
    }
    let column_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "T3",
        "Algorithm 1 line 5 — O(k·n) brute force vs index backends",
    )
    .columns(&column_refs);

    let sizes = [(20usize, 1i64), (40, 2), (80, 4), (160, 8)];
    let mut prev: Option<Vec<f64>> = None;
    for (users, days) in sizes {
        let world = World::generate(&WorldConfig {
            seed: 77,
            days,
            sample_interval: 60,
            n_commuters: users / 4,
            n_roamers: users / 2,
            n_poi_regulars: users / 4,
            city: CityConfig {
                width: 2_000.0,
                height: 2_000.0,
                ..CityConfig::default()
            },
            background_request_rate: 0.0,
            ..WorldConfig::default()
        });
        let store = world.store();
        let indices: Vec<Box<dyn SpatialIndex>> = backends
            .iter()
            .map(|b| b.build(&store, GridIndexConfig::default()))
            .collect();
        let n = store.total_points();

        // A fixed sample of query situations.
        let queries: Vec<(UserId, StPoint)> = world
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Location)
            .step_by((world.events.len() / 50).max(1))
            .map(|e| (e.user, e.at))
            .take(40)
            .collect();

        let micros: Vec<f64> = indices
            .iter()
            .map(|index| {
                let samples: Vec<f64> = queries
                    .iter()
                    .map(|(u, q)| {
                        time_ns(3, || {
                            std::hint::black_box(algorithm1_first(
                                index.as_ref(),
                                q,
                                *u,
                                k,
                                &tolerance,
                            ));
                        })
                    })
                    .collect();
                median(&samples) / 1_000.0
            })
            .collect();

        let growth: Vec<f64> = match &prev {
            Some(p) => micros.iter().zip(p).map(|(m, pm)| m / pm).collect(),
            None => vec![1.0; micros.len()],
        };
        let mut row = vec![Cell::int(n as i64), Cell::int(store.user_count() as i64)];
        row.extend(micros.iter().map(|m| Cell::num(*m, 1)));
        row.extend(growth.iter().map(|g| Cell::num(*g, 2)));
        report.row(row);
        prev = Some(micros);
    }
    report.note("Reading: brute-force latency grows linearly with n (each doubling of");
    report.note("the database roughly doubles its µs column: brute× ≈ 2), while the grid");
    report.note("index visits only the occupied cells near the query and grows far more");
    report.note("slowly (grid× well below 2) — the 'indexing moving objects' optimization");
    report.note("the paper calls for. The crossover sits around a few hundred thousand");
    report.note("points: below it, a per-PHL scan with temporal pruning is already fast.");
    report.note("Correctness note: every backend runs the identical algorithm1_first code");
    report.note("through the SpatialIndex trait and is differentially tested for equal");
    report.note("results in crates/trajectory/tests/props.rs and crates/core/tests/props.rs.");
    report.emit();
}
