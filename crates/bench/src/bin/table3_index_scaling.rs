//! **T3 — Algorithm 1's expensive step: O(k·n) brute force vs the index.**
//!
//! Section 6.2: "The most time consuming step is the one at line 5. This
//! can be performed using a brute-force algorithm by simply considering
//! the nearest neighbor in the PHL of each user and then taking the
//! closest k points. In this case, the worst case complexity of this step
//! is O(k·n) where n is the number of location points in the TS.
//! Optimizations may be inspired by the work on indexing moving objects."
//!
//! We grow n (total location points) by lengthening the simulation and
//! population, and time the first-element branch under both
//! implementations over the same query sample. The scaling exponent is
//! estimated from successive size doublings.
//!
//! ```text
//! cargo run --release -p hka-bench --bin table3_index_scaling
//! ```

use hka_bench::{median, time_ns, Cell, Report};
use hka_core::{algorithm1_first, algorithm1_first_brute, Tolerance};
use hka_geo::StPoint;
use hka_mobility::{CityConfig, EventKind, World, WorldConfig};
use hka_trajectory::{GridIndex, GridIndexConfig, RTreeIndex, UserId};

fn main() {
    let k = 5usize;
    let tolerance = Tolerance::new(f64::MAX, i64::MAX);
    let mut report = Report::new("T3", "Algorithm 1 line 5 — brute force O(k·n) vs grid index")
        .columns(&[
            "n points",
            "users",
            "brute µs",
            "grid µs",
            "rtree µs",
            "speedup",
            "brute×",
            "grid×",
            "rtree×",
        ]);

    let sizes = [(20usize, 1i64), (40, 2), (80, 4), (160, 8)];
    let mut prev: Option<(f64, f64, f64)> = None;
    for (users, days) in sizes {
        let world = World::generate(&WorldConfig {
            seed: 77,
            days,
            sample_interval: 60,
            n_commuters: users / 4,
            n_roamers: users / 2,
            n_poi_regulars: users / 4,
            city: CityConfig {
                width: 2_000.0,
                height: 2_000.0,
                ..CityConfig::default()
            },
            background_request_rate: 0.0,
            ..WorldConfig::default()
        });
        let store = world.store();
        let index = GridIndex::build(&store, GridIndexConfig::default());
        let rtree = RTreeIndex::build(&store, GridIndexConfig::default().scale);
        let n = store.total_points();

        // A fixed sample of query situations.
        let queries: Vec<(UserId, StPoint)> = world
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Location)
            .step_by((world.events.len() / 50).max(1))
            .map(|e| (e.user, e.at))
            .take(40)
            .collect();

        let scale = index.config().scale;
        let mut brute_ns = Vec::new();
        let mut index_ns = Vec::new();
        let mut rtree_ns = Vec::new();
        for (u, q) in &queries {
            brute_ns.push(time_ns(3, || {
                std::hint::black_box(algorithm1_first_brute(
                    &store, q, *u, k, &tolerance, &scale,
                ));
            }));
            index_ns.push(time_ns(3, || {
                std::hint::black_box(algorithm1_first(&index, q, *u, k, &tolerance));
            }));
            rtree_ns.push(time_ns(3, || {
                std::hint::black_box(rtree.k_nearest_users(q, k, Some(*u)));
            }));
        }
        let b = median(&brute_ns) / 1_000.0;
        let i = median(&index_ns) / 1_000.0;
        let r = median(&rtree_ns) / 1_000.0;
        let (bx, ix, rx) = match prev {
            Some((pb, pi, pr)) => (b / pb, i / pi, r / pr),
            None => (1.0, 1.0, 1.0),
        };
        report.row(vec![
            Cell::int(n as i64),
            Cell::int(store.user_count() as i64),
            Cell::num(b, 1),
            Cell::num(i, 1),
            Cell::num(r, 1),
            Cell::num(b / i.min(r), 1),
            Cell::num(bx, 2),
            Cell::num(ix, 2),
            Cell::num(rx, 2),
        ]);
        prev = Some((b, i, r));
    }
    report.note("Reading: brute-force latency grows linearly with n (each doubling of");
    report.note("the database roughly doubles its µs column: brute× ≈ 2), while the grid");
    report.note("index visits only the occupied cells near the query and grows far more");
    report.note("slowly (index× well below 2) — the 'indexing moving objects' optimization");
    report.note("the paper calls for. The crossover sits around a few hundred thousand");
    report.note("points: below it, a per-PHL scan with temporal pruning is already fast.");
    report.note("Correctness note: both implementations are differentially tested for");
    report.note("equal results in crates/trajectory/tests/props.rs.");
    report.emit();
}
