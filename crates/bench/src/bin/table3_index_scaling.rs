//! **T3 — Algorithm 1's expensive step: O(k·n) brute force vs the index.**
//!
//! Section 6.2: "The most time consuming step is the one at line 5. This
//! can be performed using a brute-force algorithm by simply considering
//! the nearest neighbor in the PHL of each user and then taking the
//! closest k points. In this case, the worst case complexity of this step
//! is O(k·n) where n is the number of location points in the TS.
//! Optimizations may be inspired by the work on indexing moving objects."
//!
//! We grow n (total location points) by lengthening the simulation and
//! population, and time the first-element branch under both
//! implementations over the same query sample. The scaling exponent is
//! estimated from successive size doublings.
//!
//! ```text
//! cargo run --release -p hka-bench --bin table3_index_scaling
//! ```

use hka_bench::{median, time_ns};
use hka_core::{algorithm1_first, algorithm1_first_brute, Tolerance};
use hka_geo::StPoint;
use hka_mobility::{CityConfig, EventKind, World, WorldConfig};
use hka_trajectory::{GridIndex, GridIndexConfig, RTreeIndex, UserId};

fn main() {
    println!("=== T3: Algorithm 1 line 5 — brute force O(k·n) vs grid index ===\n");
    let k = 5usize;
    let tolerance = Tolerance::new(f64::MAX, i64::MAX);
    println!(
        "{:>9} {:>7} {:>12} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "n points", "users", "brute µs", "grid µs", "rtree µs", "speedup", "brute×", "grid×", "rtree×"
    );
    hka_bench::rule(100);

    let sizes = [(20usize, 1i64), (40, 2), (80, 4), (160, 8)];
    let mut prev: Option<(f64, f64, f64)> = None;
    for (users, days) in sizes {
        let world = World::generate(&WorldConfig {
            seed: 77,
            days,
            sample_interval: 60,
            n_commuters: users / 4,
            n_roamers: users / 2,
            n_poi_regulars: users / 4,
            city: CityConfig {
                width: 2_000.0,
                height: 2_000.0,
                ..CityConfig::default()
            },
            background_request_rate: 0.0,
            ..WorldConfig::default()
        });
        let store = world.store();
        let index = GridIndex::build(&store, GridIndexConfig::default());
        let rtree = RTreeIndex::build(&store, GridIndexConfig::default().scale);
        let n = store.total_points();

        // A fixed sample of query situations.
        let queries: Vec<(UserId, StPoint)> = world
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Location)
            .step_by((world.events.len() / 50).max(1))
            .map(|e| (e.user, e.at))
            .take(40)
            .collect();

        let scale = index.config().scale;
        let mut brute_ns = Vec::new();
        let mut index_ns = Vec::new();
        let mut rtree_ns = Vec::new();
        for (u, q) in &queries {
            brute_ns.push(time_ns(3, || {
                std::hint::black_box(algorithm1_first_brute(
                    &store, q, *u, k, &tolerance, &scale,
                ));
            }));
            index_ns.push(time_ns(3, || {
                std::hint::black_box(algorithm1_first(&index, q, *u, k, &tolerance));
            }));
            rtree_ns.push(time_ns(3, || {
                std::hint::black_box(rtree.k_nearest_users(q, k, Some(*u)));
            }));
        }
        let b = median(&brute_ns) / 1_000.0;
        let i = median(&index_ns) / 1_000.0;
        let r = median(&rtree_ns) / 1_000.0;
        let (bx, ix, rx) = match prev {
            Some((pb, pi, pr)) => (b / pb, i / pi, r / pr),
            None => (1.0, 1.0, 1.0),
        };
        println!(
            "{:>9} {:>7} {:>12.1} {:>12.1} {:>12.1} {:>8.1}x {:>8.2}x {:>8.2}x {:>8.2}x",
            n,
            store.user_count(),
            b,
            i,
            r,
            b / i.min(r),
            bx,
            ix,
            rx
        );
        prev = Some((b, i, r));
    }
    hka_bench::rule(100);
    println!("\nReading: brute-force latency grows linearly with n (each doubling of");
    println!("the database roughly doubles its µs column: brute× ≈ 2), while the grid");
    println!("index visits only the occupied cells near the query and grows far more");
    println!("slowly (index× well below 2) — the 'indexing moving objects' optimization");
    println!("the paper calls for. The crossover sits around a few hundred thousand");
    println!("points: below it, a per-PHL scan with temporal pruning is already fast.");
    println!("\nCorrectness note: both implementations are differentially tested for");
    println!("equal results in crates/trajectory/tests/props.rs.");
}
