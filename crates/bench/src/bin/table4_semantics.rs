//! **T4 — k *potential* senders vs k *actual* senders.**
//!
//! Section 2: "the notion of k-anonymity used in \[9\] is slightly
//! different: the authors consider a message … k-anonymous, only if there
//! are other k−1 users in the same spatio-temporal context that actually
//! send a message. … We only require the presence in the same
//! spatio-temporal context of k−1 potential senders, which is a much
//! weaker requirement."
//!
//! This table quantifies "much weaker": the same request workload is
//! served under both semantics at equal k and equal spatio-temporal
//! budget. Potential senders = Algorithm 1 (success iff the k-nearest-PHL
//! box fits the budget); actual senders = Gedik–Liu-style deferral
//! (success iff k distinct users *requested* within the budget).
//! Requests per hour sweeps the workload intensity: the actual-senders
//! semantics depends on it; the potential-senders semantics does not.
//!
//! ```text
//! cargo run --release -p hka-bench --bin table4_semantics
//! ```

use hka_baselines::actual_senders::{self, ActualSendersConfig};
use hka_bench::{Cell, Report};
use hka_core::{algorithm1_first, Tolerance};
use hka_geo::StPoint;
use hka_mobility::{CityConfig, EventKind, World, WorldConfig};
use hka_trajectory::{GridIndex, GridIndexConfig, UserId};

fn main() {
    let mut report = Report::new(
        "T4",
        "potential-senders (this paper) vs actual-senders [9] semantics (budget: 1 km × 1 km box, 10-minute wait; success rates per request)",
    )
    .columns(&["req/hour", "k", "potential %", "actual %", "mean delay s"]);

    let side = 1_000.0;
    let tolerance = Tolerance::new(side * side, 600);
    for (ri, &rate) in [0.2f64, 1.0, 5.0].iter().enumerate() {
        if ri > 0 {
            report.gap();
        }
        let world = World::generate(&WorldConfig {
            seed: 66,
            days: 3,
            n_commuters: 10,
            n_roamers: 60,
            n_poi_regulars: 6,
            city: CityConfig {
                width: 2_000.0,
                height: 2_000.0,
                ..CityConfig::default()
            },
            background_request_rate: rate,
            ..WorldConfig::default()
        });
        let store = world.store();
        let index = GridIndex::build(&store, GridIndexConfig::default());
        let requests: Vec<(UserId, StPoint)> = world
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Request { .. }))
            .map(|e| (e.user, e.at))
            .collect();

        for k in [2usize, 5, 10] {
            let potential = requests
                .iter()
                .filter(|(u, at)| algorithm1_first(&index, at, *u, k, &tolerance).hk_anonymity)
                .count() as f64
                / requests.len() as f64;
            let outcomes = actual_senders::evaluate(
                &requests,
                &ActualSendersConfig {
                    k,
                    max_side: side,
                    max_wait: 600,
                },
            );
            report.row(vec![
                Cell::num(rate, 1),
                Cell::int(k as i64),
                Cell::pct(potential, 1),
                Cell::pct(actual_senders::release_rate(&outcomes), 1),
                Cell::num(actual_senders::mean_delay(&outcomes), 0),
            ]);
        }
    }
    report.note("Reading: potential-senders success tracks the *population* (flat in the");
    report.note("request rate); actual-senders success tracks the *request traffic* and");
    report.note("additionally pays a queueing delay — at realistic rates it strands a");
    report.note("large share of requests. This is the gap the paper's 'much weaker");
    report.note("requirement' buys.");
    report.emit();
}
