//! **T5 — deployability reports (the framework's purpose (b)).**
//!
//! Conclusions: the framework can be used "(b) to evaluate if the privacy
//! policies that a location-based service guarantees are sufficient to
//! deploy the service in a certain area. This may be achieved by
//! considering, for example, the typical density of users, their movement
//! patterns, their concerns about privacy, as well as the spatio-temporal
//! tolerance constraints of the service and the presence of natural
//! mix-zones in the area."
//!
//! One row per (district density, service, k): Algorithm-1 success rate,
//! expected cloak size, availability of the unlink fallback, residual
//! at-risk rate, and a go/no-go verdict at a 5% unprotected budget.
//!
//! ```text
//! cargo run --release -p hka-bench --bin table5_deployment
//! ```

use hka_bench::{Cell, Report};
use hka_core::planning::{evaluate_deployment, PlanningConfig};
use hka_core::{MixZoneConfig, MixZoneManager, Tolerance};
use hka_geo::MINUTE;
use hka_mobility::{CityConfig, World, WorldConfig};
use hka_trajectory::{GridIndex, GridIndexConfig};

fn main() {
    let mut report = Report::new(
        "T5",
        "service deployability per district (400 sampled request situations each)",
    )
    .columns(&[
        "district", "users", "service", "k", "HK ok %", "mean m²", "mean s", "unlink %", "risk %",
        "verdict",
    ]);

    let districts = [("downtown", 200usize), ("suburb", 60), ("rural", 12)];
    let services = [
        ("hospital-finder", Tolerance::new(4e6, 5 * MINUTE)),
        ("localized-news", Tolerance::news()),
    ];

    for (di, (name, population)) in districts.into_iter().enumerate() {
        if di > 0 {
            report.gap();
        }
        let world = World::generate(&WorldConfig {
            seed: 44,
            days: 3,
            n_commuters: population / 5,
            n_roamers: population * 3 / 5,
            n_poi_regulars: population / 5,
            city: CityConfig {
                width: 2_500.0,
                height: 2_500.0,
                ..CityConfig::default()
            },
            background_request_rate: 0.0,
            ..WorldConfig::default()
        });
        let store = world.store();
        let index = GridIndex::build(&store, GridIndexConfig::default());
        let mz = MixZoneManager::new(MixZoneConfig::default());
        for (svc, tolerance) in &services {
            for k in [5usize, 10] {
                let r = evaluate_deployment(
                    &store,
                    &index,
                    &mz,
                    &PlanningConfig {
                        k,
                        tolerance: *tolerance,
                        samples: 400,
                        seed: 9,
                    },
                );
                report.row(vec![
                    Cell::text(name),
                    Cell::int(store.user_count() as i64),
                    Cell::text(*svc),
                    Cell::int(k as i64),
                    Cell::pct(r.hk_success_rate, 1),
                    Cell::num(r.mean_area, 0),
                    Cell::num(r.mean_duration, 0),
                    Cell::pct(r.unlink_fallback_rate, 1),
                    Cell::pct(r.at_risk_rate, 1),
                    Cell::text(if r.deployable(0.05) {
                        "deploy"
                    } else {
                        "DO NOT DEPLOY"
                    }),
                ]);
            }
        }
    }
    report.note("Reading: density is the dominant factor — the same service and policy");
    report.note("flips from deployable downtown to unprotectable in the rural district;");
    report.note("loose-tolerance services (news) survive everywhere the population can");
    report.note("supply k histories at all.");
    report.emit();
}
