//! **T5 — deployability reports (the framework's purpose (b)).**
//!
//! Conclusions: the framework can be used "(b) to evaluate if the privacy
//! policies that a location-based service guarantees are sufficient to
//! deploy the service in a certain area. This may be achieved by
//! considering, for example, the typical density of users, their movement
//! patterns, their concerns about privacy, as well as the spatio-temporal
//! tolerance constraints of the service and the presence of natural
//! mix-zones in the area."
//!
//! One row per (district density, service, k): Algorithm-1 success rate,
//! expected cloak size, availability of the unlink fallback, residual
//! at-risk rate, and a go/no-go verdict at a 5% unprotected budget.
//!
//! ```text
//! cargo run --release -p hka-bench --bin table5_deployment
//! ```

use hka_core::planning::{evaluate_deployment, PlanningConfig};
use hka_core::{MixZoneConfig, MixZoneManager, Tolerance};
use hka_geo::MINUTE;
use hka_mobility::{CityConfig, World, WorldConfig};
use hka_trajectory::{GridIndex, GridIndexConfig};

fn main() {
    println!("=== T5: service deployability per district (400 sampled request situations each) ===\n");
    println!(
        "{:<10} {:>7} {:<16} {:>3} {:>9} {:>12} {:>9} {:>10} {:>8}  verdict",
        "district", "users", "service", "k", "HK ok %", "mean m²", "mean s", "unlink %", "risk %"
    );
    hka_bench::rule(104);

    let districts = [("downtown", 200usize), ("suburb", 60), ("rural", 12)];
    let services = [
        ("hospital-finder", Tolerance::new(4e6, 5 * MINUTE)),
        ("localized-news", Tolerance::news()),
    ];

    for (name, population) in districts {
        let world = World::generate(&WorldConfig {
            seed: 44,
            days: 3,
            n_commuters: population / 5,
            n_roamers: population * 3 / 5,
            n_poi_regulars: population / 5,
            city: CityConfig {
                width: 2_500.0,
                height: 2_500.0,
                ..CityConfig::default()
            },
            background_request_rate: 0.0,
            ..WorldConfig::default()
        });
        let store = world.store();
        let index = GridIndex::build(&store, GridIndexConfig::default());
        let mz = MixZoneManager::new(MixZoneConfig::default());
        for (svc, tolerance) in &services {
            for k in [5usize, 10] {
                let r = evaluate_deployment(
                    &store,
                    &index,
                    &mz,
                    &PlanningConfig {
                        k,
                        tolerance: *tolerance,
                        samples: 400,
                        seed: 9,
                    },
                );
                println!(
                    "{:<10} {:>7} {:<16} {:>3} {:>8.1}% {:>12.0} {:>9.0} {:>9.1}% {:>7.1}%  {}",
                    name,
                    store.user_count(),
                    svc,
                    k,
                    100.0 * r.hk_success_rate,
                    r.mean_area,
                    r.mean_duration,
                    100.0 * r.unlink_fallback_rate,
                    100.0 * r.at_risk_rate,
                    if r.deployable(0.05) { "deploy" } else { "DO NOT DEPLOY" }
                );
            }
        }
        hka_bench::rule(104);
    }
    println!("\nReading: density is the dominant factor — the same service and policy");
    println!("flips from deployable downtown to unprotectable in the rural district;");
    println!("loose-tolerance services (news) survive everywhere the population can");
    println!("supply k histories at all.");
}
