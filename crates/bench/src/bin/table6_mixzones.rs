//! **T6 — mix-zone ablation: none vs. on-demand vs. static + on-demand.**
//!
//! Section 6.3 proposes on-demand zones on top of the static mix-zones
//! of Beresford–Stajano; DESIGN.md flags the choice as an ablation. The
//! three configurations answer: how much unlinking does each mechanism
//! deliver, what does it cost in service interruptions, and how much
//! less of the quasi-identifier reaches any single pseudonym?
//!
//! * `none`        — unlinking disabled (divergence threshold impossible);
//! * `on-demand`   — the paper's k-diverging-trajectories zones;
//! * `static+od`   — on-demand plus a static mix-zone over the central
//!   corridor every commute crosses (pseudonym changes on entry, service
//!   blackout inside).
//!
//! ```text
//! cargo run --release -p hka-bench --bin table6_mixzones
//! ```

use hka_bench::{build, mean, run_events, Cell, Report, ScenarioConfig};
use hka_core::{MixZoneConfig, PrivacyParams, RiskAction};
use hka_geo::Rect;

fn main() {
    let mut report = Report::new("T6", "mix-zone ablation (k = 5, 4 seeds × 14 days)").columns(&[
        "config",
        "HK ok %",
        "unlinks",
        "suppressed",
        "at-risk",
        "matches",
        "max trace",
    ]);

    for &(label, on_demand, with_static) in &[
        ("none", false, false),
        ("on-demand", true, false),
        ("static+od", true, true),
    ] {
        let mut hk = vec![];
        let mut unlinks = vec![];
        let mut suppressed = vec![];
        let mut risk = vec![];
        let mut matches = vec![];
        let mut max_contexts = vec![];
        for seed in 1u64..=4 {
            let mut s = build(&ScenarioConfig {
                seed,
                days: 14,
                n_commuters: 10,
                n_roamers: 60,
                params: PrivacyParams {
                    k: 5,
                    theta: 0.5,
                    k_init: 10,
                    k_decrement: 1,
                    on_risk: RiskAction::Forward,
                },
                ..ScenarioConfig::default()
            });
            if !on_demand {
                // Rebuild the server with unlinking disabled.
                let cfg = hka_core::TsConfig {
                    mixzone: MixZoneConfig {
                        min_divergence: 7.0, // > π: never satisfiable
                        ..MixZoneConfig::default()
                    },
                    ..hka_core::TsConfig::default()
                };
                s = rebuild_with(s, cfg);
            }
            if with_static {
                // A corridor between the residential west and the
                // commercial east: every commute crosses it.
                s.ts.add_static_mixzone(Rect::from_bounds(950.0, 0.0, 1_050.0, 2_000.0));
            }
            run_events(&mut s);
            let st = s.ts.log().stats();
            hk.push(st.hk_success_rate());
            unlinks.push(st.pseudonym_changes as f64);
            suppressed.push((st.suppressed_mixzone + st.suppressed_risk) as f64);
            risk.push(st.at_risk as f64);
            matches.push(st.lbqid_matches as f64);
            // Longest pattern-context trail released under one pseudonym.
            let longest = s
                .protected
                .iter()
                .flat_map(|&u| s.ts.pattern_contexts(u))
                .map(|(_, ctxs)| ctxs.len())
                .max()
                .unwrap_or(0);
            max_contexts.push(longest as f64);
        }
        report.row(vec![
            Cell::text(label),
            Cell::pct(mean(&hk), 1),
            Cell::num(mean(&unlinks), 1),
            Cell::num(mean(&suppressed), 1),
            Cell::num(mean(&risk), 1),
            Cell::num(mean(&matches), 1),
            Cell::num(mean(&max_contexts), 1),
        ]);
    }
    report.note("Reading: with no unlinking, every generalization failure becomes an");
    report.note("at-risk notification and full LBQID matches accumulate under one");
    report.note("pseudonym. On-demand zones convert part of that risk into short,");
    report.note("targeted interruptions. The static corridor unlinks every commute");
    report.note("crossing for free — full matches under a single pseudonym collapse —");
    report.note("at the price of a permanent service blackout strip.");
    report.emit();
}

/// Rebuilds the scenario's server from scratch under a different TS
/// config (registrations and LBQIDs are re-applied).
fn rebuild_with(mut s: hka_bench::Scenario, cfg: hka_core::TsConfig) -> hka_bench::Scenario {
    use hka_anonymity::ServiceId;
    use hka_core::{PrivacyLevel, PrivacyParams, RiskAction, Tolerance};
    use hka_geo::MINUTE;
    use hka_lbqid::Lbqid;
    use hka_mobility::{ANCHOR_SERVICE, BACKGROUND_SERVICE};

    let mut ts = hka_core::TrustedServer::new(cfg);
    ts.register_service(ServiceId(BACKGROUND_SERVICE), Tolerance::navigation());
    ts.register_service(ServiceId(ANCHOR_SERVICE), Tolerance::new(9e6, 10 * MINUTE));
    let params = PrivacyParams {
        k: 5,
        theta: 0.5,
        k_init: 10,
        k_decrement: 1,
        on_risk: RiskAction::Forward,
    };
    for agent in &s.world.agents {
        if s.protected.contains(&agent.user) {
            ts.register_user(agent.user, PrivacyLevel::Custom(params));
        } else {
            ts.register_user(agent.user, PrivacyLevel::Off);
        }
    }
    for &u in &s.protected {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(s.world.home_of(u).unwrap(), s.world.office_of(u).unwrap()),
        );
    }
    s.ts = ts;
    s
}
