//! # hka-bench
//!
//! Shared machinery for the experiment binaries that regenerate every
//! table and figure in EXPERIMENTS.md. Each binary (`src/bin/*.rs`)
//! prints the rows/series of one artifact; this library holds the
//! scenario builders and small statistics helpers they share.
//!
//! All scenarios are seeded and deterministic: running a binary twice
//! produces identical output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hka_anonymity::ServiceId;
use hka_core::{PrivacyLevel, PrivacyParams, Tolerance, TrustedServer, TsConfig};
use hka_geo::MINUTE;
use hka_lbqid::Lbqid;
use hka_mobility::{CityConfig, EventKind, World, WorldConfig, ANCHOR_SERVICE, BACKGROUND_SERVICE};
use hka_trajectory::UserId;

/// A ready-to-run protected city: the workload, the trusted server wired
/// with services and LBQIDs, and the list of protected users.
pub struct Scenario {
    /// The synthetic workload.
    pub world: World,
    /// The trusted server (services and LBQIDs registered, no events yet).
    pub ts: TrustedServer,
    /// The protected (commuter) users.
    pub protected: Vec<UserId>,
}

/// Scenario knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Workload seed.
    pub seed: u64,
    /// Simulated days.
    pub days: i64,
    /// Commuters (the protected population).
    pub n_commuters: usize,
    /// Background roamers.
    pub n_roamers: usize,
    /// Privacy parameters applied to every commuter.
    pub params: PrivacyParams,
    /// Tolerance for the routine (anchor) service.
    pub anchor_tolerance: Tolerance,
    /// Tolerance for the background (navigation-like) service.
    pub background_tolerance: Tolerance,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 1,
            days: 14,
            n_commuters: 10,
            n_roamers: 60,
            params: PrivacyParams {
                k: 5,
                theta: 0.5,
                k_init: 10,
                k_decrement: 1,
                on_risk: hka_core::RiskAction::Forward,
            },
            anchor_tolerance: Tolerance::new(9e6, 10 * MINUTE),
            background_tolerance: Tolerance::navigation(),
        }
    }
}

/// Builds the standard 2 km × 2 km protected city.
pub fn build(cfg: &ScenarioConfig) -> Scenario {
    let world = World::generate(&WorldConfig {
        seed: cfg.seed,
        days: cfg.days,
        n_commuters: cfg.n_commuters,
        n_roamers: cfg.n_roamers,
        n_poi_regulars: cfg.n_roamers / 10,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    });
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(BACKGROUND_SERVICE), cfg.background_tolerance);
    ts.register_service(ServiceId(ANCHOR_SERVICE), cfg.anchor_tolerance);
    let protected: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        if protected.contains(&agent.user) {
            ts.register_user(agent.user, PrivacyLevel::Custom(cfg.params));
        } else {
            ts.register_user(agent.user, PrivacyLevel::Off);
        }
    }
    for &u in &protected {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    Scenario {
        world,
        ts,
        protected,
    }
}

/// Drives every workload event through the server.
pub fn run_events(scenario: &mut Scenario) {
    for e in &scenario.world.events {
        match e.kind {
            EventKind::Location => scenario.ts.location_update(e.user, e.at),
            EventKind::Request { service } => {
                let _ = scenario.ts.handle_request(e.user, e.at, ServiceId(service));
            }
        }
    }
}

/// Mean of a sample (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0 for < 2 samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (0 for empty); sorts a copy.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Wall-clock of `f()` in nanoseconds, best of `reps`.
pub fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// Prints a rule line of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scenario_builds_and_runs() {
        let mut s = build(&ScenarioConfig {
            days: 1,
            n_commuters: 2,
            n_roamers: 5,
            ..ScenarioConfig::default()
        });
        run_events(&mut s);
        assert!(s.ts.log().stats().forwarded() > 0);
        assert_eq!(s.protected.len(), 2);
    }

    #[test]
    fn timing_helper_is_positive() {
        let ns = time_ns(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(ns > 0.0);
    }
}
