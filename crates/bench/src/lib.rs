//! # hka-bench
//!
//! Shared machinery for the experiment binaries that regenerate every
//! table and figure in EXPERIMENTS.md. Each binary (`src/bin/*.rs`)
//! prints the rows/series of one artifact; this library holds the
//! scenario builders and small statistics helpers they share.
//!
//! All scenarios are seeded and deterministic: running a binary twice
//! produces identical output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hka_anonymity::ServiceId;
use hka_core::{
    PrivacyLevel, PrivacyParams, RequestEnvelope, RequestService, Tolerance, TrustedServer,
    TsConfig, WireOutcome,
};
use hka_geo::MINUTE;
use hka_lbqid::Lbqid;
use hka_mobility::{CityConfig, EventKind, World, WorldConfig, ANCHOR_SERVICE, BACKGROUND_SERVICE};
use hka_trajectory::{IndexBackend, UserId};

/// A ready-to-run protected city: the workload, the trusted server wired
/// with services and LBQIDs, and the list of protected users.
pub struct Scenario {
    /// The synthetic workload.
    pub world: World,
    /// The trusted server (services and LBQIDs registered, no events yet).
    pub ts: TrustedServer,
    /// The protected (commuter) users.
    pub protected: Vec<UserId>,
}

/// Scenario knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Workload seed.
    pub seed: u64,
    /// Simulated days.
    pub days: i64,
    /// Commuters (the protected population).
    pub n_commuters: usize,
    /// Background roamers.
    pub n_roamers: usize,
    /// Privacy parameters applied to every commuter.
    pub params: PrivacyParams,
    /// Tolerance for the routine (anchor) service.
    pub anchor_tolerance: Tolerance,
    /// Tolerance for the background (navigation-like) service.
    pub background_tolerance: Tolerance,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 1,
            days: 14,
            n_commuters: 10,
            n_roamers: 60,
            params: PrivacyParams {
                k: 5,
                theta: 0.5,
                k_init: 10,
                k_decrement: 1,
                on_risk: hka_core::RiskAction::Forward,
            },
            anchor_tolerance: Tolerance::new(9e6, 10 * MINUTE),
            background_tolerance: Tolerance::navigation(),
        }
    }
}

/// Builds the standard 2 km × 2 km protected city.
pub fn build(cfg: &ScenarioConfig) -> Scenario {
    let world = World::generate(&WorldConfig {
        seed: cfg.seed,
        days: cfg.days,
        n_commuters: cfg.n_commuters,
        n_roamers: cfg.n_roamers,
        n_poi_regulars: cfg.n_roamers / 10,
        city: CityConfig {
            width: 2_000.0,
            height: 2_000.0,
            ..CityConfig::default()
        },
        ..WorldConfig::default()
    });
    let mut ts = TrustedServer::new(TsConfig::default());
    ts.register_service(ServiceId(BACKGROUND_SERVICE), cfg.background_tolerance);
    ts.register_service(ServiceId(ANCHOR_SERVICE), cfg.anchor_tolerance);
    let protected: Vec<UserId> = world.commuters().collect();
    for agent in &world.agents {
        if protected.contains(&agent.user) {
            ts.register_user(agent.user, PrivacyLevel::Custom(cfg.params));
        } else {
            ts.register_user(agent.user, PrivacyLevel::Off);
        }
    }
    for &u in &protected {
        ts.add_lbqid(
            u,
            Lbqid::example_commute(world.home_of(u).unwrap(), world.office_of(u).unwrap()),
        );
    }
    Scenario {
        world,
        ts,
        protected,
    }
}

/// Drives every workload event through the server via the
/// [`RequestService`] seam — the same path `hka-sim` and the TCP
/// gateway use, so a bench run exercises exactly the production
/// envelope handling (submit is `location_update` /
/// `try_handle_request` verbatim on the sequential server, so journal
/// bytes are unchanged). Request-level errors (unknown user,
/// read-only refusals) are counted and returned instead of aborting
/// the experiment — a generated workload should produce none, so
/// callers typically assert the count is zero.
pub fn run_events(scenario: &mut Scenario) -> u64 {
    let svc: &mut dyn RequestService = &mut scenario.ts;
    for (i, e) in scenario.world.events.iter().enumerate() {
        let env = match e.kind {
            EventKind::Location => RequestEnvelope::location(i as u64, e.user, e.at),
            EventKind::Request { service } => {
                RequestEnvelope::request(i as u64, e.user, e.at, ServiceId(service))
            }
        };
        svc.submit(&env);
    }
    svc.drain()
        .iter()
        .filter(|r| r.outcome == WireOutcome::Rejected)
        .count() as u64
}

/// Mean of a sample (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0 for < 2 samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (0 for empty); sorts a copy.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Wall-clock of `f()` in nanoseconds: one untimed warmup call, then the
/// **median** of `reps` timed calls.
///
/// The warmup absorbs one-time costs (cold caches, lazy allocation, page
/// faults) that would otherwise land in the first sample. The median —
/// rather than the previous best-of-N — keeps a single lucky sample from
/// defining the result: best-of-N is biased low, and the bias *grows*
/// with N, so raising reps would silently "speed up" every benchmark.
/// The median is a consistent estimator of the typical call under the
/// one-sided noise of a shared host.
pub fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    median(&samples)
}

/// Prints a rule line of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Parses a `--backends grid,rtree,soa,brute` argument out of a raw
/// argument stream (the bench bins are dependency-free, so no clap).
/// Absent the flag, all backends are compared — oracle last. Unknown
/// names abort with exit code 2 so CI misconfigurations fail loudly.
pub fn parse_backends(args: impl IntoIterator<Item = String>) -> Vec<IndexBackend> {
    let args: Vec<String> = args.into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--backends" && i + 1 < args.len() {
            return args[i + 1]
                .split(',')
                .map(|name| {
                    IndexBackend::parse(name.trim()).unwrap_or_else(|| {
                        eprintln!("unknown backend '{name}' (use grid|rtree|soa|brute)");
                        std::process::exit(2);
                    })
                })
                .collect();
        }
        i += 1;
    }
    IndexBackend::ALL.to_vec()
}

/// One table cell: the human-facing rendering plus the raw value that
/// goes into the machine-readable JSON line.
#[derive(Debug, Clone)]
pub struct Cell {
    text: String,
    value: hka_obs::Json,
}

impl Cell {
    /// An integer cell.
    pub fn int(v: impl TryInto<i64>) -> Cell {
        let v: i64 = v.try_into().unwrap_or(i64::MAX);
        Cell {
            text: v.to_string(),
            value: hka_obs::Json::Int(v),
        }
    }

    /// A float cell rendered with `decimals` places; stores the raw f64.
    pub fn num(v: f64, decimals: usize) -> Cell {
        Cell {
            text: format!("{v:.decimals$}"),
            value: hka_obs::Json::Num(v),
        }
    }

    /// A rate in [0, 1] rendered as a percentage; stores the raw fraction.
    pub fn pct(frac: f64, decimals: usize) -> Cell {
        Cell {
            text: format!("{:.decimals$}%", 100.0 * frac),
            value: hka_obs::Json::Num(frac),
        }
    }

    /// A text cell.
    pub fn text(s: impl Into<String>) -> Cell {
        let s = s.into();
        Cell {
            value: hka_obs::Json::Str(s.clone()),
            text: s,
        }
    }

    /// A boolean cell.
    pub fn flag(b: bool) -> Cell {
        Cell {
            text: b.to_string(),
            value: hka_obs::Json::Bool(b),
        }
    }
}

/// A table or figure series with two renderings: an aligned
/// human-readable table on stdout, followed by one machine-readable JSON
/// line (`{"id":…,"columns":…,"rows":…,"notes":…}`) that downstream
/// tooling can scrape with `grep '^{'` and `hka_obs::json::parse`.
///
/// Text-valued columns are left-aligned, numeric ones right-aligned.
#[derive(Debug, Clone)]
pub struct Report {
    id: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
    notes: Vec<String>,
}

impl Report {
    /// Starts a report. `id` is the artifact key (`"T3"`, `"F2"`, …).
    pub fn new(id: &str, title: &str) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            columns: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Sets the column headers (builder-style).
    pub fn columns(mut self, names: &[&str]) -> Report {
        self.columns = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Appends a data row; must match the column count.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "report {}: row has {} cells, table has {} columns",
            self.id,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Inserts a horizontal rule between row groups (human rendering
    /// only; absent from the JSON line).
    pub fn gap(&mut self) {
        self.rows.push(Vec::new());
    }

    /// Appends a free-text "Reading:" note.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_string());
    }

    /// Prints the table, the notes, and the JSON line.
    pub fn emit(&self) {
        println!("=== {}: {} ===\n", self.id, self.title);
        let n = self.columns.len();
        let mut width: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        let mut left = vec![false; n];
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.text.chars().count());
                if matches!(c.value, hka_obs::Json::Str(_)) {
                    left[i] = true;
                }
            }
        }
        let line_width = width.iter().sum::<usize>() + 2 * n.saturating_sub(1);
        let render = |texts: &mut dyn Iterator<Item = &str>| {
            let mut out = String::new();
            for (i, t) in texts.enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = width[i].saturating_sub(t.chars().count());
                if left[i] {
                    out.push_str(t);
                    if i + 1 < n {
                        out.push_str(&" ".repeat(pad));
                    }
                } else {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(t);
                }
            }
            out
        };
        println!("{}", render(&mut self.columns.iter().map(|s| s.as_str())));
        rule(line_width);
        for row in &self.rows {
            if row.is_empty() {
                rule(line_width);
            } else {
                println!("{}", render(&mut row.iter().map(|c| c.text.as_str())));
            }
        }
        if !self.rows.last().is_some_and(|r| r.is_empty()) {
            rule(line_width);
        }
        for note in &self.notes {
            println!("{note}");
        }
        println!("{}", self.to_json());
    }

    /// The machine-readable form of the report.
    pub fn to_json(&self) -> hka_obs::Json {
        use hka_obs::Json;
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            (
                "columns",
                Json::Arr(self.columns.iter().map(|c| Json::Str(c.clone())).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .filter(|r| !r.is_empty())
                        .map(|r| Json::Arr(r.iter().map(|c| c.value.clone()).collect()))
                        .collect(),
                ),
            ),
            (
                "notes",
                Json::Arr(self.notes.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scenario_builds_and_runs() {
        let mut s = build(&ScenarioConfig {
            days: 1,
            n_commuters: 2,
            n_roamers: 5,
            ..ScenarioConfig::default()
        });
        run_events(&mut s);
        assert!(s.ts.log().stats().forwarded() > 0);
        assert_eq!(s.protected.len(), 2);
    }

    #[test]
    fn report_json_line_round_trips() {
        let mut r = Report::new("T9", "demo").columns(&["label", "count", "rate"]);
        r.row(vec![Cell::text("a"), Cell::int(3i64), Cell::pct(0.5, 1)]);
        r.gap();
        r.row(vec![Cell::text("b"), Cell::int(7i64), Cell::pct(0.25, 1)]);
        r.note("a note");
        let parsed = hka_obs::json::parse(&r.to_json().to_string()).expect("valid JSON");
        assert_eq!(parsed.get("id").and_then(|j| j.as_str()), Some("T9"));
        let rows = match parsed.get("rows") {
            Some(hka_obs::Json::Arr(rows)) => rows.clone(),
            other => panic!("rows missing: {other:?}"),
        };
        // The gap separator is rendering-only; JSON keeps the data rows.
        assert_eq!(rows.len(), 2);
        match &rows[1] {
            hka_obs::Json::Arr(cells) => {
                assert_eq!(cells[0].as_str(), Some("b"));
                assert_eq!(cells[1].as_int(), Some(7));
                assert_eq!(cells[2].as_f64(), Some(0.25));
            }
            other => panic!("row not an array: {other:?}"),
        }
    }

    #[test]
    fn cell_renderings() {
        assert_eq!(Cell::int(42i64).text, "42");
        assert_eq!(Cell::num(1.23456, 2).text, "1.23");
        assert_eq!(Cell::pct(0.631, 1).text, "63.1%");
        assert_eq!(Cell::flag(true).text, "true");
        assert_eq!(Cell::text("x").text, "x");
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn report_rejects_ragged_rows() {
        let mut r = Report::new("T0", "ragged").columns(&["a", "b"]);
        r.row(vec![Cell::int(1i64)]);
    }

    #[test]
    fn timing_helper_is_positive() {
        let ns = time_ns(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(ns > 0.0);
    }
}
