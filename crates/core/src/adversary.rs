//! The service-provider-side adversary.
//!
//! Section 1 motivates the whole framework with this attack: "a service
//! request containing as location information the exact coordinates of a
//! private house provides sufficient information to personally identify
//! the house's owner since the mapping of such coordinates to home
//! addresses is generally available and a simple look up in a phone book
//! (or similar sources) can reveal the people who live there."
//!
//! [`Adversary`] plays the malicious (or compromised) provider:
//!
//! 1. it clusters the received requests into presumed same-user groups
//!    using a [`Linker`] at threshold Θ (Definition 5's link-connected
//!    components — pseudonym equality plus trajectory tracking);
//! 2. within each cluster it looks for *home evidence*: requests whose
//!    area intersects exactly one registered home during home-plausible
//!    hours (early morning / evening);
//! 3. a cluster whose home evidence is unambiguous is *re-identified* as
//!    the home's registered owner.
//!
//! [`AttackReport`] scores the attack against ground truth (which only
//! the experiment harness has).

use hka_anonymity::{link_components, Linker, SpRequest};
use hka_geo::{Rect, DAY, HOUR};
use hka_trajectory::UserId;
use std::collections::BTreeMap;

/// The public "phone book": home footprint → registered resident.
#[derive(Debug, Clone, Default)]
pub struct HomeRegistry {
    entries: Vec<(Rect, UserId)>,
}

impl HomeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        HomeRegistry::default()
    }

    /// Registers a home and its resident.
    pub fn add(&mut self, home: Rect, resident: UserId) {
        self.entries.push((home, resident));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Residents of homes intersecting the area.
    pub fn residents_intersecting(&self, area: &Rect) -> Vec<UserId> {
        self.entries
            .iter()
            .filter(|(h, _)| h.intersects(area))
            .map(|(_, u)| *u)
            .collect()
    }
}

/// Hours (seconds-of-day) considered "at home": before the morning
/// departure and after the evening return.
fn home_plausible(sod: i64) -> bool {
    !(8 * HOUR..17 * HOUR).contains(&sod)
}

/// The outcome of an attack run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttackReport {
    /// Number of request clusters formed at the chosen Θ.
    pub clusters: usize,
    /// Cluster → claimed identity (cluster indexed by smallest request
    /// index it contains).
    pub claims: Vec<(usize, UserId)>,
    /// Of the claims, how many were correct (requires ground truth).
    pub correct: usize,
    /// Distinct users correctly re-identified.
    pub users_identified: usize,
}

impl AttackReport {
    /// Precision of the identity claims.
    pub fn precision(&self) -> f64 {
        if self.claims.is_empty() {
            0.0
        } else {
            self.correct as f64 / self.claims.len() as f64
        }
    }
}

/// The SP-side attacker.
pub struct Adversary<'a, L: Linker + ?Sized> {
    linker: &'a L,
    theta: f64,
    registry: &'a HomeRegistry,
}

impl<'a, L: Linker + ?Sized> Adversary<'a, L> {
    /// Creates an adversary with the given linking technique, threshold
    /// and external knowledge.
    pub fn new(linker: &'a L, theta: f64, registry: &'a HomeRegistry) -> Self {
        Adversary {
            linker,
            theta,
            registry,
        }
    }

    /// Runs the attack on the provider-visible request stream and, given
    /// the ground-truth issuer of each request, scores it.
    pub fn attack(&self, requests: &[SpRequest], truth: &[UserId]) -> AttackReport {
        assert_eq!(requests.len(), truth.len(), "one truth label per request");
        let components = link_components(requests, self.linker, self.theta);
        let mut report = AttackReport {
            clusters: components.len(),
            ..AttackReport::default()
        };
        let mut identified: BTreeMap<UserId, bool> = BTreeMap::new();

        for component in &components {
            // Tally the candidate residents suggested by home-plausible
            // requests in this cluster.
            let mut votes: BTreeMap<UserId, usize> = BTreeMap::new();
            for &i in component {
                let r = &requests[i];
                let sod = r.context.span.start().0.rem_euclid(DAY);
                if !home_plausible(sod) {
                    continue;
                }
                let residents = self.registry.residents_intersecting(&r.context.rect);
                // Ambiguous evidence (several homes in the area) is
                // discarded: the cloak did its job for this request.
                if let [single] = residents.as_slice() {
                    *votes.entry(*single).or_insert(0) += 1;
                }
            }
            // Claim the unique best-supported resident, if any.
            let mut best: Option<(UserId, usize)> = None;
            let mut tie = false;
            for (u, c) in &votes {
                match best {
                    Some((_, bc)) if *c == bc => tie = true,
                    Some((_, bc)) if *c > bc => {
                        best = Some((*u, *c));
                        tie = false;
                    }
                    None => best = Some((*u, *c)),
                    _ => {}
                }
            }
            if tie {
                continue;
            }
            if let Some((claimed, _)) = best {
                report.claims.push((component[0], claimed));
                // Score: the claim is correct when the majority of the
                // cluster's requests really belong to the claimed user.
                let hits = component.iter().filter(|&&i| truth[i] == claimed).count();
                if hits * 2 > component.len() {
                    report.correct += 1;
                    identified.insert(claimed, true);
                }
            }
        }
        report.users_identified = identified.len();
        report
    }
}

/// The home/work *pair* attack (Golle–Partridge, "On the Anonymity of
/// Home/Work Location Pairs", Pervasive 2009 — the natural strengthening
/// of this paper's Section-1 attack): even when neither the home nor the
/// workplace identifies a user alone, the *pair* usually does, because
/// few people share both.
///
/// The attacker holds a registry of (home, workplace) pairs per user
/// (census/employer-style external knowledge). A cluster is re-identified
/// when its home-plausible evidence and its work-hours evidence each
/// intersect exactly one candidate's home/work footprints and both point
/// at the same user.
#[derive(Debug, Clone, Default)]
pub struct PairRegistry {
    entries: Vec<(Rect, Rect, UserId)>,
}

impl PairRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PairRegistry::default()
    }

    /// Registers a user's home and workplace footprints.
    pub fn add(&mut self, home: Rect, work: Rect, user: UserId) {
        self.entries.push((home, work, user));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Work-plausible hours: the conventional office block.
fn work_plausible(sod: i64) -> bool {
    (9 * HOUR..16 * HOUR).contains(&sod)
}

/// Runs the pair attack over a clustered request stream. Returns, per
/// cluster (indexed by smallest member), the claimed user when the
/// home-evidence and work-evidence candidate sets intersect in exactly
/// one registered pair.
pub fn pair_attack<L: Linker + ?Sized>(
    linker: &L,
    theta: f64,
    registry: &PairRegistry,
    requests: &[SpRequest],
) -> Vec<(usize, UserId)> {
    let components = link_components(requests, linker, theta);
    let mut claims = Vec::new();
    for component in &components {
        let mut home_candidates: BTreeMap<UserId, usize> = BTreeMap::new();
        let mut work_candidates: BTreeMap<UserId, usize> = BTreeMap::new();
        for &i in component {
            let r = &requests[i];
            let sod = r.context.span.start().0.rem_euclid(DAY);
            for (home, work, user) in &registry.entries {
                if home_plausible(sod) && home.intersects(&r.context.rect) {
                    *home_candidates.entry(*user).or_insert(0) += 1;
                }
                if work_plausible(sod) && work.intersects(&r.context.rect) {
                    *work_candidates.entry(*user).or_insert(0) += 1;
                }
            }
        }
        // The pair is identifying when exactly one user appears on both
        // sides of the evidence.
        let both: Vec<UserId> = home_candidates
            .keys()
            .filter(|u| work_candidates.contains_key(*u))
            .copied()
            .collect();
        if let [single] = both.as_slice() {
            claims.push((component[0], *single));
        }
    }
    claims
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_anonymity::{MsgId, Pseudonym, PseudonymLinker, ServiceId, SpRequest};
    use hka_geo::{StBox, StPoint, TimeInterval, TimeSec};

    fn exact_req(pseudo: u64, x: f64, y: f64, t: i64) -> SpRequest {
        SpRequest::new(
            MsgId(0),
            Pseudonym(pseudo),
            StBox::point(StPoint::xyt(x, y, TimeSec(t))),
            ServiceId(0),
        )
    }

    fn cloaked_req(pseudo: u64, rect: Rect, t: i64) -> SpRequest {
        SpRequest::new(
            MsgId(0),
            Pseudonym(pseudo),
            StBox::new(rect, TimeInterval::new(TimeSec(t), TimeSec(t + 60))),
            ServiceId(0),
        )
    }

    fn registry() -> HomeRegistry {
        let mut r = HomeRegistry::new();
        r.add(Rect::from_bounds(0.0, 0.0, 100.0, 100.0), UserId(1));
        r.add(Rect::from_bounds(200.0, 0.0, 300.0, 100.0), UserId(2));
        r
    }

    #[test]
    fn exact_home_requests_are_identified() {
        let reg = registry();
        let linker = PseudonymLinker;
        let adv = Adversary::new(&linker, 0.9, &reg);
        // User 1 requests from home at 07:00 (sod 25200 < 8h).
        let reqs = vec![
            exact_req(10, 50.0, 50.0, 7 * 3600),
            exact_req(10, 500.0, 500.0, 12 * 3600), // noise downtown
        ];
        let truth = vec![UserId(1), UserId(1)];
        let rep = adv.attack(&reqs, &truth);
        assert_eq!(rep.clusters, 1);
        assert_eq!(rep.claims, vec![(0, UserId(1))]);
        assert_eq!(rep.correct, 1);
        assert_eq!(rep.users_identified, 1);
        assert_eq!(rep.precision(), 1.0);
    }

    #[test]
    fn daytime_requests_give_no_home_evidence() {
        let reg = registry();
        let linker = PseudonymLinker;
        let adv = Adversary::new(&linker, 0.9, &reg);
        let reqs = vec![exact_req(10, 50.0, 50.0, 12 * 3600)]; // noon at home
        let rep = adv.attack(&reqs, &[UserId(1)]);
        assert!(rep.claims.is_empty());
        assert_eq!(rep.users_identified, 0);
    }

    #[test]
    fn cloaks_covering_multiple_homes_defeat_the_lookup() {
        let reg = registry();
        let linker = PseudonymLinker;
        let adv = Adversary::new(&linker, 0.9, &reg);
        // A cloak spanning both homes: ambiguous evidence, no claim.
        let wide = Rect::from_bounds(-10.0, -10.0, 310.0, 110.0);
        let reqs = vec![cloaked_req(10, wide, 7 * 3600)];
        let rep = adv.attack(&reqs, &[UserId(1)]);
        assert!(rep.claims.is_empty());
    }

    #[test]
    fn pseudonym_change_splits_clusters() {
        let reg = registry();
        let linker = PseudonymLinker;
        let adv = Adversary::new(&linker, 0.9, &reg);
        let reqs = vec![
            exact_req(10, 50.0, 50.0, 7 * 3600),
            exact_req(11, 50.0, 50.0, 18 * 3600),
        ];
        let rep = adv.attack(&reqs, &[UserId(1), UserId(1)]);
        assert_eq!(rep.clusters, 2);
    }

    #[test]
    fn wrong_claims_score_zero() {
        let reg = registry();
        let linker = PseudonymLinker;
        let adv = Adversary::new(&linker, 0.9, &reg);
        // User 2 happens to request from inside user 1's home.
        let reqs = vec![exact_req(10, 50.0, 50.0, 7 * 3600)];
        let rep = adv.attack(&reqs, &[UserId(2)]);
        assert_eq!(rep.claims.len(), 1);
        assert_eq!(rep.correct, 0);
        assert_eq!(rep.precision(), 0.0);
    }

    #[test]
    fn pair_attack_disambiguates_shared_homes() {
        // Users 1 and 2 share an apartment building but work in
        // different places: the home alone is ambiguous, the pair is not.
        let shared_home = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
        let work1 = Rect::from_bounds(500.0, 0.0, 600.0, 100.0);
        let work2 = Rect::from_bounds(900.0, 0.0, 1_000.0, 100.0);
        let mut pairs = PairRegistry::new();
        pairs.add(shared_home, work1, UserId(1));
        pairs.add(shared_home, work2, UserId(2));
        assert_eq!(pairs.len(), 2);

        // One pseudonym: home in the morning, user 1's office at noon.
        let reqs = vec![
            exact_req(10, 50.0, 50.0, 7 * 3600),
            exact_req(10, 550.0, 50.0, 12 * 3600),
        ];
        // The plain home lookup cannot claim (two residents intersect).
        let mut homes = HomeRegistry::new();
        homes.add(shared_home, UserId(1));
        homes.add(shared_home, UserId(2));
        let linker = PseudonymLinker;
        let adv = Adversary::new(&linker, 0.9, &homes);
        assert!(adv.attack(&reqs, &[UserId(1), UserId(1)]).claims.is_empty());
        // The pair attack does.
        let claims = pair_attack(&linker, 0.9, &pairs, &reqs);
        assert_eq!(claims, vec![(0, UserId(1))]);
    }

    #[test]
    fn pair_attack_needs_both_sides() {
        let mut pairs = PairRegistry::new();
        pairs.add(
            Rect::from_bounds(0.0, 0.0, 100.0, 100.0),
            Rect::from_bounds(500.0, 0.0, 600.0, 100.0),
            UserId(1),
        );
        let linker = PseudonymLinker;
        // Home evidence only.
        let home_only = vec![exact_req(10, 50.0, 50.0, 7 * 3600)];
        assert!(pair_attack(&linker, 0.9, &pairs, &home_only).is_empty());
        // Work evidence only.
        let work_only = vec![exact_req(10, 550.0, 50.0, 12 * 3600)];
        assert!(pair_attack(&linker, 0.9, &pairs, &work_only).is_empty());
        // Ambiguous pair (two users share home *and* work).
        let mut shared = PairRegistry::new();
        shared.add(
            Rect::from_bounds(0.0, 0.0, 100.0, 100.0),
            Rect::from_bounds(500.0, 0.0, 600.0, 100.0),
            UserId(1),
        );
        shared.add(
            Rect::from_bounds(0.0, 0.0, 100.0, 100.0),
            Rect::from_bounds(500.0, 0.0, 600.0, 100.0),
            UserId(2),
        );
        let both = vec![
            exact_req(10, 50.0, 50.0, 7 * 3600),
            exact_req(10, 550.0, 50.0, 12 * 3600),
        ];
        assert!(pair_attack(&linker, 0.9, &shared, &both).is_empty());
    }

    #[test]
    #[should_panic(expected = "one truth label per request")]
    fn mismatched_truth_rejected() {
        let reg = registry();
        let linker = PseudonymLinker;
        let adv = Adversary::new(&linker, 0.9, &reg);
        adv.attack(&[exact_req(1, 0.0, 0.0, 0)], &[]);
    }
}
