//! Crash-safe checkpoints: snapshot + journal-suffix recovery.
//!
//! A long-running trusted server accumulates an unbounded journal; replaying
//! it from genesis after every restart is linear in the server's lifetime.
//! A **checkpoint** bounds that cost: a deterministic, content-hashed
//! snapshot of the server's durable state is written atomically to disk and
//! anchored *into the journal's hash chain* as a `checkpoint` record, so
//!
//! * recovery restores the snapshot and replays only the journal **suffix**
//!   after the anchor;
//! * `hka-audit` resumes chain verification from the anchor
//!   ([`hka_audit::resume_from_snapshot`]) instead of hashing the whole
//!   history;
//! * the journal **prefix** can be truncated away (archived) without
//!   breaking verification — the anchor is self-describing (it carries the
//!   chain position and the previous head), so a truncated journal still
//!   verifies end to end.
//!
//! ## Snapshot contents
//!
//! | section | what | codec |
//! |---|---|---|
//! | `store`  | every user's PHL | [`hka_trajectory::state`] |
//! | `server` | pseudonym bindings, privacy params, overrides, at-risk flags, services, static mix-zones, mode, counters | [`ServerMeta`] |
//! | `stats`  | the event log's aggregate counters | [`stats_to_json`] |
//! | `audit`  | the offline auditor's replay state at the anchor | [`hka_audit::state_at`] |
//!
//! Deliberately **not** serialized: LBQID monitor automata and pattern
//! traversal state. A restored server starts those conservatively — exactly
//! like after a pseudonym unlink — and the operator re-attaches LBQIDs; the
//! paper's guarantees only get *stronger* from forgetting partial matches
//! (a fresh traversal re-generalizes from `k_init`). The in-memory event
//! ring is a debugging tail and is likewise not restored; the journal holds
//! the complete record.
//!
//! ## Write protocol (fault sites in order)
//!
//! 1. flush the live sink, read its chain position `(records, head)`;
//! 2. build the audit section by replaying the on-disk journal (resuming
//!    from the previous checkpoint when possible) and **cross-check** its
//!    position against the sink's — any divergence aborts, fail-closed;
//! 3. write the snapshot to `<dir>/checkpoint-NNNNNN.snap` via temp file +
//!    fsync + atomic rename (`snapshot.write`, `snapshot.rename`);
//! 4. append the anchor record through the live sink (`checkpoint.append`);
//! 5. optionally truncate the journal prefix (`journal.truncate`) — done
//!    with the sink detached, because the truncation swaps a new inode into
//!    place and a still-open append handle would keep writing the dead one.
//!
//! A failure at any stage leaves the previous checkpoint (or genesis)
//! authoritative; recovery ([`Checkpointer::latest_valid`]) walks anchors
//! newest-first and *verifies every binding* (snapshot content hash, chain
//! position) before trusting one — a torn, missing, or doctored snapshot is
//! skipped, never half-loaded.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use hka_anonymity::{Pseudonym, ServiceId};
use hka_audit::AuditConfig;
use hka_faults::{sites, FaultInjector, FaultKind};
use hka_geo::{Point, Rect, TimeSec};
use hka_obs::checkpoint::{
    anchor_payload, scan_anchors, truncate_to_anchor, CheckpointAnchor, Snapshot,
};
use hka_obs::{Json, CHECKPOINT_KIND};
use hka_trajectory::UserId;

use crate::events::TsStats;
use crate::policy::{PrivacyParams, RiskAction, Tolerance};
use crate::server::{ServerMode, TrustedServer, TsConfig};

/// Snapshot section holding the trajectory store.
pub const STORE_SECTION: &str = "store";
/// Snapshot section holding [`ServerMeta`].
pub const SERVER_SECTION: &str = "server";
/// Snapshot section holding the event log's [`TsStats`].
pub const STATS_SECTION: &str = "stats";
/// Snapshot section holding the offline auditor's replay state
/// (re-exported so frontends driving the write protocol — the sharded
/// server — need no direct dependency on the audit crate).
pub use hka_audit::AUDIT_SECTION;

// ---------------------------------------------------------------------------
// Codecs. Shared free functions so the sharded frontend serializes the same
// canonical bytes as the sequential server.
// ---------------------------------------------------------------------------

/// Encodes the event log's aggregate counters.
pub fn stats_to_json(s: &TsStats) -> Json {
    Json::obj([
        ("forwarded_exact", Json::from(s.forwarded_exact as u64)),
        ("forwarded_hk_ok", Json::from(s.forwarded_hk_ok as u64)),
        (
            "forwarded_hk_failed",
            Json::from(s.forwarded_hk_failed as u64),
        ),
        (
            "suppressed_mixzone",
            Json::from(s.suppressed_mixzone as u64),
        ),
        ("suppressed_risk", Json::from(s.suppressed_risk as u64)),
        (
            "suppressed_degraded",
            Json::from(s.suppressed_degraded as u64),
        ),
        ("mode_changes", Json::from(s.mode_changes as u64)),
        ("pseudonym_changes", Json::from(s.pseudonym_changes as u64)),
        ("at_risk", Json::from(s.at_risk as u64)),
        ("lbqid_matches", Json::from(s.lbqid_matches as u64)),
        (
            "total_generalized_area",
            Json::Num(s.total_generalized_area),
        ),
        (
            "total_generalized_duration",
            Json::Int(s.total_generalized_duration),
        ),
    ])
}

fn req<'a>(o: &'a Json, what: &str, name: &str) -> Result<&'a Json, String> {
    o.get(name)
        .ok_or_else(|| format!("{what}: missing '{name}'"))
}

fn req_usize(o: &Json, what: &str, name: &str) -> Result<usize, String> {
    req(o, what, name)?
        .as_int()
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| format!("{what}: mistyped '{name}'"))
}

fn req_u64(o: &Json, what: &str, name: &str) -> Result<u64, String> {
    req(o, what, name)?
        .as_int()
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| format!("{what}: mistyped '{name}'"))
}

fn req_service(o: &Json, what: &str) -> Result<ServiceId, String> {
    req_u64(o, what, "service")?
        .try_into()
        .map(ServiceId)
        .map_err(|_| format!("{what}: service id out of range"))
}

fn req_i64(o: &Json, what: &str, name: &str) -> Result<i64, String> {
    req(o, what, name)?
        .as_int()
        .ok_or_else(|| format!("{what}: mistyped '{name}'"))
}

fn req_f64(o: &Json, what: &str, name: &str) -> Result<f64, String> {
    req(o, what, name)?
        .as_f64()
        .ok_or_else(|| format!("{what}: mistyped '{name}'"))
}

fn req_arr<'a>(o: &'a Json, what: &str, name: &str) -> Result<&'a [Json], String> {
    match req(o, what, name)? {
        Json::Arr(items) => Ok(items),
        _ => Err(format!("{what}: '{name}' is not an array")),
    }
}

/// Decodes [`stats_to_json`]. Strict: a missing field is an error — a
/// silently-zeroed counter would diverge from the journal's totals.
pub fn stats_of_json(j: &Json) -> Result<TsStats, String> {
    let what = "stats";
    Ok(TsStats {
        forwarded_exact: req_usize(j, what, "forwarded_exact")?,
        forwarded_hk_ok: req_usize(j, what, "forwarded_hk_ok")?,
        forwarded_hk_failed: req_usize(j, what, "forwarded_hk_failed")?,
        suppressed_mixzone: req_usize(j, what, "suppressed_mixzone")?,
        suppressed_risk: req_usize(j, what, "suppressed_risk")?,
        suppressed_degraded: req_usize(j, what, "suppressed_degraded")?,
        mode_changes: req_usize(j, what, "mode_changes")?,
        pseudonym_changes: req_usize(j, what, "pseudonym_changes")?,
        at_risk: req_usize(j, what, "at_risk")?,
        lbqid_matches: req_usize(j, what, "lbqid_matches")?,
        total_generalized_area: req_f64(j, what, "total_generalized_area")?,
        total_generalized_duration: req_i64(j, what, "total_generalized_duration")?,
    })
}

fn params_to_json(p: &PrivacyParams) -> Json {
    Json::obj([
        ("k", Json::from(p.k as u64)),
        ("theta", Json::Num(p.theta)),
        ("k_init", Json::from(p.k_init as u64)),
        ("k_decrement", Json::from(p.k_decrement as u64)),
        (
            "on_risk",
            Json::from(match p.on_risk {
                RiskAction::Forward => "forward",
                RiskAction::Suppress => "suppress",
            }),
        ),
    ])
}

fn params_of_json(j: &Json) -> Result<PrivacyParams, String> {
    let what = "params";
    let on_risk = match req(j, what, "on_risk")?.as_str() {
        Some("forward") => RiskAction::Forward,
        Some("suppress") => RiskAction::Suppress,
        other => return Err(format!("params: unknown on_risk {other:?}")),
    };
    Ok(PrivacyParams {
        k: req_usize(j, what, "k")?,
        theta: req_f64(j, what, "theta")?,
        k_init: req_usize(j, what, "k_init")?,
        k_decrement: req_usize(j, what, "k_decrement")?,
        on_risk,
    })
}

fn opt_params_to_json(p: &Option<PrivacyParams>) -> Json {
    p.as_ref().map_or(Json::Null, params_to_json)
}

fn opt_params_of_json(j: &Json) -> Result<Option<PrivacyParams>, String> {
    match j {
        Json::Null => Ok(None),
        j => params_of_json(j).map(Some),
    }
}

fn mode_of_str(s: &str) -> Result<ServerMode, String> {
    match s {
        "normal" => Ok(ServerMode::Normal),
        "degraded" => Ok(ServerMode::Degraded),
        "read_only" => Ok(ServerMode::ReadOnly),
        other => Err(format!("unknown server mode '{other}'")),
    }
}

/// One user's durable bindings in a checkpoint snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct UserMeta {
    /// The user.
    pub user: UserId,
    /// The pseudonym currently bound to the user.
    pub pseudonym: Pseudonym,
    /// Registration-time privacy parameters (`None` = privacy off).
    pub params: Option<PrivacyParams>,
    /// Per-service overrides, ascending by service id.
    pub overrides: Vec<(ServiceId, Option<PrivacyParams>)>,
    /// Whether an at-risk notification is unresolved.
    pub at_risk: bool,
}

/// The `server` section of a checkpoint snapshot: everything the
/// trusted server needs beyond the trajectory store to resume serving
/// (see the module docs for what is deliberately left out).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerMeta {
    /// Operating mode at snapshot time.
    pub mode: ServerMode,
    /// Timestamp of the most recent event.
    pub last_time: TimeSec,
    /// Next message id to issue.
    pub next_msg: u64,
    /// Next pseudonym to issue.
    pub next_pseudonym: u64,
    /// Registered service tolerances, ascending by service id.
    pub services: Vec<(ServiceId, Tolerance)>,
    /// Static mix-zones, in registration order.
    pub static_zones: Vec<Rect>,
    /// Per-user bindings, ascending by user id.
    pub users: Vec<UserMeta>,
}

impl ServerMeta {
    /// Canonical encoding (keys sorted, floats round-tripping exactly).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("mode", Json::from(self.mode.as_str())),
            ("last_time", Json::Int(self.last_time.0)),
            ("next_msg", Json::from(self.next_msg)),
            ("next_pseudonym", Json::from(self.next_pseudonym)),
            (
                "services",
                Json::Arr(
                    self.services
                        .iter()
                        .map(|(id, tol)| {
                            Json::obj([
                                ("service", Json::from(u64::from(id.0))),
                                ("max_area", Json::Num(tol.max_area)),
                                ("max_duration", Json::Int(tol.max_duration)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "static_zones",
                Json::Arr(
                    self.static_zones
                        .iter()
                        .map(|z| {
                            Json::Arr(vec![
                                Json::Num(z.min().x),
                                Json::Num(z.min().y),
                                Json::Num(z.max().x),
                                Json::Num(z.max().y),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "users",
                Json::Arr(
                    self.users
                        .iter()
                        .map(|u| {
                            Json::obj([
                                ("user", Json::from(u.user.raw())),
                                ("pseudonym", Json::from(u.pseudonym.0)),
                                ("params", opt_params_to_json(&u.params)),
                                (
                                    "overrides",
                                    Json::Arr(
                                        u.overrides
                                            .iter()
                                            .map(|(svc, p)| {
                                                Json::obj([
                                                    ("service", Json::from(u64::from(svc.0))),
                                                    ("params", opt_params_to_json(p)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                ("at_risk", Json::Bool(u.at_risk)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Strict inverse of [`ServerMeta::to_json`].
    pub fn of_json(j: &Json) -> Result<ServerMeta, String> {
        let what = "server meta";
        let mode = mode_of_str(
            req(j, what, "mode")?
                .as_str()
                .ok_or("server meta: mistyped 'mode'")?,
        )?;
        let mut services = Vec::new();
        for s in req_arr(j, what, "services")? {
            let max_area = req_f64(s, "service", "max_area")?;
            let max_duration = req_i64(s, "service", "max_duration")?;
            if !(max_area >= 0.0 && max_duration >= 0) {
                return Err("service: negative tolerance".into());
            }
            services.push((
                req_service(s, "service")?,
                Tolerance::new(max_area, max_duration),
            ));
        }
        let mut static_zones = Vec::new();
        for z in req_arr(j, what, "static_zones")? {
            let Json::Arr(corners) = z else {
                return Err("static zone is not an array".into());
            };
            let [x0, y0, x1, y1] = corners.as_slice() else {
                return Err(format!(
                    "static zone has {} elements, expected 4",
                    corners.len()
                ));
            };
            let nums: Vec<f64> = [x0, y0, x1, y1]
                .iter()
                .map(|v| v.as_f64().ok_or("static zone corner is not a number"))
                .collect::<Result<_, _>>()?;
            static_zones.push(Rect::new(
                Point::new(nums[0], nums[1]),
                Point::new(nums[2], nums[3]),
            ));
        }
        let mut users = Vec::new();
        for u in req_arr(j, what, "users")? {
            let mut overrides = Vec::new();
            for o in req_arr(u, "user", "overrides")? {
                overrides.push((
                    req_service(o, "override")?,
                    opt_params_of_json(req(o, "override", "params")?)?,
                ));
            }
            users.push(UserMeta {
                user: UserId(req_u64(u, "user", "user")?),
                pseudonym: Pseudonym(req_u64(u, "user", "pseudonym")?),
                params: opt_params_of_json(req(u, "user", "params")?)?,
                overrides,
                at_risk: req(u, "user", "at_risk")?
                    .as_bool()
                    .ok_or("user: mistyped 'at_risk'")?,
            });
        }
        Ok(ServerMeta {
            mode,
            last_time: TimeSec(req_i64(j, what, "last_time")?),
            next_msg: req_u64(j, what, "next_msg")?,
            next_pseudonym: req_u64(j, what, "next_pseudonym")?,
            services,
            static_zones,
            users,
        })
    }
}

// ---------------------------------------------------------------------------
// The checkpointer.
// ---------------------------------------------------------------------------

/// Receipt of a successful checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointReceipt {
    /// Chain seq of the anchor record (== records covered by the snapshot).
    pub seq: u64,
    /// Where the snapshot lives.
    pub path: PathBuf,
    /// SHA-256 of the snapshot file, as recorded in the anchor.
    pub snapshot_hash: String,
    /// Snapshot size on disk.
    pub bytes: u64,
    /// Journal-prefix bytes archived away (0 unless truncation ran).
    pub truncated_bytes: u64,
}

/// Checkpoints rejected during a recovery scan, newest first:
/// `(anchor seq, reason)` per skipped candidate.
pub type SkippedCheckpoints = Vec<(u64, String)>;

/// A checkpoint that survived full verification during recovery.
#[derive(Debug, Clone)]
pub struct RecoveredCheckpoint {
    /// The anchor record binding the snapshot into the chain.
    pub anchor: CheckpointAnchor,
    /// The decoded snapshot.
    pub snapshot: Snapshot,
    /// Where the snapshot lives.
    pub path: PathBuf,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn injected(site: &str) -> io::Error {
    io::Error::other(format!("injected fault at {site}"))
}

/// Orchestrates the checkpoint write protocol and the recovery ladder
/// for one journal file (see the module docs for both).
pub struct Checkpointer {
    journal: PathBuf,
    dir: PathBuf,
    audit_cfg: AuditConfig,
    injector: FaultInjector,
    last_snapshot: Option<PathBuf>,
}

impl Checkpointer {
    /// A checkpointer for `journal`, writing snapshots under `dir`
    /// (created on first use).
    pub fn new(journal: impl Into<PathBuf>, dir: impl Into<PathBuf>) -> Self {
        Checkpointer {
            journal: journal.into(),
            dir: dir.into(),
            audit_cfg: AuditConfig::default(),
            injector: FaultInjector::none(),
            last_snapshot: None,
        }
    }

    /// Sets the audit tolerances embedded in snapshot audit sections.
    /// Must match the config the offline audit runs with, or the
    /// resumed report's trade-off tables will differ from genesis.
    pub fn with_audit_config(mut self, cfg: AuditConfig) -> Self {
        self.audit_cfg = cfg;
        self
    }

    /// Attaches a fault-injection plan covering the checkpoint-path
    /// sites ([`sites::CHECKPOINT_PATH`]).
    pub fn attach_faults(&mut self, injector: FaultInjector) {
        self.injector = injector;
    }

    /// The snapshot file for a checkpoint anchored at `records`.
    pub fn snapshot_path(&self, records: u64) -> PathBuf {
        self.dir.join(format!("checkpoint-{records:06}.snap"))
    }

    /// The most recent snapshot this checkpointer wrote or recovered.
    pub fn last_snapshot(&self) -> Option<&Path> {
        self.last_snapshot.as_deref()
    }

    fn check(&self, site: &str) -> Option<FaultKind> {
        let kind = self.injector.check(site)?;
        let metrics = hka_obs::global();
        metrics.counter("faults.injected").incr();
        metrics.counter(&format!("faults.{site}")).incr();
        Some(kind)
    }

    /// Runs the full write protocol against a live server: snapshot,
    /// anchor, metrics, and (optionally) journal-prefix truncation.
    ///
    /// On error the journal and the previous checkpoint are untouched
    /// and remain authoritative — the caller just carries on serving and
    /// may retry at the next interval. `ts.checkpoint_failures` counts
    /// these.
    pub fn checkpoint(
        &mut self,
        ts: &mut TrustedServer,
        truncate: bool,
    ) -> io::Result<CheckpointReceipt> {
        let started = Instant::now();
        let result = self.try_checkpoint(ts, truncate, started);
        if result.is_err() {
            self.note_failed();
        }
        result
    }

    fn try_checkpoint(
        &mut self,
        ts: &mut TrustedServer,
        truncate: bool,
        started: Instant,
    ) -> io::Result<CheckpointReceipt> {
        ts.flush_journal()?;
        let (records, head) = ts
            .journal_position()
            .ok_or_else(|| invalid("no journal attached: nothing to anchor a checkpoint into"))?;
        let audit_state = self.audit_state_at(records, &head)?;

        let mut snapshot = Snapshot::new(records, head.clone());
        snapshot.set_section(
            STORE_SECTION,
            hka_trajectory::state::store_to_json(ts.store()),
        );
        snapshot.set_section(SERVER_SECTION, ts.server_meta().to_json());
        snapshot.set_section(STATS_SECTION, stats_to_json(&ts.log().stats()));
        snapshot.set_section(hka_audit::AUDIT_SECTION, audit_state);

        let (path, hash, bytes) = self.publish_snapshot(&snapshot)?;

        // Anchor the snapshot into the chain. Until this append lands the
        // snapshot file is an unanchored orphan: recovery ignores it.
        if self.check(sites::CHECKPOINT_APPEND).is_some() {
            return Err(injected(sites::CHECKPOINT_APPEND));
        }
        let file_name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .ok_or_else(|| invalid("snapshot path has no file name"))?;
        let seq = ts.append_journal_record(
            CHECKPOINT_KIND,
            anchor_payload(&file_name, records, &head, &hash),
        )?;
        debug_assert_eq!(seq, records, "anchor seq equals the records it covers");
        self.last_snapshot = Some(path.clone());

        let truncated_bytes = if truncate { self.truncate_live(ts)? } else { 0 };

        self.note_committed(&path, bytes, records, started);
        Ok(CheckpointReceipt {
            seq,
            path,
            snapshot_hash: hash,
            bytes,
            truncated_bytes,
        })
    }

    // ------------------------------------------------------------------
    // Write-protocol building blocks. `checkpoint` composes these for
    // the sequential server; the sharded frontend drives the same
    // protocol through its group-commit sink (`ShardedTs::write_checkpoint`
    // in `hka-shard`), so the sites, codecs, metrics, and the recovery
    // ladder stay byte-identical across both.
    // ------------------------------------------------------------------

    /// Builds a snapshot's `audit` section at chain position
    /// `(records, head)` by replaying the on-disk journal — resuming
    /// from the previous snapshot when one is still valid, falling back
    /// to a genesis replay when it is not (more work, never wrong
    /// state) — and **cross-checks** the file's end position against
    /// the caller's live position: any divergence aborts, fail-closed.
    pub fn audit_state_at(&self, records: u64, head: &str) -> io::Result<Json> {
        let (audit_state, file_records, file_head) = match &self.last_snapshot {
            Some(prev) => match hka_audit::state_at(&self.journal, Some(prev), self.audit_cfg) {
                Ok(v) => v,
                Err(_) => hka_audit::state_at(&self.journal, None, self.audit_cfg)?,
            },
            None => hka_audit::state_at(&self.journal, None, self.audit_cfg)?,
        };
        if file_records != records || file_head != head {
            return Err(invalid(format!(
                "journal file ends at ({file_records}, {file_head}) but the live sink is at \
                 ({records}, {head}): refusing to snapshot divergent state"
            )));
        }
        Ok(audit_state)
    }

    /// Publishes a fully-built snapshot atomically under the checkpoint
    /// directory (temp file + fsync + rename, `snapshot.write` /
    /// `snapshot.rename` fault sites); returns `(path, content hash,
    /// bytes)`. The journal is untouched — the caller appends the
    /// anchor, and until it does the file is an orphan recovery ignores.
    pub fn publish_snapshot(&self, snapshot: &Snapshot) -> io::Result<(PathBuf, String, u64)> {
        let path = self.snapshot_path(snapshot.records);
        let hash = self.write_staged(snapshot, &path)?;
        let bytes = std::fs::metadata(&path)?.len();
        Ok((path, hash, bytes))
    }

    /// Consults the fault plan at `site`, counting any injection in the
    /// `faults.injected` / `faults.<site>` metrics — for callers driving
    /// the write protocol themselves.
    pub fn check_site(&self, site: &str) -> Option<FaultKind> {
        self.check(site)
    }

    /// Records a committed checkpoint: exports the `ts.checkpoint_*`
    /// metrics and memoizes the snapshot so the next
    /// [`Checkpointer::audit_state_at`] resumes from it instead of
    /// genesis.
    pub fn note_committed(&mut self, path: &Path, bytes: u64, records: u64, started: Instant) {
        self.last_snapshot = Some(path.to_path_buf());
        let metrics = hka_obs::global();
        metrics.counter("ts.checkpoints").incr();
        metrics.counter("ts.checkpoint_bytes").add(bytes);
        metrics
            .histogram("ts.checkpoint_write_ns")
            .record(started.elapsed().as_nanos() as u64);
        metrics
            .gauge("ts.checkpoint_last_offset")
            .set(records as i64);
    }

    /// Counts a failed checkpoint attempt (`ts.checkpoint_failures`).
    pub fn note_failed(&self) {
        hka_obs::global().counter("ts.checkpoint_failures").incr();
    }

    /// Stages the snapshot atomically: temp file + fsync + rename, with
    /// fault injection at `snapshot.write` (which may tear the temp
    /// file) and `snapshot.rename` (which orphans a fully-written temp).
    /// Either failure leaves the published snapshot path untouched.
    fn write_staged(&self, snapshot: &Snapshot, path: &Path) -> io::Result<String> {
        std::fs::create_dir_all(&self.dir)?;
        let text = snapshot.encode();
        let tmp = path.with_extension("tmp");
        match self.check(sites::SNAPSHOT_WRITE) {
            Some(FaultKind::Torn) => {
                std::fs::write(&tmp, &text.as_bytes()[..text.len() / 2])?;
                return Err(injected(sites::SNAPSHOT_WRITE));
            }
            Some(_) => return Err(injected(sites::SNAPSHOT_WRITE)),
            None => {}
        }
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_data()?;
        }
        if self.check(sites::SNAPSHOT_RENAME).is_some() {
            return Err(injected(sites::SNAPSHOT_RENAME));
        }
        std::fs::rename(&tmp, path)?;
        Ok(snapshot.content_hash())
    }

    /// Truncates the journal prefix behind the just-written anchor.
    ///
    /// The sink is detached around the swap: [`truncate_to_anchor`]
    /// publishes the suffix by *renaming a new file into place*, and an
    /// append handle left open across that rename would keep writing the
    /// dead inode — every later event silently lost. The sink is
    /// re-attached (resuming the chain at the anchor) whether or not the
    /// swap succeeded; a fresh sink is healthy, so this also returns a
    /// degraded server to normal, as any re-attach does.
    fn truncate_live(&self, ts: &mut TrustedServer) -> io::Result<u64> {
        let (next_seq, head) = ts
            .journal_position()
            .ok_or_else(|| invalid("no journal attached"))?;
        drop(ts.take_journal());

        let swap = match self.check(sites::JOURNAL_TRUNCATE) {
            Some(FaultKind::Torn) => {
                // A crash mid-copy: the suffix temp file is torn, the
                // journal itself is untouched.
                std::fs::write(self.journal.with_extension("tmp"), b"{\"hash\":\"torn-tr")?;
                Err(injected(sites::JOURNAL_TRUNCATE))
            }
            Some(_) => Err(injected(sites::JOURNAL_TRUNCATE)),
            None => {
                truncate_to_anchor(&self.journal, next_seq - 1).map(|dropped| dropped.len() as u64)
            }
        };

        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.journal)?;
        let sink: Box<dyn std::io::Write + Send + Sync> = Box::new(std::io::BufWriter::new(file));
        ts.attach_journal(hka_obs::Journal::resume(sink, next_seq, head));
        swap
    }

    /// Walks the journal's checkpoint anchors newest-first and returns
    /// the first one whose snapshot survives **full** verification
    /// (file present, content hash matches the anchor, chain position
    /// agrees), together with `(anchor_seq, reason)` for every newer
    /// checkpoint that was skipped. `Ok((None, skipped))` means genesis
    /// replay is the only safe recovery — fail-closed, never a
    /// half-trusted snapshot.
    pub fn latest_valid(&self) -> io::Result<(Option<RecoveredCheckpoint>, SkippedCheckpoints)> {
        let mut skipped = Vec::new();
        for anchor in scan_anchors(&self.journal)? {
            let path = self.dir.join(&anchor.file);
            match Snapshot::read(&path) {
                Err(e) => skipped.push((anchor.records, format!("{}: {e}", path.display()))),
                Ok((snapshot, file_hash)) => {
                    if file_hash != anchor.snapshot {
                        skipped.push((
                            anchor.records,
                            format!("{}: content hash mismatch", path.display()),
                        ));
                    } else if snapshot.records != anchor.records || snapshot.head != anchor.head {
                        skipped.push((
                            anchor.records,
                            format!("{}: chain position mismatch", path.display()),
                        ));
                    } else {
                        return Ok((
                            Some(RecoveredCheckpoint {
                                anchor,
                                snapshot,
                                path,
                            }),
                            skipped,
                        ));
                    }
                }
            }
        }
        Ok((None, skipped))
    }

    /// Builds a server from the latest valid checkpoint, or an empty one
    /// when no checkpoint survives verification (the caller then replays
    /// the whole journal through it, i.e. genesis recovery). Remembers
    /// the recovered snapshot so the next [`Checkpointer::checkpoint`]
    /// resumes its audit replay from it.
    pub fn restore_server(
        &mut self,
        config: TsConfig,
    ) -> io::Result<(
        TrustedServer,
        Option<RecoveredCheckpoint>,
        SkippedCheckpoints,
    )> {
        let (found, skipped) = self.latest_valid()?;
        match found {
            Some(rec) => {
                let ts = TrustedServer::restore(config, &rec.snapshot)
                    .map_err(|e| invalid(format!("{}: {e}", rec.path.display())))?;
                self.last_snapshot = Some(rec.path.clone());
                Ok((ts, Some(rec), skipped))
            }
            None => Ok((TrustedServer::new(config), None, skipped)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrivacyLevel;
    use hka_geo::StPoint;
    use hka_obs::Journal;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("hka-core-ckpt-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, hka_geo::TimeSec(t))
    }

    fn file_journal(path: &Path) -> hka_obs::BoxedJournal {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap();
        Journal::new(Box::new(std::io::BufWriter::new(file)))
    }

    /// A server journaling to `dir/journal.jsonl` with a little traffic.
    fn busy_server(dir: &Path) -> (TrustedServer, PathBuf) {
        let journal = dir.join("journal.jsonl");
        let mut ts = TrustedServer::new(TsConfig::default());
        ts.attach_journal(file_journal(&journal));
        ts.register_service(ServiceId(1), Tolerance::new(1e8, 7_200));
        ts.add_static_mixzone(Rect::new(
            Point::new(500.0, 500.0),
            Point::new(600.0, 600.0),
        ));
        for u in 0..6u64 {
            let level = if u % 2 == 0 {
                PrivacyLevel::Medium
            } else {
                PrivacyLevel::Off
            };
            ts.register_user(UserId(u), level);
            for t in 0..5 {
                ts.location_update(UserId(u), sp(10.0 * u as f64, 3.0 * t as f64, 60 * t));
            }
            ts.handle_request(UserId(u), sp(10.0 * u as f64, 20.0, 400), ServiceId(1));
        }
        (ts, journal)
    }

    #[test]
    fn stats_and_server_meta_round_trip() {
        let dir = TempDir::new("codec");
        let (ts, _) = busy_server(&dir.0);
        let stats = ts.log().stats();
        let back = stats_of_json(&stats_to_json(&stats)).unwrap();
        assert_eq!(back, stats);

        let meta = ts.server_meta();
        let json = meta.to_json();
        let text = json.to_string();
        let reparsed = hka_obs::json::parse(&text).unwrap();
        assert_eq!(reparsed.to_string(), text, "canonical encoding");
        let back = ServerMeta::of_json(&reparsed).unwrap();
        assert_eq!(back, meta);
        assert_eq!(back.users.len(), 6);
        assert_eq!(back.services.len(), 1);
        assert_eq!(back.static_zones.len(), 1);
    }

    #[test]
    fn checkpoint_then_restore_reproduces_the_server() {
        let dir = TempDir::new("roundtrip");
        let (mut ts, journal) = busy_server(&dir.0);
        let mut cp = Checkpointer::new(&journal, dir.0.join("snapshots"));
        let receipt = cp.checkpoint(&mut ts, false).unwrap();
        assert!(receipt.path.exists());
        assert_eq!(receipt.truncated_bytes, 0);

        let (restored, rec, skipped) = cp.restore_server(TsConfig::default()).unwrap();
        assert!(skipped.is_empty());
        let rec = rec.expect("checkpoint recovered");
        assert_eq!(rec.anchor.records, receipt.seq);

        // The durable state is identical: same stats, same meta, same store.
        assert_eq!(restored.log().stats(), ts.log().stats());
        assert_eq!(restored.server_meta(), ts.server_meta());
        assert_eq!(
            hka_trajectory::state::store_to_json(restored.store()).to_string(),
            hka_trajectory::state::store_to_json(ts.store()).to_string()
        );
        // The rebuilt index answers queries (smoke: same user count).
        assert_eq!(restored.store().user_count(), ts.store().user_count());
    }

    #[test]
    fn audit_resume_from_checkpoint_is_byte_identical_to_genesis() {
        let dir = TempDir::new("audit-equiv");
        let (mut ts, journal) = busy_server(&dir.0);
        let mut cp = Checkpointer::new(&journal, dir.0.join("snapshots"));
        let receipt = cp.checkpoint(&mut ts, false).unwrap();

        // More traffic after the checkpoint: the suffix.
        for u in 0..6u64 {
            ts.handle_request(UserId(u), sp(10.0 * u as f64, 25.0, 700), ServiceId(1));
        }
        ts.flush_journal().unwrap();

        let genesis = hka_audit::replay_file(&journal, AuditConfig::default()).unwrap();
        let resumed = hka_audit::resume_from_snapshot(&journal, &receipt.path).unwrap();
        assert!(genesis.chain.verified());
        assert_eq!(genesis.totals.checkpoints, 1);
        assert_eq!(resumed.to_json().to_string(), genesis.to_json().to_string());
    }

    #[test]
    fn truncation_archives_the_prefix_and_keeps_the_chain_verifiable() {
        let dir = TempDir::new("truncate");
        let (mut ts, journal) = busy_server(&dir.0);
        let before = std::fs::metadata(&journal).unwrap().len();
        let mut cp = Checkpointer::new(&journal, dir.0.join("snapshots"));
        let receipt = cp.checkpoint(&mut ts, true).unwrap();
        assert!(receipt.truncated_bytes > 0);
        let after = std::fs::metadata(&journal).unwrap().len();
        assert!(after < before, "prefix gone: {after} < {before}");

        // The truncated journal still serves writes on the same chain...
        for u in 0..6u64 {
            ts.handle_request(UserId(u), sp(10.0 * u as f64, 25.0, 700), ServiceId(1));
        }
        ts.flush_journal().unwrap();

        // ...and the resumed audit still verifies end to end.
        let resumed = hka_audit::resume_from_snapshot(&journal, &receipt.path).unwrap();
        assert!(resumed.chain.verified(), "error: {:?}", resumed.chain.error);
        assert!(resumed.ok(), "violations: {:?}", resumed.violations);

        // A second checkpoint on the truncated journal also works: the
        // leading anchor seeds the next audit replay.
        let receipt2 = cp.checkpoint(&mut ts, true).unwrap();
        assert!(receipt2.seq > receipt.seq);
        let resumed2 = hka_audit::resume_from_snapshot(&journal, &receipt2.path).unwrap();
        assert!(resumed2.chain.verified());
    }

    #[test]
    fn recovery_ladder_falls_back_past_a_doctored_snapshot() {
        let dir = TempDir::new("ladder");
        let (mut ts, journal) = busy_server(&dir.0);
        let mut cp = Checkpointer::new(&journal, dir.0.join("snapshots"));
        let first = cp.checkpoint(&mut ts, false).unwrap();
        ts.handle_request(UserId(0), sp(0.0, 30.0, 800), ServiceId(1));
        let second = cp.checkpoint(&mut ts, false).unwrap();
        assert!(second.seq > first.seq);

        // Corrupt the newest snapshot: recovery must fall back to the
        // first, never half-trust the doctored one.
        let text = std::fs::read_to_string(&second.path).unwrap();
        std::fs::write(&second.path, text.replace("forwarded", "forwarble")).unwrap();

        let (found, skipped) = cp.latest_valid().unwrap();
        let found = found.expect("older checkpoint still valid");
        assert_eq!(found.anchor.records, first.seq);
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].0, second.seq);

        // And with both gone, recovery degrades to genesis (None).
        std::fs::remove_file(&second.path).unwrap();
        std::fs::remove_file(&first.path).unwrap();
        let (found, skipped) = cp.latest_valid().unwrap();
        assert!(found.is_none());
        assert_eq!(skipped.len(), 2);
    }

    #[test]
    fn faults_on_the_checkpoint_path_leave_the_previous_state_authoritative() {
        use hka_faults::{FaultPlan, Trigger};
        for (site, kind) in [
            (sites::SNAPSHOT_WRITE, FaultKind::Torn),
            (sites::SNAPSHOT_WRITE, FaultKind::Io),
            (sites::SNAPSHOT_RENAME, FaultKind::Io),
            (sites::CHECKPOINT_APPEND, FaultKind::Io),
            (sites::JOURNAL_TRUNCATE, FaultKind::Torn),
            (sites::JOURNAL_TRUNCATE, FaultKind::Io),
        ] {
            let dir = TempDir::new(&format!("fault-{}", site.replace('.', "-")));
            let (mut ts, journal) = busy_server(&dir.0);
            let mut cp = Checkpointer::new(&journal, dir.0.join("snapshots"));
            let good = cp.checkpoint(&mut ts, false).unwrap();
            ts.handle_request(UserId(1), sp(10.0, 30.0, 800), ServiceId(1));

            let mut plan = FaultPlan::new(7);
            plan.push_rule(site, Trigger::Always, kind);
            cp.attach_faults(FaultInjector::new(plan));
            let err = cp.checkpoint(&mut ts, true).unwrap_err();
            assert!(err.to_string().contains(site), "{site}: {err}");

            // Fail-closed: the ladder lands on a fully verified
            // checkpoint. For faults before the anchor append that is
            // the previous one (orphaned snapshots are ignored); a
            // truncation fault strikes *after* the new snapshot and
            // anchor are durable, so the new checkpoint is the valid
            // one — only the prefix archival was lost.
            cp.attach_faults(FaultInjector::none());
            let (found, _skipped) = cp.latest_valid().unwrap();
            let found = found.expect("a checkpoint survives").anchor.records;
            if site == sites::JOURNAL_TRUNCATE {
                assert!(found > good.seq, "{site}: new checkpoint is durable");
            } else {
                assert_eq!(found, good.seq, "{site}");
            }

            // The server keeps serving and journaling after the failure.
            ts.handle_request(UserId(2), sp(20.0, 30.0, 900), ServiceId(1));
            ts.flush_journal().unwrap();
            let out = hka_audit::replay_file(&journal, AuditConfig::default()).unwrap();
            assert!(out.chain.verified(), "{site}: {:?}", out.chain.error);
            assert!(out.ok(), "{site}: {:?}", out.violations);
        }
    }

    #[test]
    fn checkpoint_metrics_are_exported() {
        let dir = TempDir::new("metrics");
        let (mut ts, journal) = busy_server(&dir.0);
        let mut cp = Checkpointer::new(&journal, dir.0.join("snapshots"));
        let before = hka_obs::global().snapshot().counter("ts.checkpoints");
        let receipt = cp.checkpoint(&mut ts, false).unwrap();
        let snap = hka_obs::global().snapshot();
        assert_eq!(snap.counter("ts.checkpoints"), before + 1);
        assert!(snap.counter("ts.checkpoint_bytes") >= receipt.bytes);
        assert!(snap.histogram("ts.checkpoint_write_ns").is_some());
    }
}
