//! LBQID derivation from movement statistics.
//!
//! Section 4: "The derivation of a specific pattern or a set of patterns
//! acting as LBQIDs for a specific individual is an independent problem
//! … the derivation process will have to be based on statistical
//! analysis of the data about users movement history: If a certain
//! pattern turns out to be very common for many users, it is unlikely to
//! be useful for identifying any one of them. … Since in our model it is
//! the TS which stores, or at least has access to, historical trajectory
//! data, it is probably a good candidate to offer tools for LBQID
//! definition." The conclusions repeat the ask: "very simple tools should
//! be provided to define LBQIDs and verify them based on statistical
//! data."
//!
//! This module is that tool. [`derive_lbqids`] mines a user's Personal
//! History of Locations for **recurring dwell anchors** — places the user
//! provably stays at, at recurring times of day, on many distinct days —
//! turns the top anchors into an LBQID element sequence with a recurrence
//! formula fitted to the observed support, and then *verifies* each
//! candidate statistically: it replays every user's history through the
//! online matcher and reports the **matching population**. A pattern
//! matched by many users is discarded ("unlikely to be useful for
//! identifying any one of them"); what remains are the patterns the user
//! should register with the trusted server for protection.

use hka_geo::{DayWindow, Rect, StPoint, DAY, MINUTE};
use hka_granules::{Granularity, Recurrence};
use hka_lbqid::{Element, Lbqid, Monitor};
use hka_trajectory::{Phl, TrajectoryStore, UserId};
use std::collections::BTreeMap;

/// Mining parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivationConfig {
    /// Spatial granule for dwell detection (meters): positions within the
    /// same cell belong to the same place.
    pub cell: f64,
    /// Minimum continuous presence in a cell to count as a dwell
    /// (seconds).
    pub min_dwell: i64,
    /// An anchor needs dwells on at least this many distinct days.
    pub min_days: usize,
    /// Slack added on each side of the detected time-of-day window
    /// (seconds).
    pub window_slack: i64,
    /// How many top anchors form the derived element sequence.
    pub max_elements: usize,
    /// Candidates matched by more than this many users are discarded as
    /// non-identifying.
    pub max_population: usize,
}

impl Default for DerivationConfig {
    fn default() -> Self {
        DerivationConfig {
            cell: 150.0,
            min_dwell: 20 * MINUTE,
            min_days: 3,
            window_slack: 15 * MINUTE,
            max_elements: 2,
            max_population: 3,
        }
    }
}

/// A mined and verified candidate quasi-identifier.
#[derive(Debug, Clone)]
pub struct DerivedPattern {
    /// The pattern, ready to register with the trusted server.
    pub lbqid: Lbqid,
    /// Distinct days on which every element was visited.
    pub support_days: usize,
    /// How many users in the whole store could match it (including the
    /// subject) — the statistical verification step. `1` means the
    /// pattern identifies its owner uniquely.
    pub matching_population: usize,
}

/// One recurring place: where, when in the day, on which days.
#[derive(Debug, Clone)]
struct Anchor {
    area: Rect,
    window: DayWindow,
    days: Vec<i64>,
}

/// Maximal same-cell dwell episodes of a history.
fn dwell_episodes(phl: &Phl, cfg: &DerivationConfig) -> Vec<(i64, i64, StPoint, StPoint)> {
    // (cell-x, cell-y) of a point.
    let cell = |p: &StPoint| {
        (
            (p.pos.x / cfg.cell).floor() as i64,
            (p.pos.y / cfg.cell).floor() as i64,
        )
    };
    let mut out = Vec::new();
    let pts = phl.points();
    let mut i = 0;
    while i < pts.len() {
        let c = cell(&pts[i]);
        let mut j = i;
        while j + 1 < pts.len()
            && cell(&pts[j + 1]) == c
            && pts[j + 1].t.day_index() == pts[i].t.day_index()
        {
            j += 1;
        }
        if pts[j].t - pts[i].t >= cfg.min_dwell {
            out.push((c.0, c.1, pts[i], pts[j]));
        }
        i = j + 1;
    }
    out
}

/// Mines recurring anchors from a history.
fn mine_anchors(phl: &Phl, cfg: &DerivationConfig) -> Vec<Anchor> {
    // Group episodes by (cell, coarse time-of-day bucket) so that morning
    // and evening presence at the same place become separate anchors.
    const BUCKET: i64 = 4 * 3_600; // 4-hour buckets
                                   // (day index, start/end seconds-of-day, start/end points) per episode.
    type Episode = (i64, i64, i64, StPoint, StPoint);
    let mut groups: BTreeMap<(i64, i64, i64), Vec<Episode>> = BTreeMap::new();
    for (cx, cy, start, end) in dwell_episodes(phl, cfg) {
        let bucket = start.t.second_of_day() / BUCKET;
        groups.entry((cx, cy, bucket)).or_default().push((
            start.t.day_index(),
            start.t.second_of_day(),
            end.t.second_of_day(),
            start,
            end,
        ));
    }
    let mut anchors = Vec::new();
    for ((cx, cy, _bucket), eps) in groups {
        let mut days: Vec<i64> = eps.iter().map(|(d, ..)| *d).collect();
        days.sort_unstable();
        days.dedup();
        if days.len() < cfg.min_days {
            continue;
        }
        // The recurring window: an interquartile envelope of the observed
        // time-of-day spans (robust against the occasional all-day dwell,
        // e.g. weekends at home), widened by the slack.
        let mut starts: Vec<i64> = eps.iter().map(|(_, s, ..)| *s).collect();
        let mut ends: Vec<i64> = eps.iter().map(|(_, _, e, ..)| *e).collect();
        starts.sort_unstable();
        ends.sort_unstable();
        let start = starts[starts.len() / 4];
        let end = ends[(ends.len() * 3) / 4];
        let window = DayWindow::new(
            (start - cfg.window_slack).max(0),
            (end + cfg.window_slack).min(DAY - 1),
        );
        let area = Rect::from_bounds(
            cx as f64 * cfg.cell,
            cy as f64 * cfg.cell,
            (cx + 1) as f64 * cfg.cell,
            (cy + 1) as f64 * cfg.cell,
        );
        anchors.push(Anchor { area, window, days });
    }
    // Strongest support first.
    anchors.sort_by_key(|a| std::cmp::Reverse(a.days.len()));
    anchors
}

/// Fits a recurrence formula to the joint support of the chosen anchors:
/// `r.Weekdays * w.Weeks` where `r` is the typical per-week day count and
/// `w` the number of weeks with support.
fn fit_recurrence(days: &[i64]) -> Recurrence {
    let mut per_week: BTreeMap<i64, usize> = BTreeMap::new();
    for d in days {
        if (d.rem_euclid(7)) < 5 {
            *per_week.entry(d.div_euclid(7)).or_insert(0) += 1;
        }
    }
    let weeks = per_week.len().max(1);
    let r = per_week.values().copied().min().unwrap_or(1).clamp(1, 5);
    Recurrence::new(vec![
        (r as u32, Granularity::Weekdays),
        (weeks as u32, Granularity::Weeks),
    ])
    .expect("counts ≥ 1")
}

/// How many users' full histories could match the pattern (statistical
/// verification).
fn matching_population(store: &TrajectoryStore, q: &Lbqid) -> usize {
    let mut n = 0;
    for (_, phl) in store.iter() {
        let mut m = Monitor::new(q.clone());
        for p in phl.points() {
            if let Some(ev) = m.observe(*p) {
                if ev.full_match {
                    n += 1;
                    break;
                }
            }
        }
    }
    n
}

/// Mines, fits and statistically verifies candidate LBQIDs for `subject`.
///
/// Returns candidates sorted most-identifying first (smallest matching
/// population, then largest support); candidates matched by more than
/// `cfg.max_population` users are discarded.
pub fn derive_lbqids(
    store: &TrajectoryStore,
    subject: UserId,
    cfg: &DerivationConfig,
) -> Vec<DerivedPattern> {
    let Some(phl) = store.phl(subject) else {
        return Vec::new();
    };
    let anchors = mine_anchors(phl, cfg);
    if anchors.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::new();
    // Candidate 1: the top `max_elements` anchors as a sequence ordered
    // by window start (the commute shape). Additional candidates: each
    // strong anchor alone (the "personal point of interest" shape).
    let mut top: Vec<&Anchor> = anchors.iter().take(cfg.max_elements.max(1)).collect();
    top.sort_by_key(|a| a.window.start());
    if top.len() >= 2 {
        let days: Vec<i64> = intersect_days(top.iter().map(|a| &a.days));
        if days.len() >= cfg.min_days {
            let elements: Vec<Element> =
                top.iter().map(|a| Element::new(a.area, a.window)).collect();
            let lbqid =
                Lbqid::new("derived-sequence", elements, fit_recurrence(&days)).expect("non-empty");
            out.push((lbqid, days.len()));
        }
    }
    for (i, a) in anchors.iter().take(4).enumerate() {
        let lbqid = Lbqid::new(
            format!("derived-anchor-{i}"),
            vec![Element::new(a.area, a.window)],
            fit_recurrence(&a.days),
        )
        .expect("non-empty");
        out.push((lbqid, a.days.len()));
    }

    let mut verified: Vec<DerivedPattern> = out
        .into_iter()
        .map(|(lbqid, support_days)| {
            let matching_population = matching_population(store, &lbqid);
            DerivedPattern {
                lbqid,
                support_days,
                matching_population,
            }
        })
        .filter(|p| p.matching_population >= 1 && p.matching_population <= cfg.max_population)
        .collect();
    verified.sort_by(|a, b| {
        a.matching_population
            .cmp(&b.matching_population)
            .then(b.support_days.cmp(&a.support_days))
    });
    verified
}

/// Days present in every anchor's support set.
fn intersect_days<'a, I: Iterator<Item = &'a Vec<i64>>>(mut sets: I) -> Vec<i64> {
    let Some(first) = sets.next() else {
        return Vec::new();
    };
    let mut acc: Vec<i64> = first.clone();
    for s in sets {
        acc.retain(|d| s.contains(d));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{Point, TimeSec};

    /// A commuter-shaped history: home mornings/evenings, office days,
    /// weekdays only, for two weeks.
    fn commuter_phl(home: Point, office: Point, days: impl Iterator<Item = i64>) -> Phl {
        let mut pts = Vec::new();
        for d in days {
            for m in 0..8 {
                pts.push(StPoint::new(home, TimeSec::at_hm(d, 7, m * 5)));
            }
            for h in 0..8 {
                pts.push(StPoint::new(office, TimeSec::at_hm(d, 9 + h, 0)));
            }
            for m in 0..8 {
                pts.push(StPoint::new(home, TimeSec::at_hm(d, 18, m * 5)));
            }
        }
        Phl::from_points(pts)
    }

    fn weekdays(weeks: i64) -> impl Iterator<Item = i64> {
        (0..weeks * 7).filter(|d| d.rem_euclid(7) < 5)
    }

    #[test]
    fn mines_home_and_office_anchors() {
        let phl = commuter_phl(
            Point::new(50.0, 50.0),
            Point::new(1_000.0, 1_000.0),
            weekdays(2),
        );
        let anchors = mine_anchors(&phl, &DerivationConfig::default());
        assert!(anchors.len() >= 2, "found {} anchors", anchors.len());
        // Some anchor covers home in the morning.
        assert!(anchors
            .iter()
            .any(|a| a.area.contains(&Point::new(50.0, 50.0))
                && a.window.contains(TimeSec::at_hm(0, 7, 20))));
        // Some anchor covers the office during the day.
        assert!(anchors
            .iter()
            .any(|a| a.area.contains(&Point::new(1_000.0, 1_000.0))));
    }

    #[test]
    fn derives_identifying_pattern_for_lone_commuter() {
        let mut store = TrajectoryStore::new();
        store_phl(
            &mut store,
            UserId(1),
            commuter_phl(
                Point::new(50.0, 50.0),
                Point::new(1_000.0, 1_000.0),
                weekdays(2),
            ),
        );
        // A second user with a very different life.
        store_phl(
            &mut store,
            UserId(2),
            commuter_phl(
                Point::new(1_800.0, 100.0),
                Point::new(300.0, 1_700.0),
                weekdays(2),
            ),
        );
        let derived = derive_lbqids(&store, UserId(1), &DerivationConfig::default());
        assert!(!derived.is_empty());
        let best = &derived[0];
        assert_eq!(best.matching_population, 1, "{:?}", best.lbqid);
        assert!(best.support_days >= 3);
        // The subject's own history must match the derived pattern.
        let mut m = Monitor::new(best.lbqid.clone());
        let mut matched = false;
        for p in store.phl(UserId(1)).unwrap().points() {
            if let Some(ev) = m.observe(*p) {
                matched = matched || ev.full_match;
            }
        }
        assert!(matched, "derived pattern must match its owner");
    }

    #[test]
    fn common_patterns_are_discarded() {
        // Five users all sharing the same home/office routine: any mined
        // pattern matches all of them and exceeds max_population.
        let mut store = TrajectoryStore::new();
        for u in 1..=5u64 {
            store_phl(
                &mut store,
                UserId(u),
                commuter_phl(
                    Point::new(50.0, 50.0),
                    Point::new(1_000.0, 1_000.0),
                    weekdays(2),
                ),
            );
        }
        let cfg = DerivationConfig {
            max_population: 3,
            ..DerivationConfig::default()
        };
        let derived = derive_lbqids(&store, UserId(1), &cfg);
        assert!(
            derived.is_empty(),
            "shared routines identify nobody: {derived:?}"
        );
    }

    #[test]
    fn no_history_no_patterns() {
        let store = TrajectoryStore::new();
        assert!(derive_lbqids(&store, UserId(9), &DerivationConfig::default()).is_empty());
        let mut store = TrajectoryStore::new();
        store.ensure_user(UserId(9));
        assert!(derive_lbqids(&store, UserId(9), &DerivationConfig::default()).is_empty());
    }

    #[test]
    fn weekend_only_roamer_yields_nothing_recurring() {
        // Short random hops, never dwelling anywhere 20 minutes.
        let mut pts = Vec::new();
        for d in 0..14 {
            for h in 0..10 {
                pts.push(StPoint::new(
                    Point::new(
                        (d * 37 + h * 211) as f64 % 1_900.0,
                        (d * 53 + h * 101) as f64 % 1_900.0,
                    ),
                    TimeSec::at_hm(d, 8 + h as u32, 0),
                ));
            }
        }
        let phl = Phl::from_points(pts);
        let anchors = mine_anchors(&phl, &DerivationConfig::default());
        assert!(anchors.is_empty(), "{anchors:?}");
    }

    #[test]
    fn fitted_recurrence_reflects_support() {
        // Weekdays for two weeks → r.Weekdays * 2.Weeks with r ≥ 1.
        let days: Vec<i64> = weekdays(2).collect();
        let r = fit_recurrence(&days);
        assert_eq!(r.to_string(), "5.Weekdays * 2.Weeks");
        // Sparse support: one day per week across 3 weeks.
        let r = fit_recurrence(&[0, 8, 16]);
        assert_eq!(r.to_string(), "1.Weekdays * 3.Weeks");
    }

    fn store_phl(store: &mut TrajectoryStore, user: UserId, phl: Phl) {
        for p in phl.points() {
            store.record(user, *p);
        }
    }
}
