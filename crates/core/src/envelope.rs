//! Transport-agnostic request/response envelopes and their wire codec.
//!
//! The paper's Fig. 1 architecture is users → Trusted Server → Service
//! Providers *over a network*. Everything a client sends the TS — a
//! position report or a service request — is expressed here as a
//! [`RequestEnvelope`], and everything the TS answers as a
//! [`ResponseEnvelope`]. The envelopes are plain data: no transport,
//! no socket types, no serialization framework. A frontend
//! (`hka-gateway`) moves them over TCP; the in-process drivers hand
//! them straight to a [`crate::RequestService`].
//!
//! The wire form is **line-delimited canonical JSON** in the same
//! zero-dep style as the `hka-obs` journal: one object per line, a
//! fixed key order per message kind, floats rendered by Rust's
//! shortest-round-trip formatter so coordinates survive a
//! encode→decode cycle bit-for-bit. That exactness is what lets a
//! journal produced behind the TCP gateway be byte-identical to one
//! produced in-process on the same traffic (`tests/gateway.rs`).
//!
//! Every client line carries an `"op"` tag:
//!
//! | op | direction | meaning |
//! |---|---|---|
//! | `bind` | client → TS | bind this connection to a user, answer its pseudonym |
//! | `loc` | client → TS | position report (fire-and-forget) |
//! | `req` | client → TS | service request (exactly one `resp` comes back) |
//! | `drain` | client → TS | barrier: flush outcomes for this connection |
//! | `shutdown` | client → TS | ask the gateway to drain and stop |
//! | `bound` | TS → client | `bind` answer: pseudonym + mode |
//! | `resp` | TS → client | the request outcome |
//! | `drained` | TS → client | `drain` answer |
//! | `err` | TS → client | a frame the TS refused (fail-closed) |
//! | `bye` | TS → client | the gateway is draining this connection |

use hka_anonymity::{Pseudonym, ServiceId};
use hka_geo::{StPoint, TimeSec};
use hka_obs::{json, Json};
use hka_trajectory::UserId;

use crate::server::{RequestOutcome, ServerMode, SuppressReasonPub, TsError};

/// What a [`RequestEnvelope`] asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeBody {
    /// A position report: ingested, never answered.
    Location,
    /// A service request addressed to one provider class: answered by
    /// exactly one [`ResponseEnvelope`].
    Request {
        /// The target service.
        service: ServiceId,
    },
}

/// One client → TS message, transport-agnostic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestEnvelope {
    /// Client-chosen correlation id, echoed on the response.
    pub req_id: u64,
    /// The issuing user. Over the wire a connection normally `bind`s
    /// once and omits the field afterwards; in-process drivers fill it
    /// directly.
    pub user: UserId,
    /// The pseudonym the client believes it holds (advisory — the TS
    /// is authoritative; a stale binding is not an error).
    pub pseudonym: Option<Pseudonym>,
    /// Location report or service request.
    pub body: EnvelopeBody,
    /// The exact spatio-temporal position.
    pub at: StPoint,
    /// Advisory anonymity ask (0 = use the registered profile; the
    /// profile is always authoritative — a wire value can only be
    /// *recorded*, never lower the guarantee).
    pub k_req: u64,
    /// Trace context carried across the transport hop (0 = none).
    pub trace: u64,
}

impl RequestEnvelope {
    /// A position report.
    pub fn location(req_id: u64, user: UserId, at: StPoint) -> Self {
        RequestEnvelope {
            req_id,
            user,
            pseudonym: None,
            body: EnvelopeBody::Location,
            at,
            k_req: 0,
            trace: 0,
        }
    }

    /// A service request.
    pub fn request(req_id: u64, user: UserId, at: StPoint, service: ServiceId) -> Self {
        RequestEnvelope {
            req_id,
            user,
            pseudonym: None,
            body: EnvelopeBody::Request { service },
            at,
            k_req: 0,
            trace: 0,
        }
    }

    /// Whether this envelope expects a response.
    pub fn is_request(&self) -> bool {
        matches!(self.body, EnvelopeBody::Request { .. })
    }

    /// The wire line (no trailing newline).
    pub fn to_wire(&self) -> String {
        match self.body {
            EnvelopeBody::Location => Json::obj([
                ("op", Json::from("loc")),
                ("req", Json::from(self.req_id)),
                ("user", Json::from(self.user.0)),
                ("x", Json::Num(self.at.pos.x)),
                ("y", Json::Num(self.at.pos.y)),
                ("t", Json::Int(self.at.t.0)),
            ])
            .to_string(),
            EnvelopeBody::Request { service } => Json::obj([
                ("op", Json::from("req")),
                ("req", Json::from(self.req_id)),
                ("user", Json::from(self.user.0)),
                ("service", Json::from(u64::from(service.0))),
                ("x", Json::Num(self.at.pos.x)),
                ("y", Json::Num(self.at.pos.y)),
                ("t", Json::Int(self.at.t.0)),
                ("k", Json::from(self.k_req)),
                ("trace", Json::from(self.trace)),
            ])
            .to_string(),
        }
    }
}

/// How the server classified the outcome, on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOutcome {
    /// The request went out to the provider (possibly generalized).
    Forwarded,
    /// The request was withheld by policy (mix-zone, risk, degraded
    /// fail-closed, gateway overload).
    Suppressed,
    /// The request was refused before the strategy ran (unknown user,
    /// read-only server, malformed frame).
    Rejected,
}

impl WireOutcome {
    /// Stable wire tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            WireOutcome::Forwarded => "forwarded",
            WireOutcome::Suppressed => "suppressed",
            WireOutcome::Rejected => "rejected",
        }
    }

    /// Parses the wire tag.
    pub fn parse(s: &str) -> Option<WireOutcome> {
        match s {
            "forwarded" => Some(WireOutcome::Forwarded),
            "suppressed" => Some(WireOutcome::Suppressed),
            "rejected" => Some(WireOutcome::Rejected),
            _ => None,
        }
    }
}

/// One TS → client answer to a [`RequestEnvelope`] with a request body.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseEnvelope {
    /// The request's correlation id.
    pub req_id: u64,
    /// The decision class.
    pub outcome: WireOutcome,
    /// The reason tag for suppressions/rejections (`mix_zone`,
    /// `risk_policy`, `degraded`, `overload`, `unknown_user`,
    /// `read_only`, …); empty for forwards.
    pub detail: String,
    /// The pseudonym the provider saw (forwards only).
    pub pseudonym: Option<Pseudonym>,
    /// The anonymity-set size Algorithm 1 achieved (0 for exact,
    /// non-pattern forwards and non-forwards).
    pub k_got: u64,
    /// Area of the generalized context, m² (0 for non-forwards).
    pub area: f64,
    /// The server's mode ladder position when the answer was drained.
    pub mode: ServerMode,
    /// Trace context (0 = none).
    pub trace: u64,
}

impl ResponseEnvelope {
    /// Classifies a service-layer outcome. `k_got` comes from the
    /// decision event when the caller has it (see
    /// [`crate::RequestService::drain`]); pass 0 when unknown.
    pub fn from_result(
        req_id: u64,
        trace: u64,
        result: &Result<RequestOutcome, TsError>,
        mode: ServerMode,
        k_got: u64,
    ) -> Self {
        match result {
            Ok(RequestOutcome::Forwarded(sp)) => ResponseEnvelope {
                req_id,
                outcome: WireOutcome::Forwarded,
                detail: String::new(),
                pseudonym: Some(sp.pseudonym),
                k_got,
                area: sp.context.area(),
                mode,
                trace,
            },
            Ok(RequestOutcome::Suppressed(reason)) => ResponseEnvelope {
                req_id,
                outcome: WireOutcome::Suppressed,
                detail: match reason {
                    SuppressReasonPub::MixZone => "mix_zone",
                    SuppressReasonPub::RiskPolicy => "risk_policy",
                    SuppressReasonPub::Degraded => "degraded",
                }
                .to_string(),
                pseudonym: None,
                k_got: 0,
                area: 0.0,
                mode,
                trace,
            },
            Err(e) => ResponseEnvelope {
                req_id,
                outcome: WireOutcome::Rejected,
                detail: match e {
                    TsError::UnknownUser(_) => "unknown_user",
                    TsError::DuplicateUser(_) => "duplicate_user",
                    TsError::InvalidParams(_) => "invalid_params",
                    TsError::Degraded => "read_only",
                }
                .to_string(),
                pseudonym: None,
                k_got: 0,
                area: 0.0,
                mode,
                trace,
            },
        }
    }

    /// A gateway-minted refusal that never reached the service layer
    /// (bounded-queue overload, draining listener). Fail-closed by
    /// construction: nothing refused here can have been forwarded.
    pub fn refusal(req_id: u64, outcome: WireOutcome, detail: &str, mode: ServerMode) -> Self {
        ResponseEnvelope {
            req_id,
            outcome,
            detail: detail.to_string(),
            pseudonym: None,
            k_got: 0,
            area: 0.0,
            mode,
            trace: 0,
        }
    }

    /// The wire line (no trailing newline).
    pub fn to_wire(&self) -> String {
        Json::obj([
            ("op", Json::from("resp")),
            ("req", Json::from(self.req_id)),
            ("outcome", Json::from(self.outcome.as_str())),
            ("detail", Json::from(self.detail.as_str())),
            (
                "pseudonym",
                self.pseudonym.map_or(Json::Null, |p| Json::from(p.0)),
            ),
            ("k", Json::from(self.k_got)),
            ("area", Json::Num(self.area)),
            ("mode", Json::from(self.mode.as_str())),
            ("trace", Json::from(self.trace)),
        ])
        .to_string()
    }
}

/// Every message a client may send, parsed off one wire line.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Bind this connection to a user.
    Bind {
        /// The user to bind.
        user: UserId,
    },
    /// A location report or service request.
    Env(RequestEnvelope),
    /// Barrier: answer when every prior request on this connection has
    /// an outcome.
    Drain,
    /// Ask the gateway to drain every connection and stop serving.
    Shutdown,
}

/// Every message the server may answer with, parsed off one wire line.
#[derive(Debug, Clone, PartialEq)]
pub enum WireReply {
    /// `bind` answer.
    Bound {
        /// The bound user.
        user: UserId,
        /// The user's current pseudonym (None: unknown user).
        pseudonym: Option<Pseudonym>,
        /// The server's mode.
        mode: ServerMode,
    },
    /// A request outcome.
    Resp(ResponseEnvelope),
    /// `drain` answer.
    Drained {
        /// Requests still in flight for the connection (always 0: the
        /// reply is sequenced after every pending outcome).
        pending: u64,
    },
    /// A refused frame (oversized, unparseable, unknown op). The
    /// offending line produced no service-layer effect.
    Err {
        /// A stable error tag (`bad_frame`, `too_large`, `bad_op`).
        code: String,
        /// Human-readable detail.
        msg: String,
    },
    /// The gateway is closing this connection (drain or shutdown).
    Bye,
}

impl WireReply {
    /// The wire line (no trailing newline).
    pub fn to_wire(&self) -> String {
        match self {
            WireReply::Bound {
                user,
                pseudonym,
                mode,
            } => Json::obj([
                ("op", Json::from("bound")),
                ("user", Json::from(user.0)),
                (
                    "pseudonym",
                    pseudonym.map_or(Json::Null, |p| Json::from(p.0)),
                ),
                ("mode", Json::from(mode.as_str())),
            ])
            .to_string(),
            WireReply::Resp(resp) => resp.to_wire(),
            WireReply::Drained { pending } => Json::obj([
                ("op", Json::from("drained")),
                ("pending", Json::from(*pending)),
            ])
            .to_string(),
            WireReply::Err { code, msg } => Json::obj([
                ("op", Json::from("err")),
                ("code", Json::from(code.as_str())),
                ("msg", Json::from(msg.as_str())),
            ])
            .to_string(),
            WireReply::Bye => Json::obj([("op", Json::from("bye"))]).to_string(),
        }
    }
}

/// A wire decode failure. The offending line is fail-closed: it must
/// produce an `err` reply (or a dropped connection), never a partial
/// request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn bad(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, WireError> {
    obj.get(key)
        .and_then(Json::as_int)
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| bad(format!("missing or invalid '{key}'")))
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, WireError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| bad(format!("missing or invalid '{key}'")))
}

fn point_of(obj: &Json) -> Result<StPoint, WireError> {
    let x = field_f64(obj, "x")?;
    let y = field_f64(obj, "y")?;
    let t = obj
        .get("t")
        .and_then(Json::as_int)
        .ok_or_else(|| bad("missing or invalid 't'"))?;
    Ok(StPoint::xyt(x, y, TimeSec(t)))
}

fn mode_of(obj: &Json) -> Result<ServerMode, WireError> {
    match obj.get("mode").and_then(Json::as_str) {
        Some("normal") => Ok(ServerMode::Normal),
        Some("degraded") => Ok(ServerMode::Degraded),
        Some("read_only") => Ok(ServerMode::ReadOnly),
        other => Err(bad(format!("unknown mode {other:?}"))),
    }
}

/// Splits a leading unsigned-decimal run off `s` (JSON integer
/// grammar: no sign, no leading `+`, overflow rejected).
fn scan_u64(s: &str) -> Option<(u64, &str)> {
    let end = s.bytes().take_while(u8::is_ascii_digit).count();
    if end == 0 {
        return None;
    }
    Some((s[..end].parse().ok()?, &s[end..]))
}

/// Splits a leading signed-decimal run off `s`.
fn scan_i64(s: &str) -> Option<(i64, &str)> {
    let digits = s.strip_prefix('-').unwrap_or(s);
    let end = s.len() - digits.len() + digits.bytes().take_while(u8::is_ascii_digit).count();
    if end == s.len() - digits.len() {
        return None;
    }
    Some((s[..end].parse().ok()?, &s[end..]))
}

/// Splits a leading JSON number off `s`, accepting exactly the JSON
/// grammar (`-?digits(.digits)?([eE][+-]?digits)?`) so the fast path
/// below never admits a token the general parser would refuse.
fn scan_f64(s: &str) -> Option<(f64, &str)> {
    let b = s.as_bytes();
    let mut i = 0;
    if b.first() == Some(&b'-') {
        i += 1;
    }
    let int_start = i;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    if i == int_start {
        return None;
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        let frac_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == frac_start {
            return None;
        }
    }
    if matches!(b.get(i), Some(&b'e') | Some(&b'E')) {
        i += 1;
        if matches!(b.get(i), Some(&b'+') | Some(&b'-')) {
            i += 1;
        }
        let exp_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == exp_start {
            return None;
        }
    }
    let v: f64 = s[..i].parse().ok()?;
    v.is_finite().then_some((v, &s[i..]))
}

/// Fast path for the canonical location frame [`RequestEnvelope::to_wire`]
/// emits: `{"op":"loc","req":N,"t":I,"user":N,"x":F,"y":F}` — sorted
/// keys (`Json::Obj` is a `BTreeMap`), no whitespace. Position reports
/// outnumber requests roughly a hundred to one in the mobility
/// workloads, and the generic JSON parser's per-frame allocations
/// dominate the gateway's read path — this scanner decodes the hot
/// shape without allocating. Anything that deviates (reordered keys,
/// whitespace, extra fields) falls back to the general parser, so
/// observable behavior is unchanged.
fn parse_canonical_loc(line: &str) -> Option<WireMsg> {
    let rest = line.strip_prefix(r#"{"op":"loc","req":"#)?;
    let (req_id, rest) = scan_u64(rest)?;
    let rest = rest.strip_prefix(r#","t":"#)?;
    let (t, rest) = scan_i64(rest)?;
    let rest = rest.strip_prefix(r#","user":"#)?;
    let (user, rest) = scan_u64(rest)?;
    let rest = rest.strip_prefix(r#","x":"#)?;
    let (x, rest) = scan_f64(rest)?;
    let rest = rest.strip_prefix(r#","y":"#)?;
    let (y, rest) = scan_f64(rest)?;
    if rest != "}" {
        return None;
    }
    Some(WireMsg::Env(RequestEnvelope {
        req_id,
        user: UserId(user),
        pseudonym: None,
        body: EnvelopeBody::Location,
        at: StPoint::xyt(x, y, TimeSec(t)),
        k_req: 0,
        trace: 0,
    }))
}

/// Parses one client wire line.
pub fn parse_wire_msg(line: &str) -> Result<WireMsg, WireError> {
    let trimmed = line.trim_end();
    if let Some(msg) = parse_canonical_loc(trimmed) {
        return Ok(msg);
    }
    let obj = json::parse(trimmed).map_err(|e| bad(e.to_string()))?;
    match obj.get("op").and_then(Json::as_str) {
        Some("bind") => Ok(WireMsg::Bind {
            user: UserId(field_u64(&obj, "user")?),
        }),
        Some("loc") => Ok(WireMsg::Env(RequestEnvelope {
            req_id: field_u64(&obj, "req")?,
            user: UserId(field_u64(&obj, "user")?),
            pseudonym: None,
            body: EnvelopeBody::Location,
            at: point_of(&obj)?,
            k_req: 0,
            trace: 0,
        })),
        Some("req") => Ok(WireMsg::Env(RequestEnvelope {
            req_id: field_u64(&obj, "req")?,
            user: UserId(field_u64(&obj, "user")?),
            pseudonym: None,
            body: EnvelopeBody::Request {
                service: ServiceId(
                    u32::try_from(field_u64(&obj, "service")?)
                        .map_err(|_| bad("service id out of range"))?,
                ),
            },
            at: point_of(&obj)?,
            k_req: field_u64(&obj, "k").unwrap_or(0),
            trace: field_u64(&obj, "trace").unwrap_or(0),
        })),
        Some("drain") => Ok(WireMsg::Drain),
        Some("shutdown") => Ok(WireMsg::Shutdown),
        other => Err(bad(format!("unknown op {other:?}"))),
    }
}

/// Parses one server wire line.
pub fn parse_wire_reply(line: &str) -> Result<WireReply, WireError> {
    let obj = json::parse(line.trim_end()).map_err(|e| bad(e.to_string()))?;
    match obj.get("op").and_then(Json::as_str) {
        Some("bound") => Ok(WireReply::Bound {
            user: UserId(field_u64(&obj, "user")?),
            pseudonym: match obj.get("pseudonym") {
                Some(Json::Null) | None => None,
                Some(v) => Some(Pseudonym(
                    v.as_int()
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| bad("invalid 'pseudonym'"))?,
                )),
            },
            mode: mode_of(&obj)?,
        }),
        Some("resp") => Ok(WireReply::Resp(ResponseEnvelope {
            req_id: field_u64(&obj, "req")?,
            outcome: obj
                .get("outcome")
                .and_then(Json::as_str)
                .and_then(WireOutcome::parse)
                .ok_or_else(|| bad("missing or invalid 'outcome'"))?,
            detail: obj
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            pseudonym: match obj.get("pseudonym") {
                Some(Json::Null) | None => None,
                Some(v) => Some(Pseudonym(
                    v.as_int()
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| bad("invalid 'pseudonym'"))?,
                )),
            },
            k_got: field_u64(&obj, "k").unwrap_or(0),
            area: field_f64(&obj, "area").unwrap_or(0.0),
            mode: mode_of(&obj)?,
            trace: field_u64(&obj, "trace").unwrap_or(0),
        })),
        Some("drained") => Ok(WireReply::Drained {
            pending: field_u64(&obj, "pending")?,
        }),
        Some("err") => Ok(WireReply::Err {
            code: obj
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            msg: obj
                .get("msg")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        }),
        Some("bye") => Ok(WireReply::Bye),
        other => Err(bad(format!("unknown op {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_anonymity::{MsgId, SpRequest};
    use hka_geo::{Rect, StBox, TimeInterval};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    #[test]
    fn envelopes_round_trip_exactly() {
        // Awkward floats: shortest-round-trip rendering must preserve
        // every bit, or gateway journals drift from in-process ones.
        let cases = [
            RequestEnvelope::location(1, UserId(7), sp(0.1 + 0.2, 1234.567891011, 42)),
            RequestEnvelope::request(2, UserId(8), sp(-1.5e-9, 2.0f64.powi(53), 0), ServiceId(3)),
            RequestEnvelope {
                k_req: 5,
                trace: 0xDEAD,
                ..RequestEnvelope::request(u64::MAX >> 1, UserId(9), sp(1.0, 2.0, -7), ServiceId(1))
            },
        ];
        for env in cases {
            let line = env.to_wire();
            assert!(!line.contains('\n'), "one line per message");
            match parse_wire_msg(&line).unwrap() {
                WireMsg::Env(back) => assert_eq!(back, env, "{line}"),
                other => panic!("parsed {other:?}"),
            }
        }
    }

    /// The allocation-free scanner for canonical `loc` frames must
    /// agree with the general JSON parser bit-for-bit, and must step
    /// aside (not misparse) on anything non-canonical.
    #[test]
    fn canonical_loc_fast_path_matches_general_parser() {
        let awkward = [
            sp(0.1 + 0.2, -1234.567891011, 42),
            sp(-1.5e-9, 2.0f64.powi(53), -7),
            // Note 1e300 would NOT round-trip: integral floats >= 1e15
            // render as bare digit runs, which the general parser reads
            // as (possibly overflowing) integers. Coordinates are
            // city-scale meters, so the wire format does not carry them.
            sp(1e-300, -1e-300, i64::MAX),
            sp(0.0, -0.0, 0),
        ];
        for (i, at) in awkward.into_iter().enumerate() {
            // Ids above i64::MAX saturate in Json::Int, so stay below it
            // (the round-trip test above makes the same choice).
            let env = RequestEnvelope::location(i as u64, UserId((u64::MAX >> 1) - i as u64), at);
            let line = env.to_wire();
            let fast = parse_canonical_loc(&line).expect("canonical line takes the fast path");
            // Force the general parser by inserting whitespace JSON
            // permits but the canonical form never contains.
            let spaced = line.replacen(':', ": ", 1);
            assert!(parse_canonical_loc(&spaced).is_none(), "{spaced}");
            let slow = parse_wire_msg(&spaced).unwrap();
            match (fast, slow) {
                (WireMsg::Env(a), WireMsg::Env(b)) => {
                    assert_eq!(a, b, "{line}");
                    assert_eq!(a, env, "{line}");
                }
                other => panic!("parsed {other:?}"),
            }
        }
        // Near-canonical frames the fast path must decline: the
        // general parser then accepts or rejects them on its own.
        for line in [
            r#"{"op":"loc","req":1,"t":3,"user":2,"x":1,"y":2,"zz":4}"#,
            r#"{"op":"loc","t":3,"req":1,"user":2,"x":1,"y":2}"#,
            r#"{"op":"loc","req":1,"t":3,"user":2,"x":+1,"y":2}"#,
            r#"{"op":"loc","req":1,"t":3,"user":2,"x":1.,"y":2}"#,
            r#"{"op":"loc","req":1,"t":3,"user":2,"x":.5,"y":2}"#,
            r#"{"op":"loc","req":1,"t":3,"user":2,"x":1e,"y":2}"#,
            r#"{"op":"loc","req":1,"t":3,"user":-2,"x":1,"y":2}"#,
            r#"{"op":"loc","req":1,"t":3,"user":2,"x":1,"y":2} "#,
        ] {
            assert!(parse_canonical_loc(line).is_none(), "{line}");
        }
        // Trailing newline is trimmed before the fast path sees it.
        let env = RequestEnvelope::location(5, UserId(6), sp(7.5, 8.25, 9));
        assert_eq!(
            parse_wire_msg(&format!("{}\n", env.to_wire())).unwrap(),
            WireMsg::Env(env)
        );
    }

    #[test]
    fn responses_round_trip() {
        let forwarded = ResponseEnvelope::from_result(
            9,
            77,
            &Ok(RequestOutcome::Forwarded(SpRequest::new(
                MsgId(1),
                Pseudonym(12),
                StBox::new(
                    Rect::from_bounds(0.0, 0.0, 100.0, 50.0),
                    TimeInterval::new(TimeSec(0), TimeSec(60)),
                ),
                ServiceId(2),
            ))),
            ServerMode::Normal,
            6,
        );
        assert_eq!(forwarded.outcome, WireOutcome::Forwarded);
        assert_eq!(forwarded.area, 5000.0);
        assert_eq!(forwarded.k_got, 6);
        let line = forwarded.to_wire();
        match parse_wire_reply(&line).unwrap() {
            WireReply::Resp(back) => assert_eq!(back, forwarded, "{line}"),
            other => panic!("parsed {other:?}"),
        }

        let suppressed = ResponseEnvelope::from_result(
            10,
            0,
            &Ok(RequestOutcome::Suppressed(SuppressReasonPub::MixZone)),
            ServerMode::Degraded,
            0,
        );
        assert_eq!(suppressed.detail, "mix_zone");
        let rejected = ResponseEnvelope::from_result(
            11,
            0,
            &Err(TsError::UnknownUser(UserId(5))),
            ServerMode::ReadOnly,
            0,
        );
        assert_eq!(rejected.detail, "unknown_user");
        for r in [suppressed, rejected] {
            let line = r.to_wire();
            match parse_wire_reply(&line).unwrap() {
                WireReply::Resp(back) => assert_eq!(back, r, "{line}"),
                other => panic!("parsed {other:?}"),
            }
        }
    }

    #[test]
    fn session_ops_round_trip() {
        assert_eq!(
            parse_wire_msg(r#"{"op":"bind","user":12}"#).unwrap(),
            WireMsg::Bind { user: UserId(12) }
        );
        assert_eq!(parse_wire_msg(r#"{"op":"drain"}"#).unwrap(), WireMsg::Drain);
        assert_eq!(
            parse_wire_msg(r#"{"op":"shutdown"}"#).unwrap(),
            WireMsg::Shutdown
        );
        for reply in [
            WireReply::Bound {
                user: UserId(12),
                pseudonym: Some(Pseudonym(99)),
                mode: ServerMode::Normal,
            },
            WireReply::Bound {
                user: UserId(13),
                pseudonym: None,
                mode: ServerMode::ReadOnly,
            },
            WireReply::Drained { pending: 0 },
            WireReply::Err {
                code: "bad_frame".to_string(),
                msg: "unterminated string".to_string(),
            },
            WireReply::Bye,
        ] {
            assert_eq!(parse_wire_reply(&reply.to_wire()).unwrap(), reply);
        }
    }

    #[test]
    fn malformed_frames_fail_closed() {
        for line in [
            "",
            "not json",
            "{}",
            r#"{"op":"warp"}"#,
            r#"{"op":"req","req":1}"#,
            r#"{"op":"req","req":1,"user":2,"service":1,"x":"a","y":0,"t":0}"#,
            r#"{"op":"loc","req":1,"user":-3,"x":0,"y":0,"t":0}"#,
            r#"{"op":"req","req":1,"user":2,"service":99999999999,"x":0,"y":0,"t":0}"#,
        ] {
            assert!(parse_wire_msg(line).is_err(), "{line:?} must not parse");
        }
    }
}
