//! The trusted server's event log and accounting.
//!
//! Every decision the TS takes is recorded so experiments can report the
//! Section-6.2 trade-off triangle — quality of service (generalization
//! sizes, clamps), degree of anonymity (HK-anonymity successes/failures)
//! and frequency of unlinking (pseudonym changes, service interruptions).

use hka_anonymity::Pseudonym;
use hka_geo::{StBox, TimeSec};
use hka_trajectory::UserId;

/// One logged TS decision.
#[derive(Debug, Clone, PartialEq)]
pub enum TsEvent {
    /// A request was forwarded to the provider.
    Forwarded {
        /// The issuing user.
        user: UserId,
        /// When it was issued.
        at: TimeSec,
        /// The forwarded context.
        context: StBox,
        /// Whether the request matched an LBQID element and was
        /// generalized by Algorithm 1 (`false` = exact context).
        generalized: bool,
        /// Algorithm 1's HK-anonymity flag (always `true` for exact,
        /// non-pattern requests).
        hk_ok: bool,
    },
    /// A request was suppressed (mix-zone cool-down or risk policy).
    Suppressed {
        /// The issuing user.
        user: UserId,
        /// When it was issued.
        at: TimeSec,
        /// Why.
        reason: SuppressReason,
    },
    /// The user's pseudonym was changed after a successful unlink.
    PseudonymChanged {
        /// The user.
        user: UserId,
        /// The retired pseudonym.
        old: Pseudonym,
        /// The fresh pseudonym.
        new: Pseudonym,
        /// When.
        at: TimeSec,
    },
    /// Generalization failed and unlinking was infeasible: the user is at
    /// risk and has been notified (Section 6.1 step 2).
    AtRisk {
        /// The user.
        user: UserId,
        /// When.
        at: TimeSec,
        /// Name of the LBQID concerned.
        lbqid: String,
    },
    /// A user's requests completed a full LBQID match (the pattern was
    /// released under a single pseudonym).
    LbqidMatched {
        /// The user.
        user: UserId,
        /// When the match completed.
        at: TimeSec,
        /// Name of the LBQID.
        lbqid: String,
    },
}

/// Why a request was suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuppressReason {
    /// The point lies inside an active (or static) mix-zone.
    MixZone,
    /// The risk policy chose suppression over forwarding an unprotected
    /// request.
    RiskPolicy,
}

/// Append-only event log with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<TsEvent>,
}

/// Aggregate counters derived from the log.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TsStats {
    /// Requests forwarded with exact contexts.
    pub forwarded_exact: usize,
    /// Requests forwarded generalized, HK-anonymity preserved.
    pub forwarded_hk_ok: usize,
    /// Requests forwarded generalized but clamped (HK-anonymity lost).
    pub forwarded_hk_failed: usize,
    /// Requests suppressed in mix-zones.
    pub suppressed_mixzone: usize,
    /// Requests suppressed by the risk policy.
    pub suppressed_risk: usize,
    /// Pseudonym changes (successful unlinks).
    pub pseudonym_changes: usize,
    /// At-risk notifications.
    pub at_risk: usize,
    /// Completed LBQID matches.
    pub lbqid_matches: usize,
    /// Sum of generalized areas (m²), for mean-QoS reporting.
    pub total_generalized_area: f64,
    /// Sum of generalized durations (s).
    pub total_generalized_duration: i64,
}

impl TsStats {
    /// All forwarded requests.
    pub fn forwarded(&self) -> usize {
        self.forwarded_exact + self.forwarded_hk_ok + self.forwarded_hk_failed
    }

    /// All generalized (pattern-matching) requests.
    pub fn generalized(&self) -> usize {
        self.forwarded_hk_ok + self.forwarded_hk_failed
    }

    /// Fraction of generalized requests that kept HK-anonymity.
    pub fn hk_success_rate(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            1.0
        } else {
            self.forwarded_hk_ok as f64 / g as f64
        }
    }

    /// Mean area of generalized contexts, m².
    pub fn mean_generalized_area(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.total_generalized_area / g as f64
        }
    }

    /// Mean duration of generalized contexts, seconds.
    pub fn mean_generalized_duration(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.total_generalized_duration as f64 / g as f64
        }
    }
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: TsEvent) {
        self.events.push(e);
    }

    /// All events in order.
    pub fn events(&self) -> &[TsEvent] {
        &self.events
    }

    /// Derives the aggregate counters.
    pub fn stats(&self) -> TsStats {
        let mut s = TsStats::default();
        for e in &self.events {
            match e {
                TsEvent::Forwarded {
                    generalized,
                    hk_ok,
                    context,
                    ..
                } => {
                    if !generalized {
                        s.forwarded_exact += 1;
                    } else {
                        if *hk_ok {
                            s.forwarded_hk_ok += 1;
                        } else {
                            s.forwarded_hk_failed += 1;
                        }
                        s.total_generalized_area += context.area();
                        s.total_generalized_duration += context.duration();
                    }
                }
                TsEvent::Suppressed { reason, .. } => match reason {
                    SuppressReason::MixZone => s.suppressed_mixzone += 1,
                    SuppressReason::RiskPolicy => s.suppressed_risk += 1,
                },
                TsEvent::PseudonymChanged { .. } => s.pseudonym_changes += 1,
                TsEvent::AtRisk { .. } => s.at_risk += 1,
                TsEvent::LbqidMatched { .. } => s.lbqid_matches += 1,
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{Point, Rect, StPoint, TimeInterval};

    fn ctx(side: f64, dur: i64) -> StBox {
        StBox::new(
            Rect::square(Point::new(0.0, 0.0), side),
            TimeInterval::new(TimeSec(0), TimeSec(dur)),
        )
    }

    #[test]
    fn stats_aggregate_correctly() {
        let mut log = EventLog::new();
        log.push(TsEvent::Forwarded {
            user: UserId(1),
            at: TimeSec(0),
            context: StBox::point(StPoint::xyt(0.0, 0.0, TimeSec(0))),
            generalized: false,
            hk_ok: true,
        });
        log.push(TsEvent::Forwarded {
            user: UserId(1),
            at: TimeSec(1),
            context: ctx(10.0, 60),
            generalized: true,
            hk_ok: true,
        });
        log.push(TsEvent::Forwarded {
            user: UserId(1),
            at: TimeSec(2),
            context: ctx(20.0, 120),
            generalized: true,
            hk_ok: false,
        });
        log.push(TsEvent::Suppressed {
            user: UserId(2),
            at: TimeSec(3),
            reason: SuppressReason::MixZone,
        });
        log.push(TsEvent::PseudonymChanged {
            user: UserId(2),
            old: Pseudonym(1),
            new: Pseudonym(2),
            at: TimeSec(4),
        });
        log.push(TsEvent::AtRisk {
            user: UserId(3),
            at: TimeSec(5),
            lbqid: "commute".into(),
        });
        let s = log.stats();
        assert_eq!(s.forwarded(), 3);
        assert_eq!(s.forwarded_exact, 1);
        assert_eq!(s.generalized(), 2);
        assert_eq!(s.hk_success_rate(), 0.5);
        assert_eq!(s.mean_generalized_area(), (100.0 + 400.0) / 2.0);
        assert_eq!(s.mean_generalized_duration(), 90.0);
        assert_eq!(s.suppressed_mixzone, 1);
        assert_eq!(s.pseudonym_changes, 1);
        assert_eq!(s.at_risk, 1);
        assert_eq!(log.events().len(), 6);
    }

    #[test]
    fn empty_log_yields_neutral_stats() {
        let s = EventLog::new().stats();
        assert_eq!(s.forwarded(), 0);
        assert_eq!(s.hk_success_rate(), 1.0);
        assert_eq!(s.mean_generalized_area(), 0.0);
    }
}
