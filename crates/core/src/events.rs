//! The trusted server's event log and accounting.
//!
//! Every decision the TS takes is recorded so experiments can report the
//! Section-6.2 trade-off triangle — quality of service (generalization
//! sizes, clamps), degree of anonymity (HK-anonymity successes/failures)
//! and frequency of unlinking (pseudonym changes, service interruptions).
//!
//! The log is bounded: events live in a fixed-capacity ring buffer
//! (default [`EventLog::DEFAULT_CAPACITY`]) and statistics are folded in
//! incrementally at push time, so a server handling millions of requests
//! keeps exact totals while holding only the recent tail in memory. For
//! a complete, durable record, attach a hash-chained JSONL journal with
//! [`EventLog::attach_journal`] — every event is appended to the journal
//! before it enters the ring.

use crate::server::ServerMode;
use hka_anonymity::{Pseudonym, ServiceId};
use hka_geo::{StBox, TimeSec};
use hka_obs::{BoxedJournal, Json, RingBuffer};
use hka_trajectory::UserId;

/// One logged TS decision.
#[derive(Debug, Clone, PartialEq)]
pub enum TsEvent {
    /// A request was forwarded to the provider.
    Forwarded {
        /// The issuing user.
        user: UserId,
        /// When it was issued.
        at: TimeSec,
        /// The forwarded context.
        context: StBox,
        /// Whether the request matched an LBQID element and was
        /// generalized by Algorithm 1 (`false` = exact context).
        generalized: bool,
        /// Algorithm 1's HK-anonymity flag (always `true` for exact,
        /// non-pattern requests).
        hk_ok: bool,
        /// The service class the request was forwarded to.
        service: ServiceId,
        /// Anonymity target for this step after the k′ schedule
        /// (0 for exact, non-pattern forwards).
        k_req: usize,
        /// Size of the anonymity set Algorithm 1 achieved (0 for exact
        /// forwards).
        k_got: usize,
        /// Name of the matched LBQID (`None` for non-pattern forwards).
        lbqid: Option<String>,
    },
    /// A request was suppressed (mix-zone cool-down or risk policy).
    Suppressed {
        /// The issuing user.
        user: UserId,
        /// When it was issued.
        at: TimeSec,
        /// Why.
        reason: SuppressReason,
        /// The service class the suppressed request addressed.
        service: ServiceId,
    },
    /// The user's pseudonym was changed after a successful unlink.
    PseudonymChanged {
        /// The user.
        user: UserId,
        /// The retired pseudonym.
        old: Pseudonym,
        /// The fresh pseudonym.
        new: Pseudonym,
        /// When.
        at: TimeSec,
    },
    /// Generalization failed and unlinking was infeasible: the user is at
    /// risk and has been notified (Section 6.1 step 2).
    AtRisk {
        /// The user.
        user: UserId,
        /// When.
        at: TimeSec,
        /// Name of the LBQID concerned.
        lbqid: String,
    },
    /// A user's requests completed a full LBQID match (the pattern was
    /// released under a single pseudonym).
    LbqidMatched {
        /// The user.
        user: UserId,
        /// When the match completed.
        at: TimeSec,
        /// Name of the LBQID.
        lbqid: String,
    },
    /// The server's operating mode changed (journal health transition).
    ModeChanged {
        /// When the transition was observed.
        at: TimeSec,
        /// The mode left behind.
        from: ServerMode,
        /// The mode entered.
        to: ServerMode,
    },
    /// A service-level objective crossed its threshold (SLO watchdog).
    SloBreach {
        /// When the breach was observed (simulated time).
        at: TimeSec,
        /// Objective name (`latency_p99`, `suppression_rate`,
        /// `flush_lag`, `mode_residency`).
        slo: String,
        /// The observed value that crossed the threshold.
        value: f64,
        /// The configured threshold.
        threshold: f64,
        /// Trace id of the worst-latency request in the window (0 when
        /// unknown), so an operator can jump from the breach to a trace.
        worst_trace: u64,
        /// That request's latency, microseconds.
        worst_us: u64,
    },
    /// A previously-breached objective dropped back under its threshold.
    SloRecovered {
        /// When the recovery was observed (simulated time).
        at: TimeSec,
        /// Objective name.
        slo: String,
        /// The observed value at recovery.
        value: f64,
        /// The configured threshold.
        threshold: f64,
    },
    /// Gateway liveness snapshot (connection/drain/queue counters),
    /// journaled by a network frontend when stats emission is enabled.
    /// Telemetry only — never a TS decision — so the audit timeline
    /// ignores it (unknown kinds are tolerated, not violations).
    GwStats {
        /// When the snapshot was taken (simulated time).
        at: TimeSec,
        /// Connections currently open on the gateway.
        conns: u64,
        /// Service-loop drain cycles completed so far.
        drains: u64,
        /// Inflight-queue depth at snapshot time.
        queue_depth: u64,
    },
}

impl TsEvent {
    /// Converts an SLO watchdog transition into its journal event,
    /// stamped with the simulated time `at`. Breaches and recoveries
    /// are async-class: they describe internal telemetry, never an
    /// externally-visible decision.
    pub fn from_slo(ev: &hka_obs::SloEvent, at: TimeSec) -> TsEvent {
        if ev.breached {
            TsEvent::SloBreach {
                at,
                slo: ev.slo.to_string(),
                value: ev.value,
                threshold: ev.threshold,
                worst_trace: ev.worst_trace,
                worst_us: ev.worst_us,
            }
        } else {
            TsEvent::SloRecovered {
                at,
                slo: ev.slo.to_string(),
                value: ev.value,
                threshold: ev.threshold,
            }
        }
    }

    /// Whether this event is **sync-class** under the flush contract
    /// (DESIGN.md §12): its journal record must reach the OS before the
    /// effect it describes becomes externally visible, so the sink
    /// flushes immediately after appending it. Sync-class events are
    /// the ones with effects outside the TS — a forwarded request the
    /// provider sees ([`TsEvent::Forwarded`]), a pseudonym the network
    /// starts using ([`TsEvent::PseudonymChanged`]), a notification
    /// delivered to the user ([`TsEvent::AtRisk`]). Async-class events
    /// (suppressions, pattern matches, mode transitions) describe
    /// internal state and may sit in the write buffer until the next
    /// sync flush; a live audit tail sees them at most one buffer
    /// flush later, which is safe because none of them make a decision
    /// visible outside the server.
    pub fn sync_flush(&self) -> bool {
        matches!(
            self,
            TsEvent::Forwarded { .. } | TsEvent::PseudonymChanged { .. } | TsEvent::AtRisk { .. }
        )
    }

    /// The journal `kind` tag for this event.
    pub fn kind(&self) -> &'static str {
        match self {
            TsEvent::Forwarded { .. } => "ts.forwarded",
            TsEvent::Suppressed { .. } => "ts.suppressed",
            TsEvent::PseudonymChanged { .. } => "ts.pseudonym_changed",
            TsEvent::AtRisk { .. } => "ts.at_risk",
            TsEvent::LbqidMatched { .. } => "ts.lbqid_matched",
            TsEvent::ModeChanged { .. } => "ts.mode_changed",
            TsEvent::SloBreach { .. } => "ts.slo_breach",
            TsEvent::SloRecovered { .. } => "ts.slo_recovered",
            TsEvent::GwStats { .. } => "gw.stats",
        }
    }

    /// The journal payload for this event (schema v1; field names are
    /// part of the on-disk format — change only with a version bump).
    pub fn payload(&self) -> Json {
        match self {
            TsEvent::Forwarded {
                user,
                at,
                context,
                generalized,
                hk_ok,
                service,
                k_req,
                k_got,
                lbqid,
            } => Json::obj([
                ("user", Json::from(user.0)),
                ("at", Json::Int(at.0)),
                ("x_min", Json::Num(context.rect.min().x)),
                ("y_min", Json::Num(context.rect.min().y)),
                ("x_max", Json::Num(context.rect.max().x)),
                ("y_max", Json::Num(context.rect.max().y)),
                ("t_start", Json::Int(context.span.start().0)),
                ("t_end", Json::Int(context.span.end().0)),
                ("generalized", Json::Bool(*generalized)),
                ("hk_ok", Json::Bool(*hk_ok)),
                ("service", Json::from(u64::from(service.0))),
                ("k_req", Json::from(*k_req as u64)),
                ("k_got", Json::from(*k_got as u64)),
                (
                    "lbqid",
                    match lbqid {
                        Some(name) => Json::from(name.as_str()),
                        None => Json::Null,
                    },
                ),
            ]),
            TsEvent::Suppressed {
                user,
                at,
                reason,
                service,
            } => Json::obj([
                ("user", Json::from(user.0)),
                ("at", Json::Int(at.0)),
                (
                    "reason",
                    Json::from(match reason {
                        SuppressReason::MixZone => "mix_zone",
                        SuppressReason::RiskPolicy => "risk_policy",
                        SuppressReason::Degraded => "degraded",
                    }),
                ),
                ("service", Json::from(u64::from(service.0))),
            ]),
            TsEvent::PseudonymChanged { user, old, new, at } => Json::obj([
                ("user", Json::from(user.0)),
                ("old", Json::from(old.0)),
                ("new", Json::from(new.0)),
                ("at", Json::Int(at.0)),
            ]),
            TsEvent::AtRisk { user, at, lbqid } => Json::obj([
                ("user", Json::from(user.0)),
                ("at", Json::Int(at.0)),
                ("lbqid", Json::from(lbqid.as_str())),
            ]),
            TsEvent::LbqidMatched { user, at, lbqid } => Json::obj([
                ("user", Json::from(user.0)),
                ("at", Json::Int(at.0)),
                ("lbqid", Json::from(lbqid.as_str())),
            ]),
            TsEvent::ModeChanged { at, from, to } => Json::obj([
                ("at", Json::Int(at.0)),
                ("from", Json::from(from.as_str())),
                ("to", Json::from(to.as_str())),
            ]),
            TsEvent::SloBreach {
                at,
                slo,
                value,
                threshold,
                worst_trace,
                worst_us,
            } => Json::obj([
                ("at", Json::Int(at.0)),
                ("slo", Json::from(slo.as_str())),
                ("value", Json::Num(*value)),
                ("threshold", Json::Num(*threshold)),
                ("worst_trace", Json::from(*worst_trace)),
                ("worst_us", Json::from(*worst_us)),
            ]),
            TsEvent::SloRecovered {
                at,
                slo,
                value,
                threshold,
            } => Json::obj([
                ("at", Json::Int(at.0)),
                ("slo", Json::from(slo.as_str())),
                ("value", Json::Num(*value)),
                ("threshold", Json::Num(*threshold)),
            ]),
            TsEvent::GwStats {
                at,
                conns,
                drains,
                queue_depth,
            } => Json::obj([
                ("at", Json::Int(at.0)),
                ("conns", Json::from(*conns)),
                ("drains", Json::from(*drains)),
                ("queue_depth", Json::from(*queue_depth)),
            ]),
        }
    }
}

/// Why a request was suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuppressReason {
    /// The point lies inside an active (or static) mix-zone.
    MixZone,
    /// The risk policy chose suppression over forwarding an unprotected
    /// request.
    RiskPolicy,
    /// The fail-closed invariant: a fault or degraded server mode made
    /// it impossible to guarantee the request's protection, so it was
    /// suppressed rather than forwarded.
    Degraded,
}

/// Bounded event log with exact running statistics and an optional
/// journal sink.
#[derive(Debug)]
pub struct EventLog {
    ring: RingBuffer<TsEvent>,
    stats: TsStats,
    journal: Option<JournalSink>,
}

/// How [`EventLog::push`] responds to journal write failures.
///
/// All budgets are measured in *events*, not wall-clock time: the TS is
/// driven by simulated request timestamps, so deterministic backoff has
/// to count what actually flows through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Immediate attempts per event (first try included). Minimum 1.
    pub attempts: u32,
    /// Consecutive failed events after which the sink is declared down
    /// for good (the server goes read-only).
    pub max_failures: u32,
    /// After the `n`-th consecutive failed event, skip
    /// `backoff_base << n` events before trying the sink again
    /// (exponential backoff in event counts).
    pub backoff_base: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 2,
            max_failures: 4,
            backoff_base: 1,
        }
    }
}

/// Observable state of the journal sink, driving the server's
/// degraded-mode transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalHealth {
    /// No journal attached (in-memory only; counts as healthy).
    Detached,
    /// The last write landed.
    Healthy,
    /// Recent writes failed; the sink is in retry backoff.
    Retrying {
        /// Consecutive events whose writes exhausted all attempts.
        failures: u32,
    },
    /// The retry budget is spent; the sink is abandoned until a new
    /// journal is attached.
    Down,
}

/// Wraps the boxed journal with retry/backoff bookkeeping (and keeps a
/// useful `Debug` impl — a `Box<dyn Write>` has none).
struct JournalSink {
    journal: BoxedJournal,
    policy: RetryPolicy,
    /// Consecutive events that exhausted every write attempt.
    failures: u32,
    /// Events still to skip before the next write attempt.
    skip: u64,
    /// Permanently abandoned (failures reached `policy.max_failures`).
    down: bool,
}

impl JournalSink {
    fn new(journal: BoxedJournal, policy: RetryPolicy) -> Self {
        JournalSink {
            journal,
            policy,
            failures: 0,
            skip: 0,
            down: false,
        }
    }

    fn health(&self) -> JournalHealth {
        if self.down {
            JournalHealth::Down
        } else if self.failures > 0 {
            JournalHealth::Retrying {
                failures: self.failures,
            }
        } else {
            JournalHealth::Healthy
        }
    }

    /// Writes one event, honouring the backoff and retry budgets. When
    /// `sync` is set (sync-class events, see [`TsEvent::sync_flush`])
    /// the sink flushes immediately after a successful append, pushing
    /// the record past the write buffer before the event's external
    /// effect happens — the boundary a live audit tail relies on.
    fn write(&mut self, kind: &str, payload: &Json, sync: bool) {
        let metrics = hka_obs::global();
        if self.down {
            metrics.counter("ts.journal_skipped").incr();
            return;
        }
        if self.skip > 0 {
            self.skip -= 1;
            metrics.counter("ts.journal_skipped").incr();
            return;
        }
        let attempts = self.policy.attempts.max(1);
        for attempt in 0..attempts {
            if self.journal.append(kind, payload.clone()).is_ok() {
                if sync && self.journal.flush().is_err() {
                    // The record is in the chain — re-appending would
                    // duplicate it — so a failed flush escalates
                    // without retrying the write, exactly like the
                    // group-commit fsync path.
                    metrics.counter("ts.journal_errors").incr();
                    self.escalate();
                    return;
                }
                if sync {
                    metrics.counter("ts.journal_sync_flushes").incr();
                }
                if self.failures > 0 {
                    metrics.counter("ts.journal_recoveries").incr();
                }
                self.failures = 0;
                return;
            }
            metrics.counter("ts.journal_errors").incr();
            if attempt + 1 < attempts {
                metrics.counter("ts.journal_retries").incr();
            }
        }
        // Every attempt failed: escalate.
        self.escalate();
    }

    /// One more fully-failed event: spend the retry budget or back off.
    fn escalate(&mut self) {
        self.failures += 1;
        if self.failures >= self.policy.max_failures {
            self.down = true;
        } else {
            self.skip = self.policy.backoff_base << self.failures;
        }
    }
}

impl std::fmt::Debug for JournalSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalSink")
            .field("next_seq", &self.journal.next_seq())
            .field("health", &self.health())
            .finish()
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

impl Clone for EventLog {
    /// Clones events and statistics. The journal sink — an exclusive
    /// handle on an output stream — stays with the original; the clone
    /// starts un-journaled.
    fn clone(&self) -> Self {
        EventLog {
            ring: self.ring.clone(),
            stats: self.stats,
            journal: None,
        }
    }
}

/// Aggregate counters derived from the log.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TsStats {
    /// Requests forwarded with exact contexts.
    pub forwarded_exact: usize,
    /// Requests forwarded generalized, HK-anonymity preserved.
    pub forwarded_hk_ok: usize,
    /// Requests forwarded generalized but clamped (HK-anonymity lost).
    pub forwarded_hk_failed: usize,
    /// Requests suppressed in mix-zones.
    pub suppressed_mixzone: usize,
    /// Requests suppressed by the risk policy.
    pub suppressed_risk: usize,
    /// Requests suppressed by the fail-closed invariant (injected
    /// faults or degraded server modes).
    pub suppressed_degraded: usize,
    /// Server mode transitions.
    pub mode_changes: usize,
    /// Pseudonym changes (successful unlinks).
    pub pseudonym_changes: usize,
    /// At-risk notifications.
    pub at_risk: usize,
    /// Completed LBQID matches.
    pub lbqid_matches: usize,
    /// Sum of generalized areas (m²), for mean-QoS reporting.
    pub total_generalized_area: f64,
    /// Sum of generalized durations (s).
    pub total_generalized_duration: i64,
}

impl TsStats {
    /// All forwarded requests.
    pub fn forwarded(&self) -> usize {
        self.forwarded_exact + self.forwarded_hk_ok + self.forwarded_hk_failed
    }

    /// All generalized (pattern-matching) requests.
    pub fn generalized(&self) -> usize {
        self.forwarded_hk_ok + self.forwarded_hk_failed
    }

    /// Fraction of generalized requests that kept HK-anonymity.
    /// 0.0 when nothing was generalized: an empty log demonstrates no
    /// successes, and reporting code must not read it as a perfect run.
    pub fn hk_success_rate(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.forwarded_hk_ok as f64 / g as f64
        }
    }

    /// Mean area of generalized contexts, m². 0.0 when nothing was
    /// generalized.
    pub fn mean_generalized_area(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.total_generalized_area / g as f64
        }
    }

    /// Mean duration of generalized contexts, seconds. 0.0 when nothing
    /// was generalized.
    pub fn mean_generalized_duration(&self) -> f64 {
        let g = self.generalized();
        if g == 0 {
            0.0
        } else {
            self.total_generalized_duration as f64 / g as f64
        }
    }

    fn absorb(&mut self, e: &TsEvent) {
        match e {
            TsEvent::Forwarded {
                generalized,
                hk_ok,
                context,
                ..
            } => {
                if !generalized {
                    self.forwarded_exact += 1;
                } else {
                    if *hk_ok {
                        self.forwarded_hk_ok += 1;
                    } else {
                        self.forwarded_hk_failed += 1;
                    }
                    self.total_generalized_area += context.area();
                    self.total_generalized_duration += context.duration();
                }
            }
            TsEvent::Suppressed { reason, .. } => match reason {
                SuppressReason::MixZone => self.suppressed_mixzone += 1,
                SuppressReason::RiskPolicy => self.suppressed_risk += 1,
                SuppressReason::Degraded => self.suppressed_degraded += 1,
            },
            TsEvent::PseudonymChanged { .. } => self.pseudonym_changes += 1,
            TsEvent::AtRisk { .. } => self.at_risk += 1,
            TsEvent::LbqidMatched { .. } => self.lbqid_matches += 1,
            TsEvent::ModeChanged { .. } => self.mode_changes += 1,
            // SLO transitions and gateway snapshots are telemetry, not
            // TS decisions: keeping them out of TsStats leaves the
            // checkpoint stats section's format (and restore fidelity)
            // untouched.
            TsEvent::SloBreach { .. } | TsEvent::SloRecovered { .. } | TsEvent::GwStats { .. } => {}
        }
    }
}

impl EventLog {
    /// Default in-memory capacity: enough for any single experiment day
    /// while bounding a long-lived server's footprint.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// An empty log with the default capacity.
    pub fn new() -> Self {
        EventLog::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty log retaining at most `capacity` events in memory.
    /// Statistics stay exact past the capacity; only the event bodies of
    /// the oldest entries are evicted (to the journal, if attached).
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            ring: RingBuffer::new(capacity),
            stats: TsStats::default(),
            journal: None,
        }
    }

    /// Routes every subsequent event into `journal` (before it enters
    /// the ring), giving a complete hash-chained record on disk even
    /// after in-memory eviction. Returns the previous sink, if any.
    /// Retry bookkeeping starts fresh (default [`RetryPolicy`]).
    pub fn attach_journal(&mut self, journal: BoxedJournal) -> Option<BoxedJournal> {
        self.attach_journal_with(journal, RetryPolicy::default())
    }

    /// Like [`EventLog::attach_journal`] with an explicit retry policy.
    pub fn attach_journal_with(
        &mut self,
        journal: BoxedJournal,
        policy: RetryPolicy,
    ) -> Option<BoxedJournal> {
        self.journal
            .replace(JournalSink::new(journal, policy))
            .map(|j| j.journal)
    }

    /// Detaches and returns the journal sink.
    pub fn take_journal(&mut self) -> Option<BoxedJournal> {
        self.journal.take().map(|j| j.journal)
    }

    /// Current health of the journal sink.
    pub fn journal_health(&self) -> JournalHealth {
        match &self.journal {
            None => JournalHealth::Detached,
            Some(sink) => sink.health(),
        }
    }

    /// Flushes the attached journal, if any.
    pub fn flush_journal(&mut self) -> std::io::Result<()> {
        match &mut self.journal {
            Some(sink) => sink.journal.flush(),
            None => Ok(()),
        }
    }

    /// Appends an event: folds it into the running statistics, writes it
    /// to the journal (if attached), then stores it in the ring.
    ///
    /// Journal write failures never panic the server. Each event gets up
    /// to [`RetryPolicy::attempts`] immediate write attempts
    /// (`ts.journal_errors` / `ts.journal_retries` counters); after a
    /// fully-failed event the sink backs off exponentially in event
    /// counts (`ts.journal_skipped`), and after
    /// [`RetryPolicy::max_failures`] consecutive failed events it is
    /// declared [`JournalHealth::Down`] until a new journal is attached.
    /// The in-memory ring and statistics always stay current.
    ///
    /// Sync-class events ([`TsEvent::sync_flush`]) are flushed through
    /// the write buffer as part of the append, so their records are
    /// visible to a concurrent audit tail before the effects they
    /// describe leave the server.
    pub fn push(&mut self, e: TsEvent) {
        self.stats.absorb(&e);
        if let Some(sink) = &mut self.journal {
            sink.write(e.kind(), &e.payload(), e.sync_flush());
        }
        self.ring.push(e);
    }

    /// The retained events, oldest first. When more than the capacity
    /// have been pushed this is the most recent tail (see
    /// [`EventLog::dropped`]); `stats()` still covers everything.
    pub fn events(&self) -> impl ExactSizeIterator<Item = &TsEvent> + Clone {
        self.ring.iter()
    }

    /// Events evicted from memory so far.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// The exact aggregate counters over every event ever pushed.
    pub fn stats(&self) -> TsStats {
        self.stats
    }

    /// Replaces the aggregate counters wholesale. Checkpoint restore
    /// only: the counters come from the snapshot's `stats` section; the
    /// in-memory ring is deliberately not restored (it is a debugging
    /// tail, not durable state).
    pub fn restore_stats(&mut self, stats: TsStats) {
        self.stats = stats;
    }

    /// The attached sink's chain position: `(next_seq, head)` — how many
    /// records the journal holds and the hash of the last one. `None`
    /// when no journal is attached.
    pub fn journal_position(&self) -> Option<(u64, String)> {
        self.journal
            .as_ref()
            .map(|s| (s.journal.next_seq(), s.journal.head().to_string()))
    }

    /// Appends a record directly to the attached journal and flushes it,
    /// bypassing the ring, the statistics, and the retry bookkeeping.
    ///
    /// Checkpoint anchors use this: they are chain metadata, not server
    /// events, so a failed append is surfaced to the caller (which
    /// aborts the checkpoint and leaves the journal exactly as it was)
    /// instead of escalating the sink's health ladder. Errors when no
    /// journal is attached or the sink is already [`JournalHealth::Down`].
    pub fn append_direct(&mut self, kind: &str, payload: Json) -> std::io::Result<u64> {
        let not_connected =
            |msg: &str| std::io::Error::new(std::io::ErrorKind::NotConnected, msg.to_string());
        let Some(sink) = &mut self.journal else {
            return Err(not_connected("no journal attached"));
        };
        if sink.down {
            return Err(not_connected("journal sink is down"));
        }
        let seq = sink.journal.append(kind, payload)?;
        sink.journal.flush()?;
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{Point, Rect, StPoint, TimeInterval};

    fn ctx(side: f64, dur: i64) -> StBox {
        StBox::new(
            Rect::square(Point::new(0.0, 0.0), side),
            TimeInterval::new(TimeSec(0), TimeSec(dur)),
        )
    }

    fn forwarded(n: i64) -> TsEvent {
        TsEvent::Forwarded {
            user: UserId(1),
            at: TimeSec(n),
            context: StBox::point(StPoint::xyt(0.0, 0.0, TimeSec(n))),
            generalized: false,
            hk_ok: true,
            service: ServiceId(1),
            k_req: 0,
            k_got: 0,
            lbqid: None,
        }
    }

    #[test]
    fn stats_aggregate_correctly() {
        let mut log = EventLog::new();
        log.push(TsEvent::Forwarded {
            user: UserId(1),
            at: TimeSec(0),
            context: StBox::point(StPoint::xyt(0.0, 0.0, TimeSec(0))),
            generalized: false,
            hk_ok: true,
            service: ServiceId(1),
            k_req: 0,
            k_got: 0,
            lbqid: None,
        });
        log.push(TsEvent::Forwarded {
            user: UserId(1),
            at: TimeSec(1),
            context: ctx(10.0, 60),
            generalized: true,
            hk_ok: true,
            service: ServiceId(1),
            k_req: 5,
            k_got: 5,
            lbqid: Some("commute".into()),
        });
        log.push(TsEvent::Forwarded {
            user: UserId(1),
            at: TimeSec(2),
            context: ctx(20.0, 120),
            generalized: true,
            hk_ok: false,
            service: ServiceId(1),
            k_req: 5,
            k_got: 3,
            lbqid: Some("commute".into()),
        });
        log.push(TsEvent::Suppressed {
            user: UserId(2),
            at: TimeSec(3),
            reason: SuppressReason::MixZone,
            service: ServiceId(1),
        });
        log.push(TsEvent::PseudonymChanged {
            user: UserId(2),
            old: Pseudonym(1),
            new: Pseudonym(2),
            at: TimeSec(4),
        });
        log.push(TsEvent::AtRisk {
            user: UserId(3),
            at: TimeSec(5),
            lbqid: "commute".into(),
        });
        let s = log.stats();
        assert_eq!(s.forwarded(), 3);
        assert_eq!(s.forwarded_exact, 1);
        assert_eq!(s.generalized(), 2);
        assert_eq!(s.hk_success_rate(), 0.5);
        assert_eq!(s.mean_generalized_area(), (100.0 + 400.0) / 2.0);
        assert_eq!(s.mean_generalized_duration(), 90.0);
        assert_eq!(s.suppressed_mixzone, 1);
        assert_eq!(s.pseudonym_changes, 1);
        assert_eq!(s.at_risk, 1);
        assert_eq!(log.events().len(), 6);
    }

    #[test]
    fn empty_log_yields_zero_rates() {
        let s = EventLog::new().stats();
        assert_eq!(s.forwarded(), 0);
        // An empty log proves nothing: every ratio is 0, not a vacuous
        // 100% success.
        assert_eq!(s.hk_success_rate(), 0.0);
        assert_eq!(s.mean_generalized_area(), 0.0);
        assert_eq!(s.mean_generalized_duration(), 0.0);
    }

    #[test]
    fn ratio_methods_never_divide_by_zero() {
        // Events that forward nothing generalized must keep every ratio
        // finite and zero.
        let mut log = EventLog::new();
        log.push(forwarded(0));
        log.push(TsEvent::Suppressed {
            user: UserId(9),
            at: TimeSec(1),
            reason: SuppressReason::RiskPolicy,
            service: ServiceId(1),
        });
        let s = log.stats();
        assert_eq!(s.generalized(), 0);
        assert!(s.hk_success_rate().is_finite());
        assert_eq!(s.hk_success_rate(), 0.0);
        assert_eq!(s.mean_generalized_area(), 0.0);
        assert_eq!(s.mean_generalized_duration(), 0.0);
    }

    #[test]
    fn ring_eviction_keeps_stats_exact() {
        let mut log = EventLog::with_capacity(4);
        for i in 0..10 {
            log.push(forwarded(i));
        }
        assert_eq!(log.events().len(), 4);
        assert_eq!(log.dropped(), 6);
        // Stats cover all ten events, not just the retained tail.
        assert_eq!(log.stats().forwarded_exact, 10);
        // The tail is the most recent four, oldest first.
        let ats: Vec<i64> = log
            .events()
            .map(|e| match e {
                TsEvent::Forwarded { at, .. } => at.0,
                _ => unreachable!("only Forwarded events were pushed"),
            })
            .collect();
        assert_eq!(ats, vec![6, 7, 8, 9]);
    }

    #[test]
    fn journal_sink_receives_all_events_including_evicted() {
        use std::sync::{Arc, Mutex};

        /// A Write that appends into a shared buffer we can inspect.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                // Recover the guard even if another writer panicked
                // mid-append: a poisoned buffer must not cascade into
                // every later flush.
                self.0
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buffer = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut log = EventLog::with_capacity(2);
        log.attach_journal(hka_obs::Journal::new(
            Box::new(buffer.clone()) as Box<dyn std::io::Write + Send + Sync>
        ));
        for i in 0..5 {
            log.push(forwarded(i));
        }
        log.flush_journal().unwrap();

        let bytes = buffer.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let report = hka_obs::verify_chain(&bytes[..]).expect("chain verifies");
        // All five events journaled even though only two stayed in memory.
        assert_eq!(report.records.len(), 5);
        assert_eq!(log.events().len(), 2);
        assert!(report.records.iter().all(|r| r.kind == "ts.forwarded"));
    }

    #[test]
    fn clone_drops_journal_but_keeps_stats() {
        let mut log = EventLog::new();
        log.attach_journal(hka_obs::Journal::new(
            Box::new(std::io::sink()) as Box<dyn std::io::Write + Send + Sync>
        ));
        log.push(forwarded(0));
        let copy = log.clone();
        assert_eq!(copy.stats(), log.stats());
        assert_eq!(copy.events().len(), 1);
        assert!(log.take_journal().is_some());
    }

    /// A sink whose first `fail` writes error, then all succeed.
    struct FailN {
        left: u32,
    }
    impl std::io::Write for FailN {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.left > 0 {
                self.left -= 1;
                Err(std::io::Error::other("transient"))
            } else {
                Ok(buf.len())
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn boxed(w: impl std::io::Write + Send + Sync + 'static) -> hka_obs::BoxedJournal {
        hka_obs::Journal::new(Box::new(w) as Box<dyn std::io::Write + Send + Sync>)
    }

    #[test]
    fn journal_sink_retries_then_goes_down() {
        let mut log = EventLog::new();
        log.attach_journal_with(
            boxed(FailN { left: u32::MAX }),
            RetryPolicy {
                attempts: 2,
                max_failures: 3,
                backoff_base: 1,
            },
        );
        assert_eq!(log.journal_health(), JournalHealth::Healthy);
        log.push(forwarded(0));
        assert_eq!(
            log.journal_health(),
            JournalHealth::Retrying { failures: 1 }
        );
        // Drive through every backoff window until the budget is spent.
        for i in 1..64 {
            log.push(forwarded(i));
        }
        assert_eq!(log.journal_health(), JournalHealth::Down);
        // The ring and statistics never lost an event.
        assert_eq!(log.stats().forwarded_exact, 64);
        // A fresh sink restores health.
        log.attach_journal(boxed(std::io::sink()));
        assert_eq!(log.journal_health(), JournalHealth::Healthy);
    }

    #[test]
    fn in_event_retry_masks_a_single_write_failure() {
        let mut log = EventLog::new();
        // One failed write; the second attempt for the same event lands.
        log.attach_journal_with(boxed(FailN { left: 1 }), RetryPolicy::default());
        log.push(forwarded(0));
        assert_eq!(log.journal_health(), JournalHealth::Healthy);
    }

    #[test]
    fn journal_sink_recovers_after_transient_outage() {
        let mut log = EventLog::new();
        // Both attempts of the first event fail; later events succeed.
        log.attach_journal_with(
            boxed(FailN { left: 2 }),
            RetryPolicy {
                attempts: 2,
                max_failures: 4,
                backoff_base: 1,
            },
        );
        log.push(forwarded(0));
        assert_eq!(
            log.journal_health(),
            JournalHealth::Retrying { failures: 1 }
        );
        // Two events fall into the backoff window (skip = 1 << 1)…
        log.push(forwarded(1));
        log.push(forwarded(2));
        assert_eq!(
            log.journal_health(),
            JournalHealth::Retrying { failures: 1 }
        );
        // …then the next write attempt succeeds and health recovers.
        log.push(forwarded(3));
        assert_eq!(log.journal_health(), JournalHealth::Healthy);
        assert_eq!(log.stats().forwarded_exact, 4);
    }

    #[test]
    fn detached_log_reports_detached_health() {
        assert_eq!(EventLog::new().journal_health(), JournalHealth::Detached);
    }

    #[test]
    fn sync_class_events_flush_through_the_write_buffer() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut log = EventLog::new();
        log.attach_journal(boxed(std::io::BufWriter::with_capacity(
            1 << 20,
            shared.clone(),
        )));

        // Async-class: sits in the buffer, invisible downstream.
        log.push(TsEvent::Suppressed {
            user: UserId(1),
            at: TimeSec(0),
            reason: SuppressReason::MixZone,
            service: ServiceId(1),
        });
        assert!(
            shared
                .0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty(),
            "async-class events may buffer"
        );

        // Sync-class: the flush pushes *everything buffered so far*
        // through — the tail sees both records, in order.
        log.push(forwarded(1));
        let bytes = shared.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let report = hka_obs::verify_chain(&bytes[..]).expect("chain verifies");
        let kinds: Vec<&str> = report.records.iter().map(|r| r.kind.as_str()).collect();
        assert_eq!(kinds, vec!["ts.suppressed", "ts.forwarded"]);
    }

    #[test]
    fn sync_flush_failure_escalates_without_reappending() {
        use std::sync::{Arc, Mutex};

        /// Writes land; every flush fails.
        #[derive(Clone)]
        struct FlushFail(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for FlushFail {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("injected flush failure"))
            }
        }

        let shared = FlushFail(Arc::new(Mutex::new(Vec::new())));
        let mut log = EventLog::new();
        log.attach_journal(boxed(shared.clone()));
        log.push(forwarded(0)); // sync-class
        assert_eq!(
            log.journal_health(),
            JournalHealth::Retrying { failures: 1 }
        );
        // The record chained exactly once: a failed flush must not be
        // answered with a duplicate append.
        let bytes = shared.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let report = hka_obs::verify_chain(&bytes[..]).expect("chain intact");
        assert_eq!(report.records.len(), 1);
    }

    #[test]
    fn event_payloads_name_their_kind() {
        let events = [
            forwarded(0),
            TsEvent::Suppressed {
                user: UserId(1),
                at: TimeSec(0),
                reason: SuppressReason::MixZone,
                service: ServiceId(1),
            },
            TsEvent::PseudonymChanged {
                user: UserId(1),
                old: Pseudonym(1),
                new: Pseudonym(2),
                at: TimeSec(0),
            },
            TsEvent::AtRisk {
                user: UserId(1),
                at: TimeSec(0),
                lbqid: "l".into(),
            },
            TsEvent::LbqidMatched {
                user: UserId(1),
                at: TimeSec(0),
                lbqid: "l".into(),
            },
        ];
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "ts.forwarded",
                "ts.suppressed",
                "ts.pseudonym_changed",
                "ts.at_risk",
                "ts.lbqid_matched"
            ]
        );
        for e in &events {
            // Every payload is an object naming the user.
            assert!(e.payload().get("user").is_some());
        }
        // Forwarded payloads carry the audit fields, with a null lbqid
        // for non-pattern forwards.
        let fwd = forwarded(0).payload();
        assert_eq!(fwd.get("service").and_then(|j| j.as_int()), Some(1));
        assert_eq!(fwd.get("k_req").and_then(|j| j.as_int()), Some(0));
        assert_eq!(fwd.get("k_got").and_then(|j| j.as_int()), Some(0));
        assert_eq!(fwd.get("lbqid"), Some(&Json::Null));
        assert_eq!(
            events[1].payload().get("service").and_then(|j| j.as_int()),
            Some(1)
        );
        // ModeChanged is server-scoped (no user); it names both modes.
        let mc = TsEvent::ModeChanged {
            at: TimeSec(9),
            from: ServerMode::Normal,
            to: ServerMode::Degraded,
        };
        assert_eq!(mc.kind(), "ts.mode_changed");
        assert_eq!(
            mc.payload().get("from").and_then(|j| j.as_str()),
            Some("normal")
        );
        assert_eq!(
            mc.payload().get("to").and_then(|j| j.as_str()),
            Some("degraded")
        );
    }
}
