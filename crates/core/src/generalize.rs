//! Algorithm 1 — the spatio-temporal generalization algorithm
//! (Section 6.2), implemented exactly as listed in the paper.
//!
//! ```text
//! Input:  ⟨x,y,t⟩ of request r, k user-ids (if r matches the initial
//!         element of an LBQID) or a parameter k, tolerance constraints;
//! Output: ⟨Area, TimeInterval⟩, boolean HK-anonymity, k user-ids (…)
//!
//!  1: if k user-ids are given as part of the Input then
//!  2:     For each of the k user-ids, find the 3D point in its PHL
//!         closest to ⟨x,y,t⟩.
//!  3:     Compute ⟨Area,TimeInterval⟩ as the smallest 3D space
//!         containing these points
//!  4: else
//!  5:     Compute ⟨Area,TimeInterval⟩ as the smallest 3D space
//!         (2D area + time) containing ⟨x,y,t⟩ and crossed by k
//!         trajectories (each one for a different user)
//!  6:     Store the ids of the k users.
//!  7: end if
//!  8: if ⟨Area,TimeInterval⟩ satisfies the tolerance constraints then
//!  9:     HK-anonymity := True
//! 10: else
//! 11:     HK-anonymity := False
//! 12:     Area and TimeInterval are uniformly reduced to satisfy the
//!         tolerance constraints
//! 13: end if
//! ```
//!
//! Two faithful notes:
//!
//! * line 5's "smallest … crossed by k trajectories" is realized, as the
//!   paper itself proposes for the brute force, by "considering the
//!   nearest neighbor in the PHL of each user and then taking the closest
//!   k points" — both the O(k·n) scan and the grid-index variant produce
//!   the k per-user-nearest points and bound them;
//! * the output box always contains the true request point (the MBB is
//!   seeded with it; the shrink pivots on it), so the provider always
//!   receives a context consistent with the real request.

use crate::Tolerance;
use hka_geo::{SpaceTimeScale, StBox, StPoint};
use hka_trajectory::{brute, Phl, SpatialIndex, TrajectoryStore, UserId};

/// The result of one generalization step.
#[derive(Debug, Clone, PartialEq)]
pub struct Generalization {
    /// The generalized `⟨Area, TimeInterval⟩` forwarded to the provider.
    pub context: StBox,
    /// Algorithm 1's `HK-anonymity` output: `true` when the k-PHL bounding
    /// box satisfied the tolerance constraints (so the forwarded context
    /// still covers all k candidate histories), `false` when the box had
    /// to be clamped (coverage of the k PHLs is no longer guaranteed).
    pub hk_anonymity: bool,
    /// The user-ids whose PHL points defined the box. On the
    /// first-element branch these are "the ids of the k users" to store
    /// for the rest of the traversal; on the subsequent branch they echo
    /// the stored input ids that still had PHL points.
    pub selected: Vec<UserId>,
}

/// Lines 5–6 + 8–13: first-element branch, over any [`SpatialIndex`]
/// backend (grid, R-tree, or brute — all answer identically).
///
/// `requester` is excluded from the k selected users: the anonymity set
/// must contain k users *other than* the issuer so that, per Definition 8,
/// "there exist k−1 PHLs … for k−1 users different from U" even after the
/// provider discounts the issuer — and the issuer's own trajectory covers
/// the request trivially.
pub fn algorithm1_first(
    index: &(impl SpatialIndex + ?Sized),
    seed: &StPoint,
    requester: UserId,
    k: usize,
    tolerance: &Tolerance,
) -> Generalization {
    let _span = hka_obs::span("algo1.generalize");
    let picks = index.k_nearest_users(seed, k, Some(requester));
    hka_obs::global()
        .counter("algo1.iterations")
        .add(picks.len() as u64);
    finish(seed, picks, k, tolerance)
}

/// The same first-element branch by exhaustive scan (the paper's O(k·n)
/// brute force) — used for differential testing and experiment T3.
pub fn algorithm1_first_brute(
    store: &TrajectoryStore,
    seed: &StPoint,
    requester: UserId,
    k: usize,
    tolerance: &Tolerance,
    scale: &SpaceTimeScale,
) -> Generalization {
    let picks = brute::k_nearest_users(store, seed, k, Some(requester), scale);
    finish(seed, picks, k, tolerance)
}

/// Lines 2–3 + 8–13: subsequent-element branch. "The computation … is
/// quite simple, considering that it is restricted to the traces of k
/// users, and that this number is usually much smaller than the total
/// number of users."
///
/// `k` may be smaller than `stored_users.len()`: this implements the
/// Section-6.2 k′-decreasing schedule — "starting with a larger k′ and
/// decreasing its value at each point in the trace, until k is reached" —
/// by keeping only the `k` stored users whose PHLs stay closest to the new
/// request point. Because the kept set is always a subset of the stored
/// one, the sets shrink monotonically along a trace and the survivors are
/// covered by *every* box issued so far.
pub fn algorithm1_subsequent(
    store: &TrajectoryStore,
    seed: &StPoint,
    stored_users: &[UserId],
    k: usize,
    tolerance: &Tolerance,
    scale: &SpaceTimeScale,
) -> Generalization {
    algorithm1_subsequent_from(|u| store.phl(u), seed, stored_users, k, tolerance, scale)
}

/// [`algorithm1_subsequent`] over any PHL lookup, so callers that hold
/// per-user state in something other than one [`TrajectoryStore`] (a
/// sharded server, a composite of partitions) can drive the identical
/// selection. Behaviour and bookkeeping match the store-backed entry
/// point exactly.
///
/// Distances are ordered with [`f64::total_cmp`]: a degenerate PHL point
/// (non-finite coordinates producing a NaN score) sorts after every real
/// candidate instead of panicking the comparator.
pub fn algorithm1_subsequent_from<'p>(
    phl_of: impl Fn(UserId) -> Option<&'p Phl>,
    seed: &StPoint,
    stored_users: &[UserId],
    k: usize,
    tolerance: &Tolerance,
    scale: &SpaceTimeScale,
) -> Generalization {
    let _span = hka_obs::span("algo1.generalize");
    let mut picks: Vec<(UserId, f64, StPoint)> = stored_users
        .iter()
        .filter_map(|u| {
            phl_of(*u)
                .and_then(|phl| phl.nearest_point(seed, scale))
                .map(|p| (*u, scale.dist_sq(seed, &p), p))
        })
        .collect();
    picks.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    picks.truncate(k);
    hka_obs::global()
        .counter("algo1.iterations")
        .add(picks.len() as u64);
    finish(
        seed,
        picks.into_iter().map(|(u, _, p)| (u, p)).collect(),
        k,
        tolerance,
    )
}

/// Lines 5–6 + 8–13 of the first-element branch, starting from an
/// already-computed candidate list (each entry a user and its
/// per-user-nearest PHL point, ordered by distance-then-id, at most `k`
/// of them). This is the bounding + tolerance tail of
/// [`algorithm1_first`] exposed so that callers which merge candidates
/// from several index partitions can finish the algorithm identically.
pub fn algorithm1_first_from(
    seed: &StPoint,
    picks: Vec<(UserId, StPoint)>,
    k: usize,
    tolerance: &Tolerance,
) -> Generalization {
    let _span = hka_obs::span("algo1.generalize");
    hka_obs::global()
        .counter("algo1.iterations")
        .add(picks.len() as u64);
    finish(seed, picks, k, tolerance)
}

/// Lines 3/5 (bounding) + 8–13 (tolerance check and uniform reduction).
fn finish(
    seed: &StPoint,
    picks: Vec<(UserId, StPoint)>,
    k: usize,
    tolerance: &Tolerance,
) -> Generalization {
    let mut context = StBox::point(*seed);
    for (_, p) in &picks {
        context = context.expand_to(p);
    }
    let selected: Vec<UserId> = picks.into_iter().map(|(u, _)| u).collect();
    // HK-anonymity requires both: k distinct co-located users were found,
    // and the bounding box fits the service's tolerance.
    let enough = selected.len() >= k;
    if enough && tolerance.accepts(&context) {
        Generalization {
            context,
            hk_anonymity: true,
            selected,
        }
    } else {
        let clamped = context.shrink_around(seed, tolerance.max_area, tolerance.max_duration);
        Generalization {
            context: clamped,
            hk_anonymity: false,
            selected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{TimeSec, MINUTE};
    use hka_trajectory::{GridIndex, GridIndexConfig};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    /// Requester 0 at the origin; users 1..=5 in a tight cluster nearby;
    /// user 6 far away.
    fn setup() -> (TrajectoryStore, GridIndex) {
        let mut store = TrajectoryStore::new();
        store.record(UserId(0), sp(0.0, 0.0, 0));
        for u in 1..=5u64 {
            store.record(UserId(u), sp(10.0 * u as f64, 5.0, 10 * u as i64));
        }
        store.record(UserId(6), sp(5_000.0, 5_000.0, 9_000));
        let index = GridIndex::build(
            &store,
            GridIndexConfig {
                cell_size: 50.0,
                cell_duration: 60,
                scale: SpaceTimeScale::new(1.0),
            },
        );
        (store, index)
    }

    fn loose() -> Tolerance {
        Tolerance::new(1e9, 86_400)
    }

    #[test]
    fn first_branch_selects_k_nearest_and_bounds_them() {
        let (_, index) = setup();
        let seed = sp(0.0, 0.0, 0);
        let g = algorithm1_first(&index, &seed, UserId(0), 3, &loose());
        assert!(g.hk_anonymity);
        assert_eq!(g.selected, vec![UserId(1), UserId(2), UserId(3)]);
        assert!(g.context.contains(&seed));
        assert!(g.context.contains(&sp(30.0, 5.0, 30)));
        assert!(!g.context.contains(&sp(5_000.0, 5_000.0, 9_000)));
    }

    #[test]
    fn brute_and_index_agree() {
        let (store, index) = setup();
        let seed = sp(12.0, 3.0, 17);
        let scale = SpaceTimeScale::new(1.0);
        for k in 1..=6 {
            let a = algorithm1_first(&index, &seed, UserId(0), k, &loose());
            let b = algorithm1_first_brute(&store, &seed, UserId(0), k, &loose(), &scale);
            assert_eq!(a.context, b.context, "k={k}");
            assert_eq!(a.hk_anonymity, b.hk_anonymity, "k={k}");
            assert_eq!(a.selected, b.selected, "k={k}");
        }
    }

    #[test]
    fn tolerance_violation_clamps_and_reports_false() {
        let (_, index) = setup();
        let seed = sp(0.0, 0.0, 0);
        // Forcing k=6 pulls in the user 5 km away: enormous box.
        let tight = Tolerance::new(10_000.0, 10 * MINUTE);
        let g = algorithm1_first(&index, &seed, UserId(0), 6, &tight);
        assert!(!g.hk_anonymity);
        assert!(tight.accepts(&g.context), "context must be clamped");
        assert!(g.context.contains(&seed), "true point must stay covered");
    }

    #[test]
    fn scarcity_reports_false() {
        let (_, index) = setup();
        let seed = sp(0.0, 0.0, 0);
        let g = algorithm1_first(&index, &seed, UserId(0), 60, &loose());
        assert!(!g.hk_anonymity, "only 6 other users exist");
        assert_eq!(g.selected.len(), 6);
    }

    #[test]
    fn subsequent_branch_uses_stored_users() {
        let (store, _) = setup();
        let seed = sp(100.0, 0.0, 200);
        let scale = SpaceTimeScale::new(1.0);
        let stored = vec![UserId(1), UserId(2), UserId(3)];
        let g = algorithm1_subsequent(&store, &seed, &stored, 3, &loose(), &scale);
        assert!(g.hk_anonymity);
        // Selected users are the stored set, re-ordered by distance to
        // the new seed (user 3 is nearest to x = 100).
        let mut selected = g.selected.clone();
        selected.sort();
        assert_eq!(selected, stored);
        // The box bounds each stored user's nearest point.
        for u in 1..=3u64 {
            assert!(g.context.contains(&sp(10.0 * u as f64, 5.0, 10 * u as i64)));
        }
        assert!(g.context.contains(&seed));
    }

    #[test]
    fn subsequent_branch_with_vanished_user() {
        let (store, _) = setup();
        let seed = sp(0.0, 0.0, 0);
        let scale = SpaceTimeScale::new(1.0);
        // User 99 has no PHL: fewer than the requested ids survive.
        let stored = vec![UserId(1), UserId(99)];
        let g = algorithm1_subsequent(&store, &seed, &stored, 2, &loose(), &scale);
        assert!(!g.hk_anonymity);
        assert_eq!(g.selected, vec![UserId(1)]);
    }

    #[test]
    fn k_zero_degenerates_to_exact_context() {
        let (_, index) = setup();
        let seed = sp(3.0, 4.0, 5);
        let g = algorithm1_first(&index, &seed, UserId(0), 0, &loose());
        assert_eq!(g.context, StBox::point(seed));
        assert!(g.hk_anonymity, "k = 0 is vacuously satisfied");
        assert!(g.selected.is_empty());
    }

    #[test]
    fn subsequent_branch_survives_nan_scoring_candidate() {
        // A PHL point with non-finite coordinates makes dist_sq NaN.
        // The old partial_cmp(..).unwrap() comparator panicked here;
        // total_cmp must instead order the NaN candidate after every
        // finite one and keep the run alive.
        let mut store = TrajectoryStore::new();
        store.record(UserId(1), sp(10.0, 5.0, 10));
        store.record(UserId(2), sp(f64::NAN, f64::NAN, 20));
        store.record(UserId(3), sp(30.0, 5.0, 30));
        let seed = sp(0.0, 0.0, 0);
        let scale = SpaceTimeScale::new(1.0);
        let stored = vec![UserId(1), UserId(2), UserId(3)];
        let g = algorithm1_subsequent(&store, &seed, &stored, 2, &loose(), &scale);
        // The two finite candidates win; the NaN one sorts last and is
        // truncated away.
        assert_eq!(g.selected, vec![UserId(1), UserId(3)]);
        // Even when k is large enough to keep the NaN candidate, the
        // sort must not panic and the finite users must come first.
        let g = algorithm1_subsequent(&store, &seed, &stored, 3, &loose(), &scale);
        assert_eq!(g.selected, vec![UserId(1), UserId(3), UserId(2)]);
    }

    #[test]
    fn first_from_matches_first_branch() {
        let (_, index) = setup();
        let seed = sp(0.0, 0.0, 0);
        for k in 0..=6 {
            let whole = algorithm1_first(&index, &seed, UserId(0), k, &loose());
            let picks = index.k_nearest_users(&seed, k, Some(UserId(0)));
            let from = algorithm1_first_from(&seed, picks, k, &loose());
            assert_eq!(whole, from, "k={k}");
        }
    }

    #[test]
    fn subsequent_from_matches_store_backed_entry_point() {
        let (store, _) = setup();
        let seed = sp(100.0, 0.0, 200);
        let scale = SpaceTimeScale::new(1.0);
        let stored = vec![UserId(1), UserId(2), UserId(3), UserId(99)];
        for k in 0..=4 {
            let a = algorithm1_subsequent(&store, &seed, &stored, k, &loose(), &scale);
            let b =
                algorithm1_subsequent_from(|u| store.phl(u), &seed, &stored, k, &loose(), &scale);
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn clamped_context_never_exceeds_tolerance() {
        let (_, index) = setup();
        let tight = Tolerance::new(1.0, 1);
        for k in 0..=6 {
            let g = algorithm1_first(&index, &sp(1.0, 1.0, 1), UserId(0), k, &tight);
            assert!(tight.accepts(&g.context), "k={k}");
        }
    }
}
