//! # hka-core
//!
//! The paper's contribution: a **Trusted Server (TS)** that preserves
//! *historical k-anonymity* for location-based service users.
//!
//! The crate implements the full Section-3/6 machinery:
//!
//! * the service model (Fig. 1): users send exact positions and requests to
//!   the TS; providers receive `(msgid, UserPseudonym, Area, TimeInterval,
//!   Data)` tuples with generalized contexts;
//! * privacy profiles ([`PrivacyLevel`]) — "users can turn on and off a
//!   privacy protecting system which has a simplified user interface with
//!   qualitative degrees of concern: low, medium, high", translated by the
//!   TS into concrete parameters (k, Θ, the k′ schedule);
//! * per-service **tolerance constraints** ([`Tolerance`]) — "the coarsest
//!   spatial and temporal granularity for the service to still be useful";
//! * **Algorithm 1** ([`algorithm1_first`]/[`algorithm1_subsequent`]) — spatio-temporal generalization
//!   against the k closest PHLs, with the tolerance check and
//!   uniform-shrink fallback, over either the grid index or brute force;
//! * the Section-6.1 **strategy** ([`TrustedServer`]) — monitor LBQIDs,
//!   generalize matching requests, unlink (change pseudonym at a mix-zone)
//!   when generalization fails, notify the user at risk when unlinking
//!   fails too;
//! * **mix-zones** ([`MixZoneManager`]) — static zones plus the paper's
//!   proposed on-demand zones built from k diverging trajectories;
//! * the SP-side **adversary** ([`adversary`]) — pseudonym/tracker linkage
//!   plus the Section-1 "phone book" home-lookup attack, used to measure
//!   re-identification empirically;
//! * **deployability analysis** ([`planning`]) — the paper's purpose (b):
//!   "evaluate if the privacy policies that a location-based service
//!   guarantees are sufficient to deploy the service in a certain area";
//! * **crash-safe checkpoints** ([`checkpoint`]) — atomic snapshots of the
//!   TS state anchored into the journal's hash chain, enabling
//!   snapshot + journal-suffix recovery and prefix truncation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod checkpoint;
pub mod derivation;
mod envelope;
mod events;
mod generalize;
mod mixzone;
pub mod planning;
mod policy;
mod randomize;
mod server;
mod service;
mod shared;
pub mod strategy;

pub use envelope::{
    parse_wire_msg, parse_wire_reply, EnvelopeBody, RequestEnvelope, ResponseEnvelope, WireError,
    WireMsg, WireOutcome, WireReply,
};
pub use service::RequestService;

pub use checkpoint::{
    CheckpointReceipt, Checkpointer, RecoveredCheckpoint, ServerMeta, SkippedCheckpoints, UserMeta,
};
pub use events::{EventLog, JournalHealth, RetryPolicy, SuppressReason, TsEvent, TsStats};
pub use generalize::{
    algorithm1_first, algorithm1_first_brute, algorithm1_first_from, algorithm1_subsequent,
    algorithm1_subsequent_from, Generalization,
};
pub use mixzone::{MixZoneConfig, MixZoneManager, UnlinkDecision};
pub use policy::{PrivacyLevel, PrivacyParams, RiskAction, Tolerance};
pub use randomize::{RandomizeConfig, Randomizer};
pub use server::{
    PrivacyIndicator, RequestOutcome, ServerMode, SuppressReasonPub, TrustedServer, TsConfig,
    TsError,
};
pub use shared::SharedTrustedServer;
pub use strategy::{Disclosure, Ingest, PatternState, RequestHost, UserState};
