//! Mix-zones and the unlinking action (Sections 2 and 6.3).
//!
//! A mix-zone (Beresford–Stajano, paper refs. \[1,2\]) is "a spatial area
//! such that, if an individual crosses it, then it won't be possible to
//! link his future positions (outside the area) with known positions
//! (before entering the area)". The paper proposes, beyond static zones,
//! "defining mix-zones **on-demand**, for example temporarily disabling
//! the use of the service for a number of users in the same area for the
//! time sufficient to confuse the SP. Technically, we may define the
//! problem as that of finding, given a specific point in space, k
//! diverging trajectories (each one for a different user) that are
//! sufficiently close to the point."
//!
//! [`MixZoneManager`] implements both: a set of static zones, and an
//! on-demand search that looks for k users near the requested point whose
//! *current movement directions* pairwise diverge by at least a threshold
//! angle (the online proxy for "once out of the mix-zone, \[they\] will
//! take very different trajectories" — the TS cannot observe the future).
//! A successful unlink suppresses service inside the zone for a cool-down
//! period, then the user emerges under a fresh pseudonym.

use hka_geo::{angular_separation, Point, Rect, StBox, StPoint, TimeInterval, TimeSec};
use hka_trajectory::{Phl, TrajectoryStore, UserId};

/// Parameters of the on-demand mix-zone search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixZoneConfig {
    /// Radius (meters) around the point in which candidate users are
    /// sought.
    pub radius: f64,
    /// How far back (seconds) a candidate's last observation may lie.
    pub lookback: i64,
    /// Minimum pairwise angular separation (radians) between candidate
    /// headings for the set to count as "diverging".
    pub min_divergence: f64,
    /// How long (seconds) service stays disabled inside an activated
    /// zone — "the time sufficient to confuse the SP".
    pub cooldown: i64,
}

impl Default for MixZoneConfig {
    fn default() -> Self {
        MixZoneConfig {
            radius: 300.0,
            lookback: 600,
            min_divergence: std::f64::consts::PI / 4.0, // 45°
            cooldown: 900,
        }
    }
}

/// The outcome of an unlink attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum UnlinkDecision {
    /// A zone was activated around the point; the listed users (including
    /// the requester) are mixed and service is suppressed inside until the
    /// recorded expiry.
    Unlinked {
        /// Users crossing the zone whose headings diverge.
        mixed_with: Vec<UserId>,
        /// The activated zone.
        zone: Rect,
        /// Suppression lasts until this instant.
        until: TimeSec,
    },
    /// No k diverging trajectories were available near the point.
    Infeasible {
        /// How many diverging co-located users were found (< k).
        available: usize,
    },
}

/// An active suppression area.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ActiveZone {
    rect: Rect,
    until: TimeSec,
}

/// Static and on-demand mix-zone bookkeeping for the trusted server.
#[derive(Debug, Clone)]
pub struct MixZoneManager {
    config: MixZoneConfig,
    static_zones: Vec<Rect>,
    active: Vec<ActiveZone>,
}

impl MixZoneManager {
    /// Creates a manager with no static zones.
    pub fn new(config: MixZoneConfig) -> Self {
        MixZoneManager {
            config,
            static_zones: Vec::new(),
            active: Vec::new(),
        }
    }

    /// Registers a static mix-zone ("natural locations where no service is
    /// available to anybody").
    pub fn add_static_zone(&mut self, zone: Rect) {
        self.static_zones.push(zone);
    }

    /// The registered static zones, in registration order (checkpoint
    /// snapshots persist these; active on-demand zones are transient
    /// cool-downs and are not serialized).
    pub fn static_zones(&self) -> &[Rect] {
        &self.static_zones
    }

    /// The configured parameters.
    pub fn config(&self) -> &MixZoneConfig {
        &self.config
    }

    /// Whether service is currently unavailable at `p` — inside a static
    /// zone, or inside an on-demand zone that has not cooled down yet.
    pub fn suppressed_at(&mut self, p: &StPoint) -> bool {
        self.active.retain(|z| z.until >= p.t);
        self.static_zones.iter().any(|z| z.contains(&p.pos))
            || self.active.iter().any(|z| z.rect.contains(&p.pos))
    }

    /// Whether `p` lies in a *static* zone (crossing one is a natural
    /// unlinking opportunity even without activation).
    pub fn in_static_zone(&self, p: &Point) -> bool {
        self.static_zones.iter().any(|z| z.contains(p))
    }

    /// Attempts to establish an on-demand mix-zone around `at` for
    /// `requester`: finds users with a recent observation within `radius`
    /// of the point and selects a subset (including the requester) of at
    /// least `k` users whose current headings pairwise diverge by at least
    /// `min_divergence`.
    ///
    /// On success the zone is activated: service is suppressed inside it
    /// until `at.t + cooldown`, and the caller should change the
    /// requester's pseudonym.
    pub fn try_unlink(
        &mut self,
        store: &TrajectoryStore,
        requester: UserId,
        at: &StPoint,
        k: usize,
    ) -> UnlinkDecision {
        self.try_unlink_over(store.iter(), requester, at, k)
    }

    /// [`MixZoneManager::try_unlink`] over any `(user, PHL)` iteration,
    /// so callers whose PHLs live in several partitions (the sharded
    /// server) can drive the identical search. The iteration order must
    /// be ascending by user id — the greedy heading selection is
    /// order-sensitive, and [`TrajectoryStore::iter`] (which the
    /// store-backed entry point uses) yields users in that order.
    pub fn try_unlink_over<'p>(
        &mut self,
        phls: impl IntoIterator<Item = (UserId, &'p Phl)>,
        requester: UserId,
        at: &StPoint,
        k: usize,
    ) -> UnlinkDecision {
        let mut span = hka_obs::span("mixzone.try_unlink");
        span.attr("k", hka_obs::Json::from(k as u64));
        let cfg = self.config;
        let window = TimeInterval::new(at.t - cfg.lookback, at.t);
        let zone = Rect::square(at.pos, cfg.radius * 2.0);
        let probe = StBox::new(zone, window);

        // Candidate users near the point, with their current heading
        // (bearing between their last two observations in the window).
        let mut candidates: Vec<(UserId, f64)> = Vec::new();
        for (user, phl) in phls {
            if user == requester {
                continue;
            }
            let recent = phl.in_interval(&window);
            let inside: Vec<&StPoint> = recent
                .iter()
                .filter(|p| probe.rect.contains(&p.pos))
                .collect();
            if inside.len() < 2 {
                continue;
            }
            let a = inside[inside.len() - 2];
            let b = inside[inside.len() - 1];
            if a.pos == b.pos {
                continue; // stationary: no usable heading
            }
            candidates.push((user, a.pos.bearing_to(&b.pos)));
        }

        // Greedy selection of pairwise-diverging headings.
        let mut chosen: Vec<(UserId, f64)> = Vec::new();
        for (user, heading) in candidates {
            if chosen
                .iter()
                .all(|(_, h)| angular_separation(*h, heading) >= cfg.min_divergence)
            {
                chosen.push((user, heading));
            }
        }

        // The requester is one of the mixed users; k−1 diverging others
        // suffice for a crowd of k.
        span.attr("crowd", hka_obs::Json::from((chosen.len() + 1) as u64));
        if chosen.len() + 1 >= k.max(2) {
            hka_obs::global().counter("mixzone.unlinked").incr();
            let until = at.t + cfg.cooldown;
            self.active.push(ActiveZone { rect: zone, until });
            let mut mixed: Vec<UserId> = chosen.into_iter().map(|(u, _)| u).collect();
            mixed.push(requester);
            mixed.sort();
            UnlinkDecision::Unlinked {
                mixed_with: mixed,
                zone,
                until,
            }
        } else {
            hka_obs::global().counter("mixzone.infeasible").incr();
            UnlinkDecision::Infeasible {
                available: chosen.len(),
            }
        }
    }

    /// Number of currently active on-demand zones (after expiry at `now`).
    pub fn active_zones(&mut self, now: TimeSec) -> usize {
        self.active.retain(|z| z.until >= now);
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    /// Users walking through the origin in different directions.
    fn crossing_store(headings: &[(u64, f64)]) -> TrajectoryStore {
        let mut store = TrajectoryStore::new();
        for (u, angle) in headings {
            // Two observations approaching the origin from -angle side.
            let dir = Point::new(angle.cos(), angle.sin());
            store.record(UserId(*u), sp(-60.0 * dir.x, -60.0 * dir.y, 900));
            store.record(UserId(*u), sp(-10.0 * dir.x, -10.0 * dir.y, 960));
        }
        store
    }

    #[test]
    fn unlink_succeeds_with_diverging_crowd() {
        use std::f64::consts::FRAC_PI_2;
        let store = crossing_store(&[(1, 0.0), (2, FRAC_PI_2), (3, 2.0 * FRAC_PI_2)]);
        let mut mz = MixZoneManager::new(MixZoneConfig::default());
        let at = sp(0.0, 0.0, 1000);
        match mz.try_unlink(&store, UserId(9), &at, 3) {
            UnlinkDecision::Unlinked {
                mixed_with, until, ..
            } => {
                assert!(mixed_with.contains(&UserId(9)));
                assert!(mixed_with.len() >= 3);
                assert_eq!(until, TimeSec(1000 + 900));
            }
            other => panic!("expected unlink, got {other:?}"),
        }
        // The zone now suppresses service at the point.
        assert!(mz.suppressed_at(&sp(0.0, 0.0, 1100)));
        // …but expires after the cooldown.
        assert!(!mz.suppressed_at(&sp(0.0, 0.0, 2000)));
    }

    #[test]
    fn unlink_fails_when_everyone_moves_the_same_way() {
        // Three users all heading east: only one diverging heading class.
        let store = crossing_store(&[(1, 0.0), (2, 0.01), (3, -0.01)]);
        let mut mz = MixZoneManager::new(MixZoneConfig::default());
        let at = sp(0.0, 0.0, 1000);
        match mz.try_unlink(&store, UserId(9), &at, 3) {
            UnlinkDecision::Infeasible { available } => assert_eq!(available, 1),
            other => panic!("expected infeasible, got {other:?}"),
        }
        assert_eq!(mz.active_zones(TimeSec(1000)), 0);
    }

    #[test]
    fn unlink_fails_with_nobody_around() {
        let store = TrajectoryStore::new();
        let mut mz = MixZoneManager::new(MixZoneConfig::default());
        let d = mz.try_unlink(&store, UserId(1), &sp(0.0, 0.0, 100), 2);
        assert_eq!(d, UnlinkDecision::Infeasible { available: 0 });
    }

    #[test]
    fn stale_or_distant_users_are_not_candidates() {
        use std::f64::consts::FRAC_PI_2;
        let mut store = crossing_store(&[(1, 0.0), (2, FRAC_PI_2)]);
        // User 3 crossed an hour ago; user 4 is far away.
        store.record(UserId(3), sp(-60.0, 0.0, -3000));
        store.record(UserId(3), sp(-10.0, 0.0, -2940));
        store.record(UserId(4), sp(5_000.0, 5_000.0, 900));
        store.record(UserId(4), sp(5_010.0, 5_000.0, 960));
        let mut mz = MixZoneManager::new(MixZoneConfig::default());
        match mz.try_unlink(&store, UserId(9), &sp(0.0, 0.0, 1000), 4) {
            UnlinkDecision::Infeasible { available } => assert_eq!(available, 2),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn static_zones_suppress_service() {
        let mut mz = MixZoneManager::new(MixZoneConfig::default());
        mz.add_static_zone(Rect::from_bounds(0.0, 0.0, 100.0, 100.0));
        assert!(mz.suppressed_at(&sp(50.0, 50.0, 0)));
        assert!(!mz.suppressed_at(&sp(500.0, 50.0, 0)));
        assert!(mz.in_static_zone(&Point::new(1.0, 1.0)));
        assert!(!mz.in_static_zone(&Point::new(-1.0, 1.0)));
    }

    #[test]
    fn stationary_users_have_no_heading() {
        let mut store = TrajectoryStore::new();
        for u in 1..=3u64 {
            store.record(UserId(u), sp(10.0, 10.0, 900));
            store.record(UserId(u), sp(10.0, 10.0, 960));
        }
        let mut mz = MixZoneManager::new(MixZoneConfig::default());
        let d = mz.try_unlink(&store, UserId(9), &sp(0.0, 0.0, 1000), 2);
        assert_eq!(d, UnlinkDecision::Infeasible { available: 0 });
    }
}
