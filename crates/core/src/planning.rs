//! Deployability analysis — the paper's purpose (b).
//!
//! "We believe that the formal framework … can be used … (b) to evaluate
//! if the privacy policies that a location-based service guarantees are
//! sufficient to deploy the service in a certain area. This may be
//! achieved by considering, for example, the typical density of users,
//! their movement patterns, their concerns about privacy, as well as the
//! spatio-temporal tolerance constraints of the service and the presence
//! of natural mix-zones in the area."
//!
//! [`evaluate_deployment`] samples request opportunities from the
//! recorded movement data of a district and measures, for a given k and
//! service tolerance, how often Algorithm 1 would succeed, how large the
//! offered contexts would be, and how often an on-demand unlink would be
//! available as a fallback — the numbers an operator needs before turning
//! a service on.

use crate::{algorithm1_first, MixZoneManager, Tolerance, UnlinkDecision};
use hka_geo::StPoint;
use hka_trajectory::{SpatialIndex, TrajectoryStore, UserId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of a deployability study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanningConfig {
    /// The anonymity level the deployed service must sustain.
    pub k: usize,
    /// The service's tolerance constraints.
    pub tolerance: Tolerance,
    /// How many request opportunities to sample.
    pub samples: usize,
    /// RNG seed for the sampling.
    pub seed: u64,
}

/// The operator-facing report.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// Fraction of sampled requests for which Algorithm 1 met the
    /// tolerance at level k.
    pub hk_success_rate: f64,
    /// Mean area (m²) of the successful generalized contexts.
    pub mean_area: f64,
    /// Mean duration (s) of the successful generalized contexts.
    pub mean_duration: f64,
    /// Fraction of *failed* generalizations for which an on-demand
    /// mix-zone (k diverging trajectories) was available as a fallback.
    pub unlink_fallback_rate: f64,
    /// Fraction of samples with no protection path at all (generalization
    /// failed and no unlink available) — the expected at-risk rate.
    pub at_risk_rate: f64,
    /// Number of samples actually evaluated.
    pub samples: usize,
}

impl DeploymentReport {
    /// A simple go/no-go: deployable when at most `max_at_risk` of
    /// requests would end up unprotected.
    pub fn deployable(&self, max_at_risk: f64) -> bool {
        self.at_risk_rate <= max_at_risk
    }
}

/// Runs the study: samples random recorded observations (a user at a
/// place at a time — exactly the situations in which a request could be
/// issued) and evaluates the protection machinery on each.
pub fn evaluate_deployment(
    store: &TrajectoryStore,
    index: &(impl SpatialIndex + ?Sized),
    mixzones: &MixZoneManager,
    cfg: &PlanningConfig,
) -> DeploymentReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let users: Vec<UserId> = store.users().collect();
    let mut mz = mixzones.clone();

    let mut evaluated = 0usize;
    let mut ok = 0usize;
    let mut area_sum = 0.0;
    let mut dur_sum = 0.0;
    let mut failed = 0usize;
    let mut fallback = 0usize;
    let mut at_risk = 0usize;

    if users.is_empty() || cfg.samples == 0 {
        return DeploymentReport {
            hk_success_rate: 0.0,
            mean_area: 0.0,
            mean_duration: 0.0,
            unlink_fallback_rate: 0.0,
            at_risk_rate: 0.0,
            samples: 0,
        };
    }

    for _ in 0..cfg.samples {
        let user = users[rng.random_range(0..users.len())];
        let phl = store.phl(user).expect("listed user");
        if phl.is_empty() {
            continue;
        }
        let seed_pt: StPoint = phl.points()[rng.random_range(0..phl.len())];
        evaluated += 1;
        let g = algorithm1_first(index, &seed_pt, user, cfg.k, &cfg.tolerance);
        if g.hk_anonymity {
            ok += 1;
            area_sum += g.context.area();
            dur_sum += g.context.duration() as f64;
        } else {
            failed += 1;
            match mz.try_unlink(store, user, &seed_pt, cfg.k) {
                UnlinkDecision::Unlinked { .. } => fallback += 1,
                UnlinkDecision::Infeasible { .. } => at_risk += 1,
            }
        }
    }

    DeploymentReport {
        hk_success_rate: if evaluated == 0 {
            0.0
        } else {
            ok as f64 / evaluated as f64
        },
        mean_area: if ok == 0 { 0.0 } else { area_sum / ok as f64 },
        mean_duration: if ok == 0 { 0.0 } else { dur_sum / ok as f64 },
        unlink_fallback_rate: if failed == 0 {
            0.0
        } else {
            fallback as f64 / failed as f64
        },
        at_risk_rate: if evaluated == 0 {
            0.0
        } else {
            at_risk as f64 / evaluated as f64
        },
        samples: evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MixZoneConfig;
    use hka_geo::{SpaceTimeScale, StPoint, TimeSec};
    use hka_trajectory::{GridIndex, GridIndexConfig};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn dense_store(n: u64) -> (TrajectoryStore, GridIndex) {
        let mut store = TrajectoryStore::new();
        for u in 0..n {
            for t in 0..20 {
                store.record(
                    UserId(u),
                    sp(
                        (u % 10) as f64 * 20.0,
                        (u / 10) as f64 * 20.0 + t as f64,
                        t * 60,
                    ),
                );
            }
        }
        let index = GridIndex::build(
            &store,
            GridIndexConfig {
                cell_size: 100.0,
                cell_duration: 300,
                scale: SpaceTimeScale::new(1.0),
            },
        );
        (store, index)
    }

    #[test]
    fn dense_district_is_deployable() {
        let (store, index) = dense_store(50);
        let mz = MixZoneManager::new(MixZoneConfig::default());
        let report = evaluate_deployment(
            &store,
            &index,
            &mz,
            &PlanningConfig {
                k: 5,
                tolerance: Tolerance::new(1e8, 86_400),
                samples: 100,
                seed: 1,
            },
        );
        assert_eq!(report.samples, 100);
        assert!(report.hk_success_rate > 0.95, "{report:?}");
        assert!(report.deployable(0.05));
    }

    #[test]
    fn empty_district_is_not() {
        let store = TrajectoryStore::new();
        let index = GridIndex::build(
            &store,
            GridIndexConfig {
                cell_size: 100.0,
                cell_duration: 300,
                scale: SpaceTimeScale::new(1.0),
            },
        );
        let mz = MixZoneManager::new(MixZoneConfig::default());
        let report = evaluate_deployment(
            &store,
            &index,
            &mz,
            &PlanningConfig {
                k: 5,
                tolerance: Tolerance::navigation(),
                samples: 10,
                seed: 1,
            },
        );
        assert_eq!(report.samples, 0);
    }

    #[test]
    fn stricter_tolerance_lowers_success() {
        let (store, index) = dense_store(30);
        let mz = MixZoneManager::new(MixZoneConfig::default());
        let loose = evaluate_deployment(
            &store,
            &index,
            &mz,
            &PlanningConfig {
                k: 10,
                tolerance: Tolerance::new(1e8, 86_400),
                samples: 200,
                seed: 2,
            },
        );
        let strict = evaluate_deployment(
            &store,
            &index,
            &mz,
            &PlanningConfig {
                k: 10,
                tolerance: Tolerance::new(100.0, 30),
                samples: 200,
                seed: 2,
            },
        );
        assert!(
            strict.hk_success_rate <= loose.hk_success_rate,
            "strict {strict:?} vs loose {loose:?}"
        );
    }

    #[test]
    fn higher_k_cannot_increase_success() {
        let (store, index) = dense_store(30);
        let mz = MixZoneManager::new(MixZoneConfig::default());
        let mk = |k| PlanningConfig {
            k,
            tolerance: Tolerance::new(50_000.0, 1_200),
            samples: 200,
            seed: 3,
        };
        let k2 = evaluate_deployment(&store, &index, &mz, &mk(2));
        let k20 = evaluate_deployment(&store, &index, &mz, &mk(20));
        assert!(k20.hk_success_rate <= k2.hk_success_rate);
    }
}
