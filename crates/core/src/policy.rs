//! Privacy profiles and service tolerance constraints.

use hka_geo::{Duration, StBox, MINUTE};

/// Per-service tolerance constraints: "the coarsest spatial and temporal
/// granularity for the service to still be useful" (Section 6.1). A
/// hospital-finder needs "a user location that is at most in the range of
/// a few square miles, and a time-window … of at most a few minutes"; a
/// localized-news service tolerates far coarser contexts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Largest acceptable area, m².
    pub max_area: f64,
    /// Longest acceptable time interval, seconds.
    pub max_duration: Duration,
}

impl Tolerance {
    /// Creates a tolerance; both bounds must be non-negative.
    pub fn new(max_area: f64, max_duration: Duration) -> Self {
        assert!(
            max_area >= 0.0 && max_duration >= 0,
            "tolerances must be ≥ 0"
        );
        Tolerance {
            max_area,
            max_duration,
        }
    }

    /// The paper's hospital-finder example: a couple of square miles,
    /// a few minutes (here 2 km × 2 km, 5 min).
    pub fn navigation() -> Self {
        Tolerance::new(4e6, 5 * MINUTE)
    }

    /// The paper's localized-news example: city-scale areas, hour-scale
    /// windows.
    pub fn news() -> Self {
        Tolerance::new(1e8, 60 * MINUTE)
    }

    /// Whether a generalized context satisfies the constraints
    /// (Algorithm 1 line 8).
    pub fn accepts(&self, b: &StBox) -> bool {
        b.area() <= self.max_area && b.duration() <= self.max_duration
    }
}

/// Concrete privacy parameters the TS enforces for one user.
///
/// `k` and `theta` are "the two main parameters defining a level of
/// privacy concern in our framework" (Section 5.3). `k_init` and
/// `k_decrement` realize the Section-6.2 suggestion: "we should probably
/// use an initial parameter k′ larger than k … starting with a larger k′
/// and decreasing its value at each point in the trace, until k is
/// reached, should increase the probability to maintain historical
/// k-anonymity for longer traces."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyParams {
    /// The anonymity level: at least k users must be able to have issued
    /// the request set.
    pub k: usize,
    /// Linkability likelihood Θ: requests linked below Θ are considered
    /// unlinkable.
    pub theta: f64,
    /// Initial k′ used when a traversal's first element is generalized
    /// (`k_init ≥ k`).
    pub k_init: usize,
    /// How much k′ drops at each subsequent element (floored at `k`).
    pub k_decrement: usize,
    /// What the TS does with a request it could not protect.
    pub on_risk: RiskAction,
}

impl PrivacyParams {
    /// A fixed-k profile (no k′ schedule) — the ablation baseline of
    /// experiment F3.
    pub fn fixed(k: usize, theta: f64) -> Self {
        PrivacyParams {
            k,
            theta,
            k_init: k,
            k_decrement: 0,
            on_risk: RiskAction::Forward,
        }
    }

    /// The k′ to use for the element at `step` (0-based) of a traversal.
    pub fn k_at_step(&self, step: usize) -> usize {
        self.k_init
            .saturating_sub(self.k_decrement.saturating_mul(step))
            .max(self.k)
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be ≥ 1".into());
        }
        if self.k_init < self.k {
            return Err(format!("k_init {} must be ≥ k {}", self.k_init, self.k));
        }
        if !(0.0..=1.0).contains(&self.theta) {
            return Err(format!("theta {} must be in [0,1]", self.theta));
        }
        Ok(())
    }
}

/// What the TS does when both generalization and unlinking fail: the
/// paper leaves the choice to the (notified) user — "refrain from sending
/// sensitive information, disrupt the service, or take other actions".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RiskAction {
    /// Forward the (tolerance-clamped) request anyway; the user was
    /// notified of the risk.
    Forward,
    /// Suppress the request (disrupt the service).
    Suppress,
}

/// The qualitative knob shown to users (Section 3): "a simplified user
/// interface with qualitative degrees of concern: low, medium, high",
/// which the TS translates into [`PrivacyParams`]. `Off` disables
/// protection (exact contexts, no monitoring) and `Custom` exposes the
/// full parameter space to expert users ("more expert users can have
/// access to more involved rule-based policy specifications").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrivacyLevel {
    /// No protection.
    Off,
    /// k = 2, permissive Θ.
    Low,
    /// k = 5, Θ = 0.5, mild k′ schedule.
    Medium,
    /// k = 10, strict Θ, aggressive k′ schedule, suppress on risk.
    High,
    /// Explicit parameters.
    Custom(PrivacyParams),
}

impl PrivacyLevel {
    /// The concrete parameters for this level, or `None` for `Off`.
    pub fn params(&self) -> Option<PrivacyParams> {
        match self {
            PrivacyLevel::Off => None,
            PrivacyLevel::Low => Some(PrivacyParams {
                k: 2,
                theta: 0.7,
                k_init: 3,
                k_decrement: 1,
                on_risk: RiskAction::Forward,
            }),
            PrivacyLevel::Medium => Some(PrivacyParams {
                k: 5,
                theta: 0.5,
                k_init: 8,
                k_decrement: 1,
                on_risk: RiskAction::Forward,
            }),
            PrivacyLevel::High => Some(PrivacyParams {
                k: 10,
                theta: 0.3,
                k_init: 16,
                k_decrement: 2,
                on_risk: RiskAction::Suppress,
            }),
            PrivacyLevel::Custom(p) => Some(*p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{Point, Rect, StPoint, TimeInterval, TimeSec};

    #[test]
    fn tolerance_accepts_boundary() {
        let t = Tolerance::new(100.0, 60);
        let ok = StBox::new(
            Rect::square(Point::new(0.0, 0.0), 10.0),
            TimeInterval::new(TimeSec(0), TimeSec(60)),
        );
        assert!(t.accepts(&ok));
        let too_big = StBox::new(
            Rect::square(Point::new(0.0, 0.0), 10.1),
            TimeInterval::new(TimeSec(0), TimeSec(60)),
        );
        assert!(!t.accepts(&too_big));
        let too_long = StBox::new(
            Rect::square(Point::new(0.0, 0.0), 10.0),
            TimeInterval::new(TimeSec(0), TimeSec(61)),
        );
        assert!(!t.accepts(&too_long));
        // Degenerate contexts always pass.
        assert!(Tolerance::new(0.0, 0).accepts(&StBox::point(StPoint::xyt(1.0, 2.0, TimeSec(3)))));
    }

    #[test]
    fn k_schedule_decreases_to_floor() {
        let p = PrivacyParams {
            k: 5,
            theta: 0.5,
            k_init: 12,
            k_decrement: 3,
            on_risk: RiskAction::Forward,
        };
        assert_eq!(p.k_at_step(0), 12);
        assert_eq!(p.k_at_step(1), 9);
        assert_eq!(p.k_at_step(2), 6);
        assert_eq!(p.k_at_step(3), 5); // floored at k
        assert_eq!(p.k_at_step(100), 5);
    }

    #[test]
    fn fixed_profile_has_flat_schedule() {
        let p = PrivacyParams::fixed(4, 0.5);
        for step in 0..10 {
            assert_eq!(p.k_at_step(step), 4);
        }
    }

    #[test]
    fn levels_translate_to_parameters() {
        assert!(PrivacyLevel::Off.params().is_none());
        let low = PrivacyLevel::Low.params().unwrap();
        let med = PrivacyLevel::Medium.params().unwrap();
        let high = PrivacyLevel::High.params().unwrap();
        assert!(low.k < med.k && med.k < high.k);
        assert!(low.theta > med.theta && med.theta > high.theta);
        assert_eq!(high.on_risk, RiskAction::Suppress);
        for p in [low, med, high] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(PrivacyParams::fixed(0, 0.5).validate().is_err());
        let bad_theta = PrivacyParams::fixed(2, 1.5);
        assert!(bad_theta.validate().is_err());
        let bad_init = PrivacyParams {
            k: 5,
            theta: 0.5,
            k_init: 2,
            k_decrement: 0,
            on_risk: RiskAction::Forward,
        };
        assert!(bad_init.validate().is_err());
    }
}
