//! Randomized generalization — the paper's defence against inference
//! attacks on the cloak geometry.
//!
//! Conclusions: "In addition, randomization should be used as part of the
//! TS strategy to prevent inference attacks."
//!
//! The attack it prevents: Algorithm 1 returns the **minimum** bounding
//! box of the k selected PHL points plus the requester's exact point.
//! Minimality leaks — every face of the box touches one of those points,
//! and over many requests an adversary can intersect boxes to pin users
//! to box corners and edges. [`Randomizer`] breaks the geometry in two
//! seeded, deterministic-per-request ways:
//!
//! * **expansion** — each face moves outward by an independent random
//!   fraction of the box extent, so faces no longer touch data points;
//! * **translation jitter** — the expanded box slides by a random offset
//!   (bounded so the true point always remains covered).
//!
//! Randomness is derived from a server secret and the request's message
//! number, so replaying the log reproduces the same boxes (important for
//! audits) while an adversary without the secret cannot predict offsets.
//! Tolerance constraints are re-applied after randomization; the true
//! request point is always still inside the emitted box.

use crate::Tolerance;
use hka_geo::{Duration, Rect, StBox, StPoint, TimeInterval};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Randomization parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomizeConfig {
    /// Server secret seeding the per-request randomness.
    pub secret: u64,
    /// Maximum per-face outward expansion, as a fraction of the box's
    /// extent along that axis (e.g. `0.3` grows each face by up to 30 %).
    pub max_expand: f64,
    /// Maximum translation, as a fraction of the (expanded) slack — `1.0`
    /// allows sliding until the true point touches a face.
    pub max_shift: f64,
    /// Minimum extents granted to degenerate boxes before expansion, so
    /// exact single-point contexts also get cover (meters, seconds).
    pub min_extent: (f64, Duration),
}

impl Default for RandomizeConfig {
    fn default() -> Self {
        RandomizeConfig {
            secret: 0x5eed_5eed,
            max_expand: 0.3,
            max_shift: 0.8,
            min_extent: (50.0, 60),
        }
    }
}

/// Deterministic, secret-keyed cloak randomizer.
#[derive(Debug, Clone)]
pub struct Randomizer {
    config: RandomizeConfig,
}

impl Randomizer {
    /// Creates a randomizer.
    pub fn new(config: RandomizeConfig) -> Self {
        assert!(
            (0.0..=10.0).contains(&config.max_expand),
            "max_expand out of range"
        );
        assert!(
            (0.0..=1.0).contains(&config.max_shift),
            "max_shift must be in [0,1]"
        );
        Randomizer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RandomizeConfig {
        &self.config
    }

    /// Randomizes a generalized context around the true request point.
    ///
    /// Guarantees: the result contains `exact`; if `context` contained
    /// any witness point it still does (the box only ever *grows* before
    /// the tolerance clamp); the result satisfies `tolerance` whenever
    /// the input did (re-clamped otherwise); identical inputs with the
    /// same `nonce` produce identical outputs.
    pub fn randomize(
        &self,
        context: &StBox,
        exact: &StPoint,
        nonce: u64,
        tolerance: &Tolerance,
    ) -> StBox {
        debug_assert!(context.contains(exact));
        let mut rng =
            StdRng::seed_from_u64(self.config.secret ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // Ensure a minimum extent so exact contexts also receive cover.
        let (min_w, min_d) = self.config.min_extent;
        let mut rect = context.rect;
        if rect.width() < min_w || rect.height() < min_h(min_w) {
            rect = rect.union(&Rect::square(exact.pos, min_w));
        }
        let mut span = context.span;
        if span.duration() < min_d {
            span = span.union(&TimeInterval::new(exact.t - min_d / 2, exact.t + min_d / 2));
        }

        // Per-face expansion.
        let e = self.config.max_expand;
        let w = rect.width().max(1.0);
        let h = rect.height().max(1.0);
        let d = span.duration().max(1) as f64;
        let grow = |rng: &mut StdRng, extent: f64| rng.random_range(0.0..=e) * extent;
        let rect = Rect::from_bounds(
            rect.min().x - grow(&mut rng, w),
            rect.min().y - grow(&mut rng, h),
            rect.max().x + grow(&mut rng, w),
            rect.max().y + grow(&mut rng, h),
        );
        let span = TimeInterval::new(
            span.start() - grow(&mut rng, d) as Duration,
            span.end() + grow(&mut rng, d) as Duration,
        );

        // Translation jitter, bounded by the slack between the exact
        // point and the faces so containment is preserved.
        let s = self.config.max_shift;
        let slack_left = exact.pos.x - rect.min().x;
        let slack_right = rect.max().x - exact.pos.x;
        let dx = rng.random_range(-s * slack_left..=s * slack_right.max(f64::MIN_POSITIVE));
        let slack_down = exact.pos.y - rect.min().y;
        let slack_up = rect.max().y - exact.pos.y;
        let dy = rng.random_range(-s * slack_down..=s * slack_up.max(f64::MIN_POSITIVE));
        // Shift the box opposite to the allowed direction of the point:
        // moving the box by (-dx) keeps `exact` inside by construction.
        let rect = Rect::from_bounds(
            rect.min().x - dx,
            rect.min().y - dy,
            rect.max().x - dx,
            rect.max().y - dy,
        );
        let slack_before = (exact.t - span.start()) as f64;
        let slack_after = (span.end() - exact.t) as f64;
        let dt = rng.random_range(-s * slack_before..=s * slack_after.max(f64::MIN_POSITIVE))
            as Duration;
        let span = TimeInterval::new(span.start() - dt, span.end() - dt);

        let out = StBox::new(rect, span);
        debug_assert!(out.contains(exact), "randomization lost the true point");
        if tolerance.accepts(&out) {
            out
        } else {
            out.shrink_around(exact, tolerance.max_area, tolerance.max_duration)
        }
    }
}

/// Minimum height paired with the configured minimum width (square cover).
fn min_h(min_w: f64) -> f64 {
    min_w
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::TimeSec;

    fn ctx() -> (StBox, StPoint) {
        let exact = StPoint::xyt(50.0, 40.0, TimeSec(500));
        let b = StBox::new(
            Rect::from_bounds(0.0, 0.0, 100.0, 80.0),
            TimeInterval::new(TimeSec(0), TimeSec(1_000)),
        );
        (b, exact)
    }

    fn loose() -> Tolerance {
        Tolerance::new(1e12, 1_000_000)
    }

    #[test]
    fn output_contains_exact_point_and_input_box() {
        let r = Randomizer::new(RandomizeConfig::default());
        let (b, exact) = ctx();
        for nonce in 0..200 {
            let out = r.randomize(&b, &exact, nonce, &loose());
            assert!(out.contains(&exact), "nonce {nonce}");
        }
    }

    #[test]
    fn expansion_only_grows_before_clamp() {
        let cfg = RandomizeConfig {
            max_shift: 0.0, // isolate expansion
            ..RandomizeConfig::default()
        };
        let r = Randomizer::new(cfg);
        let (b, exact) = ctx();
        for nonce in 0..50 {
            let out = r.randomize(&b, &exact, nonce, &loose());
            assert!(
                out.contains_box(&b),
                "nonce {nonce}: witnesses must stay covered"
            );
        }
    }

    #[test]
    fn deterministic_per_nonce() {
        let r = Randomizer::new(RandomizeConfig::default());
        let (b, exact) = ctx();
        let a = r.randomize(&b, &exact, 7, &loose());
        let b2 = r.randomize(&b, &exact, 7, &loose());
        assert_eq!(a, b2);
        let c = r.randomize(&b, &exact, 8, &loose());
        assert_ne!(a, c);
    }

    #[test]
    fn different_secrets_differ() {
        let (b, exact) = ctx();
        let r1 = Randomizer::new(RandomizeConfig {
            secret: 1,
            ..RandomizeConfig::default()
        });
        let r2 = Randomizer::new(RandomizeConfig {
            secret: 2,
            ..RandomizeConfig::default()
        });
        assert_ne!(
            r1.randomize(&b, &exact, 7, &loose()),
            r2.randomize(&b, &exact, 7, &loose())
        );
    }

    #[test]
    fn faces_detach_from_data_points() {
        // With expansion on, the emitted box's faces should (almost
        // always) not coincide with the minimal box's faces.
        let r = Randomizer::new(RandomizeConfig {
            max_shift: 0.0,
            ..RandomizeConfig::default()
        });
        let (b, exact) = ctx();
        let mut detached = 0;
        for nonce in 0..100 {
            let out = r.randomize(&b, &exact, nonce, &loose());
            if out.rect.min().x < b.rect.min().x - 1e-9 {
                detached += 1;
            }
        }
        assert!(detached > 90, "only {detached} detached faces");
    }

    #[test]
    fn degenerate_contexts_get_minimum_cover() {
        let r = Randomizer::new(RandomizeConfig::default());
        let exact = StPoint::xyt(10.0, 10.0, TimeSec(100));
        let out = r.randomize(&StBox::point(exact), &exact, 1, &loose());
        assert!(out.area() >= 50.0 * 50.0 * 0.99);
        assert!(out.duration() >= 59);
        assert!(out.contains(&exact));
    }

    #[test]
    fn tolerance_reclamped_after_randomization() {
        let r = Randomizer::new(RandomizeConfig::default());
        let (b, exact) = ctx();
        let tight = Tolerance::new(8_000.0, 1_000);
        for nonce in 0..50 {
            let out = r.randomize(&b, &exact, nonce, &tight);
            assert!(tight.accepts(&out), "nonce {nonce}");
            assert!(out.contains(&exact));
        }
    }

    #[test]
    #[should_panic(expected = "max_shift")]
    fn invalid_shift_rejected() {
        let _ = Randomizer::new(RandomizeConfig {
            max_shift: 1.5,
            ..RandomizeConfig::default()
        });
    }
}
