//! The Trusted Server: the Section-6.1 strategy end to end.

use crate::events::{JournalHealth, RetryPolicy};
use crate::strategy::{self, PatternState, RequestHost, UserState};
use crate::{
    algorithm1_first, algorithm1_subsequent, EventLog, Generalization, MixZoneConfig,
    MixZoneManager, PrivacyLevel, RandomizeConfig, Randomizer, Tolerance, TsEvent, UnlinkDecision,
};
use hka_anonymity::{historical_k_anonymity, HkOutcome, MsgId, Pseudonym, ServiceId, SpRequest};
use hka_faults::FaultInjector;
use hka_geo::{Rect, StBox, StPoint, TimeSec};
use hka_lbqid::{Lbqid, Monitor};
use hka_trajectory::{GridIndexConfig, IndexBackend, SpatialIndex, TrajectoryStore, UserId};
use std::collections::BTreeMap;

/// The server's operating mode, driven by the health of the durable
/// event journal (the audit trail every privacy guarantee is
/// demonstrated against).
///
/// Transitions are one-directional while a sink is failing —
/// `Normal → Degraded → ReadOnly` — and reset to `Normal` when a fresh
/// journal is attached. Each transition is counted
/// (`ts.mode_changes`), exported as a gauge (`ts.mode`: 0/1/2), and
/// journaled as a `ts.mode_changed` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServerMode {
    /// Fully operational: the journal (if attached) is accepting writes.
    Normal,
    /// The journal sink is failing and in retry backoff. The server
    /// keeps serving, but forwards only demonstrably protected requests
    /// (generalized with HK-anonymity intact); everything else is
    /// suppressed fail-closed.
    Degraded,
    /// The journal is down for good (retry budget exhausted): with no
    /// durable audit trail, no request is forwarded and no mutation is
    /// accepted until a new journal is attached. Location updates are
    /// still ingested — the positioning infrastructure keeps reporting,
    /// and a stale PHL would only hurt the crowd's anonymity later.
    ReadOnly,
}

impl ServerMode {
    /// Stable string form (journal payloads, metrics labels).
    pub fn as_str(&self) -> &'static str {
        match self {
            ServerMode::Normal => "normal",
            ServerMode::Degraded => "degraded",
            ServerMode::ReadOnly => "read_only",
        }
    }
}

impl std::fmt::Display for ServerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Trusted-server configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsConfig {
    /// Grid-index sizing (also fixes the space–time metric used by
    /// Algorithm 1's nearest-PHL searches). The R-tree and brute
    /// backends use only its `scale`.
    pub index: GridIndexConfig,
    /// Which [`SpatialIndex`] backend answers Algorithm 1's queries.
    pub backend: IndexBackend,
    /// Tolerance applied to services that never registered their own.
    pub default_tolerance: Tolerance,
    /// Mix-zone parameters.
    pub mixzone: MixZoneConfig,
    /// Optional cloak randomization (the paper's anti-inference
    /// recommendation); `None` emits minimal Algorithm-1 boxes.
    pub randomize: Option<RandomizeConfig>,
}

impl Default for TsConfig {
    fn default() -> Self {
        TsConfig {
            index: GridIndexConfig::default(),
            backend: IndexBackend::default(),
            default_tolerance: Tolerance::navigation(),
            mixzone: MixZoneConfig::default(),
            randomize: None,
        }
    }
}

/// What the TS did with a request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// The request went out to the provider in this (possibly generalized)
    /// form.
    Forwarded(SpRequest),
    /// The request was withheld.
    Suppressed(SuppressReasonPub),
}

/// Errors from the fallible server API (`try_*` methods). The
/// convenience methods (`register_user`, `handle_request`, …) panic on
/// these conditions instead, which is appropriate for simulations and
/// tests where they are programming errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsError {
    /// The user id is not registered.
    UnknownUser(UserId),
    /// The user id is already registered.
    DuplicateUser(UserId),
    /// Custom privacy parameters failed validation.
    InvalidParams(String),
    /// The server is read-only (journal sink down): mutations are
    /// refused until a new journal is attached.
    Degraded,
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::UnknownUser(u) => write!(f, "unknown user {u}"),
            TsError::DuplicateUser(u) => write!(f, "user {u} already registered"),
            TsError::InvalidParams(msg) => write!(f, "invalid privacy parameters: {msg}"),
            TsError::Degraded => {
                write!(
                    f,
                    "server is read-only: journal sink down, mutations refused"
                )
            }
        }
    }
}

impl std::error::Error for TsError {}

/// The lock-style privacy indicator the paper's conclusions call for:
/// "simple and effective interfaces are needed … to notify when
/// identification is at risk. Graphical solutions, like the open and
/// closed lock in an internet browser, should be considered."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivacyIndicator {
    /// No protection requested (grey lock).
    Off,
    /// Protection active, no unresolved risk (closed lock).
    Locked,
    /// An at-risk notification is pending: the user should "refrain from
    /// sending sensitive information, disrupt the service, or take other
    /// actions" (open lock).
    AtRisk,
}

/// Public mirror of the suppression reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuppressReasonPub {
    /// Inside a mix-zone (static, or an on-demand zone cooling down —
    /// including the one just activated to unlink this very user).
    MixZone,
    /// Risk policy: generalization and unlinking both failed and the user
    /// profile says suppress.
    RiskPolicy,
    /// Fail-closed: an injected fault or a degraded server mode made it
    /// impossible to guarantee this request's protection, so it was
    /// suppressed rather than forwarded under-generalized or exact.
    Degraded,
}

/// The Trusted Server of the paper's service model (Fig. 1).
///
/// "User sensitive information, including user location at specific times
/// … is collected and handled by a Trusted Server. TS has the usual
/// functionalities of a location server … Qualitative privacy preferences
/// provided by each user are translated by the TS into specific
/// parameters. The TS has also access to the location-based
/// quasi-identifier specifications."
pub struct TrustedServer {
    config: TsConfig,
    store: TrajectoryStore,
    index: Box<dyn SpatialIndex>,
    users: BTreeMap<UserId, UserState>,
    services: BTreeMap<ServiceId, Tolerance>,
    mixzones: MixZoneManager,
    randomizer: Option<Randomizer>,
    log: EventLog,
    outbox: Vec<(UserId, SpRequest)>,
    /// msgid → issuer: the routing table that lets the TS forward service
    /// answers without the provider ever learning a network address.
    routes: BTreeMap<MsgId, UserId>,
    next_msg: u64,
    next_pseudonym: u64,
    /// Fault-injection hook (inert unless a plan is attached).
    injector: FaultInjector,
    /// Degraded-mode state machine, kept in sync with journal health.
    mode: ServerMode,
    /// Timestamp of the most recent event, so administrative
    /// transitions (e.g. re-attaching a journal) can be stamped.
    last_time: TimeSec,
    /// Continuous SLO watchdog over the request stream
    /// ([`TrustedServer::enable_slo`]); off by default so journals stay
    /// byte-identical with existing fixtures.
    slo: Option<hka_obs::SloMonitor>,
    /// Responses buffered for the [`crate::RequestService`] seam,
    /// taken by `drain`. Transient — never checkpointed.
    svc_outbox: Vec<crate::envelope::ResponseEnvelope>,
}

impl TrustedServer {
    /// Creates an empty TS.
    pub fn new(config: TsConfig) -> Self {
        TrustedServer {
            config,
            store: TrajectoryStore::new(),
            index: config.backend.make(config.index),
            users: BTreeMap::new(),
            services: BTreeMap::new(),
            mixzones: MixZoneManager::new(config.mixzone),
            randomizer: config.randomize.map(Randomizer::new),
            log: EventLog::new(),
            outbox: Vec::new(),
            routes: BTreeMap::new(),
            next_msg: 0,
            next_pseudonym: 0,
            injector: FaultInjector::none(),
            mode: ServerMode::Normal,
            last_time: TimeSec(0),
            slo: None,
            svc_outbox: Vec::new(),
        }
    }

    /// Turns on the continuous SLO watchdog: every handled request is
    /// folded into a rolling window, and threshold crossings emit
    /// `ts.slo_breach` / `ts.slo_recovered` journal events (async-class;
    /// they never gate a request).
    pub fn enable_slo(&mut self, config: hka_obs::SloConfig) {
        self.slo = Some(hka_obs::SloMonitor::new(config));
    }

    /// The worst-latency request in the SLO window: `(trace id,
    /// microseconds)`. `None` when the watchdog is off or idle.
    pub fn slo_worst(&self) -> Option<(u64, u64)> {
        self.slo
            .as_ref()
            .and_then(|m| m.worst())
            .map(|(t, us)| (t.0, us))
    }

    /// Registers a user with a privacy level; returns the initial
    /// pseudonym.
    ///
    /// # Panics
    /// If custom parameters fail validation, the user already exists, or
    /// the server is read-only — use
    /// [`TrustedServer::try_register_user`] where these are runtime
    /// conditions rather than programming errors.
    pub fn register_user(&mut self, user: UserId, level: PrivacyLevel) -> Pseudonym {
        match self.try_register_user(user, level) {
            Ok(p) => p,
            Err(TsError::DuplicateUser(u)) => panic!("user {u} registered twice"),
            Err(e) => panic!("register_user({user}) failed: {e}"),
        }
    }

    /// Fallible registration (see [`TrustedServer::register_user`]).
    /// Refused with [`TsError::Degraded`] while the server is read-only.
    pub fn try_register_user(
        &mut self,
        user: UserId,
        level: PrivacyLevel,
    ) -> Result<Pseudonym, TsError> {
        if self.mode == ServerMode::ReadOnly {
            return Err(TsError::Degraded);
        }
        let params = level.params();
        if let Some(p) = &params {
            p.validate().map_err(TsError::InvalidParams)?;
        }
        if self.users.contains_key(&user) {
            return Err(TsError::DuplicateUser(user));
        }
        let pseudonym = self.fresh_pseudonym();
        self.users.insert(
            user,
            UserState {
                pseudonym,
                params,
                overrides: BTreeMap::new(),
                monitors: Vec::new(),
                patterns: Vec::new(),
                at_risk: false,
            },
        );
        self.store.ensure_user(user);
        Ok(pseudonym)
    }

    /// Attaches an LBQID to a user ("the TS has also access to the
    /// location-based quasi-identifier specifications").
    ///
    /// # Panics
    /// If the user is unknown or the server is read-only — use
    /// [`TrustedServer::try_add_lbqid`] otherwise.
    pub fn add_lbqid(&mut self, user: UserId, lbqid: Lbqid) {
        if let Err(e) = self.try_add_lbqid(user, lbqid) {
            panic!("add_lbqid({user}) failed: {e}");
        }
    }

    /// Fallible variant of [`TrustedServer::add_lbqid`]. Refused with
    /// [`TsError::Degraded`] while the server is read-only.
    pub fn try_add_lbqid(&mut self, user: UserId, lbqid: Lbqid) -> Result<(), TsError> {
        if self.mode == ServerMode::ReadOnly {
            return Err(TsError::Degraded);
        }
        let st = self
            .users
            .get_mut(&user)
            .ok_or(TsError::UnknownUser(user))?;
        st.monitors.push(Monitor::new(lbqid));
        st.patterns.push(PatternState::default());
        Ok(())
    }

    /// Sets a per-service privacy override for a user — Section 3: "the
    /// user choice may be applied uniformly to all services or
    /// selectively". `PrivacyLevel::Off` disables protection for that
    /// service only; any other level applies its parameters there while
    /// the rest of the user's traffic keeps the registration-time level.
    pub fn set_service_privacy(
        &mut self,
        user: UserId,
        service: ServiceId,
        level: PrivacyLevel,
    ) -> Result<(), TsError> {
        if self.mode == ServerMode::ReadOnly {
            return Err(TsError::Degraded);
        }
        let params = level.params();
        if let Some(p) = &params {
            p.validate().map_err(TsError::InvalidParams)?;
        }
        let state = self
            .users
            .get_mut(&user)
            .ok_or(TsError::UnknownUser(user))?;
        state.overrides.insert(service, params);
        Ok(())
    }

    /// Registers a service's tolerance constraints.
    pub fn register_service(&mut self, service: ServiceId, tolerance: Tolerance) {
        self.services.insert(service, tolerance);
    }

    /// Adds a static mix-zone.
    pub fn add_static_mixzone(&mut self, zone: Rect) {
        self.mixzones.add_static_zone(zone);
    }

    /// Ingests a location update (the positioning infrastructure reports
    /// these whether or not the user makes requests).
    ///
    /// Crossing *into* a static mix-zone unlinks the user on the spot —
    /// the Beresford–Stajano behaviour the paper imports: "if an
    /// individual crosses it, then it won't be possible to link his
    /// future positions (outside the area) with known positions (before
    /// entering the area)". Only protected users participate; users with
    /// privacy off keep their pseudonym.
    pub fn location_update(&mut self, user: UserId, at: StPoint) {
        let ing = strategy::ingest_on(self, user, at);
        if ing.entering {
            // Fetch-once: operate on the owned state, then put it back.
            if let Some(mut state) = self.users.remove(&user) {
                if state.params.is_some() {
                    strategy::change_pseudonym_on(self, user, &mut state, ing.at);
                }
                self.users.insert(user, state);
            }
        }
    }

    /// Handles a service request issued by `user` from the exact context
    /// `at` — the Section-6.1 strategy.
    ///
    /// # Panics
    /// If the user is unknown — use [`TrustedServer::try_handle_request`]
    /// otherwise.
    pub fn handle_request(
        &mut self,
        user: UserId,
        at: StPoint,
        service: ServiceId,
    ) -> RequestOutcome {
        match self.try_handle_request(user, at, service) {
            Ok(out) => out,
            Err(e) => panic!("handle_request({user}) failed: {e}"),
        }
    }

    /// Handles a batch of co-arriving requests in submission order
    /// through one Algorithm-1 pass
    /// ([`strategy::handle_request_batch_on`]). Outcomes, decision
    /// events, and journal bytes are identical to calling
    /// [`TrustedServer::try_handle_request`] once per element — order
    /// equivalence is the helper's contract — but a host sharing
    /// Algorithm-1 window state across the run may answer faster.
    /// Per-request trace roots are not minted on this bulk path.
    pub fn handle_requests(
        &mut self,
        requests: &[(UserId, StPoint, ServiceId)],
    ) -> Vec<Result<RequestOutcome, TsError>> {
        let tagged: Vec<(usize, UserId, StPoint, ServiceId)> = requests
            .iter()
            .enumerate()
            .map(|(i, (u, at, s))| (i, *u, *at, *s))
            .collect();
        let mut out: Vec<Result<RequestOutcome, TsError>> = Vec::with_capacity(requests.len());
        strategy::handle_request_batch_on(
            self,
            &tagged,
            |h, user| {
                let _span = hka_obs::span("ts.handle_request");
                hka_obs::global().counter("ts.requests").incr();
                h.users.remove(&user)
            },
            |h, _i, user, settled| match settled {
                Some((state, outcome)) => {
                    h.users.insert(user, state);
                    out.push(Ok(outcome));
                }
                None => out.push(Err(TsError::UnknownUser(user))),
            },
        );
        out
    }

    /// Fallible variant of [`TrustedServer::handle_request`].
    ///
    /// Fetch-once: the user's state is taken out of the map, the whole
    /// request is handled against the owned value, and the state is put
    /// back — no mid-flight re-lookups, no "checked above" unwraps.
    pub fn try_handle_request(
        &mut self,
        user: UserId,
        at: StPoint,
        service: ServiceId,
    ) -> Result<RequestOutcome, TsError> {
        // The root span for this request's trace: minted before any
        // stage span so every `hka_obs::span` site below becomes a
        // child. The trace id exists even with collection disabled, so
        // SLO payloads referencing it are identical tracing on or off.
        let mut root = hka_obs::trace::root("ts.request");
        let started = std::time::Instant::now();
        let _span = hka_obs::span("ts.handle_request");
        hka_obs::global().counter("ts.requests").incr();
        let mut state = self.users.remove(&user).ok_or(TsError::UnknownUser(user))?;
        root.attr("uid", hka_obs::Json::from(state.pseudonym.0));
        let outcome = strategy::handle_request_on(self, user, &mut state, at, service);
        self.users.insert(user, state);
        root.attr(
            "outcome",
            hka_obs::Json::from(match &outcome {
                RequestOutcome::Forwarded(_) => "forwarded",
                RequestOutcome::Suppressed(_) => "suppressed",
            }),
        );
        let trace = root.trace_id();
        drop(_span);
        drop(root);
        let transitions = match self.slo.as_mut() {
            Some(monitor) => {
                let latency = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let suppressed = matches!(outcome, RequestOutcome::Suppressed(_));
                let degraded = self.mode != ServerMode::Normal;
                monitor.observe_request(latency, suppressed, degraded, trace)
            }
            None => Vec::new(),
        };
        for ev in &transitions {
            let at = self.last_time;
            self.push_event(TsEvent::from_slo(ev, at), at);
        }
        Ok(outcome)
    }

    /// Pushes an event and re-synchronizes the mode state machine with
    /// the journal's health (every event is a journal write attempt, so
    /// every event can move the health).
    fn push_event(&mut self, e: TsEvent, at: TimeSec) {
        self.last_time = at;
        self.log.push(e);
        self.sync_mode(at);
    }

    /// Aligns [`TrustedServer::mode`] with the journal's health,
    /// emitting the transition (counter, gauge, `ts.mode_changed`
    /// event) when it moves.
    fn sync_mode(&mut self, at: TimeSec) {
        let target = match self.log.journal_health() {
            JournalHealth::Detached | JournalHealth::Healthy => ServerMode::Normal,
            JournalHealth::Retrying { .. } => ServerMode::Degraded,
            JournalHealth::Down => ServerMode::ReadOnly,
        };
        if target == self.mode {
            return;
        }
        let from = self.mode;
        self.mode = target;
        let metrics = hka_obs::global();
        metrics.counter("ts.mode_changes").incr();
        metrics.gauge("ts.mode").set(match target {
            ServerMode::Normal => 0,
            ServerMode::Degraded => 1,
            ServerMode::ReadOnly => 2,
        });
        // Direct push, no re-sync: this event's own journal write (which
        // may itself fail) is observed by whichever event comes next.
        self.log.push(TsEvent::ModeChanged {
            at,
            from,
            to: target,
        });
    }

    fn fresh_pseudonym(&mut self) -> Pseudonym {
        let p = Pseudonym(self.next_pseudonym);
        self.next_pseudonym += 1;
        p
    }

    // ------------------------------------------------------------------
    // Introspection for audits and experiments.
    // ------------------------------------------------------------------

    /// Routes a provider's answer back to the issuing user — "the msgid
    /// is used to hide the user network address and will be used by the
    /// TS to forward the answer to the user's device" (Section 3).
    /// Returns the recipient, or `None` for unknown message ids.
    pub fn route_response(&self, msg_id: MsgId) -> Option<UserId> {
        self.routes.get(&msg_id).copied()
    }

    /// The user's current pseudonym.
    pub fn pseudonym_of(&self, user: UserId) -> Option<Pseudonym> {
        self.users.get(&user).map(|s| s.pseudonym)
    }

    /// Whether the user has an unresolved at-risk notification.
    pub fn is_at_risk(&self, user: UserId) -> bool {
        self.users.get(&user).is_some_and(|s| s.at_risk)
    }

    /// The lock-style indicator to show the user, or `None` for unknown
    /// users.
    pub fn privacy_indicator(&self, user: UserId) -> Option<PrivacyIndicator> {
        let state = self.users.get(&user)?;
        Some(if state.params.is_none() {
            PrivacyIndicator::Off
        } else if state.at_risk {
            PrivacyIndicator::AtRisk
        } else {
            PrivacyIndicator::Locked
        })
    }

    /// The trajectory database (PHLs of all users).
    pub fn store(&self) -> &TrajectoryStore {
        &self.store
    }

    /// The spatio-temporal index, behind the backend-agnostic
    /// [`SpatialIndex`] seam (pick the backend via
    /// [`TsConfig::backend`]).
    pub fn index(&self) -> &dyn SpatialIndex {
        self.index.as_ref()
    }

    /// The decision log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Folds PHL points older than the policy cutoff (granularity-aware
    /// compaction, [`hka_trajectory::CompactionPolicy`]) and rebuilds
    /// the spatial index over the folded store, so index queries never
    /// see points the store no longer holds. Algorithm 1's anonymity
    /// queries look only at the recent window the cutoff leaves
    /// untouched, and folding preserves per-granule occupancy and
    /// extremes, so request outcomes and the auditor's k-timelines are
    /// unchanged — the differential tests pin exactly that.
    pub fn compact_history(
        &mut self,
        now: TimeSec,
        policy: &hka_trajectory::CompactionPolicy,
    ) -> hka_trajectory::CompactionStats {
        let stats = self.store.compact(now, policy);
        let mut index = self.config.backend.make(self.config.index);
        for (user, phl) in self.store.iter() {
            for p in phl.points() {
                index.insert(user, *p);
            }
        }
        self.index = index;
        let metrics = hka_obs::global();
        metrics.counter("ts.compactions").incr();
        metrics
            .counter("ts.compacted_points")
            .add(stats.points_dropped());
        stats
    }

    /// Routes every subsequent logged event into a hash-chained JSONL
    /// journal (see `hka_obs::journal`). Returns the previous sink, if
    /// one was attached. A fresh sink is healthy, so a degraded or
    /// read-only server returns to [`ServerMode::Normal`].
    ///
    /// Sync-class events ([`TsEvent::sync_flush`](crate::TsEvent)) are
    /// flushed through the sink as they are appended, so a concurrent
    /// audit tail sees every externally visible decision no later than
    /// its effect (DESIGN.md §12).
    pub fn attach_journal(
        &mut self,
        journal: hka_obs::BoxedJournal,
    ) -> Option<hka_obs::BoxedJournal> {
        self.attach_journal_with(journal, RetryPolicy::default())
    }

    /// Like [`TrustedServer::attach_journal`] with an explicit retry /
    /// backoff policy for the sink.
    pub fn attach_journal_with(
        &mut self,
        journal: hka_obs::BoxedJournal,
        policy: RetryPolicy,
    ) -> Option<hka_obs::BoxedJournal> {
        let previous = self.log.attach_journal_with(journal, policy);
        self.sync_mode(self.last_time);
        previous
    }

    /// Detaches and returns the journal sink, if one was attached. The
    /// server falls back to in-memory logging; callers that detach to
    /// recover a journal file (crash drills) should re-attach with
    /// [`TrustedServer::attach_journal`] before handling more events.
    pub fn take_journal(&mut self) -> Option<hka_obs::BoxedJournal> {
        self.log.take_journal()
    }

    /// Health of the journal sink (drives [`TrustedServer::mode`]).
    pub fn journal_health(&self) -> JournalHealth {
        self.log.journal_health()
    }

    /// The server's current operating mode.
    pub fn mode(&self) -> ServerMode {
        self.mode
    }

    /// Attaches a fault-injection plan: the named sites in the request
    /// path (`phl.write`, `index.query`, `mixzone.available`; pair with
    /// `hka_faults::FaultyWriter` for `journal.io`) consult it on every
    /// hit. Injected faults never widen what the server forwards — the
    /// fail-closed gate suppresses any request whose protection a fault
    /// put in doubt.
    pub fn attach_faults(&mut self, injector: FaultInjector) {
        self.injector = injector;
    }

    /// The attached fault injector (inert unless a plan was attached).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Flushes the attached journal, if any.
    pub fn flush_journal(&mut self) -> std::io::Result<()> {
        self.log.flush_journal()
    }

    /// Journals SLO transitions observed outside the server's own
    /// watchdog — e.g. the TCP gateway's p999/queue-depth monitor —
    /// stamped with the server's last event time. Async-class: they
    /// describe telemetry, never gate a request.
    pub fn note_slo_events(&mut self, events: &[hka_obs::SloEvent]) {
        for ev in events {
            let at = self.last_time;
            self.push_event(TsEvent::from_slo(ev, at), at);
        }
    }

    /// Journals a gateway liveness snapshot ([`TsEvent::GwStats`]).
    pub fn note_gateway_stats(&mut self, conns: u64, drains: u64, queue_depth: u64) {
        let at = self.last_time;
        self.push_event(
            TsEvent::GwStats {
                at,
                conns,
                drains,
                queue_depth,
            },
            at,
        );
    }

    /// The [`crate::RequestService`] response buffer (seam internals).
    pub(crate) fn svc_outbox_mut(&mut self) -> &mut Vec<crate::envelope::ResponseEnvelope> {
        &mut self.svc_outbox
    }

    /// The attached journal sink's chain position `(next_seq, head)`, or
    /// `None` when no journal is attached. Checkpoints anchor here.
    pub fn journal_position(&self) -> Option<(u64, String)> {
        self.log.journal_position()
    }

    /// Appends a chain-metadata record (checkpoint anchor) directly to
    /// the journal, bypassing the event path (see
    /// [`crate::EventLog::append_direct`]).
    pub(crate) fn append_journal_record(
        &mut self,
        kind: &str,
        payload: hka_obs::Json,
    ) -> std::io::Result<u64> {
        self.log.append_direct(kind, payload)
    }

    /// The durable server state beyond the trajectory store — the
    /// `server` section of a checkpoint snapshot.
    pub fn server_meta(&self) -> crate::checkpoint::ServerMeta {
        crate::checkpoint::ServerMeta {
            mode: self.mode,
            last_time: self.last_time,
            next_msg: self.next_msg,
            next_pseudonym: self.next_pseudonym,
            services: self.services.iter().map(|(id, tol)| (*id, *tol)).collect(),
            static_zones: self.mixzones.static_zones().to_vec(),
            users: self
                .users
                .iter()
                .map(|(user, st)| crate::checkpoint::UserMeta {
                    user: *user,
                    pseudonym: st.pseudonym,
                    params: st.params,
                    overrides: st.overrides.iter().map(|(s, p)| (*s, *p)).collect(),
                    at_risk: st.at_risk,
                })
                .collect(),
        }
    }

    /// Rebuilds a server from a checkpoint snapshot's `store`, `server`,
    /// and `stats` sections: the trajectory store (index re-inserted
    /// point by point), pseudonym bindings, privacy parameters and
    /// overrides, at-risk flags, service tolerances, static mix-zones,
    /// mode, and counters.
    ///
    /// LBQID monitors and pattern traversals restart conservatively
    /// (exactly like after an unlink) — the operator re-attaches LBQIDs
    /// with [`TrustedServer::add_lbqid`]; active mix-zone cool-downs and
    /// the outbox/routing tables are transient and start empty. The
    /// restored server has no journal attached; callers re-attach one
    /// (resuming the chain) before serving.
    pub fn restore(config: TsConfig, snapshot: &hka_obs::Snapshot) -> Result<Self, String> {
        use crate::checkpoint::{self, ServerMeta};

        let store = hka_trajectory::state::store_of_json(
            snapshot
                .section(checkpoint::STORE_SECTION)
                .ok_or("snapshot has no 'store' section")?,
        )?;
        let meta = ServerMeta::of_json(
            snapshot
                .section(checkpoint::SERVER_SECTION)
                .ok_or("snapshot has no 'server' section")?,
        )?;
        let stats = checkpoint::stats_of_json(
            snapshot
                .section(checkpoint::STATS_SECTION)
                .ok_or("snapshot has no 'stats' section")?,
        )?;

        let mut index = config.backend.make(config.index);
        for (user, phl) in store.iter() {
            for p in phl.points() {
                index.insert(user, *p);
            }
        }
        let mut mixzones = MixZoneManager::new(config.mixzone);
        for zone in &meta.static_zones {
            mixzones.add_static_zone(*zone);
        }
        let users = meta
            .users
            .iter()
            .map(|u| {
                (
                    u.user,
                    UserState {
                        pseudonym: u.pseudonym,
                        params: u.params,
                        overrides: u.overrides.iter().cloned().collect(),
                        monitors: Vec::new(),
                        patterns: Vec::new(),
                        at_risk: u.at_risk,
                    },
                )
            })
            .collect();
        let mut log = EventLog::new();
        log.restore_stats(stats);

        Ok(TrustedServer {
            config,
            store,
            index,
            users,
            services: meta.services.iter().copied().collect(),
            mixzones,
            randomizer: config.randomize.map(Randomizer::new),
            log,
            outbox: Vec::new(),
            routes: BTreeMap::new(),
            next_msg: meta.next_msg,
            next_pseudonym: meta.next_pseudonym,
            injector: FaultInjector::none(),
            mode: meta.mode,
            last_time: meta.last_time,
            // The watchdog's rolling window is telemetry, not durable
            // state: a restored server starts with a fresh (off) one.
            slo: None,
            svc_outbox: Vec::new(),
        })
    }

    /// A point-in-time snapshot of the pipeline's metrics: request
    /// counters (`ts.requests`, `ts.forwarded`, `ts.forwarded_generalized`,
    /// `ts.suppressed`, `ts.unlinks`, `ts.at_risk`), stage counters
    /// (`algo1.iterations`, `index.probes`, `mixzone.*`), and latency
    /// histograms for every span (`ts.handle_request`,
    /// `algo1.generalize`, `index.query`, `linker.link`,
    /// `mixzone.try_unlink`).
    ///
    /// Metrics live in the process-wide registry (`hka_obs::global()`),
    /// so the snapshot aggregates across every server in the process;
    /// call `hka_obs::global().reset()` between runs for per-run numbers.
    pub fn metrics_snapshot(&self) -> hka_obs::MetricsSnapshot {
        hka_obs::global().snapshot()
    }

    /// Everything forwarded to providers, with ground-truth issuers (for
    /// experiment evaluation only — a real SP sees just the requests).
    pub fn outbox(&self) -> &[(UserId, SpRequest)] {
        &self.outbox
    }

    /// Provider view: the bare request stream.
    pub fn provider_view(&self) -> Vec<SpRequest> {
        self.outbox.iter().map(|(_, r)| r.clone()).collect()
    }

    /// For each of the user's LBQIDs: the pattern name, whether it has
    /// been fully matched under the current pseudonym, and the audited
    /// historical k-anonymity of the generalized contexts forwarded for it.
    pub fn audit_patterns(&self, user: UserId, k: usize) -> Vec<(String, bool, HkOutcome)> {
        let Some(state) = self.users.get(&user) else {
            return Vec::new();
        };
        state
            .monitors
            .iter()
            .zip(&state.patterns)
            .map(|(m, p)| {
                (
                    m.lbqid().name().to_owned(),
                    m.is_fully_matched(),
                    historical_k_anonymity(&self.store, user, &p.contexts, k),
                )
            })
            .collect()
    }

    /// Replays an attacker's linking technique over everything forwarded
    /// so far (Section 5.2: "we assume the TS can replicate the
    /// techniques used by a possible attacker") and reports, per user
    /// that has held more than one pseudonym, the **maximum linkability
    /// between requests issued under different pseudonyms**. Values below
    /// the user's Θ mean past unlinkings hold against this attacker;
    /// values at or above Θ identify pseudonym changes an SP could chain
    /// back together.
    pub fn unlink_audit<L: hka_anonymity::Linker + ?Sized>(
        &self,
        linker: &L,
    ) -> Vec<(UserId, f64)> {
        let mut by_user: BTreeMap<UserId, Vec<&SpRequest>> = BTreeMap::new();
        for (u, r) in &self.outbox {
            by_user.entry(*u).or_default().push(r);
        }
        let mut out = Vec::new();
        for (user, reqs) in by_user {
            let pseudonyms: std::collections::BTreeSet<Pseudonym> =
                reqs.iter().map(|r| r.pseudonym).collect();
            if pseudonyms.len() < 2 {
                continue;
            }
            let mut worst = 0.0f64;
            for i in 0..reqs.len() {
                for j in (i + 1)..reqs.len() {
                    if reqs[i].pseudonym != reqs[j].pseudonym {
                        worst = worst.max(linker.link(reqs[i], reqs[j]));
                    }
                }
            }
            out.push((user, worst));
        }
        out
    }

    /// The generalized contexts forwarded for each of the user's patterns
    /// under the current pseudonym.
    pub fn pattern_contexts(&self, user: UserId) -> Vec<(String, Vec<StBox>)> {
        let Some(state) = self.users.get(&user) else {
            return Vec::new();
        };
        state
            .monitors
            .iter()
            .zip(&state.patterns)
            .map(|(m, p)| (m.lbqid().name().to_owned(), p.contexts.clone()))
            .collect()
    }
}

/// The capability surface the extracted Section-6.1 strategy
/// ([`crate::strategy`]) needs, answered by the server's own store,
/// index, mix-zone manager, and bookkeeping. The sharded frontend
/// implements the same trait over a partitioned layout; differential
/// tests pin the two to identical behaviour.
impl RequestHost for TrustedServer {
    fn phl_last(&self, user: UserId) -> Option<StPoint> {
        self.store.phl(user).and_then(|p| p.last()).copied()
    }

    fn record(&mut self, user: UserId, at: StPoint) {
        self.store.record(user, at);
        self.index.insert(user, at);
    }

    fn check_fault(&mut self, site: &str) -> bool {
        if self.injector.check(site).is_some() {
            let metrics = hka_obs::global();
            metrics.counter("faults.injected").incr();
            metrics.counter(&format!("faults.{site}")).incr();
            true
        } else {
            false
        }
    }

    fn in_static_zone(&self, pos: &hka_geo::Point) -> bool {
        self.mixzones.in_static_zone(pos)
    }

    fn suppressed_at(&mut self, at: &StPoint) -> bool {
        self.mixzones.suppressed_at(at)
    }

    fn tolerance_for(&self, service: ServiceId) -> Tolerance {
        *self
            .services
            .get(&service)
            .unwrap_or(&self.config.default_tolerance)
    }

    fn mode(&self) -> ServerMode {
        self.mode
    }

    fn algo1_first(
        &mut self,
        at: &StPoint,
        user: UserId,
        k: usize,
        tolerance: &Tolerance,
    ) -> Generalization {
        algorithm1_first(self.index.as_ref(), at, user, k, tolerance)
    }

    fn algo1_subsequent(
        &mut self,
        at: &StPoint,
        stored: &[UserId],
        k: usize,
        tolerance: &Tolerance,
    ) -> Generalization {
        algorithm1_subsequent(
            &self.store,
            at,
            stored,
            k,
            tolerance,
            &self.config.index.scale,
        )
    }

    fn try_unlink(&mut self, user: UserId, at: &StPoint, k: usize) -> UnlinkDecision {
        self.mixzones.try_unlink(&self.store, user, at, k)
    }

    fn fresh_pseudonym(&mut self) -> Pseudonym {
        TrustedServer::fresh_pseudonym(self)
    }

    fn next_msg_id(&mut self) -> MsgId {
        let m = MsgId(self.next_msg);
        self.next_msg += 1;
        m
    }

    fn randomize(
        &mut self,
        context: StBox,
        at: &StPoint,
        msg_id: u64,
        service: ServiceId,
    ) -> StBox {
        match &self.randomizer {
            Some(rz) => {
                let tolerance = *self
                    .services
                    .get(&service)
                    .unwrap_or(&self.config.default_tolerance);
                rz.randomize(&context, at, msg_id, &tolerance)
            }
            None => context,
        }
    }

    fn emit(&mut self, e: TsEvent, at: TimeSec) {
        self.push_event(e, at);
    }

    fn deliver(&mut self, user: UserId, req: SpRequest) {
        self.routes.insert(req.msg_id, user);
        self.outbox.push((user, req));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PrivacyParams, RiskAction};
    use hka_faults::sites;
    use hka_geo::{SpaceTimeScale, TimeSec};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn ts() -> TrustedServer {
        TrustedServer::new(TsConfig {
            index: GridIndexConfig {
                cell_size: 100.0,
                cell_duration: 300,
                scale: SpaceTimeScale::new(1.0),
            },
            default_tolerance: Tolerance::new(1e8, 7_200),
            mixzone: MixZoneConfig::default(),
            randomize: None,
            ..TsConfig::default()
        })
    }

    const SVC: ServiceId = ServiceId(0);

    #[test]
    fn privacy_off_forwards_exact() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        let at = sp(10.0, 10.0, 100);
        match s.handle_request(UserId(1), at, SVC) {
            RequestOutcome::Forwarded(req) => {
                assert_eq!(req.context, StBox::point(at));
                assert!(req.covers(&at));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.log().stats().forwarded_exact, 1);
    }

    #[test]
    fn request_points_enter_the_phl() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        s.handle_request(UserId(1), sp(10.0, 10.0, 100), SVC);
        assert_eq!(s.store().phl(UserId(1)).unwrap().len(), 1);
        // Repeated identical last point is not double-recorded.
        s.location_update(UserId(1), sp(11.0, 10.0, 200));
        s.handle_request(UserId(1), sp(11.0, 10.0, 200), SVC);
        assert_eq!(s.store().phl(UserId(1)).unwrap().len(), 2);
    }

    #[test]
    fn non_pattern_requests_stay_exact_even_with_privacy() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Medium);
        // No LBQIDs registered: nothing to protect.
        let at = sp(10.0, 10.0, 100);
        match s.handle_request(UserId(1), at, SVC) {
            RequestOutcome::Forwarded(req) => assert_eq!(req.context, StBox::point(at)),
            other => panic!("{other:?}"),
        }
    }

    /// Builds a TS with a crowd of `n` co-located users around the origin
    /// so Algorithm 1 can find neighbours.
    fn ts_with_crowd(n: u64) -> TrustedServer {
        let mut s = ts();
        for u in 100..100 + n {
            s.register_user(UserId(u), PrivacyLevel::Off);
            for t in 0..10 {
                s.location_update(
                    UserId(u),
                    sp(5.0 * (u - 100) as f64, 3.0 * t as f64, 50 * t),
                );
            }
        }
        s
    }

    fn one_shot_pattern() -> Lbqid {
        hka_lbqid::parse_lbqid(
            "lbqid clinic { element area(-50, -50, 50, 50) window(00:00, 23:59); }",
        )
        .unwrap()
    }

    #[test]
    fn pattern_requests_are_generalized() {
        let mut s = ts_with_crowd(10);
        s.register_user(UserId(1), PrivacyLevel::Low);
        s.add_lbqid(UserId(1), one_shot_pattern());
        let at = sp(0.0, 0.0, 100);
        match s.handle_request(UserId(1), at, SVC) {
            RequestOutcome::Forwarded(req) => {
                assert!(req.context.area() > 0.0, "context must be generalized");
                assert!(req.covers(&at));
            }
            other => panic!("{other:?}"),
        }
        let stats = s.log().stats();
        assert_eq!(stats.generalized(), 1);
        assert_eq!(stats.forwarded_hk_ok, 1);
        // The pattern is a one-element, once-anywhere LBQID: matched.
        let audits = s.audit_patterns(UserId(1), 2);
        assert_eq!(audits.len(), 1);
        let (name, matched, hk) = &audits[0];
        assert_eq!(name, "clinic");
        assert!(matched);
        assert!(hk.satisfied, "witnesses: {:?}", hk.witnesses);
    }

    #[test]
    fn generalized_context_covers_k_witnesses() {
        let mut s = ts_with_crowd(10);
        s.register_user(
            UserId(1),
            PrivacyLevel::Custom(PrivacyParams::fixed(4, 0.5)),
        );
        s.add_lbqid(UserId(1), one_shot_pattern());
        let at = sp(0.0, 0.0, 100);
        let RequestOutcome::Forwarded(req) = s.handle_request(UserId(1), at, SVC) else {
            panic!("expected forward");
        };
        // At least 4 other users' PHLs cross the forwarded context.
        let witnesses = s
            .store()
            .users_crossing(&req.context)
            .into_iter()
            .filter(|u| *u != UserId(1))
            .count();
        assert!(witnesses >= 4, "only {witnesses} witnesses");
    }

    #[test]
    fn scarce_crowd_triggers_risk_path() {
        // Nobody else around: generalization fails, unlinking infeasible.
        let mut s = ts();
        s.register_user(
            UserId(1),
            PrivacyLevel::Custom(PrivacyParams {
                k: 3,
                theta: 0.5,
                k_init: 3,
                k_decrement: 0,
                on_risk: RiskAction::Suppress,
            }),
        );
        s.add_lbqid(UserId(1), one_shot_pattern());
        match s.handle_request(UserId(1), sp(0.0, 0.0, 100), SVC) {
            RequestOutcome::Suppressed(SuppressReasonPub::RiskPolicy) => {}
            other => panic!("{other:?}"),
        }
        assert!(s.is_at_risk(UserId(1)));
        let stats = s.log().stats();
        assert_eq!(stats.at_risk, 1);
        assert_eq!(stats.suppressed_risk, 1);
    }

    #[test]
    fn risk_forward_policy_still_forwards_clamped() {
        let mut s = ts();
        s.register_user(
            UserId(1),
            PrivacyLevel::Custom(PrivacyParams {
                k: 3,
                theta: 0.5,
                k_init: 3,
                k_decrement: 0,
                on_risk: RiskAction::Forward,
            }),
        );
        s.add_lbqid(UserId(1), one_shot_pattern());
        let at = sp(0.0, 0.0, 100);
        match s.handle_request(UserId(1), at, SVC) {
            RequestOutcome::Forwarded(req) => assert!(req.covers(&at)),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.log().stats().forwarded_hk_failed, 1);
        assert!(s.is_at_risk(UserId(1)));
    }

    #[test]
    fn unlink_changes_pseudonym_and_resets_patterns() {
        // A crowd crossing the origin in diverging directions, but spread
        // too wide for the tolerance: generalization fails, unlink works.
        let mut s = TrustedServer::new(TsConfig {
            index: GridIndexConfig {
                cell_size: 100.0,
                cell_duration: 300,
                scale: SpaceTimeScale::new(1.0),
            },
            default_tolerance: Tolerance::new(10.0, 5), // brutally tight
            mixzone: MixZoneConfig::default(),
            randomize: None,
            ..TsConfig::default()
        });
        for (u, angle) in [(100u64, 0.0f64), (101, 1.6), (102, 3.1), (103, 4.7)] {
            s.register_user(UserId(u), PrivacyLevel::Off);
            s.location_update(UserId(u), sp(-60.0 * angle.cos(), -60.0 * angle.sin(), 40));
            s.location_update(UserId(u), sp(-10.0 * angle.cos(), -10.0 * angle.sin(), 90));
        }
        s.register_user(
            UserId(1),
            PrivacyLevel::Custom(PrivacyParams::fixed(3, 0.5)),
        );
        s.add_lbqid(UserId(1), one_shot_pattern());
        let before = s.pseudonym_of(UserId(1)).unwrap();
        match s.handle_request(UserId(1), sp(0.0, 0.0, 100), SVC) {
            RequestOutcome::Suppressed(SuppressReasonPub::MixZone) => {}
            other => panic!("{other:?}"),
        }
        let after = s.pseudonym_of(UserId(1)).unwrap();
        assert_ne!(before, after, "pseudonym must change");
        let stats = s.log().stats();
        assert_eq!(stats.pseudonym_changes, 1);
        assert_eq!(stats.suppressed_mixzone, 1);
        // Pattern state is reset.
        assert!(s.pattern_contexts(UserId(1))[0].1.is_empty());
        // Requests inside the active zone are suppressed for a while.
        match s.handle_request(UserId(1), sp(5.0, 5.0, 200), SVC) {
            RequestOutcome::Suppressed(SuppressReasonPub::MixZone) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crossing_a_static_zone_unlinks_protected_users() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Medium);
        s.register_user(UserId(2), PrivacyLevel::Off);
        s.add_static_mixzone(Rect::from_bounds(100.0, 0.0, 200.0, 100.0));
        let before = s.pseudonym_of(UserId(1)).unwrap();
        let off_before = s.pseudonym_of(UserId(2)).unwrap();
        // Walk both users through the zone.
        for u in [1u64, 2] {
            s.location_update(UserId(u), sp(50.0, 50.0, 10 + u as i64));
            s.location_update(UserId(u), sp(150.0, 50.0, 60 + u as i64));
            s.location_update(UserId(u), sp(250.0, 50.0, 120 + u as i64));
        }
        assert_ne!(
            s.pseudonym_of(UserId(1)).unwrap(),
            before,
            "protected user unlinked"
        );
        assert_eq!(
            s.pseudonym_of(UserId(2)).unwrap(),
            off_before,
            "opted-out user untouched"
        );
        assert_eq!(s.log().stats().pseudonym_changes, 1);
        // Dwelling inside (no new crossing) does not churn pseudonyms.
        let after = s.pseudonym_of(UserId(1)).unwrap();
        s.location_update(UserId(1), sp(251.0, 50.0, 200));
        s.location_update(UserId(1), sp(252.0, 50.0, 260));
        assert_eq!(s.pseudonym_of(UserId(1)).unwrap(), after);
    }

    #[test]
    fn static_zone_suppresses_requests() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Low);
        s.add_static_mixzone(Rect::from_bounds(0.0, 0.0, 100.0, 100.0));
        match s.handle_request(UserId(1), sp(50.0, 50.0, 10), SVC) {
            RequestOutcome::Suppressed(SuppressReasonPub::MixZone) => {}
            other => panic!("{other:?}"),
        }
        // Off-zone requests pass.
        match s.handle_request(UserId(1), sp(500.0, 50.0, 20), SVC) {
            RequestOutcome::Forwarded(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn outbox_hides_identity_but_keeps_ground_truth() {
        let mut s = ts();
        let pseudo = s.register_user(UserId(7), PrivacyLevel::Off);
        s.handle_request(UserId(7), sp(1.0, 2.0, 3), SVC);
        let (truth, req) = &s.outbox()[0];
        assert_eq!(*truth, UserId(7));
        assert_eq!(req.pseudonym, pseudo);
        let view = s.provider_view();
        assert_eq!(view.len(), 1);
        assert_eq!(view[0].pseudonym, pseudo);
    }

    #[test]
    fn service_specific_tolerance_is_used() {
        let mut s = ts_with_crowd(10);
        s.register_user(
            UserId(1),
            PrivacyLevel::Custom(PrivacyParams::fixed(5, 0.5)),
        );
        s.add_lbqid(UserId(1), one_shot_pattern());
        // A service with zero tolerance: any generalization gets clamped.
        let strict = ServiceId(9);
        s.register_service(strict, Tolerance::new(0.0, 0));
        let at = sp(0.0, 0.0, 100);
        match s.handle_request(UserId(1), at, strict) {
            // Generalization fails (area > 0 needed for 5 users), and in
            // this crowd unlinking may or may not find diverging headings;
            // either way no HK-ok forward can happen.
            RequestOutcome::Forwarded(req) => {
                assert_eq!(req.context, StBox::point(at));
                assert_eq!(s.log().stats().forwarded_hk_failed, 1);
            }
            RequestOutcome::Suppressed(_) => {}
        }
    }

    #[test]
    fn privacy_indicator_follows_state() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        s.register_user(UserId(2), PrivacyLevel::Medium);
        assert_eq!(s.privacy_indicator(UserId(1)), Some(PrivacyIndicator::Off));
        assert_eq!(
            s.privacy_indicator(UserId(2)),
            Some(PrivacyIndicator::Locked)
        );
        assert_eq!(s.privacy_indicator(UserId(9)), None);
        // Drive user 3 into the at-risk state (nobody around, suppress).
        s.register_user(
            UserId(3),
            PrivacyLevel::Custom(PrivacyParams {
                k: 3,
                theta: 0.5,
                k_init: 3,
                k_decrement: 0,
                on_risk: RiskAction::Forward,
            }),
        );
        s.add_lbqid(UserId(3), one_shot_pattern());
        s.handle_request(UserId(3), sp(0.0, 0.0, 100), SVC);
        assert_eq!(
            s.privacy_indicator(UserId(3)),
            Some(PrivacyIndicator::AtRisk)
        );
    }

    #[test]
    fn randomized_contexts_still_cover_and_grow() {
        let mut cfg = TsConfig {
            index: GridIndexConfig {
                cell_size: 100.0,
                cell_duration: 300,
                scale: SpaceTimeScale::new(1.0),
            },
            default_tolerance: Tolerance::new(1e8, 7_200),
            mixzone: MixZoneConfig::default(),
            randomize: Some(crate::RandomizeConfig::default()),
            ..TsConfig::default()
        };
        let mut s = TrustedServer::new(cfg);
        for u in 100..110u64 {
            s.register_user(UserId(u), PrivacyLevel::Off);
            for t in 0..10 {
                s.location_update(
                    UserId(u),
                    sp(5.0 * (u - 100) as f64, 3.0 * t as f64, 50 * t),
                );
            }
        }
        s.register_user(UserId(1), PrivacyLevel::Low);
        s.add_lbqid(UserId(1), one_shot_pattern());
        let at = sp(0.0, 0.0, 100);
        let RequestOutcome::Forwarded(req) = s.handle_request(UserId(1), at, SVC) else {
            panic!("expected forward");
        };
        assert!(req.covers(&at), "randomized context must cover the point");
        assert!(req.context.area() > 0.0);
        // Determinism: the same run reproduces the same randomized box.
        cfg.randomize = Some(crate::RandomizeConfig::default());
        let mut s2 = TrustedServer::new(cfg);
        for u in 100..110u64 {
            s2.register_user(UserId(u), PrivacyLevel::Off);
            for t in 0..10 {
                s2.location_update(
                    UserId(u),
                    sp(5.0 * (u - 100) as f64, 3.0 * t as f64, 50 * t),
                );
            }
        }
        s2.register_user(UserId(1), PrivacyLevel::Low);
        s2.add_lbqid(UserId(1), one_shot_pattern());
        let RequestOutcome::Forwarded(req2) = s2.handle_request(UserId(1), at, SVC) else {
            panic!("expected forward");
        };
        assert_eq!(req.context, req2.context);
    }

    use hka_faults::{FaultKind, FaultPlan, Trigger};

    /// A journal sink that always fails.
    struct BrokenSink;
    impl std::io::Write for BrokenSink {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("sink down"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn boxed(w: impl std::io::Write + Send + Sync + 'static) -> hka_obs::BoxedJournal {
        hka_obs::Journal::new(Box::new(w) as Box<dyn std::io::Write + Send + Sync>)
    }

    #[test]
    fn reordered_timestamps_are_clamped_not_fatal() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        s.location_update(UserId(1), sp(0.0, 0.0, 100));
        s.location_update(UserId(1), sp(5.0, 0.0, 40)); // arrives late
        let phl = s.store().phl(UserId(1)).unwrap();
        assert_eq!(phl.len(), 2);
        assert_eq!(phl.last().unwrap().t, TimeSec(100), "clamped forward");
        // A regressed *request* timestamp is clamped and still served.
        match s.handle_request(UserId(1), sp(6.0, 0.0, 70), SVC) {
            RequestOutcome::Forwarded(req) => {
                assert_eq!(req.context.span.start(), TimeSec(100));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn phl_write_fault_fails_the_request_closed() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        s.attach_faults(FaultInjector::new(FaultPlan::new(7).with_rule(
            sites::PHL_WRITE,
            Trigger::Always,
            FaultKind::Drop,
        )));
        match s.handle_request(UserId(1), sp(0.0, 0.0, 10), SVC) {
            RequestOutcome::Suppressed(SuppressReasonPub::Degraded) => {}
            other => panic!("{other:?}"),
        }
        // The dropped observation never reached the store, and nothing
        // was forwarded on its back.
        assert!(s.store().phl(UserId(1)).unwrap().is_empty());
        assert_eq!(s.log().stats().suppressed_degraded, 1);
        assert_eq!(s.log().stats().forwarded(), 0);
        assert_eq!(s.fault_injector().fired(sites::PHL_WRITE), 1);
    }

    #[test]
    fn index_and_mixzone_faults_fail_pattern_requests_closed() {
        for site in [sites::INDEX_QUERY, sites::MIXZONE] {
            let mut s = ts_with_crowd(10);
            s.register_user(UserId(1), PrivacyLevel::Low);
            s.add_lbqid(UserId(1), one_shot_pattern());
            s.attach_faults(FaultInjector::new(FaultPlan::new(1).with_rule(
                site,
                Trigger::Always,
                FaultKind::Unavailable,
            )));
            match s.handle_request(UserId(1), sp(0.0, 0.0, 100), SVC) {
                RequestOutcome::Suppressed(SuppressReasonPub::Degraded) => {}
                // The mix-zone site is only consulted when generalization
                // already failed; with this crowd it succeeds, so the
                // forward must be a fully protected one.
                RequestOutcome::Forwarded(req) if site == sites::MIXZONE => {
                    assert!(req.context.area() > 0.0);
                }
                other => panic!("{site}: {other:?}"),
            }
            // No exact location escaped either way.
            for req in s.provider_view() {
                assert!(req.context.area() > 0.0);
            }
        }
    }

    #[test]
    fn degraded_mode_forwards_only_protected_requests() {
        let mut s = ts_with_crowd(10);
        s.register_user(UserId(1), PrivacyLevel::Low);
        s.add_lbqid(UserId(1), one_shot_pattern());
        // A generous budget: the sink keeps failing but the server stays
        // Degraded (not ReadOnly) across this test's event volume.
        s.attach_journal_with(
            boxed(BrokenSink),
            RetryPolicy {
                attempts: 1,
                max_failures: 10,
                backoff_base: 8,
            },
        );
        assert_eq!(s.mode(), ServerMode::Normal);

        // First request forwards (the gate saw Normal), but its journal
        // write fails and the server degrades.
        let out = s.handle_request(UserId(100), sp(1.0, 1.0, 500), SVC);
        assert!(matches!(out, RequestOutcome::Forwarded(_)));
        assert_eq!(s.mode(), ServerMode::Degraded);

        // Degraded: exact forwards are refused fail-closed…
        match s.handle_request(UserId(101), sp(6.0, 1.0, 510), SVC) {
            RequestOutcome::Suppressed(SuppressReasonPub::Degraded) => {}
            other => panic!("{other:?}"),
        }
        // …but a demonstrably protected (generalized, HK-ok) request
        // still flows.
        match s.handle_request(UserId(1), sp(0.0, 0.0, 520), SVC) {
            RequestOutcome::Forwarded(req) => assert!(req.context.area() > 0.0),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.mode(), ServerMode::Degraded);
        let stats = s.log().stats();
        assert_eq!(stats.suppressed_degraded, 1);
        assert!(stats.mode_changes >= 1);
    }

    #[test]
    fn journal_down_means_read_only_until_a_new_journal() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        s.register_user(UserId(2), PrivacyLevel::Off);
        // No budget at all: the first failed event kills the sink.
        s.attach_journal_with(
            boxed(BrokenSink),
            RetryPolicy {
                attempts: 1,
                max_failures: 1,
                backoff_base: 1,
            },
        );
        let out = s.handle_request(UserId(1), sp(1.0, 1.0, 10), SVC);
        assert!(matches!(out, RequestOutcome::Forwarded(_)));
        assert_eq!(s.mode(), ServerMode::ReadOnly);
        assert_eq!(s.journal_health(), JournalHealth::Down);

        // Read-only: nothing is forwarded, mutations are refused, yet
        // location updates still land (the PHL must not go stale).
        match s.handle_request(UserId(1), sp(2.0, 1.0, 20), SVC) {
            RequestOutcome::Suppressed(SuppressReasonPub::Degraded) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(
            s.try_register_user(UserId(50), PrivacyLevel::Off),
            Err(TsError::Degraded)
        );
        assert_eq!(
            s.try_add_lbqid(UserId(1), one_shot_pattern()),
            Err(TsError::Degraded)
        );
        let before = s.store().phl(UserId(2)).unwrap().len();
        s.location_update(UserId(2), sp(15.0, 1.0, 30));
        assert_eq!(s.store().phl(UserId(2)).unwrap().len(), before + 1);

        // A fresh journal restores normal service.
        s.attach_journal(boxed(std::io::sink()));
        assert_eq!(s.mode(), ServerMode::Normal);
        let out = s.handle_request(UserId(1), sp(3.0, 1.0, 40), SVC);
        assert!(matches!(out, RequestOutcome::Forwarded(_)));
        let stats = s.log().stats();
        assert!(stats.mode_changes >= 2, "N→RO and RO→N at least");
        assert!(stats.suppressed_degraded >= 1);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        s.register_user(UserId(1), PrivacyLevel::Off);
    }

    #[test]
    fn fallible_api_reports_conditions() {
        let mut s = ts();
        assert_eq!(
            s.try_handle_request(UserId(1), sp(0.0, 0.0, 0), SVC),
            Err(TsError::UnknownUser(UserId(1)))
        );
        assert_eq!(
            s.try_add_lbqid(UserId(1), one_shot_pattern()),
            Err(TsError::UnknownUser(UserId(1)))
        );
        assert!(s.try_register_user(UserId(1), PrivacyLevel::Off).is_ok());
        assert_eq!(
            s.try_register_user(UserId(1), PrivacyLevel::Off),
            Err(TsError::DuplicateUser(UserId(1)))
        );
        let bad = PrivacyLevel::Custom(PrivacyParams::fixed(0, 0.5));
        assert!(matches!(
            s.try_register_user(UserId(2), bad),
            Err(TsError::InvalidParams(_))
        ));
        // Error type is displayable and std::error::Error.
        let e: Box<dyn std::error::Error> = Box::new(TsError::UnknownUser(UserId(7)));
        assert!(e.to_string().contains("u7"));
    }

    #[test]
    fn selective_privacy_applies_per_service() {
        let mut s = ts_with_crowd(10);
        s.register_user(UserId(1), PrivacyLevel::Low);
        s.add_lbqid(UserId(1), one_shot_pattern());
        // Privacy off for service 7 only.
        s.set_service_privacy(UserId(1), ServiceId(7), PrivacyLevel::Off)
            .unwrap();
        let at = sp(0.0, 0.0, 100);
        // Pattern-matching request to the opted-out service: exact.
        match s.handle_request(UserId(1), at, ServiceId(7)) {
            RequestOutcome::Forwarded(req) => assert_eq!(req.context, StBox::point(at)),
            other => panic!("{other:?}"),
        }
        // The same request shape to the default service: generalized.
        let at2 = sp(0.0, 0.0, 200);
        match s.handle_request(UserId(1), at2, SVC) {
            RequestOutcome::Forwarded(req) => assert!(req.context.area() > 0.0),
            other => panic!("{other:?}"),
        }
        // Unknown users are rejected.
        assert_eq!(
            s.set_service_privacy(UserId(99), SVC, PrivacyLevel::Off),
            Err(TsError::UnknownUser(UserId(99)))
        );
    }

    #[test]
    fn responses_route_by_msgid_without_identity_leak() {
        let mut s = ts();
        s.register_user(UserId(5), PrivacyLevel::Off);
        let RequestOutcome::Forwarded(req) = s.handle_request(UserId(5), sp(1.0, 1.0, 1), SVC)
        else {
            panic!("expected forward");
        };
        assert_eq!(s.route_response(req.msg_id), Some(UserId(5)));
        assert_eq!(s.route_response(MsgId(9_999)), None);
    }

    #[test]
    fn unlink_audit_reports_cross_pseudonym_linkability() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Medium);
        s.register_user(UserId(2), PrivacyLevel::Off);
        s.add_static_mixzone(Rect::from_bounds(100.0, 0.0, 200.0, 100.0));
        // User 1 requests, crosses the zone (pseudonym change), requests
        // again far away and much later.
        s.handle_request(UserId(1), sp(50.0, 50.0, 10), SVC);
        s.location_update(UserId(1), sp(150.0, 50.0, 600));
        s.location_update(UserId(1), sp(250.0, 50.0, 1_200));
        s.handle_request(UserId(1), sp(1_800.0, 50.0, 9_000), SVC);
        // User 2 never changes pseudonym.
        s.handle_request(UserId(2), sp(10.0, 10.0, 5), SVC);

        let tracker = hka_anonymity::TrackerLinker::default();
        let audit = s.unlink_audit(&tracker);
        assert_eq!(audit.len(), 1, "only multi-pseudonym users are audited");
        let (user, worst) = audit[0];
        assert_eq!(user, UserId(1));
        assert!((0.0..=1.0).contains(&worst));
        // 1.5 km apart and 2+ hours later: the tracker cannot chain this.
        assert!(worst < 0.5, "unlinking should hold, got {worst}");
    }

    #[test]
    fn msg_ids_are_unique_and_increasing() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        for t in 0..5 {
            s.handle_request(UserId(1), sp(1.0, 1.0, t * 10), SVC);
        }
        let ids: Vec<u64> = s.provider_view().iter().map(|r| r.msg_id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
