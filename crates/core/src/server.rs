//! The Trusted Server: the Section-6.1 strategy end to end.

use crate::events::SuppressReason;
use crate::{
    algorithm1_first, algorithm1_subsequent, EventLog, MixZoneConfig, MixZoneManager,
    PrivacyLevel, PrivacyParams, RandomizeConfig, Randomizer, RiskAction, Tolerance, TsEvent,
    UnlinkDecision,
};
use hka_anonymity::{
    historical_k_anonymity, HkOutcome, MsgId, Pseudonym, ServiceId, SpRequest,
};
use hka_geo::{Rect, StBox, StPoint};
use hka_lbqid::{Lbqid, Monitor};
use hka_trajectory::{GridIndex, GridIndexConfig, TrajectoryStore, UserId};
use std::collections::BTreeMap;

/// Trusted-server configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsConfig {
    /// Grid-index sizing (also fixes the space–time metric used by
    /// Algorithm 1's nearest-PHL searches).
    pub index: GridIndexConfig,
    /// Tolerance applied to services that never registered their own.
    pub default_tolerance: Tolerance,
    /// Mix-zone parameters.
    pub mixzone: MixZoneConfig,
    /// Optional cloak randomization (the paper's anti-inference
    /// recommendation); `None` emits minimal Algorithm-1 boxes.
    pub randomize: Option<RandomizeConfig>,
}

impl Default for TsConfig {
    fn default() -> Self {
        TsConfig {
            index: GridIndexConfig::default(),
            default_tolerance: Tolerance::navigation(),
            mixzone: MixZoneConfig::default(),
            randomize: None,
        }
    }
}

/// Per-LBQID anonymity-set state under the current pseudonym.
///
/// Algorithm 1 "store\[s\] the ids of the k users" the first time a
/// request matches the pattern's initial element; every later matching
/// request re-uses (a shrinking subset of) those ids, so that one fixed
/// crowd of candidate histories covers the whole matched request set —
/// exactly what Definition 8 requires.
#[derive(Debug, Clone, Default)]
struct PatternState {
    /// The stored user ids (monotonically shrinking along the trace).
    selected: Vec<UserId>,
    /// How many generalized requests this pattern has produced so far
    /// (drives the k′ schedule).
    step: usize,
    /// The generalized contexts forwarded for this pattern, for audits.
    contexts: Vec<StBox>,
}

/// Per-user TS state.
#[derive(Debug)]
struct UserState {
    pseudonym: Pseudonym,
    params: Option<PrivacyParams>,
    /// Per-service overrides — Section 3: "the user choice may be applied
    /// uniformly to all services or selectively". `Some(None)` means
    /// privacy explicitly off for that service.
    overrides: BTreeMap<ServiceId, Option<PrivacyParams>>,
    monitors: Vec<Monitor>,
    patterns: Vec<PatternState>,
    at_risk: bool,
}

impl UserState {
    fn params_for(&self, service: ServiceId) -> Option<PrivacyParams> {
        match self.overrides.get(&service) {
            Some(p) => *p,
            None => self.params,
        }
    }
}

/// What the TS did with a request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// The request went out to the provider in this (possibly generalized)
    /// form.
    Forwarded(SpRequest),
    /// The request was withheld.
    Suppressed(SuppressReasonPub),
}

/// Errors from the fallible server API (`try_*` methods). The
/// convenience methods (`register_user`, `handle_request`, …) panic on
/// these conditions instead, which is appropriate for simulations and
/// tests where they are programming errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsError {
    /// The user id is not registered.
    UnknownUser(UserId),
    /// The user id is already registered.
    DuplicateUser(UserId),
    /// Custom privacy parameters failed validation.
    InvalidParams(String),
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::UnknownUser(u) => write!(f, "unknown user {u}"),
            TsError::DuplicateUser(u) => write!(f, "user {u} already registered"),
            TsError::InvalidParams(msg) => write!(f, "invalid privacy parameters: {msg}"),
        }
    }
}

impl std::error::Error for TsError {}

/// The lock-style privacy indicator the paper's conclusions call for:
/// "simple and effective interfaces are needed … to notify when
/// identification is at risk. Graphical solutions, like the open and
/// closed lock in an internet browser, should be considered."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivacyIndicator {
    /// No protection requested (grey lock).
    Off,
    /// Protection active, no unresolved risk (closed lock).
    Locked,
    /// An at-risk notification is pending: the user should "refrain from
    /// sending sensitive information, disrupt the service, or take other
    /// actions" (open lock).
    AtRisk,
}

/// Public mirror of the suppression reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuppressReasonPub {
    /// Inside a mix-zone (static, or an on-demand zone cooling down —
    /// including the one just activated to unlink this very user).
    MixZone,
    /// Risk policy: generalization and unlinking both failed and the user
    /// profile says suppress.
    RiskPolicy,
}

/// The Trusted Server of the paper's service model (Fig. 1).
///
/// "User sensitive information, including user location at specific times
/// … is collected and handled by a Trusted Server. TS has the usual
/// functionalities of a location server … Qualitative privacy preferences
/// provided by each user are translated by the TS into specific
/// parameters. The TS has also access to the location-based
/// quasi-identifier specifications."
pub struct TrustedServer {
    config: TsConfig,
    store: TrajectoryStore,
    index: GridIndex,
    users: BTreeMap<UserId, UserState>,
    services: BTreeMap<ServiceId, Tolerance>,
    mixzones: MixZoneManager,
    randomizer: Option<Randomizer>,
    log: EventLog,
    outbox: Vec<(UserId, SpRequest)>,
    /// msgid → issuer: the routing table that lets the TS forward service
    /// answers without the provider ever learning a network address.
    routes: BTreeMap<MsgId, UserId>,
    next_msg: u64,
    next_pseudonym: u64,
}

impl TrustedServer {
    /// Creates an empty TS.
    pub fn new(config: TsConfig) -> Self {
        TrustedServer {
            config,
            store: TrajectoryStore::new(),
            index: GridIndex::new(config.index),
            users: BTreeMap::new(),
            services: BTreeMap::new(),
            mixzones: MixZoneManager::new(config.mixzone),
            randomizer: config.randomize.map(Randomizer::new),
            log: EventLog::new(),
            outbox: Vec::new(),
            routes: BTreeMap::new(),
            next_msg: 0,
            next_pseudonym: 0,
        }
    }

    /// Registers a user with a privacy level; returns the initial
    /// pseudonym.
    ///
    /// # Panics
    /// If custom parameters fail validation, or the user already exists —
    /// use [`TrustedServer::try_register_user`] where these are runtime
    /// conditions rather than programming errors.
    pub fn register_user(&mut self, user: UserId, level: PrivacyLevel) -> Pseudonym {
        match self.try_register_user(user, level) {
            Ok(p) => p,
            Err(TsError::DuplicateUser(u)) => panic!("user {u} registered twice"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible registration (see [`TrustedServer::register_user`]).
    pub fn try_register_user(
        &mut self,
        user: UserId,
        level: PrivacyLevel,
    ) -> Result<Pseudonym, TsError> {
        let params = level.params();
        if let Some(p) = &params {
            p.validate().map_err(TsError::InvalidParams)?;
        }
        if self.users.contains_key(&user) {
            return Err(TsError::DuplicateUser(user));
        }
        let pseudonym = self.fresh_pseudonym();
        self.users.insert(
            user,
            UserState {
                pseudonym,
                params,
                overrides: BTreeMap::new(),
                monitors: Vec::new(),
                patterns: Vec::new(),
                at_risk: false,
            },
        );
        self.store.ensure_user(user);
        Ok(pseudonym)
    }

    /// Attaches an LBQID to a user ("the TS has also access to the
    /// location-based quasi-identifier specifications").
    ///
    /// # Panics
    /// If the user is unknown — use [`TrustedServer::try_add_lbqid`]
    /// otherwise.
    pub fn add_lbqid(&mut self, user: UserId, lbqid: Lbqid) {
        self.try_add_lbqid(user, lbqid).expect("unknown user");
    }

    /// Fallible variant of [`TrustedServer::add_lbqid`].
    pub fn try_add_lbqid(&mut self, user: UserId, lbqid: Lbqid) -> Result<(), TsError> {
        let st = self
            .users
            .get_mut(&user)
            .ok_or(TsError::UnknownUser(user))?;
        st.monitors.push(Monitor::new(lbqid));
        st.patterns.push(PatternState::default());
        Ok(())
    }

    /// Sets a per-service privacy override for a user — Section 3: "the
    /// user choice may be applied uniformly to all services or
    /// selectively". `PrivacyLevel::Off` disables protection for that
    /// service only; any other level applies its parameters there while
    /// the rest of the user's traffic keeps the registration-time level.
    pub fn set_service_privacy(
        &mut self,
        user: UserId,
        service: ServiceId,
        level: PrivacyLevel,
    ) -> Result<(), TsError> {
        let params = level.params();
        if let Some(p) = &params {
            p.validate().map_err(TsError::InvalidParams)?;
        }
        let state = self
            .users
            .get_mut(&user)
            .ok_or(TsError::UnknownUser(user))?;
        state.overrides.insert(service, params);
        Ok(())
    }

    /// Registers a service's tolerance constraints.
    pub fn register_service(&mut self, service: ServiceId, tolerance: Tolerance) {
        self.services.insert(service, tolerance);
    }

    /// Adds a static mix-zone.
    pub fn add_static_mixzone(&mut self, zone: Rect) {
        self.mixzones.add_static_zone(zone);
    }

    /// Ingests a location update (the positioning infrastructure reports
    /// these whether or not the user makes requests).
    ///
    /// Crossing *into* a static mix-zone unlinks the user on the spot —
    /// the Beresford–Stajano behaviour the paper imports: "if an
    /// individual crosses it, then it won't be possible to link his
    /// future positions (outside the area) with known positions (before
    /// entering the area)". Only protected users participate; users with
    /// privacy off keep their pseudonym.
    pub fn location_update(&mut self, user: UserId, at: StPoint) {
        let entering = self.mixzones.in_static_zone(&at.pos)
            && self
                .store
                .phl(user)
                .and_then(|p| p.last())
                .is_some_and(|prev| !self.mixzones.in_static_zone(&prev.pos));
        self.store.record(user, at);
        self.index.insert(user, at);
        if entering && self.users.get(&user).is_some_and(|s| s.params.is_some()) {
            self.change_pseudonym(user, at);
        }
    }

    /// Handles a service request issued by `user` from the exact context
    /// `at` — the Section-6.1 strategy.
    ///
    /// # Panics
    /// If the user is unknown — use [`TrustedServer::try_handle_request`]
    /// otherwise.
    pub fn handle_request(&mut self, user: UserId, at: StPoint, service: ServiceId) -> RequestOutcome {
        match self.try_handle_request(user, at, service) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`TrustedServer::handle_request`].
    pub fn try_handle_request(
        &mut self,
        user: UserId,
        at: StPoint,
        service: ServiceId,
    ) -> Result<RequestOutcome, TsError> {
        let _span = hka_obs::span("ts.handle_request");
        hka_obs::global().counter("ts.requests").incr();
        if !self.users.contains_key(&user) {
            return Err(TsError::UnknownUser(user));
        }
        // The request instant is part of the PHL ("for each request r_i
        // there must be an element in the PHL of User(r_i)").
        let already_recorded = self
            .store
            .phl(user)
            .and_then(|p| p.last())
            .is_some_and(|p| *p == at);
        if !already_recorded {
            self.location_update(user, at);
        }

        let tolerance = *self
            .services
            .get(&service)
            .unwrap_or(&self.config.default_tolerance);

        let state = self.users.get(&user).expect("checked above");
        let Some(params) = state.params_for(service) else {
            // Privacy off (for this service): forward the exact context.
            return Ok(self.forward(user, at, StBox::point(at), service, false, true));
        };

        // Mix-zone suppression (static zones and cooling on-demand zones).
        if self.mixzones.suppressed_at(&at) {
            hka_obs::global().counter("ts.suppressed").incr();
            self.log.push(TsEvent::Suppressed {
                user,
                at: at.t,
                reason: SuppressReason::MixZone,
            });
            return Ok(RequestOutcome::Suppressed(SuppressReasonPub::MixZone));
        }

        // LBQID monitoring: the first pattern that recognizes the request
        // claims it (the paper's simplifying assumption: "each request can
        // match an element in only one of the LBQIDs").
        let state = self.users.get_mut(&user).expect("checked above");
        let mut hit: Option<(usize, hka_lbqid::MatchEvent)> = None;
        for (mi, monitor) in state.monitors.iter_mut().enumerate() {
            if let Some(ev) = monitor.observe(at) {
                hit = Some((mi, ev));
                break;
            }
        }

        let Some((mi, ev)) = hit else {
            // Not part of any quasi-identifier: forward exactly.
            return Ok(self.forward(user, at, StBox::point(at), service, false, true));
        };

        if ev.full_match {
            let name = state.monitors[mi].lbqid().name().to_owned();
            self.log.push(TsEvent::LbqidMatched {
                user,
                at: at.t,
                lbqid: name,
            });
        }

        // Generalize with Algorithm 1.
        let (gen, step) = {
            let pattern = &self.users[&user].patterns[mi];
            if pattern.selected.is_empty() {
                let k0 = params.k_at_step(0);
                (algorithm1_first(&self.index, &at, user, k0, &tolerance), 0)
            } else {
                let step = pattern.step;
                let k_eff = params.k_at_step(step);
                (
                    algorithm1_subsequent(
                        &self.store,
                        &at,
                        &pattern.selected,
                        k_eff,
                        &tolerance,
                        &self.config.index.scale,
                    ),
                    step,
                )
            }
        };

        if gen.hk_anonymity {
            let state = self.users.get_mut(&user).expect("checked above");
            let pattern = &mut state.patterns[mi];
            pattern.selected = gen.selected.clone();
            pattern.step = step + 1;
            pattern.contexts.push(gen.context);
            return Ok(self.forward(user, at, gen.context, service, true, true));
        }

        // Generalization failed: try to unlink (Section 6.1 step 2).
        match self.mixzones.try_unlink(&self.store, user, &at, params.k) {
            UnlinkDecision::Unlinked { .. } => {
                self.change_pseudonym(user, at);
                // The request itself falls inside the just-activated zone:
                // service is interrupted while the crowd mixes.
                hka_obs::global().counter("ts.suppressed").incr();
                self.log.push(TsEvent::Suppressed {
                    user,
                    at: at.t,
                    reason: SuppressReason::MixZone,
                });
                Ok(RequestOutcome::Suppressed(SuppressReasonPub::MixZone))
            }
            UnlinkDecision::Infeasible { .. } => {
                // "The user is considered at risk of identification, and
                // notified about it."
                let name = {
                    let state = self.users.get_mut(&user).expect("checked above");
                    state.at_risk = true;
                    state.monitors[mi].lbqid().name().to_owned()
                };
                hka_obs::global().counter("ts.at_risk").incr();
                self.log.push(TsEvent::AtRisk {
                    user,
                    at: at.t,
                    lbqid: name,
                });
                match params.on_risk {
                    RiskAction::Forward => {
                        let state = self.users.get_mut(&user).expect("checked above");
                        let pattern = &mut state.patterns[mi];
                        pattern.selected = gen.selected.clone();
                        pattern.step = step + 1;
                        pattern.contexts.push(gen.context);
                        Ok(self.forward(user, at, gen.context, service, true, false))
                    }
                    RiskAction::Suppress => {
                        hka_obs::global().counter("ts.suppressed").incr();
                        self.log.push(TsEvent::Suppressed {
                            user,
                            at: at.t,
                            reason: SuppressReason::RiskPolicy,
                        });
                        Ok(RequestOutcome::Suppressed(SuppressReasonPub::RiskPolicy))
                    }
                }
            }
        }
    }

    fn forward(
        &mut self,
        user: UserId,
        at: StPoint,
        context: StBox,
        service: ServiceId,
        generalized: bool,
        hk_ok: bool,
    ) -> RequestOutcome {
        debug_assert!(context.contains(&at), "context must cover the true point");
        let pseudonym = self.users[&user].pseudonym;
        let msg_id = MsgId(self.next_msg);
        self.next_msg += 1;
        // Anti-inference randomization (Conclusions: "randomization should
        // be used as part of the TS strategy"): only generalized contexts
        // are perturbed — exact contexts belong to users who opted out.
        let context = match (&self.randomizer, generalized) {
            (Some(rz), true) => {
                let tolerance = *self
                    .services
                    .get(&service)
                    .unwrap_or(&self.config.default_tolerance);
                rz.randomize(&context, &at, msg_id.0, &tolerance)
            }
            _ => context,
        };
        let req = SpRequest::new(msg_id, pseudonym, context, service);
        self.outbox.push((user, req.clone()));
        self.routes.insert(msg_id, user);
        let metrics = hka_obs::global();
        metrics.counter("ts.forwarded").incr();
        if generalized {
            metrics.counter("ts.forwarded_generalized").incr();
        }
        self.log.push(TsEvent::Forwarded {
            user,
            at: at.t,
            context,
            generalized,
            hk_ok,
        });
        RequestOutcome::Forwarded(req)
    }

    /// Changes a user's pseudonym and resets all pattern state: "if
    /// unlinking succeeds … all partially matched patterns based on old
    /// pseudonym for that user are reset."
    fn change_pseudonym(&mut self, user: UserId, at: StPoint) {
        hka_obs::global().counter("ts.unlinks").incr();
        let new = self.fresh_pseudonym();
        let state = self.users.get_mut(&user).expect("unknown user");
        let old = state.pseudonym;
        state.pseudonym = new;
        for m in &mut state.monitors {
            m.reset();
        }
        for p in &mut state.patterns {
            *p = PatternState::default();
        }
        state.at_risk = false;
        self.log.push(TsEvent::PseudonymChanged {
            user,
            old,
            new,
            at: at.t,
        });
    }

    fn fresh_pseudonym(&mut self) -> Pseudonym {
        let p = Pseudonym(self.next_pseudonym);
        self.next_pseudonym += 1;
        p
    }

    // ------------------------------------------------------------------
    // Introspection for audits and experiments.
    // ------------------------------------------------------------------

    /// Routes a provider's answer back to the issuing user — "the msgid
    /// is used to hide the user network address and will be used by the
    /// TS to forward the answer to the user's device" (Section 3).
    /// Returns the recipient, or `None` for unknown message ids.
    pub fn route_response(&self, msg_id: MsgId) -> Option<UserId> {
        self.routes.get(&msg_id).copied()
    }

    /// The user's current pseudonym.
    pub fn pseudonym_of(&self, user: UserId) -> Option<Pseudonym> {
        self.users.get(&user).map(|s| s.pseudonym)
    }

    /// Whether the user has an unresolved at-risk notification.
    pub fn is_at_risk(&self, user: UserId) -> bool {
        self.users.get(&user).is_some_and(|s| s.at_risk)
    }

    /// The lock-style indicator to show the user, or `None` for unknown
    /// users.
    pub fn privacy_indicator(&self, user: UserId) -> Option<PrivacyIndicator> {
        let state = self.users.get(&user)?;
        Some(if state.params.is_none() {
            PrivacyIndicator::Off
        } else if state.at_risk {
            PrivacyIndicator::AtRisk
        } else {
            PrivacyIndicator::Locked
        })
    }

    /// The trajectory database (PHLs of all users).
    pub fn store(&self) -> &TrajectoryStore {
        &self.store
    }

    /// The spatio-temporal index.
    pub fn index(&self) -> &GridIndex {
        &self.index
    }

    /// The decision log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Routes every subsequent logged event into a hash-chained JSONL
    /// journal (see `hka_obs::journal`). Returns the previous sink, if
    /// one was attached.
    pub fn attach_journal(
        &mut self,
        journal: hka_obs::BoxedJournal,
    ) -> Option<hka_obs::BoxedJournal> {
        self.log.attach_journal(journal)
    }

    /// Flushes the attached journal, if any.
    pub fn flush_journal(&mut self) -> std::io::Result<()> {
        self.log.flush_journal()
    }

    /// A point-in-time snapshot of the pipeline's metrics: request
    /// counters (`ts.requests`, `ts.forwarded`, `ts.forwarded_generalized`,
    /// `ts.suppressed`, `ts.unlinks`, `ts.at_risk`), stage counters
    /// (`algo1.iterations`, `index.probes`, `mixzone.*`), and latency
    /// histograms for every span (`ts.handle_request`,
    /// `algo1.generalize`, `index.query`, `linker.link`,
    /// `mixzone.try_unlink`).
    ///
    /// Metrics live in the process-wide registry (`hka_obs::global()`),
    /// so the snapshot aggregates across every server in the process;
    /// call `hka_obs::global().reset()` between runs for per-run numbers.
    pub fn metrics_snapshot(&self) -> hka_obs::MetricsSnapshot {
        hka_obs::global().snapshot()
    }

    /// Everything forwarded to providers, with ground-truth issuers (for
    /// experiment evaluation only — a real SP sees just the requests).
    pub fn outbox(&self) -> &[(UserId, SpRequest)] {
        &self.outbox
    }

    /// Provider view: the bare request stream.
    pub fn provider_view(&self) -> Vec<SpRequest> {
        self.outbox.iter().map(|(_, r)| r.clone()).collect()
    }

    /// For each of the user's LBQIDs: the pattern name, whether it has
    /// been fully matched under the current pseudonym, and the audited
    /// historical k-anonymity of the generalized contexts forwarded for it.
    pub fn audit_patterns(&self, user: UserId, k: usize) -> Vec<(String, bool, HkOutcome)> {
        let Some(state) = self.users.get(&user) else {
            return Vec::new();
        };
        state
            .monitors
            .iter()
            .zip(&state.patterns)
            .map(|(m, p)| {
                (
                    m.lbqid().name().to_owned(),
                    m.is_fully_matched(),
                    historical_k_anonymity(&self.store, user, &p.contexts, k),
                )
            })
            .collect()
    }

    /// Replays an attacker's linking technique over everything forwarded
    /// so far (Section 5.2: "we assume the TS can replicate the
    /// techniques used by a possible attacker") and reports, per user
    /// that has held more than one pseudonym, the **maximum linkability
    /// between requests issued under different pseudonyms**. Values below
    /// the user's Θ mean past unlinkings hold against this attacker;
    /// values at or above Θ identify pseudonym changes an SP could chain
    /// back together.
    pub fn unlink_audit<L: hka_anonymity::Linker + ?Sized>(
        &self,
        linker: &L,
    ) -> Vec<(UserId, f64)> {
        let mut by_user: BTreeMap<UserId, Vec<&SpRequest>> = BTreeMap::new();
        for (u, r) in &self.outbox {
            by_user.entry(*u).or_default().push(r);
        }
        let mut out = Vec::new();
        for (user, reqs) in by_user {
            let pseudonyms: std::collections::BTreeSet<Pseudonym> =
                reqs.iter().map(|r| r.pseudonym).collect();
            if pseudonyms.len() < 2 {
                continue;
            }
            let mut worst = 0.0f64;
            for i in 0..reqs.len() {
                for j in (i + 1)..reqs.len() {
                    if reqs[i].pseudonym != reqs[j].pseudonym {
                        worst = worst.max(linker.link(reqs[i], reqs[j]));
                    }
                }
            }
            out.push((user, worst));
        }
        out
    }

    /// The generalized contexts forwarded for each of the user's patterns
    /// under the current pseudonym.
    pub fn pattern_contexts(&self, user: UserId) -> Vec<(String, Vec<StBox>)> {
        let Some(state) = self.users.get(&user) else {
            return Vec::new();
        };
        state
            .monitors
            .iter()
            .zip(&state.patterns)
            .map(|(m, p)| (m.lbqid().name().to_owned(), p.contexts.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{SpaceTimeScale, TimeSec};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn ts() -> TrustedServer {
        TrustedServer::new(TsConfig {
            index: GridIndexConfig {
                cell_size: 100.0,
                cell_duration: 300,
                scale: SpaceTimeScale::new(1.0),
            },
            default_tolerance: Tolerance::new(1e8, 7_200),
            mixzone: MixZoneConfig::default(),
            randomize: None,
        })
    }

    const SVC: ServiceId = ServiceId(0);

    #[test]
    fn privacy_off_forwards_exact() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        let at = sp(10.0, 10.0, 100);
        match s.handle_request(UserId(1), at, SVC) {
            RequestOutcome::Forwarded(req) => {
                assert_eq!(req.context, StBox::point(at));
                assert!(req.covers(&at));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.log().stats().forwarded_exact, 1);
    }

    #[test]
    fn request_points_enter_the_phl() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        s.handle_request(UserId(1), sp(10.0, 10.0, 100), SVC);
        assert_eq!(s.store().phl(UserId(1)).unwrap().len(), 1);
        // Repeated identical last point is not double-recorded.
        s.location_update(UserId(1), sp(11.0, 10.0, 200));
        s.handle_request(UserId(1), sp(11.0, 10.0, 200), SVC);
        assert_eq!(s.store().phl(UserId(1)).unwrap().len(), 2);
    }

    #[test]
    fn non_pattern_requests_stay_exact_even_with_privacy() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Medium);
        // No LBQIDs registered: nothing to protect.
        let at = sp(10.0, 10.0, 100);
        match s.handle_request(UserId(1), at, SVC) {
            RequestOutcome::Forwarded(req) => assert_eq!(req.context, StBox::point(at)),
            other => panic!("{other:?}"),
        }
    }

    /// Builds a TS with a crowd of `n` co-located users around the origin
    /// so Algorithm 1 can find neighbours.
    fn ts_with_crowd(n: u64) -> TrustedServer {
        let mut s = ts();
        for u in 100..100 + n {
            s.register_user(UserId(u), PrivacyLevel::Off);
            for t in 0..10 {
                s.location_update(
                    UserId(u),
                    sp(5.0 * (u - 100) as f64, 3.0 * t as f64, 50 * t),
                );
            }
        }
        s
    }

    fn one_shot_pattern() -> Lbqid {
        hka_lbqid::parse_lbqid(
            "lbqid clinic { element area(-50, -50, 50, 50) window(00:00, 23:59); }",
        )
        .unwrap()
    }

    #[test]
    fn pattern_requests_are_generalized() {
        let mut s = ts_with_crowd(10);
        s.register_user(UserId(1), PrivacyLevel::Low);
        s.add_lbqid(UserId(1), one_shot_pattern());
        let at = sp(0.0, 0.0, 100);
        match s.handle_request(UserId(1), at, SVC) {
            RequestOutcome::Forwarded(req) => {
                assert!(req.context.area() > 0.0, "context must be generalized");
                assert!(req.covers(&at));
            }
            other => panic!("{other:?}"),
        }
        let stats = s.log().stats();
        assert_eq!(stats.generalized(), 1);
        assert_eq!(stats.forwarded_hk_ok, 1);
        // The pattern is a one-element, once-anywhere LBQID: matched.
        let audits = s.audit_patterns(UserId(1), 2);
        assert_eq!(audits.len(), 1);
        let (name, matched, hk) = &audits[0];
        assert_eq!(name, "clinic");
        assert!(matched);
        assert!(hk.satisfied, "witnesses: {:?}", hk.witnesses);
    }

    #[test]
    fn generalized_context_covers_k_witnesses() {
        let mut s = ts_with_crowd(10);
        s.register_user(UserId(1), PrivacyLevel::Custom(PrivacyParams::fixed(4, 0.5)));
        s.add_lbqid(UserId(1), one_shot_pattern());
        let at = sp(0.0, 0.0, 100);
        let RequestOutcome::Forwarded(req) = s.handle_request(UserId(1), at, SVC) else {
            panic!("expected forward");
        };
        // At least 4 other users' PHLs cross the forwarded context.
        let witnesses = s
            .store()
            .users_crossing(&req.context)
            .into_iter()
            .filter(|u| *u != UserId(1))
            .count();
        assert!(witnesses >= 4, "only {witnesses} witnesses");
    }

    #[test]
    fn scarce_crowd_triggers_risk_path() {
        // Nobody else around: generalization fails, unlinking infeasible.
        let mut s = ts();
        s.register_user(
            UserId(1),
            PrivacyLevel::Custom(PrivacyParams {
                k: 3,
                theta: 0.5,
                k_init: 3,
                k_decrement: 0,
                on_risk: RiskAction::Suppress,
            }),
        );
        s.add_lbqid(UserId(1), one_shot_pattern());
        match s.handle_request(UserId(1), sp(0.0, 0.0, 100), SVC) {
            RequestOutcome::Suppressed(SuppressReasonPub::RiskPolicy) => {}
            other => panic!("{other:?}"),
        }
        assert!(s.is_at_risk(UserId(1)));
        let stats = s.log().stats();
        assert_eq!(stats.at_risk, 1);
        assert_eq!(stats.suppressed_risk, 1);
    }

    #[test]
    fn risk_forward_policy_still_forwards_clamped() {
        let mut s = ts();
        s.register_user(
            UserId(1),
            PrivacyLevel::Custom(PrivacyParams {
                k: 3,
                theta: 0.5,
                k_init: 3,
                k_decrement: 0,
                on_risk: RiskAction::Forward,
            }),
        );
        s.add_lbqid(UserId(1), one_shot_pattern());
        let at = sp(0.0, 0.0, 100);
        match s.handle_request(UserId(1), at, SVC) {
            RequestOutcome::Forwarded(req) => assert!(req.covers(&at)),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.log().stats().forwarded_hk_failed, 1);
        assert!(s.is_at_risk(UserId(1)));
    }

    #[test]
    fn unlink_changes_pseudonym_and_resets_patterns() {
        // A crowd crossing the origin in diverging directions, but spread
        // too wide for the tolerance: generalization fails, unlink works.
        let mut s = TrustedServer::new(TsConfig {
            index: GridIndexConfig {
                cell_size: 100.0,
                cell_duration: 300,
                scale: SpaceTimeScale::new(1.0),
            },
            default_tolerance: Tolerance::new(10.0, 5), // brutally tight
            mixzone: MixZoneConfig::default(),
            randomize: None,
        });
        for (u, angle) in [(100u64, 0.0f64), (101, 1.6), (102, 3.1), (103, 4.7)] {
            s.register_user(UserId(u), PrivacyLevel::Off);
            s.location_update(
                UserId(u),
                sp(-60.0 * angle.cos(), -60.0 * angle.sin(), 40),
            );
            s.location_update(
                UserId(u),
                sp(-10.0 * angle.cos(), -10.0 * angle.sin(), 90),
            );
        }
        s.register_user(UserId(1), PrivacyLevel::Custom(PrivacyParams::fixed(3, 0.5)));
        s.add_lbqid(UserId(1), one_shot_pattern());
        let before = s.pseudonym_of(UserId(1)).unwrap();
        match s.handle_request(UserId(1), sp(0.0, 0.0, 100), SVC) {
            RequestOutcome::Suppressed(SuppressReasonPub::MixZone) => {}
            other => panic!("{other:?}"),
        }
        let after = s.pseudonym_of(UserId(1)).unwrap();
        assert_ne!(before, after, "pseudonym must change");
        let stats = s.log().stats();
        assert_eq!(stats.pseudonym_changes, 1);
        assert_eq!(stats.suppressed_mixzone, 1);
        // Pattern state is reset.
        assert!(s.pattern_contexts(UserId(1))[0].1.is_empty());
        // Requests inside the active zone are suppressed for a while.
        match s.handle_request(UserId(1), sp(5.0, 5.0, 200), SVC) {
            RequestOutcome::Suppressed(SuppressReasonPub::MixZone) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crossing_a_static_zone_unlinks_protected_users() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Medium);
        s.register_user(UserId(2), PrivacyLevel::Off);
        s.add_static_mixzone(Rect::from_bounds(100.0, 0.0, 200.0, 100.0));
        let before = s.pseudonym_of(UserId(1)).unwrap();
        let off_before = s.pseudonym_of(UserId(2)).unwrap();
        // Walk both users through the zone.
        for u in [1u64, 2] {
            s.location_update(UserId(u), sp(50.0, 50.0, 10 + u as i64));
            s.location_update(UserId(u), sp(150.0, 50.0, 60 + u as i64));
            s.location_update(UserId(u), sp(250.0, 50.0, 120 + u as i64));
        }
        assert_ne!(s.pseudonym_of(UserId(1)).unwrap(), before, "protected user unlinked");
        assert_eq!(s.pseudonym_of(UserId(2)).unwrap(), off_before, "opted-out user untouched");
        assert_eq!(s.log().stats().pseudonym_changes, 1);
        // Dwelling inside (no new crossing) does not churn pseudonyms.
        let after = s.pseudonym_of(UserId(1)).unwrap();
        s.location_update(UserId(1), sp(251.0, 50.0, 200));
        s.location_update(UserId(1), sp(252.0, 50.0, 260));
        assert_eq!(s.pseudonym_of(UserId(1)).unwrap(), after);
    }

    #[test]
    fn static_zone_suppresses_requests() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Low);
        s.add_static_mixzone(Rect::from_bounds(0.0, 0.0, 100.0, 100.0));
        match s.handle_request(UserId(1), sp(50.0, 50.0, 10), SVC) {
            RequestOutcome::Suppressed(SuppressReasonPub::MixZone) => {}
            other => panic!("{other:?}"),
        }
        // Off-zone requests pass.
        match s.handle_request(UserId(1), sp(500.0, 50.0, 20), SVC) {
            RequestOutcome::Forwarded(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn outbox_hides_identity_but_keeps_ground_truth() {
        let mut s = ts();
        let pseudo = s.register_user(UserId(7), PrivacyLevel::Off);
        s.handle_request(UserId(7), sp(1.0, 2.0, 3), SVC);
        let (truth, req) = &s.outbox()[0];
        assert_eq!(*truth, UserId(7));
        assert_eq!(req.pseudonym, pseudo);
        let view = s.provider_view();
        assert_eq!(view.len(), 1);
        assert_eq!(view[0].pseudonym, pseudo);
    }

    #[test]
    fn service_specific_tolerance_is_used() {
        let mut s = ts_with_crowd(10);
        s.register_user(UserId(1), PrivacyLevel::Custom(PrivacyParams::fixed(5, 0.5)));
        s.add_lbqid(UserId(1), one_shot_pattern());
        // A service with zero tolerance: any generalization gets clamped.
        let strict = ServiceId(9);
        s.register_service(strict, Tolerance::new(0.0, 0));
        let at = sp(0.0, 0.0, 100);
        match s.handle_request(UserId(1), at, strict) {
            // Generalization fails (area > 0 needed for 5 users), and in
            // this crowd unlinking may or may not find diverging headings;
            // either way no HK-ok forward can happen.
            RequestOutcome::Forwarded(req) => {
                assert_eq!(req.context, StBox::point(at));
                assert_eq!(s.log().stats().forwarded_hk_failed, 1);
            }
            RequestOutcome::Suppressed(_) => {}
        }
    }

    #[test]
    fn privacy_indicator_follows_state() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        s.register_user(UserId(2), PrivacyLevel::Medium);
        assert_eq!(s.privacy_indicator(UserId(1)), Some(PrivacyIndicator::Off));
        assert_eq!(s.privacy_indicator(UserId(2)), Some(PrivacyIndicator::Locked));
        assert_eq!(s.privacy_indicator(UserId(9)), None);
        // Drive user 3 into the at-risk state (nobody around, suppress).
        s.register_user(
            UserId(3),
            PrivacyLevel::Custom(PrivacyParams {
                k: 3,
                theta: 0.5,
                k_init: 3,
                k_decrement: 0,
                on_risk: RiskAction::Forward,
            }),
        );
        s.add_lbqid(UserId(3), one_shot_pattern());
        s.handle_request(UserId(3), sp(0.0, 0.0, 100), SVC);
        assert_eq!(s.privacy_indicator(UserId(3)), Some(PrivacyIndicator::AtRisk));
    }

    #[test]
    fn randomized_contexts_still_cover_and_grow() {
        let mut cfg = TsConfig {
            index: GridIndexConfig {
                cell_size: 100.0,
                cell_duration: 300,
                scale: SpaceTimeScale::new(1.0),
            },
            default_tolerance: Tolerance::new(1e8, 7_200),
            mixzone: MixZoneConfig::default(),
            randomize: Some(crate::RandomizeConfig::default()),
        };
        let mut s = TrustedServer::new(cfg);
        for u in 100..110u64 {
            s.register_user(UserId(u), PrivacyLevel::Off);
            for t in 0..10 {
                s.location_update(
                    UserId(u),
                    sp(5.0 * (u - 100) as f64, 3.0 * t as f64, 50 * t),
                );
            }
        }
        s.register_user(UserId(1), PrivacyLevel::Low);
        s.add_lbqid(UserId(1), one_shot_pattern());
        let at = sp(0.0, 0.0, 100);
        let RequestOutcome::Forwarded(req) = s.handle_request(UserId(1), at, SVC) else {
            panic!("expected forward");
        };
        assert!(req.covers(&at), "randomized context must cover the point");
        assert!(req.context.area() > 0.0);
        // Determinism: the same run reproduces the same randomized box.
        cfg.randomize = Some(crate::RandomizeConfig::default());
        let mut s2 = TrustedServer::new(cfg);
        for u in 100..110u64 {
            s2.register_user(UserId(u), PrivacyLevel::Off);
            for t in 0..10 {
                s2.location_update(
                    UserId(u),
                    sp(5.0 * (u - 100) as f64, 3.0 * t as f64, 50 * t),
                );
            }
        }
        s2.register_user(UserId(1), PrivacyLevel::Low);
        s2.add_lbqid(UserId(1), one_shot_pattern());
        let RequestOutcome::Forwarded(req2) = s2.handle_request(UserId(1), at, SVC) else {
            panic!("expected forward");
        };
        assert_eq!(req.context, req2.context);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        s.register_user(UserId(1), PrivacyLevel::Off);
    }

    #[test]
    fn fallible_api_reports_conditions() {
        let mut s = ts();
        assert_eq!(
            s.try_handle_request(UserId(1), sp(0.0, 0.0, 0), SVC),
            Err(TsError::UnknownUser(UserId(1)))
        );
        assert_eq!(
            s.try_add_lbqid(UserId(1), one_shot_pattern()),
            Err(TsError::UnknownUser(UserId(1)))
        );
        assert!(s.try_register_user(UserId(1), PrivacyLevel::Off).is_ok());
        assert_eq!(
            s.try_register_user(UserId(1), PrivacyLevel::Off),
            Err(TsError::DuplicateUser(UserId(1)))
        );
        let bad = PrivacyLevel::Custom(PrivacyParams::fixed(0, 0.5));
        assert!(matches!(
            s.try_register_user(UserId(2), bad),
            Err(TsError::InvalidParams(_))
        ));
        // Error type is displayable and std::error::Error.
        let e: Box<dyn std::error::Error> = Box::new(TsError::UnknownUser(UserId(7)));
        assert!(e.to_string().contains("u7"));
    }

    #[test]
    fn selective_privacy_applies_per_service() {
        let mut s = ts_with_crowd(10);
        s.register_user(UserId(1), PrivacyLevel::Low);
        s.add_lbqid(UserId(1), one_shot_pattern());
        // Privacy off for service 7 only.
        s.set_service_privacy(UserId(1), ServiceId(7), PrivacyLevel::Off)
            .unwrap();
        let at = sp(0.0, 0.0, 100);
        // Pattern-matching request to the opted-out service: exact.
        match s.handle_request(UserId(1), at, ServiceId(7)) {
            RequestOutcome::Forwarded(req) => assert_eq!(req.context, StBox::point(at)),
            other => panic!("{other:?}"),
        }
        // The same request shape to the default service: generalized.
        let at2 = sp(0.0, 0.0, 200);
        match s.handle_request(UserId(1), at2, SVC) {
            RequestOutcome::Forwarded(req) => assert!(req.context.area() > 0.0),
            other => panic!("{other:?}"),
        }
        // Unknown users are rejected.
        assert_eq!(
            s.set_service_privacy(UserId(99), SVC, PrivacyLevel::Off),
            Err(TsError::UnknownUser(UserId(99)))
        );
    }

    #[test]
    fn responses_route_by_msgid_without_identity_leak() {
        let mut s = ts();
        s.register_user(UserId(5), PrivacyLevel::Off);
        let RequestOutcome::Forwarded(req) = s.handle_request(UserId(5), sp(1.0, 1.0, 1), SVC)
        else {
            panic!("expected forward");
        };
        assert_eq!(s.route_response(req.msg_id), Some(UserId(5)));
        assert_eq!(s.route_response(MsgId(9_999)), None);
    }

    #[test]
    fn unlink_audit_reports_cross_pseudonym_linkability() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Medium);
        s.register_user(UserId(2), PrivacyLevel::Off);
        s.add_static_mixzone(Rect::from_bounds(100.0, 0.0, 200.0, 100.0));
        // User 1 requests, crosses the zone (pseudonym change), requests
        // again far away and much later.
        s.handle_request(UserId(1), sp(50.0, 50.0, 10), SVC);
        s.location_update(UserId(1), sp(150.0, 50.0, 600));
        s.location_update(UserId(1), sp(250.0, 50.0, 1_200));
        s.handle_request(UserId(1), sp(1_800.0, 50.0, 9_000), SVC);
        // User 2 never changes pseudonym.
        s.handle_request(UserId(2), sp(10.0, 10.0, 5), SVC);

        let tracker = hka_anonymity::TrackerLinker::default();
        let audit = s.unlink_audit(&tracker);
        assert_eq!(audit.len(), 1, "only multi-pseudonym users are audited");
        let (user, worst) = audit[0];
        assert_eq!(user, UserId(1));
        assert!((0.0..=1.0).contains(&worst));
        // 1.5 km apart and 2+ hours later: the tracker cannot chain this.
        assert!(worst < 0.5, "unlinking should hold, got {worst}");
    }

    #[test]
    fn msg_ids_are_unique_and_increasing() {
        let mut s = ts();
        s.register_user(UserId(1), PrivacyLevel::Off);
        for t in 0..5 {
            s.handle_request(UserId(1), sp(1.0, 1.0, t * 10), SVC);
        }
        let ids: Vec<u64> = s.provider_view().iter().map(|r| r.msg_id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
