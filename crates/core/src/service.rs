//! The transport-agnostic service seam.
//!
//! [`RequestService`] is the one interface every driver talks to —
//! `hka-sim simulate`, `serve-drill`, the benches, and the TCP
//! gateway all hand [`RequestEnvelope`]s to a `&mut dyn
//! RequestService` and read [`ResponseEnvelope`]s back from
//! [`RequestService::drain`]. The sequential [`TrustedServer`]
//! implements it here; the pipelined `ShardedTs` implements it in
//! `hka-shard` (orphan rule). Both implementations preserve their
//! pre-seam journal bytes exactly: `submit` on the sequential server
//! is `location_update`/`try_handle_request` verbatim, and
//! `submit_batch` takes the Algorithm-1 batch path
//! ([`TrustedServer::handle_requests`]), which is order-equivalent by
//! contract.
//!
//! The seam is deliberately *pull-based*: `submit` never returns an
//! outcome. Sequential backends answer immediately and buffer; the
//! sharded backend answers at its next epoch barrier. Callers that
//! need outcomes call `drain`, which yields every response settled
//! since the previous drain, in submission order. Location reports
//! are fire-and-forget and never produce a response.

use hka_anonymity::Pseudonym;
use hka_trajectory::UserId;

use crate::envelope::{EnvelopeBody, RequestEnvelope, ResponseEnvelope};
use crate::events::TsEvent;
use crate::server::{RequestOutcome, ServerMode, TrustedServer, TsError};

/// Object-safe interface over a Trusted Server backend.
pub trait RequestService {
    /// Ingests one envelope. Location reports are applied immediately
    /// (fire-and-forget); requests are decided now or at the backend's
    /// next barrier, and their responses surface via
    /// [`RequestService::drain`].
    fn submit(&mut self, env: &RequestEnvelope);

    /// Ingests a batch. Backends that can share work across
    /// co-arriving requests (one Algorithm-1 window pass) override
    /// this; the default is sequential submission. Outcome order is
    /// submission order either way.
    fn submit_batch(&mut self, envs: &[RequestEnvelope]) {
        for env in envs {
            self.submit(env);
        }
    }

    /// Takes every response settled since the last drain, in
    /// submission order. Backends with internal pipelines reach a
    /// barrier first, so after `drain` returns, every previously
    /// submitted request has been answered.
    fn drain(&mut self) -> Vec<ResponseEnvelope>;

    /// The backend's position on the Normal→Degraded→ReadOnly ladder.
    fn mode(&self) -> ServerMode;

    /// The pseudonym currently bound to `user`, if registered.
    fn pseudonym_of(&self, user: UserId) -> Option<Pseudonym>;

    /// Flushes the attached journal through to its sink.
    fn flush_journal(&mut self) -> std::io::Result<()>;

    /// Journals SLO transitions observed *outside* the backend — the
    /// gateway's own watchdog (p999 latency, queue depth) reports
    /// through the same hash-chained journal as the server's.
    fn note_slo_events(&mut self, events: &[hka_obs::SloEvent]);

    /// Journals a gateway liveness snapshot ([`TsEvent::GwStats`]).
    /// Telemetry only; a backend without a journal may drop it.
    fn note_gateway_stats(&mut self, conns: u64, drains: u64, queue_depth: u64);
}

/// Best-effort `k_got` for the freshest forwarded decisions: walks the
/// last `tail` ring events newest-first and returns the most recent
/// `ts.forwarded` for `user`. The journal record is authoritative;
/// this only enriches the wire response, so 0 ("unknown") is an
/// acceptable answer when the ring has already evicted the event.
fn k_got_of(server: &TrustedServer, user: UserId, tail: usize) -> u64 {
    let events = server.log().events();
    let skip = events.len().saturating_sub(tail);
    let mut found = 0u64;
    for ev in events.skip(skip) {
        if let TsEvent::Forwarded { user: u, k_got, .. } = ev {
            if *u == user {
                found = *k_got as u64;
            }
        }
    }
    found
}

impl TrustedServer {
    fn respond(&mut self, env: &RequestEnvelope, result: Result<RequestOutcome, TsError>) {
        let k_got = match &result {
            Ok(RequestOutcome::Forwarded(_)) => k_got_of(self, env.user, 8),
            _ => 0,
        };
        let resp =
            ResponseEnvelope::from_result(env.req_id, env.trace, &result, self.mode(), k_got);
        self.svc_outbox_mut().push(resp);
    }
}

impl RequestService for TrustedServer {
    fn submit(&mut self, env: &RequestEnvelope) {
        match env.body {
            EnvelopeBody::Location => self.location_update(env.user, env.at),
            EnvelopeBody::Request { service } => {
                let result = self.try_handle_request(env.user, env.at, service);
                self.respond(env, result);
            }
        }
    }

    /// Runs of consecutive requests go through the Algorithm-1 batch
    /// path ([`TrustedServer::handle_requests`]); location reports act
    /// as batch boundaries because ingestion must happen between the
    /// surrounding decisions.
    fn submit_batch(&mut self, envs: &[RequestEnvelope]) {
        let mut run: Vec<&RequestEnvelope> = Vec::new();
        let flush_run = |server: &mut TrustedServer, run: &mut Vec<&RequestEnvelope>| {
            if run.is_empty() {
                return;
            }
            let batch: Vec<_> = run
                .iter()
                .map(|e| {
                    let service = match e.body {
                        EnvelopeBody::Request { service } => service,
                        EnvelopeBody::Location => unreachable!("runs hold requests only"),
                    };
                    (e.user, e.at, service)
                })
                .collect();
            let results = server.handle_requests(&batch);
            for (env, result) in run.drain(..).zip(results) {
                server.respond(env, result);
            }
        };
        for env in envs {
            match env.body {
                EnvelopeBody::Location => {
                    flush_run(self, &mut run);
                    self.location_update(env.user, env.at);
                }
                EnvelopeBody::Request { .. } => run.push(env),
            }
        }
        flush_run(self, &mut run);
    }

    fn drain(&mut self) -> Vec<ResponseEnvelope> {
        std::mem::take(self.svc_outbox_mut())
    }

    fn mode(&self) -> ServerMode {
        TrustedServer::mode(self)
    }

    fn pseudonym_of(&self, user: UserId) -> Option<Pseudonym> {
        TrustedServer::pseudonym_of(self, user)
    }

    fn flush_journal(&mut self) -> std::io::Result<()> {
        TrustedServer::flush_journal(self)
    }

    fn note_slo_events(&mut self, events: &[hka_obs::SloEvent]) {
        TrustedServer::note_slo_events(self, events);
    }

    fn note_gateway_stats(&mut self, conns: u64, drains: u64, queue_depth: u64) {
        TrustedServer::note_gateway_stats(self, conns, drains, queue_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::WireOutcome;
    use crate::server::TsConfig;
    use crate::PrivacyLevel;
    use hka_anonymity::ServiceId;
    use hka_geo::{StPoint, TimeSec};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn served() -> TrustedServer {
        let mut ts = TrustedServer::new(TsConfig::default());
        for u in 0..6 {
            ts.register_user(UserId(u), PrivacyLevel::Medium);
        }
        ts
    }

    #[test]
    fn seam_matches_direct_calls() {
        // The same traffic through the seam and through direct calls
        // must produce identical decisions and identical event logs.
        let mut direct = served();
        let mut seam = served();
        let svc: &mut dyn RequestService = &mut seam;

        let mut want = Vec::new();
        let mut req_id = 0u64;
        for t in 0..40i64 {
            for u in 0..6u64 {
                let at = sp(100.0 * u as f64 + t as f64, 50.0 * u as f64, t * 10);
                direct.location_update(UserId(u), at);
                svc.submit(&RequestEnvelope::location(req_id, UserId(u), at));
                req_id += 1;
                if (t + u as i64) % 7 == 0 {
                    let r = direct.try_handle_request(UserId(u), at, ServiceId(1));
                    want.push(r);
                    svc.submit(&RequestEnvelope::request(
                        req_id,
                        UserId(u),
                        at,
                        ServiceId(1),
                    ));
                    req_id += 1;
                }
            }
        }
        let got = svc.drain();
        assert_eq!(got.len(), want.len());
        for (resp, want) in got.iter().zip(&want) {
            let expect = match want {
                Ok(RequestOutcome::Forwarded(_)) => WireOutcome::Forwarded,
                Ok(RequestOutcome::Suppressed(_)) => WireOutcome::Suppressed,
                Err(_) => WireOutcome::Rejected,
            };
            assert_eq!(resp.outcome, expect);
        }
        assert!(svc.drain().is_empty(), "drain is take-once");

        // Event-for-event identical logs.
        let d: Vec<_> = direct.log().events().collect();
        let s: Vec<_> = seam.log().events().collect();
        assert_eq!(d, s);
    }

    #[test]
    fn batch_seam_matches_sequential_seam() {
        let mut seq = served();
        let mut bat = served();
        let mut envs = Vec::new();
        let mut req_id = 0u64;
        for t in 0..30i64 {
            for u in 0..6u64 {
                let at = sp(80.0 * u as f64 + t as f64, 60.0 * u as f64, t * 10);
                envs.push(RequestEnvelope::location(req_id, UserId(u), at));
                req_id += 1;
                if t % 3 == 0 {
                    envs.push(RequestEnvelope::request(
                        req_id,
                        UserId(u),
                        at,
                        ServiceId(2),
                    ));
                    req_id += 1;
                }
            }
        }
        for env in &envs {
            RequestService::submit(&mut seq, env);
        }
        bat.submit_batch(&envs);
        let a = RequestService::drain(&mut seq);
        let b = RequestService::drain(&mut bat);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.req_id, y.req_id);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.detail, y.detail);
        }
        let sl: Vec<_> = seq.log().events().collect();
        let bl: Vec<_> = bat.log().events().collect();
        assert_eq!(sl, bl, "batch path is order-equivalent (PR9 contract)");
    }

    #[test]
    fn rejections_and_telemetry_flow_through_the_seam() {
        let mut ts = served();
        let svc: &mut dyn RequestService = &mut ts;
        svc.submit(&RequestEnvelope::request(
            7,
            UserId(99),
            sp(0.0, 0.0, 5),
            ServiceId(1),
        ));
        let out = svc.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].outcome, WireOutcome::Rejected);
        assert_eq!(out[0].detail, "unknown_user");
        assert_eq!(out[0].req_id, 7);

        assert_eq!(svc.mode(), ServerMode::Normal);
        assert!(svc.pseudonym_of(UserId(0)).is_some());
        assert!(svc.pseudonym_of(UserId(99)).is_none());
        svc.flush_journal().unwrap();

        svc.note_gateway_stats(3, 2, 11);
        let last = ts.log().events().last().unwrap();
        match last {
            TsEvent::GwStats {
                conns,
                drains,
                queue_depth,
                ..
            } => {
                assert_eq!((*conns, *drains, *queue_depth), (3, 2, 11));
            }
            other => panic!("expected gw.stats, got {other:?}"),
        }
    }
}
