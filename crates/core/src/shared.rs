//! A thread-safe handle to the trusted server.
//!
//! The paper's TS serves a whole operator's user base; positioning
//! updates and service requests arrive concurrently. [`SharedTrustedServer`]
//! wraps the single-threaded [`TrustedServer`] state machine in a
//! `parking_lot::RwLock` so ingest threads, request handlers and
//! read-only auditors can share one server:
//!
//! * writers (`location_update`, `handle_request`) serialize through the
//!   write lock — the strategy's decisions are inherently ordered;
//! * readers (`audit_patterns`, `stats`, `pseudonym_of`, …) take the read
//!   lock and proceed in parallel.

use crate::{
    PrivacyLevel, RequestOutcome, ServerMode, Tolerance, TrustedServer, TsConfig, TsStats,
};
use hka_anonymity::{HkOutcome, Pseudonym, ServiceId, SpRequest};
use hka_geo::{Rect, StPoint};
use hka_lbqid::Lbqid;
use hka_trajectory::UserId;
use parking_lot::RwLock;
use std::sync::Arc;

/// A cloneable, `Send + Sync` handle to a trusted server.
#[derive(Clone)]
pub struct SharedTrustedServer {
    inner: Arc<RwLock<TrustedServer>>,
}

impl SharedTrustedServer {
    /// Creates a server behind a lock.
    pub fn new(config: TsConfig) -> Self {
        SharedTrustedServer {
            inner: Arc::new(RwLock::new(TrustedServer::new(config))),
        }
    }

    /// Wraps an existing server.
    pub fn from_server(server: TrustedServer) -> Self {
        SharedTrustedServer {
            inner: Arc::new(RwLock::new(server)),
        }
    }

    /// Runs a closure with shared (read) access.
    pub fn read<R>(&self, f: impl FnOnce(&TrustedServer) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs a closure with exclusive (write) access.
    pub fn write<R>(&self, f: impl FnOnce(&mut TrustedServer) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// See [`TrustedServer::register_user`].
    pub fn register_user(&self, user: UserId, level: PrivacyLevel) -> Pseudonym {
        self.write(|ts| ts.register_user(user, level))
    }

    /// See [`TrustedServer::add_lbqid`].
    pub fn add_lbqid(&self, user: UserId, lbqid: Lbqid) {
        self.write(|ts| ts.add_lbqid(user, lbqid))
    }

    /// See [`TrustedServer::register_service`].
    pub fn register_service(&self, service: ServiceId, tolerance: Tolerance) {
        self.write(|ts| ts.register_service(service, tolerance))
    }

    /// See [`TrustedServer::add_static_mixzone`].
    pub fn add_static_mixzone(&self, zone: Rect) {
        self.write(|ts| ts.add_static_mixzone(zone))
    }

    /// See [`TrustedServer::location_update`].
    pub fn location_update(&self, user: UserId, at: StPoint) {
        self.write(|ts| ts.location_update(user, at))
    }

    /// See [`TrustedServer::handle_request`].
    pub fn handle_request(&self, user: UserId, at: StPoint, service: ServiceId) -> RequestOutcome {
        self.write(|ts| ts.handle_request(user, at, service))
    }

    /// See [`TrustedServer::audit_patterns`].
    pub fn audit_patterns(&self, user: UserId, k: usize) -> Vec<(String, bool, HkOutcome)> {
        self.read(|ts| ts.audit_patterns(user, k))
    }

    /// See [`TrustedServer::pseudonym_of`].
    pub fn pseudonym_of(&self, user: UserId) -> Option<Pseudonym> {
        self.read(|ts| ts.pseudonym_of(user))
    }

    /// See [`TrustedServer::mode`].
    pub fn mode(&self) -> ServerMode {
        self.read(|ts| ts.mode())
    }

    /// Aggregate statistics snapshot.
    pub fn stats(&self) -> TsStats {
        self.read(|ts| ts.log().stats())
    }

    /// Provider-view snapshot of everything forwarded so far.
    pub fn provider_view(&self) -> Vec<SpRequest> {
        self.read(|ts| ts.provider_view())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::TimeSec;
    use std::thread;

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    #[test]
    fn concurrent_users_are_all_served() {
        let ts = SharedTrustedServer::new(TsConfig::default());
        const USERS: u64 = 8;
        const REQS: i64 = 25;
        for u in 0..USERS {
            ts.register_user(UserId(u), PrivacyLevel::Off);
        }
        thread::scope(|scope| {
            for u in 0..USERS {
                let handle = ts.clone();
                scope.spawn(move || {
                    for i in 0..REQS {
                        let at = sp(u as f64 * 10.0, i as f64, i * 30);
                        handle.location_update(UserId(u), at);
                        let out = handle.handle_request(UserId(u), at, ServiceId(0));
                        assert!(matches!(out, RequestOutcome::Forwarded(_)));
                    }
                });
            }
        });
        let stats = ts.stats();
        assert_eq!(stats.forwarded(), (USERS as usize) * (REQS as usize));
        // Every pseudonym is still single-user (no cross-thread mixing).
        let mut owners = std::collections::HashMap::new();
        ts.read(|ts| {
            for (user, req) in ts.outbox() {
                let prev = owners.insert(req.pseudonym, *user);
                assert!(prev.is_none_or(|p| p == *user));
            }
        });
    }

    #[test]
    fn readers_run_while_holding_snapshots() {
        let ts = SharedTrustedServer::new(TsConfig::default());
        ts.register_user(UserId(1), PrivacyLevel::Medium);
        ts.location_update(UserId(1), sp(0.0, 0.0, 0));
        let view = ts.provider_view();
        assert!(view.is_empty());
        assert_eq!(ts.pseudonym_of(UserId(1)), Some(Pseudonym(0)));
        assert!(ts.audit_patterns(UserId(1), 2).is_empty());
    }
}
