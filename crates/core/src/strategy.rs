//! The Section-6.1 per-request strategy, extracted from
//! [`TrustedServer`](crate::TrustedServer) so that other frontends (the
//! sharded server in `hka-shard`) can drive the *identical* decision
//! procedure over their own storage layout.
//!
//! The split is capability-shaped: [`RequestHost`] is everything the
//! strategy needs from its surroundings — PHL reads and writes, fault
//! checks, mix-zone probes, Algorithm-1 candidate searches, id
//! allocation, event emission — while the generic functions
//! ([`handle_request_on`], [`ingest_on`], [`location_update_on`],
//! [`change_pseudonym_on`], [`fail_closed_on`], [`forward_on`]) are the
//! strategy itself, byte-for-byte the logic that used to live inside
//! `TrustedServer`. Every counter, span, event, and ordering decision
//! is preserved: two hosts that answer the trait identically produce
//! identical outcomes, which is the invariant the sharded pipeline's
//! differential tests pin down.

use crate::events::SuppressReason;
use crate::{
    Generalization, PrivacyParams, RequestOutcome, RiskAction, ServerMode, SuppressReasonPub,
    Tolerance, TsEvent, UnlinkDecision,
};
use hka_anonymity::{MsgId, Pseudonym, ServiceId, SpRequest};
use hka_faults::sites;
use hka_geo::{Point, StBox, StPoint, TimeSec};
use hka_lbqid::Monitor;
use hka_trajectory::UserId;
use std::collections::BTreeMap;

/// Per-LBQID anonymity-set state under the current pseudonym.
///
/// Algorithm 1 "store\[s\] the ids of the k users" the first time a
/// request matches the pattern's initial element; every later matching
/// request re-uses (a shrinking subset of) those ids, so that one fixed
/// crowd of candidate histories covers the whole matched request set —
/// exactly what Definition 8 requires.
#[derive(Debug, Clone, Default)]
pub struct PatternState {
    /// The stored user ids (monotonically shrinking along the trace).
    pub selected: Vec<UserId>,
    /// How many generalized requests this pattern has produced so far
    /// (drives the k′ schedule).
    pub step: usize,
    /// The generalized contexts forwarded for this pattern, for audits.
    pub contexts: Vec<StBox>,
}

/// Per-user TS state: the pseudonym, privacy profile, LBQID monitors,
/// and per-pattern anonymity-set bookkeeping.
#[derive(Debug)]
pub struct UserState {
    /// The user's current pseudonym.
    pub pseudonym: Pseudonym,
    /// Registration-time privacy parameters (`None` = privacy off).
    pub params: Option<PrivacyParams>,
    /// Per-service overrides — Section 3: "the user choice may be applied
    /// uniformly to all services or selectively". `Some(None)` means
    /// privacy explicitly off for that service.
    pub overrides: BTreeMap<ServiceId, Option<PrivacyParams>>,
    /// One online matcher per attached LBQID.
    pub monitors: Vec<Monitor>,
    /// One anonymity-set state per attached LBQID (same order).
    pub patterns: Vec<PatternState>,
    /// Whether the user has an unresolved at-risk notification.
    pub at_risk: bool,
}

impl UserState {
    /// Fresh state for a newly registered user.
    pub fn new(pseudonym: Pseudonym, params: Option<PrivacyParams>) -> Self {
        UserState {
            pseudonym,
            params,
            overrides: BTreeMap::new(),
            monitors: Vec::new(),
            patterns: Vec::new(),
            at_risk: false,
        }
    }

    /// The effective privacy parameters for one service, after
    /// per-service overrides.
    pub fn params_for(&self, service: ServiceId) -> Option<PrivacyParams> {
        match self.overrides.get(&service) {
            Some(p) => *p,
            None => self.params,
        }
    }
}

/// What a forwarded request disclosed: whether its context was
/// generalized at all, whether the generalization met full historical
/// k-anonymity, and the anonymity bookkeeping the audit trail needs
/// (requested k, achieved anonymity-set size, matched LBQID). Journaled
/// with the `ts.forwarded` event.
#[derive(Debug, Clone)]
pub struct Disclosure {
    /// Whether the context was generalized at all.
    pub generalized: bool,
    /// Whether full historical k-anonymity held.
    pub hk_ok: bool,
    /// The k requested at this step.
    pub k_req: usize,
    /// The anonymity-set size achieved.
    pub k_got: usize,
    /// The matched LBQID's name, if any.
    pub lbqid: Option<String>,
}

impl Disclosure {
    /// An exact, non-pattern forward: no generalization, no anonymity
    /// set, no LBQID.
    pub fn exact() -> Self {
        Disclosure {
            generalized: false,
            hk_ok: true,
            k_req: 0,
            k_got: 0,
            lbqid: None,
        }
    }
}

/// What [`ingest_on`] did with one observation.
pub struct Ingest {
    /// The observation, with its timestamp normalized (clamped forward
    /// onto the PHL's last timestamp if it arrived out of order).
    pub at: StPoint,
    /// Whether the point landed in the store and index (`false` = an
    /// injected PHL-write fault dropped it).
    pub recorded: bool,
    /// Whether the move crossed into a static mix-zone.
    pub entering: bool,
}

/// Everything the per-request strategy needs from its surroundings.
///
/// [`TrustedServer`](crate::TrustedServer) implements this over its own
/// store/index/mix-zone fields; a sharded frontend implements it over a
/// partitioned layout. Implementations must preserve the documented
/// semantics exactly — the strategy's correctness (and the sharded
/// pipeline's differential equivalence) depends on it.
pub trait RequestHost {
    /// The last recorded PHL point for `user`, if any.
    fn phl_last(&self, user: UserId) -> Option<StPoint>;
    /// Records one observation into the PHL store and the
    /// spatio-temporal index. Called only with timestamps already
    /// normalized to be non-decreasing per user.
    fn record(&mut self, user: UserId, at: StPoint);
    /// Consults the fault plan at `site`; a fired fault is counted
    /// (`faults.injected`, `faults.<site>`) and reported as `true`.
    fn check_fault(&mut self, site: &str) -> bool;
    /// Whether `pos` lies inside a static mix-zone.
    fn in_static_zone(&self, pos: &Point) -> bool;
    /// Whether requests at `at` are suppressed by a mix-zone (static,
    /// or an on-demand zone cooling down). May expire stale zones.
    fn suppressed_at(&mut self, at: &StPoint) -> bool;
    /// The service's tolerance constraints (or the default).
    fn tolerance_for(&self, service: ServiceId) -> Tolerance;
    /// The server's current operating mode.
    fn mode(&self) -> ServerMode;
    /// Algorithm 1, first-element branch: the k nearest users' PHL
    /// points around `at`, excluding `user`, bounded and
    /// tolerance-checked.
    ///
    /// **Batching contract.** Hosts may serve this query from shared
    /// state (a union index reused across co-arriving requests, a memo
    /// of window expansions) **only if** the served answer is equal to
    /// a fresh query against the host's *current* store — i.e. the
    /// shared state must be invalidated or versioned past every
    /// intervening [`RequestHost::record`]. Since the strategy records
    /// the request's own point before calling this, any memo keyed by
    /// anything weaker than a mutation-counting generation stamp would
    /// serve stale anonymity sets and silently break the order
    /// equivalence that [`handle_request_batch_on`] relies on.
    fn algo1_first(
        &mut self,
        at: &StPoint,
        user: UserId,
        k: usize,
        tolerance: &Tolerance,
    ) -> Generalization;
    /// Algorithm 1, subsequent-element branch over the stored ids.
    fn algo1_subsequent(
        &mut self,
        at: &StPoint,
        stored: &[UserId],
        k: usize,
        tolerance: &Tolerance,
    ) -> Generalization;
    /// Attempts an on-demand mix-zone unlink around `at`.
    fn try_unlink(&mut self, user: UserId, at: &StPoint, k: usize) -> UnlinkDecision;
    /// Allocates a fresh pseudonym.
    fn fresh_pseudonym(&mut self) -> Pseudonym;
    /// Allocates the next message id.
    fn next_msg_id(&mut self) -> MsgId;
    /// Anti-inference randomization of a *generalized* context (called
    /// only for generalized forwards); hosts without a randomizer
    /// return the context unchanged.
    fn randomize(&mut self, context: StBox, at: &StPoint, msg_id: u64, service: ServiceId)
        -> StBox;
    /// Emits one decision event (ring buffer, stats, journal sink) and
    /// advances the host's clock to `at`.
    fn emit(&mut self, e: TsEvent, at: TimeSec);
    /// Hands a forwarded request to the provider-facing outbox and the
    /// msgid→user routing table.
    fn deliver(&mut self, user: UserId, req: SpRequest);
}

/// Normalizes an out-of-order observation timestamp against the user's
/// PHL: a regressed timestamp is clamped forward onto the last recorded
/// one (counted in `ts.reordered`) instead of panicking the
/// time-ordered store.
pub fn normalize_time_on<H: RequestHost>(host: &H, user: UserId, mut at: StPoint) -> StPoint {
    if let Some(last) = host.phl_last(user) {
        if at.t < last.t {
            hka_obs::global().counter("ts.reordered").incr();
            at.t = last.t;
        }
    }
    at
}

/// Records one observation: timestamp normalization, PHL-write fault
/// check, store + index insert, static-zone crossing detection.
pub fn ingest_on<H: RequestHost>(host: &mut H, user: UserId, at: StPoint) -> Ingest {
    let _stage = hka_obs::span(hka_obs::stage::INGEST);
    let at = normalize_time_on(host, user, at);
    let entering = host.in_static_zone(&at.pos)
        && host
            .phl_last(user)
            .is_some_and(|prev| !host.in_static_zone(&prev.pos));
    if host.check_fault(sites::PHL_WRITE) {
        // The observation is lost before it reaches the store; the
        // forwarding boundary fails closed on the `recorded` flag.
        return Ingest {
            at,
            recorded: false,
            entering: false,
        };
    }
    host.record(user, at);
    Ingest {
        at,
        recorded: true,
        entering,
    }
}

/// Ingests a location update against the owned per-user state:
/// crossing *into* a static mix-zone unlinks a protected user on the
/// spot (the Beresford–Stajano behaviour the paper imports).
pub fn location_update_on<H: RequestHost>(
    host: &mut H,
    user: UserId,
    state: &mut UserState,
    at: StPoint,
) {
    let ing = ingest_on(host, user, at);
    if ing.entering && state.params.is_some() {
        change_pseudonym_on(host, user, state, ing.at);
    }
}

/// Changes a user's pseudonym and resets all pattern state: "if
/// unlinking succeeds … all partially matched patterns based on old
/// pseudonym for that user are reset." Operates on the owned state
/// (fetch-once discipline — the state may be out of the map).
pub fn change_pseudonym_on<H: RequestHost>(
    host: &mut H,
    user: UserId,
    state: &mut UserState,
    at: StPoint,
) {
    hka_obs::global().counter("ts.unlinks").incr();
    let new = host.fresh_pseudonym();
    let old = state.pseudonym;
    state.pseudonym = new;
    for m in &mut state.monitors {
        m.reset();
    }
    for p in &mut state.patterns {
        *p = PatternState::default();
    }
    state.at_risk = false;
    host.emit(
        TsEvent::PseudonymChanged {
            user,
            old,
            new,
            at: at.t,
        },
        at.t,
    );
}

/// The single fail-closed gate at the forwarding boundary.
///
/// Returns the suppression outcome when the request must not go out in
/// its current form:
///
/// * any injected fault on the request's path (`faulted`) denies in
///   every mode — a dropped PHL write, an unavailable index or mix-zone
///   all mean the protection cannot be established;
/// * [`ServerMode::Degraded`] additionally denies everything that is
///   not a generalized, HK-anonymity-preserving forward (exact contexts
///   and sub-k clamps included): without a trustworthy audit trail only
///   demonstrably protected requests flow;
/// * [`ServerMode::ReadOnly`] denies unconditionally.
pub fn fail_closed_on<H: RequestHost>(
    host: &mut H,
    user: UserId,
    at: StPoint,
    service: ServiceId,
    generalized: bool,
    hk_ok: bool,
    faulted: bool,
) -> Option<RequestOutcome> {
    let deny = match host.mode() {
        ServerMode::Normal => faulted,
        ServerMode::Degraded => faulted || !(generalized && hk_ok),
        ServerMode::ReadOnly => true,
    };
    if !deny {
        return None;
    }
    let metrics = hka_obs::global();
    metrics.counter("ts.suppressed").incr();
    metrics.counter("ts.suppressed_degraded").incr();
    host.emit(
        TsEvent::Suppressed {
            user,
            at: at.t,
            reason: SuppressReason::Degraded,
            service,
        },
        at.t,
    );
    Some(RequestOutcome::Suppressed(SuppressReasonPub::Degraded))
}

/// The forwarding tail: message-id allocation, anti-inference
/// randomization of generalized contexts, delivery, counters, and the
/// `ts.forwarded` event.
pub fn forward_on<H: RequestHost>(
    host: &mut H,
    user: UserId,
    pseudonym: Pseudonym,
    at: StPoint,
    context: StBox,
    service: ServiceId,
    disclosure: Disclosure,
) -> RequestOutcome {
    let mut stage = hka_obs::span(hka_obs::stage::FORWARD);
    let Disclosure {
        generalized,
        hk_ok,
        k_req,
        k_got,
        lbqid,
    } = disclosure;
    stage.attr("generalized", hka_obs::Json::Bool(generalized));
    stage.attr("service", hka_obs::Json::from(u64::from(service.0)));
    debug_assert!(context.contains(&at), "context must cover the true point");
    let msg_id = host.next_msg_id();
    // Anti-inference randomization (Conclusions: "randomization should
    // be used as part of the TS strategy"): only generalized contexts
    // are perturbed — exact contexts belong to users who opted out.
    let context = if generalized {
        host.randomize(context, &at, msg_id.0, service)
    } else {
        context
    };
    let req = SpRequest::new(msg_id, pseudonym, context, service);
    host.deliver(user, req.clone());
    let metrics = hka_obs::global();
    metrics.counter("ts.forwarded").incr();
    if generalized {
        metrics.counter("ts.forwarded_generalized").incr();
    }
    host.emit(
        TsEvent::Forwarded {
            user,
            at: at.t,
            context,
            generalized,
            hk_ok,
            service,
            k_req,
            k_got,
            lbqid,
        },
        at.t,
    );
    RequestOutcome::Forwarded(req)
}

/// Runs a batch of co-arriving service requests through **one**
/// Algorithm-1 pass in submission order: each request executes the
/// full [`handle_request_on`] decision procedure against the same host,
/// so window queries and granule expansions the host chooses to share
/// (see the batching contract on [`RequestHost::algo1_first`]) are
/// reused across the run while results stay equal to processing the
/// requests one by one — order equivalence holds by construction
/// because nothing here reorders, coalesces, or short-circuits the
/// per-request ladder. `fetch` checks a request's `UserState` out of
/// the host's map (`None` rejects as unknown without touching state);
/// `settle` returns it and receives the outcome in submission order.
pub fn handle_request_batch_on<H: RequestHost, T>(
    host: &mut H,
    requests: &[(T, UserId, StPoint, ServiceId)],
    mut fetch: impl FnMut(&mut H, UserId) -> Option<UserState>,
    mut settle: impl FnMut(&mut H, &T, UserId, Option<(UserState, RequestOutcome)>),
) {
    for (tag, user, at, service) in requests {
        match fetch(host, *user) {
            Some(mut state) => {
                let outcome = handle_request_on(host, *user, &mut state, *at, *service);
                settle(host, tag, *user, Some((state, outcome)));
            }
            None => settle(host, tag, *user, None),
        }
    }
}

/// The Section-6.1 strategy over the owned per-user state — the full
/// decision procedure for one service request: ingest the request
/// point, match LBQID monitors, generalize with Algorithm 1, fall back
/// to mix-zone unlinking, then notify at-risk, with the fail-closed
/// gate in front of every forward.
pub fn handle_request_on<H: RequestHost>(
    host: &mut H,
    user: UserId,
    state: &mut UserState,
    at: StPoint,
    service: ServiceId,
) -> RequestOutcome {
    // The request instant is part of the PHL ("for each request r_i
    // there must be an element in the PHL of User(r_i)").
    let at = normalize_time_on(host, user, at);
    let already_recorded = host.phl_last(user).is_some_and(|p| p == at);
    let mut faulted = false;
    if !already_recorded {
        let ing = ingest_on(host, user, at);
        faulted = !ing.recorded;
        if ing.entering && state.params.is_some() {
            change_pseudonym_on(host, user, state, ing.at);
        }
    }

    let tolerance = host.tolerance_for(service);

    let Some(params) = state.params_for(service) else {
        // Privacy off (for this service): forward the exact context
        // — unless a fault or degraded mode forbids it.
        if let Some(denied) = fail_closed_on(host, user, at, service, false, true, faulted) {
            return denied;
        }
        return forward_on(
            host,
            user,
            state.pseudonym,
            at,
            StBox::point(at),
            service,
            Disclosure::exact(),
        );
    };

    // Mix-zone suppression (static zones and cooling on-demand zones).
    if host.suppressed_at(&at) {
        hka_obs::global().counter("ts.suppressed").incr();
        host.emit(
            TsEvent::Suppressed {
                user,
                at: at.t,
                reason: SuppressReason::MixZone,
                service,
            },
            at.t,
        );
        return RequestOutcome::Suppressed(SuppressReasonPub::MixZone);
    }

    // LBQID monitoring: the first pattern that recognizes the request
    // claims it (the paper's simplifying assumption: "each request can
    // match an element in only one of the LBQIDs").
    let mut hit: Option<(usize, hka_lbqid::MatchEvent)> = None;
    {
        let _stage = hka_obs::span(hka_obs::stage::LBQID_MATCH);
        for (mi, monitor) in state.monitors.iter_mut().enumerate() {
            if let Some(ev) = monitor.observe(at) {
                hit = Some((mi, ev));
                break;
            }
        }
    }

    let Some((mi, ev)) = hit else {
        // Not part of any quasi-identifier: forward exactly.
        if let Some(denied) = fail_closed_on(host, user, at, service, false, true, faulted) {
            return denied;
        }
        return forward_on(
            host,
            user,
            state.pseudonym,
            at,
            StBox::point(at),
            service,
            Disclosure::exact(),
        );
    };

    if ev.full_match {
        let name = state.monitors[mi].lbqid().name().to_owned();
        host.emit(
            TsEvent::LbqidMatched {
                user,
                at: at.t,
                lbqid: name,
            },
            at.t,
        );
    }

    // Algorithm 1 needs the spatio-temporal index to establish the
    // anonymity set; an unavailable index fails the request closed.
    if host.check_fault(sites::INDEX_QUERY) {
        return fail_closed_on(host, user, at, service, false, false, true)
            .expect("a faulted request always fails closed");
    }

    // Generalize with Algorithm 1.
    let (gen, step, k_req) = {
        let mut stage = hka_obs::span(hka_obs::stage::ALGO1);
        let pattern = &state.patterns[mi];
        let (gen, step, k_req) = if pattern.selected.is_empty() {
            let k0 = params.k_at_step(0);
            (host.algo1_first(&at, user, k0, &tolerance), 0, k0)
        } else {
            let step = pattern.step;
            let k_eff = params.k_at_step(step);
            (
                host.algo1_subsequent(&at, &pattern.selected, k_eff, &tolerance),
                step,
                k_eff,
            )
        };
        stage.attr("k_req", hka_obs::Json::from(k_req as u64));
        stage.attr("k_got", hka_obs::Json::from(gen.selected.len() as u64));
        stage.attr("hk_ok", hka_obs::Json::Bool(gen.hk_anonymity));
        stage.attr("step", hka_obs::Json::from(step as u64));
        (gen, step, k_req)
    };

    if gen.hk_anonymity {
        // The fail-closed gate runs *before* the pattern state is
        // committed: a suppressed request must leave no trace in the
        // anonymity-set bookkeeping or the audit contexts.
        if let Some(denied) = fail_closed_on(host, user, at, service, true, true, faulted) {
            return denied;
        }
        let pattern = &mut state.patterns[mi];
        pattern.selected = gen.selected.clone();
        pattern.step = step + 1;
        pattern.contexts.push(gen.context);
        let disclosure = Disclosure {
            generalized: true,
            hk_ok: true,
            k_req,
            k_got: gen.selected.len(),
            lbqid: Some(state.monitors[mi].lbqid().name().to_owned()),
        };
        return forward_on(
            host,
            user,
            state.pseudonym,
            at,
            gen.context,
            service,
            disclosure,
        );
    }

    // Generalization failed: try to unlink (Section 6.1 step 2). An
    // unavailable mix-zone subsystem leaves no protection at all.
    if host.check_fault(sites::MIXZONE) {
        return fail_closed_on(host, user, at, service, false, false, true)
            .expect("a faulted request always fails closed");
    }
    let decision = {
        let mut stage = hka_obs::span(hka_obs::stage::LINK_CHECK);
        let decision = host.try_unlink(user, &at, params.k);
        stage.attr(
            "unlinked",
            hka_obs::Json::Bool(matches!(decision, UnlinkDecision::Unlinked { .. })),
        );
        decision
    };
    match decision {
        UnlinkDecision::Unlinked { .. } => {
            change_pseudonym_on(host, user, state, at);
            // The request itself falls inside the just-activated zone:
            // service is interrupted while the crowd mixes.
            hka_obs::global().counter("ts.suppressed").incr();
            host.emit(
                TsEvent::Suppressed {
                    user,
                    at: at.t,
                    reason: SuppressReason::MixZone,
                    service,
                },
                at.t,
            );
            RequestOutcome::Suppressed(SuppressReasonPub::MixZone)
        }
        UnlinkDecision::Infeasible { .. } => {
            // "The user is considered at risk of identification, and
            // notified about it."
            state.at_risk = true;
            let name = state.monitors[mi].lbqid().name().to_owned();
            hka_obs::global().counter("ts.at_risk").incr();
            host.emit(
                TsEvent::AtRisk {
                    user,
                    at: at.t,
                    lbqid: name,
                },
                at.t,
            );
            match params.on_risk {
                RiskAction::Forward => {
                    // The clamped (sub-k) forward is exactly what
                    // degraded modes must not let through.
                    if let Some(denied) =
                        fail_closed_on(host, user, at, service, true, false, faulted)
                    {
                        return denied;
                    }
                    let pattern = &mut state.patterns[mi];
                    pattern.selected = gen.selected.clone();
                    pattern.step = step + 1;
                    pattern.contexts.push(gen.context);
                    let disclosure = Disclosure {
                        generalized: true,
                        hk_ok: false,
                        k_req,
                        k_got: gen.selected.len(),
                        lbqid: Some(state.monitors[mi].lbqid().name().to_owned()),
                    };
                    forward_on(
                        host,
                        user,
                        state.pseudonym,
                        at,
                        gen.context,
                        service,
                        disclosure,
                    )
                }
                RiskAction::Suppress => {
                    hka_obs::global().counter("ts.suppressed").incr();
                    host.emit(
                        TsEvent::Suppressed {
                            user,
                            at: at.t,
                            reason: SuppressReason::RiskPolicy,
                            service,
                        },
                        at.t,
                    );
                    RequestOutcome::Suppressed(SuppressReasonPub::RiskPolicy)
                }
            }
        }
    }
}
