//! Property tests for the trusted-server machinery: Algorithm-1
//! postconditions, randomization invariants, policy schedules and
//! mix-zone bookkeeping.

use hka_core::{
    algorithm1_first, algorithm1_first_brute, algorithm1_subsequent, PrivacyParams,
    RandomizeConfig, Randomizer, RiskAction, Tolerance,
};
use hka_geo::{SpaceTimeScale, StBox, StPoint, TimeSec};
use hka_trajectory::{GridIndex, GridIndexConfig, IndexBackend, Phl, TrajectoryStore, UserId};
use proptest::prelude::*;

fn arb_stpoint() -> impl Strategy<Value = StPoint> {
    (0.0f64..2_000.0, 0.0f64..2_000.0, 0i64..7_200)
        .prop_map(|(x, y, t)| StPoint::xyt(x, y, TimeSec(t)))
}

fn arb_store(max_users: u64) -> impl Strategy<Value = TrajectoryStore> {
    prop::collection::btree_map(
        0..max_users,
        prop::collection::vec(arb_stpoint(), 1..12),
        1..max_users as usize,
    )
    .prop_map(|m| {
        let mut store = TrajectoryStore::new();
        for (u, pts) in m {
            let phl = Phl::from_points(pts);
            for p in phl.points() {
                store.record(UserId(u), *p);
            }
        }
        store
    })
}

fn arb_tolerance() -> impl Strategy<Value = Tolerance> {
    (0.0f64..5e6, 0i64..3_600).prop_map(|(a, d)| Tolerance::new(a, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 postconditions, first branch: the emitted context
    /// always covers the true request point and always satisfies the
    /// tolerance; on success it covers the selected users' PHL points.
    #[test]
    fn algorithm1_first_postconditions(
        store in arb_store(10),
        seed in arb_stpoint(),
        k in 0usize..8,
        tolerance in arb_tolerance(),
    ) {
        let index = GridIndex::build(&store, GridIndexConfig {
            cell_size: 200.0,
            cell_duration: 600,
            scale: SpaceTimeScale::new(1.0),
        });
        let g = algorithm1_first(&index, &seed, UserId(0), k, &tolerance);
        prop_assert!(g.context.contains(&seed));
        prop_assert!(tolerance.accepts(&g.context) || g.hk_anonymity,
            "a context violating tolerance must be reported as failure");
        prop_assert!(tolerance.accepts(&g.context),
            "emitted context must respect tolerance after clamping");
        prop_assert!(g.selected.len() <= k);
        if g.hk_anonymity {
            prop_assert_eq!(g.selected.len(), k.min(g.selected.len()).max(if k == 0 {0} else {k}));
            // Every selected user's PHL crosses the context.
            for u in &g.selected {
                prop_assert!(store.phl(*u).unwrap().crosses(&g.context),
                    "selected {} must cross the context", u);
            }
        }
        prop_assert!(!g.selected.contains(&UserId(0)), "requester excluded");
    }

    /// Index-backed and brute-force first branches agree on distances
    /// (hence on HK-anonymity and box size).
    #[test]
    fn algorithm1_first_matches_brute(
        store in arb_store(10),
        seed in arb_stpoint(),
        k in 1usize..6,
    ) {
        let scale = SpaceTimeScale::new(1.0);
        let index = GridIndex::build(&store, GridIndexConfig {
            cell_size: 150.0,
            cell_duration: 300,
            scale,
        });
        let loose = Tolerance::new(f64::MAX, i64::MAX);
        let a = algorithm1_first(&index, &seed, UserId(0), k, &loose);
        let b = algorithm1_first_brute(&store, &seed, UserId(0), k, &loose, &scale);
        prop_assert_eq!(a.hk_anonymity, b.hk_anonymity);
        prop_assert_eq!(a.selected.len(), b.selected.len());
        // Equal k-th distances imply equal bounding volumes up to ties;
        // compare the distance multisets.
        let da: Vec<f64> = a.selected.iter().map(|u| {
            scale.dist_sq(&seed, &store.phl(*u).unwrap().nearest_point(&seed, &scale).unwrap())
        }).collect();
        let db: Vec<f64> = b.selected.iter().map(|u| {
            scale.dist_sq(&seed, &store.phl(*u).unwrap().nearest_point(&seed, &scale).unwrap())
        }).collect();
        for (x, y) in da.iter().zip(db.iter()) {
            prop_assert!((x - y).abs() <= 1e-6 * y.max(1.0), "{} vs {}", x, y);
        }
    }

    /// Every `SpatialIndex` backend, driven through the trait by the
    /// *same* `algorithm1_first` code, produces the identical
    /// generalization: same anonymity set, same HK-anonymity verdict,
    /// same `⟨Area, TimeInterval⟩` — under loose and tight tolerances
    /// alike. This is the server-level face of the differential
    /// equivalence suite (the brute backend is the oracle).
    #[test]
    fn algorithm1_first_equivalent_across_backends(
        store in arb_store(10),
        seed in arb_stpoint(),
        k in 0usize..7,
        tolerance in arb_tolerance(),
    ) {
        let cfg = GridIndexConfig {
            cell_size: 150.0,
            cell_duration: 300,
            scale: SpaceTimeScale::new(1.0),
        };
        let oracle = IndexBackend::Brute.build(&store, cfg);
        let want = algorithm1_first(oracle.as_ref(), &seed, UserId(0), k, &tolerance);
        for backend in [IndexBackend::Grid, IndexBackend::RTree] {
            let index = backend.build(&store, cfg);
            let got = algorithm1_first(index.as_ref(), &seed, UserId(0), k, &tolerance);
            prop_assert_eq!(&got, &want, "{} vs brute oracle", backend);
        }
    }

    /// Subsequent branch: selection is always a subset of the stored
    /// users, at most k of them, and the context covers the survivors.
    #[test]
    fn algorithm1_subsequent_shrinks_monotonically(
        store in arb_store(10),
        seed in arb_stpoint(),
        k in 1usize..6,
    ) {
        let scale = SpaceTimeScale::new(1.0);
        let stored: Vec<UserId> = store.users().collect();
        let loose = Tolerance::new(f64::MAX, i64::MAX);
        let g = algorithm1_subsequent(&store, &seed, &stored, k, &loose, &scale);
        prop_assert!(g.selected.len() <= k);
        prop_assert!(g.selected.iter().all(|u| stored.contains(u)));
        for u in &g.selected {
            prop_assert!(store.phl(*u).unwrap().crosses(&g.context));
        }
        prop_assert!(g.context.contains(&seed));
    }

    /// The k′ schedule is monotone non-increasing and floors at k.
    #[test]
    fn k_schedule_monotone(k in 1usize..20, extra in 0usize..30, dec in 0usize..6, step in 0usize..50) {
        let p = PrivacyParams {
            k,
            theta: 0.5,
            k_init: k + extra,
            k_decrement: dec,
            on_risk: RiskAction::Forward,
        };
        prop_assert!(p.k_at_step(step) >= p.k_at_step(step + 1));
        prop_assert!(p.k_at_step(step) >= k);
        prop_assert!(p.k_at_step(0) == k + extra);
        if dec > 0 {
            prop_assert!(p.k_at_step(1_000) == k, "a positive decrement reaches the floor");
        } else {
            prop_assert!(p.k_at_step(1_000) == k + extra, "no decrement, no decay");
        }
    }

    /// Randomization never loses the true point, never shrinks below the
    /// input box pre-clamp (with shift disabled), respects tolerance, and
    /// is deterministic per (secret, nonce).
    #[test]
    fn randomizer_invariants(
        seed in arb_stpoint(),
        w in 0.0f64..500.0,
        h in 0.0f64..500.0,
        d in 0i64..1_200,
        fx in 0.0f64..=1.0,
        fy in 0.0f64..=1.0,
        ft in 0.0f64..=1.0,
        nonce in 0u64..1_000,
        secret in 0u64..1_000,
    ) {
        // A box positioned so that `seed` is inside at fractions (fx,fy,ft).
        let rect = hka_geo::Rect::from_bounds(
            seed.pos.x - fx * w,
            seed.pos.y - fy * h,
            seed.pos.x + (1.0 - fx) * w,
            seed.pos.y + (1.0 - fy) * h,
        );
        let span = hka_geo::TimeInterval::new(
            seed.t - (ft * d as f64) as i64,
            seed.t + ((1.0 - ft) * d as f64) as i64,
        );
        let b = StBox::new(rect, span);
        prop_assume!(b.contains(&seed));
        let tolerance = Tolerance::new(1e9, 100_000);
        let rz = Randomizer::new(RandomizeConfig { secret, ..RandomizeConfig::default() });
        let out = rz.randomize(&b, &seed, nonce, &tolerance);
        prop_assert!(out.contains(&seed));
        prop_assert!(tolerance.accepts(&out));
        prop_assert_eq!(out, rz.randomize(&b, &seed, nonce, &tolerance));
        // Growth-only when shifting is disabled.
        let rz0 = Randomizer::new(RandomizeConfig { secret, max_shift: 0.0, ..RandomizeConfig::default() });
        let grown = rz0.randomize(&b, &seed, nonce, &tolerance);
        prop_assert!(grown.contains_box(&b));
    }
}
