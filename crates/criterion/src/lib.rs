//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. It implements the macro/builder surface the
//! workspace's benches use (`criterion_group!`, `criterion_main!`,
//! `Criterion::bench_function`, `benchmark_group` + `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`) and reports a median ns/iter per
//! benchmark on stdout. No statistics engine, no HTML reports — just
//! honest wall-clock medians, which is what the workspace's EXPERIMENTS
//! tables need when the registry is unreachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE: Duration = Duration::from_millis(200);
/// Warm-up time per benchmark.
const WARMUP: Duration = Duration::from_millis(50);

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    /// Median nanoseconds per iteration of the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, recording the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also sizes the batch so each sample is ≥ ~1 µs.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < WARMUP || calls == 0 {
            black_box(f());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_nanos() as f64 / calls as f64;
        let batch = ((1_000.0 / per_call.max(1.0)).ceil() as u64).clamp(1, 10_000);

        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < MEASURE && samples.len() < 200 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        println!(
            "{}/{:<40} {:>14.1} ns/iter",
            self.name, id.name, b.ns_per_iter
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!("{name:<48} {:>14.1} ns/iter", b.ns_per_iter);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_positive_timings() {
        let mut c = Criterion::default();
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::new("sized", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }
}
