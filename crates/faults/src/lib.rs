//! # hka-faults
//!
//! Deterministic, seedable fault injection for the hka pipeline.
//!
//! The paper's guarantee (Theorem 1) assumes the Trusted Server can
//! *always* generalize, unlink, or refuse. Real infrastructure fails:
//! disks return errors mid-journal-write, indexes time out, mix-zone
//! bookkeeping becomes unavailable, and positioning updates arrive
//! dropped, duplicated, or out of order. Spatio-temporal linkage
//! attacks exploit exactly those moments — a privacy layer that
//! degrades *open* leaks precise tuples. This crate provides the
//! machinery to rehearse every such failure deterministically:
//!
//! * [`FaultPlan`] — an ordered set of rules, each *injection site* ×
//!   *trigger predicate* × [`FaultKind`]. Evaluation is purely a
//!   function of the plan's seed and per-site hit counters, so a given
//!   plan replays identically on every run.
//! * [`FaultInjector`] — a cheaply cloneable handle threaded through
//!   the hot paths; [`FaultInjector::none`] is a zero-cost disabled
//!   injector for production configurations.
//! * [`FaultyWriter`] — an `io::Write` adapter that injects clean I/O
//!   errors and *torn* (partial) writes into any byte sink, modelling
//!   a crash mid-journal-append.
//! * [`randomized_plan`] — a seeded generator of fault schedules over
//!   the standard injection sites, for chaos suites that want many
//!   diverse schedules from a list of seeds.
//!
//! Zero dependencies by design, like `hka-obs`: any crate in the
//! workspace can thread an injector through its hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod schedule;
mod writer;

pub use plan::{FaultInjector, FaultKind, FaultPlan, FaultRule, Trigger};
pub use schedule::{checkpoint_chaos_plan, gateway_chaos_plan, randomized_plan, tail_chaos_plan};
pub use writer::FaultyWriter;

/// Named injection sites threaded through the pipeline's hot paths.
///
/// Site names are part of the observable surface: injected-fault
/// counters are exported as `faults.<site>` in the `hka-obs` metrics
/// registry.
pub mod sites {
    /// PHL store writes (location updates and request-point recording).
    pub const PHL_WRITE: &str = "phl.write";
    /// Journal sink byte-level I/O (see [`crate::FaultyWriter`]).
    pub const JOURNAL_IO: &str = "journal.io";
    /// Mix-zone subsystem availability at unlink time.
    pub const MIXZONE: &str = "mixzone.available";
    /// Grid/R-tree moving-object index queries (Algorithm 1's
    /// candidate search).
    pub const INDEX_QUERY: &str = "index.query";
    /// Request arrival: drop / duplicate / out-of-order timestamps.
    /// Applied by the event driver (simulator, chaos harness), not
    /// inside the server.
    pub const ARRIVAL: &str = "request.arrival";
    /// Checkpoint snapshot temp-file write: a clean I/O error or a
    /// torn write leaving a partial `.tmp` behind.
    pub const SNAPSHOT_WRITE: &str = "snapshot.write";
    /// Checkpoint snapshot atomic rename: the crash window between a
    /// fully fsynced temp file and its publication, orphaning the temp.
    pub const SNAPSHOT_RENAME: &str = "snapshot.rename";
    /// Checkpoint anchor-record append: the snapshot file exists but
    /// the journal never learns about it (no anchor in the chain).
    pub const CHECKPOINT_APPEND: &str = "checkpoint.append";
    /// Journal prefix truncation after a checkpoint: failure while
    /// swapping the suffix into place, possibly tearing the copy.
    pub const JOURNAL_TRUNCATE: &str = "journal.truncate";
    /// TCP gateway accept loop: a connection refused or dropped at the
    /// listener before any frame is read.
    pub const GATEWAY_ACCEPT: &str = "gateway.accept";
    /// Per-connection reads: a stalled or reset peer mid-stream.
    pub const CONN_READ: &str = "conn.read";
    /// Per-connection response writes: an I/O error, a silently
    /// dropped response, or a torn (half-written) frame before the
    /// peer disconnects.
    pub const CONN_WRITE: &str = "conn.write";
    /// Frame decode: a torn frame (line truncated mid-bytes) or a
    /// frame dropped between read and parse.
    pub const CONN_FRAME: &str = "conn.frame";

    /// Every standard site, in a fixed order. Gateway sites come last:
    /// appending (never inserting) keeps [`crate::randomized_plan`]'s
    /// per-seed draws for the pre-gateway sites identical to older
    /// releases.
    pub const ALL: [&str; 13] = [
        PHL_WRITE,
        JOURNAL_IO,
        MIXZONE,
        INDEX_QUERY,
        ARRIVAL,
        SNAPSHOT_WRITE,
        SNAPSHOT_RENAME,
        CHECKPOINT_APPEND,
        JOURNAL_TRUNCATE,
        GATEWAY_ACCEPT,
        CONN_READ,
        CONN_WRITE,
        CONN_FRAME,
    ];

    /// The checkpoint-path subset of [`ALL`], in write-protocol order:
    /// snapshot write → rename → anchor append → prefix truncation.
    pub const CHECKPOINT_PATH: [&str; 4] = [
        SNAPSHOT_WRITE,
        SNAPSHOT_RENAME,
        CHECKPOINT_APPEND,
        JOURNAL_TRUNCATE,
    ];

    /// The network-frontend subset of [`ALL`], in connection-lifecycle
    /// order: accept → read → frame decode → response write.
    pub const GATEWAY: [&str; 4] = [GATEWAY_ACCEPT, CONN_READ, CONN_FRAME, CONN_WRITE];
}
