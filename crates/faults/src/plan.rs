//! The fault plan: injection site × trigger predicate × fault kind.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// What kind of failure to inject at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// An I/O error: the operation fails cleanly, nothing is written.
    Io,
    /// A torn write: only a prefix of the bytes lands before the error
    /// (models a crash mid-append). Only meaningful for byte sinks;
    /// other sites treat it like [`FaultKind::Io`].
    Torn,
    /// The item (location update, request) is silently dropped.
    Drop,
    /// The item is delivered twice (driver-level arrival fault).
    Duplicate,
    /// The item is delivered with an out-of-order timestamp
    /// (driver-level arrival fault).
    Reorder,
    /// The subsystem is unavailable for this call (index query,
    /// mix-zone search).
    Unavailable,
}

impl FaultKind {
    /// A short stable tag, for logs and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Io => "io",
            FaultKind::Torn => "torn",
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Unavailable => "unavailable",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// When a rule fires, as a pure function of the site's 0-based hit
/// counter (and, for [`Trigger::Prob`], the plan seed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fires on every hit.
    Always,
    /// Fires on exactly the `n`-th hit (0-based).
    Once(u64),
    /// Fires on hits `n-1, 2n-1, 3n-1, …` (every `n`-th; `n ≥ 1`).
    EveryNth(u64),
    /// Fires on hits in `[from, to)`.
    Window {
        /// First hit (inclusive) that fires.
        from: u64,
        /// First hit (exclusive) that no longer fires.
        to: u64,
    },
    /// Fires with probability `p`, decided by a deterministic hash of
    /// (plan seed, site, hit index) — the same plan replays the same
    /// firing pattern bit-for-bit.
    Prob(f64),
}

impl Trigger {
    fn fires(&self, seed: u64, site: &str, hit: u64) -> bool {
        match *self {
            Trigger::Always => true,
            Trigger::Once(n) => hit == n,
            Trigger::EveryNth(n) => n > 0 && (hit + 1).is_multiple_of(n),
            Trigger::Window { from, to } => hit >= from && hit < to,
            Trigger::Prob(p) => {
                if p <= 0.0 {
                    return false;
                }
                if p >= 1.0 {
                    return true;
                }
                let x = splitmix64(
                    seed ^ fnv1a(site.as_bytes()) ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                (x as f64 / u64::MAX as f64) < p
            }
        }
    }
}

/// One injection rule: at `site`, when `trigger` matches, inject `kind`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// The named injection site (see [`crate::sites`]).
    pub site: String,
    /// When the rule fires.
    pub trigger: Trigger,
    /// What to inject.
    pub kind: FaultKind,
}

/// A deterministic fault schedule.
///
/// `check(site)` increments the site's hit counter and evaluates the
/// rules in insertion order; the first matching rule fires and its
/// kind is returned. Fired faults are counted per site for the chaos
/// harness's ground truth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    hits: BTreeMap<String, u64>,
    fired: BTreeMap<String, u64>,
}

impl FaultPlan {
    /// An empty plan (no rules ever fire) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, site: &str, trigger: Trigger, kind: FaultKind) -> Self {
        self.push_rule(site, trigger, kind);
        self
    }

    /// Adds a rule.
    pub fn push_rule(&mut self, site: &str, trigger: Trigger, kind: FaultKind) {
        self.rules.push(FaultRule {
            site: site.to_string(),
            trigger,
            kind,
        });
    }

    /// The configured rules.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Keeps only the rules whose site satisfies `keep`. Used to
    /// restrict a generated schedule to a subset of sites (e.g. the
    /// request path) without re-drawing the surviving rules.
    pub fn retain_sites(&mut self, keep: impl Fn(&str) -> bool) {
        self.rules.retain(|r| keep(&r.site));
    }

    /// Registers one hit at `site` and returns the injected fault, if
    /// any rule fires.
    pub fn check(&mut self, site: &str) -> Option<FaultKind> {
        let hit = {
            let counter = self.hits.entry(site.to_string()).or_insert(0);
            let h = *counter;
            *counter += 1;
            h
        };
        let fired = self
            .rules
            .iter()
            .find(|r| r.site == site && r.trigger.fires(self.seed, site, hit))
            .map(|r| r.kind);
        if fired.is_some() {
            *self.fired.entry(site.to_string()).or_insert(0) += 1;
        }
        fired
    }

    /// How many times `site` has been hit (checked).
    pub fn hits(&self, site: &str) -> u64 {
        self.hits.get(site).copied().unwrap_or(0)
    }

    /// How many faults have fired at `site`.
    pub fn fired(&self, site: &str) -> u64 {
        self.fired.get(site).copied().unwrap_or(0)
    }

    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.values().sum()
    }

    /// Per-site fired counts, in site order.
    pub fn fired_by_site(&self) -> Vec<(String, u64)> {
        self.fired.iter().map(|(s, n)| (s.clone(), *n)).collect()
    }
}

/// A cheaply cloneable, thread-safe handle to a [`FaultPlan`] — or to
/// nothing at all ([`FaultInjector::none`]), in which case every check
/// is a branch on a `None` and injection costs nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector(Option<Arc<Mutex<FaultPlan>>>);

impl FaultInjector {
    /// A disabled injector: checks never fire.
    pub fn none() -> Self {
        FaultInjector(None)
    }

    /// An injector over the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector(Some(Arc::new(Mutex::new(plan))))
    }

    /// Whether a plan is attached.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Registers a hit at `site`; returns the injected fault, if any.
    pub fn check(&self, site: &str) -> Option<FaultKind> {
        let plan = self.0.as_ref()?;
        lock(plan).check(site)
    }

    /// Faults fired at `site` so far.
    pub fn fired(&self, site: &str) -> u64 {
        self.0.as_ref().map_or(0, |p| lock(p).fired(site))
    }

    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        self.0.as_ref().map_or(0, |p| lock(p).total_fired())
    }

    /// Runs a closure against the plan (no-op returning `None` when
    /// disabled).
    pub fn with_plan<R>(&self, f: impl FnOnce(&FaultPlan) -> R) -> Option<R> {
        self.0.as_ref().map(|p| f(&lock(p)))
    }
}

/// Recover the guard even if a panicking thread poisoned the lock —
/// fault bookkeeping must survive a failing test.
fn lock(plan: &Mutex<FaultPlan>) -> std::sync::MutexGuard<'_, FaultPlan> {
    plan.lock().unwrap_or_else(|e| e.into_inner())
}

/// SplitMix64: a tiny, high-quality 64-bit mixer (public domain
/// constants), enough for deterministic fault sampling.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over bytes, used to fold site names into the sample stream.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites;

    #[test]
    fn empty_plan_never_fires() {
        let mut plan = FaultPlan::new(7);
        for _ in 0..100 {
            assert_eq!(plan.check(sites::PHL_WRITE), None);
        }
        assert_eq!(plan.hits(sites::PHL_WRITE), 100);
        assert_eq!(plan.total_fired(), 0);
    }

    #[test]
    fn triggers_fire_as_specified() {
        let mut plan = FaultPlan::new(1)
            .with_rule("a", Trigger::Once(2), FaultKind::Io)
            .with_rule("b", Trigger::EveryNth(3), FaultKind::Drop)
            .with_rule(
                "c",
                Trigger::Window { from: 1, to: 3 },
                FaultKind::Unavailable,
            );
        let a: Vec<bool> = (0..5).map(|_| plan.check("a").is_some()).collect();
        assert_eq!(a, vec![false, false, true, false, false]);
        let b: Vec<bool> = (0..7).map(|_| plan.check("b").is_some()).collect();
        assert_eq!(b, vec![false, false, true, false, false, true, false]);
        let c: Vec<bool> = (0..4).map(|_| plan.check("c").is_some()).collect();
        assert_eq!(c, vec![false, true, true, false]);
        assert_eq!(plan.fired("a"), 1);
        assert_eq!(plan.fired("b"), 2);
        assert_eq!(plan.fired("c"), 2);
        assert_eq!(plan.total_fired(), 5);
    }

    #[test]
    fn first_matching_rule_wins() {
        let mut plan = FaultPlan::new(1)
            .with_rule("s", Trigger::Once(0), FaultKind::Drop)
            .with_rule("s", Trigger::Always, FaultKind::Io);
        assert_eq!(plan.check("s"), Some(FaultKind::Drop));
        assert_eq!(plan.check("s"), Some(FaultKind::Io));
    }

    #[test]
    fn prob_trigger_is_deterministic_and_plausible() {
        let run = |seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::new(seed).with_rule("s", Trigger::Prob(0.25), FaultKind::Io);
            (0..1000).map(|_| plan.check("s").is_some()).collect()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed must replay identically");
        assert_ne!(a, run(43), "different seeds must differ");
        let rate = a.iter().filter(|&&f| f).count() as f64 / 1000.0;
        assert!((0.15..0.35).contains(&rate), "rate {rate} far from 0.25");
        // Degenerate probabilities are exact.
        let mut never = FaultPlan::new(1).with_rule("s", Trigger::Prob(0.0), FaultKind::Io);
        let mut always = FaultPlan::new(1).with_rule("s", Trigger::Prob(1.0), FaultKind::Io);
        assert!((0..50).all(|_| never.check("s").is_none()));
        assert!((0..50).all(|_| always.check("s").is_some()));
    }

    #[test]
    fn sites_are_counted_independently() {
        let mut plan = FaultPlan::new(1).with_rule("a", Trigger::Once(1), FaultKind::Io);
        assert_eq!(plan.check("b"), None);
        assert_eq!(plan.check("a"), None);
        assert_eq!(plan.check("a"), Some(FaultKind::Io));
        assert_eq!(plan.hits("a"), 2);
        assert_eq!(plan.hits("b"), 1);
        assert_eq!(plan.fired_by_site(), vec![("a".to_string(), 1)]);
    }

    #[test]
    fn disabled_injector_is_inert() {
        let inj = FaultInjector::none();
        assert!(!inj.is_enabled());
        assert_eq!(inj.check(sites::INDEX_QUERY), None);
        assert_eq!(inj.total_fired(), 0);
        assert_eq!(inj.with_plan(|p| p.seed()), None);
    }

    #[test]
    fn injector_shares_state_across_clones() {
        let inj = FaultInjector::new(FaultPlan::new(9).with_rule(
            "s",
            Trigger::Once(1),
            FaultKind::Unavailable,
        ));
        let other = inj.clone();
        assert_eq!(inj.check("s"), None);
        assert_eq!(other.check("s"), Some(FaultKind::Unavailable));
        assert_eq!(inj.fired("s"), 1);
        assert_eq!(other.total_fired(), 1);
        assert_eq!(inj.with_plan(|p| p.hits("s")), Some(2));
    }

    #[test]
    fn fault_kinds_have_stable_tags() {
        let tags: Vec<&str> = [
            FaultKind::Io,
            FaultKind::Torn,
            FaultKind::Drop,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Unavailable,
        ]
        .iter()
        .map(|k| k.as_str())
        .collect();
        assert_eq!(
            tags,
            vec!["io", "torn", "drop", "duplicate", "reorder", "unavailable"]
        );
        assert_eq!(FaultKind::Io.to_string(), "io");
    }
}
