//! Seeded generation of diverse fault schedules for chaos suites.

use crate::plan::{splitmix64, FaultKind, FaultPlan, Trigger};
use crate::sites;

/// A tiny deterministic stream over SplitMix64.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generates a randomized — but fully seed-determined — fault plan
/// over the standard injection sites ([`sites::ALL`]).
///
/// Each site is included with probability ~0.7 and receives one rule
/// with a trigger drawn from `EveryNth`, `Window`, or `Prob`, and a
/// fault kind appropriate to the site (arrival faults draw from
/// drop/duplicate/reorder; journal I/O from io/torn; the index and
/// mix-zone from unavailability). Calling this for seeds `0..n` yields
/// `n` diverse schedules whose firing patterns replay identically on
/// every run.
pub fn randomized_plan(seed: u64) -> FaultPlan {
    let mut s = Stream(splitmix64(seed ^ 0xC0FF_EE00_DEAD_BEEF));
    let mut plan = FaultPlan::new(seed);
    for site in sites::ALL {
        if s.unit() > 0.7 {
            continue;
        }
        let kind = match site {
            sites::PHL_WRITE => [FaultKind::Drop, FaultKind::Io][s.below(2) as usize],
            sites::JOURNAL_IO | sites::SNAPSHOT_WRITE | sites::JOURNAL_TRUNCATE => {
                [FaultKind::Io, FaultKind::Torn][s.below(2) as usize]
            }
            sites::SNAPSHOT_RENAME | sites::CHECKPOINT_APPEND => FaultKind::Io,
            sites::ARRIVAL => {
                [FaultKind::Drop, FaultKind::Duplicate, FaultKind::Reorder][s.below(3) as usize]
            }
            sites::GATEWAY_ACCEPT => [FaultKind::Drop, FaultKind::Io][s.below(2) as usize],
            sites::CONN_READ => [FaultKind::Io, FaultKind::Drop][s.below(2) as usize],
            sites::CONN_FRAME => [FaultKind::Torn, FaultKind::Drop][s.below(2) as usize],
            sites::CONN_WRITE => {
                [FaultKind::Io, FaultKind::Torn, FaultKind::Drop][s.below(3) as usize]
            }
            _ => FaultKind::Unavailable,
        };
        let trigger = match s.below(3) {
            0 => Trigger::EveryNth(2 + s.below(40)),
            1 => {
                let from = s.below(200);
                Trigger::Window {
                    from,
                    to: from + 1 + s.below(30),
                }
            }
            _ => Trigger::Prob(0.02 + 0.2 * s.unit()),
        };
        plan.push_rule(site, trigger, kind);
    }
    plan
}

/// Like [`randomized_plan`], but restricted to **request-path** sites —
/// [`sites::JOURNAL_IO`] is excluded — for chaos-under-tail suites that
/// assert a live audit tail reports *zero* violations.
///
/// The exclusion is deliberate, not a coverage gap: journal I/O faults
/// can drop a `ts.mode_changed` record during a backoff window, after
/// which a later journaled transition's `from` genuinely disagrees with
/// the mode the journal last established — a real `ModeLadderGap` that
/// the offline audit reports too. Under these plans the journal write
/// path is fault-free, so any violation the tail reports is a false
/// positive by construction. Journal-fault schedules are still covered
/// by the tail suites, but with the weaker (and correct) assertion that
/// the tail's final report is byte-identical to the offline audit.
pub fn tail_chaos_plan(seed: u64) -> FaultPlan {
    let mut plan = randomized_plan(seed);
    plan.retain_sites(|site| site != sites::JOURNAL_IO && !sites::CHECKPOINT_PATH.contains(&site));
    plan
}

/// A seeded plan restricted to the **checkpoint-path** sites
/// ([`sites::CHECKPOINT_PATH`]): snapshot write, snapshot rename,
/// anchor append, and prefix truncation.
///
/// Checkpoint attempts are rare (one per `--checkpoint-every` batch),
/// so unlike [`randomized_plan`] the triggers here are aggressive —
/// every hit or every other hit, or a coin-flip probability — and the
/// plan always contains at least one rule. Crash/recover drills sweep
/// seeds over this generator to hit every stage of the write protocol.
pub fn checkpoint_chaos_plan(seed: u64) -> FaultPlan {
    let mut s = Stream(splitmix64(seed ^ 0x5EED_CAFE_F00D_D00D));
    let mut plan = FaultPlan::new(seed);
    let forced = s.below(sites::CHECKPOINT_PATH.len() as u64) as usize;
    for (i, site) in sites::CHECKPOINT_PATH.into_iter().enumerate() {
        if i != forced && s.unit() > 0.5 {
            continue;
        }
        let kind = match site {
            sites::SNAPSHOT_WRITE | sites::JOURNAL_TRUNCATE => {
                [FaultKind::Io, FaultKind::Torn][s.below(2) as usize]
            }
            _ => FaultKind::Io,
        };
        let trigger = match s.below(3) {
            0 => Trigger::EveryNth(1 + s.below(2)),
            1 => Trigger::Window {
                from: 0,
                to: 1 + s.below(3),
            },
            _ => Trigger::Prob(0.5 + 0.4 * s.unit()),
        };
        plan.push_rule(site, trigger, kind);
    }
    plan
}

/// A seeded plan restricted to the **network-frontend** sites
/// ([`sites::GATEWAY`]): listener accepts, connection reads, frame
/// decode, and response writes.
///
/// Like [`checkpoint_chaos_plan`] the triggers are aggressive — every
/// connection handles only a handful of frames, so a timid schedule
/// would never fire — and the plan always contains at least one rule.
/// Gateway chaos drills sweep seeds over this generator and assert the
/// fail-closed contract: whatever the network loses or tears, the
/// journal never records a forward the intact traffic didn't earn.
pub fn gateway_chaos_plan(seed: u64) -> FaultPlan {
    let mut s = Stream(splitmix64(seed ^ 0x006A_7EBA_D0CA_B1E5));
    let mut plan = FaultPlan::new(seed);
    let forced = s.below(sites::GATEWAY.len() as u64) as usize;
    for (i, site) in sites::GATEWAY.into_iter().enumerate() {
        if i != forced && s.unit() > 0.6 {
            continue;
        }
        let kind = match site {
            sites::GATEWAY_ACCEPT => [FaultKind::Drop, FaultKind::Io][s.below(2) as usize],
            sites::CONN_READ => [FaultKind::Io, FaultKind::Drop][s.below(2) as usize],
            sites::CONN_FRAME => [FaultKind::Torn, FaultKind::Drop][s.below(2) as usize],
            _ => [FaultKind::Io, FaultKind::Torn, FaultKind::Drop][s.below(3) as usize],
        };
        let trigger = match s.below(3) {
            0 => Trigger::EveryNth(2 + s.below(6)),
            1 => {
                let from = s.below(8);
                Trigger::Window {
                    from,
                    to: from + 2 + s.below(10),
                }
            }
            _ => Trigger::Prob(0.1 + 0.4 * s.unit()),
        };
        plan.push_rule(site, trigger, kind);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        for seed in 0..16 {
            assert_eq!(randomized_plan(seed), randomized_plan(seed));
        }
        assert_ne!(randomized_plan(1).rules(), randomized_plan(2).rules());
    }

    #[test]
    fn seed_sweep_covers_every_site_and_stays_bounded() {
        let mut sites_seen = std::collections::BTreeSet::new();
        for seed in 0..64 {
            let plan = randomized_plan(seed);
            assert!(plan.rules().len() <= sites::ALL.len());
            for rule in plan.rules() {
                assert!(sites::ALL.contains(&rule.site.as_str()));
                sites_seen.insert(rule.site.clone());
                if let Trigger::Prob(p) = rule.trigger {
                    assert!((0.0..=0.25).contains(&p));
                }
            }
        }
        assert_eq!(
            sites_seen.len(),
            sites::ALL.len(),
            "64 seeds must exercise every site"
        );
    }

    #[test]
    fn tail_plans_never_touch_journal_io() {
        let mut request_sites = std::collections::BTreeSet::new();
        for seed in 0..64 {
            let plan = tail_chaos_plan(seed);
            for rule in plan.rules() {
                assert_ne!(rule.site.as_str(), sites::JOURNAL_IO);
                request_sites.insert(rule.site.clone());
            }
            // Deterministic, and a strict restriction of the full plan.
            assert_eq!(plan, tail_chaos_plan(seed));
            let full = randomized_plan(seed);
            assert!(plan.rules().len() <= full.rules().len());
        }
        assert_eq!(
            request_sites.len(),
            sites::ALL.len() - 1 - sites::CHECKPOINT_PATH.len(),
            "64 seeds must exercise every request-path site"
        );
    }

    #[test]
    fn checkpoint_plans_are_aggressive_and_cover_the_whole_path() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..64 {
            let plan = checkpoint_chaos_plan(seed);
            assert_eq!(plan, checkpoint_chaos_plan(seed));
            assert!(
                !plan.rules().is_empty(),
                "drill plans always fault something"
            );
            for rule in plan.rules() {
                assert!(sites::CHECKPOINT_PATH.contains(&rule.site.as_str()));
                seen.insert(rule.site.clone());
                match rule.site.as_str() {
                    sites::SNAPSHOT_WRITE | sites::JOURNAL_TRUNCATE => {
                        assert!(matches!(rule.kind, FaultKind::Io | FaultKind::Torn))
                    }
                    _ => assert_eq!(rule.kind, FaultKind::Io),
                }
                match rule.trigger {
                    Trigger::EveryNth(n) => assert!((1..=2).contains(&n)),
                    Trigger::Window { from, to } => {
                        assert_eq!(from, 0);
                        assert!(to >= 1);
                    }
                    Trigger::Prob(p) => assert!((0.5..=0.9).contains(&p)),
                    other => panic!("unexpected drill trigger {other:?}"),
                }
            }
        }
        assert_eq!(
            seen.len(),
            sites::CHECKPOINT_PATH.len(),
            "64 seeds must exercise every checkpoint-path site"
        );
    }

    #[test]
    fn kinds_match_their_sites() {
        for seed in 0..64 {
            for rule in randomized_plan(seed).rules().iter() {
                match rule.site.as_str() {
                    sites::PHL_WRITE => {
                        assert!(matches!(rule.kind, FaultKind::Drop | FaultKind::Io))
                    }
                    sites::JOURNAL_IO | sites::SNAPSHOT_WRITE | sites::JOURNAL_TRUNCATE => {
                        assert!(matches!(rule.kind, FaultKind::Io | FaultKind::Torn))
                    }
                    sites::SNAPSHOT_RENAME | sites::CHECKPOINT_APPEND => {
                        assert_eq!(rule.kind, FaultKind::Io)
                    }
                    sites::ARRIVAL => assert!(matches!(
                        rule.kind,
                        FaultKind::Drop | FaultKind::Duplicate | FaultKind::Reorder
                    )),
                    sites::GATEWAY_ACCEPT | sites::CONN_READ => {
                        assert!(matches!(rule.kind, FaultKind::Drop | FaultKind::Io))
                    }
                    sites::CONN_FRAME => {
                        assert!(matches!(rule.kind, FaultKind::Torn | FaultKind::Drop))
                    }
                    sites::CONN_WRITE => assert!(matches!(
                        rule.kind,
                        FaultKind::Io | FaultKind::Torn | FaultKind::Drop
                    )),
                    _ => assert_eq!(rule.kind, FaultKind::Unavailable),
                }
            }
        }
    }

    #[test]
    fn gateway_plans_are_aggressive_and_cover_the_frontend() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..64 {
            let plan = gateway_chaos_plan(seed);
            assert_eq!(plan, gateway_chaos_plan(seed), "seed-determined");
            assert!(
                !plan.rules().is_empty(),
                "drill plans always fault something"
            );
            for rule in plan.rules() {
                assert!(sites::GATEWAY.contains(&rule.site.as_str()));
                seen.insert(rule.site.clone());
                match rule.trigger {
                    Trigger::EveryNth(n) => assert!((2..=7).contains(&n)),
                    Trigger::Window { from, to } => assert!(to > from),
                    Trigger::Prob(p) => assert!((0.1..=0.5).contains(&p)),
                    other => panic!("unexpected drill trigger {other:?}"),
                }
            }
        }
        assert_eq!(
            seen.len(),
            sites::GATEWAY.len(),
            "64 seeds must exercise every gateway site"
        );
    }
}
