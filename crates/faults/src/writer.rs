//! An `io::Write` adapter that injects I/O faults into any byte sink.

use crate::plan::FaultKind;
use crate::sites;
use crate::FaultInjector;
use std::io::{self, Write};

/// Wraps a byte sink and consults a [`FaultInjector`] (site
/// [`sites::JOURNAL_IO`]) on every `write`:
///
/// * [`FaultKind::Io`] — nothing is written; a clean `io::Error` is
///   returned (the sink is intact, the record is lost).
/// * [`FaultKind::Torn`] — only the first half of the buffer lands
///   before the error (models a crash mid-append; the sink now holds
///   a partial record that `Journal::recover` must truncate).
/// * Any other kind is treated like [`FaultKind::Io`].
///
/// `flush` is never failed: flush faults would be indistinguishable
/// from write faults one record later, and keeping them separate makes
/// chaos schedules easier to reason about.
#[derive(Debug)]
pub struct FaultyWriter<W: Write> {
    inner: W,
    injector: FaultInjector,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner`, injecting at [`sites::JOURNAL_IO`].
    pub fn new(inner: W, injector: FaultInjector) -> Self {
        FaultyWriter { inner, injector }
    }

    /// Consumes the wrapper and returns the sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.injector.check(sites::JOURNAL_IO) {
            None => self.inner.write(buf),
            Some(FaultKind::Torn) => {
                let half = buf.len() / 2;
                if half > 0 {
                    // Best effort: if even the torn half fails, the
                    // injected error below still reports the fault.
                    let _ = self.inner.write(&buf[..half]);
                }
                Err(io::Error::other("injected torn write"))
            }
            Some(kind) => Err(io::Error::other(format!("injected {kind} fault"))),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, Trigger};

    #[test]
    fn passes_bytes_through_when_no_fault() {
        let mut w = FaultyWriter::new(Vec::new(), FaultInjector::none());
        w.write_all(b"hello").unwrap();
        w.flush().unwrap();
        assert_eq!(w.into_inner(), b"hello");
    }

    #[test]
    fn io_fault_loses_the_record_cleanly() {
        let inj = FaultInjector::new(FaultPlan::new(1).with_rule(
            sites::JOURNAL_IO,
            Trigger::Once(1),
            FaultKind::Io,
        ));
        let mut w = FaultyWriter::new(Vec::new(), inj.clone());
        assert!(w.write(b"first\n").is_ok());
        assert!(w.write(b"second\n").is_err());
        assert!(w.write(b"third\n").is_ok());
        assert_eq!(w.into_inner(), b"first\nthird\n");
        assert_eq!(inj.fired(sites::JOURNAL_IO), 1);
    }

    #[test]
    fn torn_fault_leaves_partial_bytes() {
        let inj = FaultInjector::new(FaultPlan::new(1).with_rule(
            sites::JOURNAL_IO,
            Trigger::Once(0),
            FaultKind::Torn,
        ));
        let mut w = FaultyWriter::new(Vec::new(), inj);
        assert!(w.write(b"abcdefgh").is_err());
        assert_eq!(w.into_inner(), b"abcd", "exactly half the buffer landed");
    }
}
