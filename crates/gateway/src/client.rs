//! A minimal blocking wire client, used by the differential tests,
//! the chaos drill, the open-loop bench, and `hka-sim serve` smoke
//! checks. One instance is one connection (one session).

use hka_core::{
    parse_wire_reply, RequestEnvelope, ResponseEnvelope, ServerMode, WireMsg, WireReply,
};
use hka_obs::Json;
use hka_trajectory::UserId;

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A blocking line-protocol client over one TCP connection.
pub struct GatewayClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl GatewayClient {
    /// Connects to a gateway.
    pub fn connect(addr: SocketAddr) -> io::Result<GatewayClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(GatewayClient {
            writer: stream,
            reader,
        })
    }

    /// Sends one raw line (test hook for malformed frames).
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Sends one envelope (no reply is read here; see
    /// [`GatewayClient::drain_responses`] / [`GatewayClient::recv_reply`]).
    pub fn send_env(&mut self, env: &RequestEnvelope) -> io::Result<()> {
        self.send_raw(&env.to_wire())
    }

    /// Binds the session to `user`; returns the pseudonym (`None` for
    /// unknown users) — the paper's TS never reveals more than that.
    pub fn bind(&mut self, user: UserId) -> io::Result<Option<u64>> {
        let line = Json::obj([("op", Json::from("bind")), ("user", Json::from(user.0))]);
        self.send_raw(&line.to_string())?;
        match self.recv_reply()? {
            WireReply::Bound { pseudonym, .. } => Ok(pseudonym.map(|p| p.0)),
            other => Err(proto_err(format!("expected bound, got {other:?}"))),
        }
    }

    /// Reads one reply line.
    pub fn recv_reply(&mut self) -> io::Result<WireReply> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "gateway closed the connection",
            ));
        }
        parse_wire_reply(&line).map_err(|e| proto_err(e.to_string()))
    }

    /// Sends a `drain` barrier and collects responses until the
    /// matching `drained` arrives, then keeps reading until `expected`
    /// responses are in hand (covers refusals racing the barrier).
    /// Returns them sorted by request id — submission order for the
    /// monotonically-numbered envelopes our drivers produce.
    pub fn drain_responses(&mut self, expected: usize) -> io::Result<Vec<ResponseEnvelope>> {
        self.send_raw(r#"{"op":"drain"}"#)?;
        let mut responses = Vec::with_capacity(expected);
        let mut drained = false;
        while !drained || responses.len() < expected {
            match self.recv_reply()? {
                WireReply::Resp(resp) => responses.push(resp),
                WireReply::Drained { .. } => drained = true,
                WireReply::Bye => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "gateway is draining",
                    ))
                }
                WireReply::Err { code, msg } => {
                    return Err(proto_err(format!("gateway refused a frame: {code}: {msg}")))
                }
                WireReply::Bound { .. } => {}
            }
        }
        responses.sort_by_key(|r| r.req_id);
        Ok(responses)
    }

    /// Asks the whole gateway to drain and stop (wire `shutdown` op);
    /// waits for the closing `bye`.
    pub fn shutdown_gateway(&mut self) -> io::Result<()> {
        self.send_raw(r#"{"op":"shutdown"}"#)?;
        loop {
            match self.recv_reply() {
                Ok(WireReply::Bye) => return Ok(()),
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    /// The session's view of the server mode from the last `bound`
    /// reply a caller chose to parse; provided as a free function on
    /// replies instead of cached state — see [`WireReply::Bound`].
    pub fn mode_of(reply: &WireReply) -> Option<ServerMode> {
        match reply {
            WireReply::Bound { mode, .. } => Some(*mode),
            WireReply::Resp(r) => Some(r.mode),
            _ => None,
        }
    }

    /// Builds the wire line for `msg` (primarily for tests that need
    /// to tamper with frames before sending).
    pub fn wire_line(msg: &WireMsg) -> String {
        match msg {
            WireMsg::Bind { user } => {
                Json::obj([("op", Json::from("bind")), ("user", Json::from(user.0))]).to_string()
            }
            WireMsg::Env(env) => env.to_wire(),
            WireMsg::Drain => r#"{"op":"drain"}"#.to_string(),
            WireMsg::Shutdown => r#"{"op":"shutdown"}"#.to_string(),
        }
    }
}
