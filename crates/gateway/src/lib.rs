//! # hka-gateway
//!
//! A TCP frontend for the Trusted Server — the network leg of the
//! paper's Fig. 1 service model (users → TS → providers), which every
//! in-process driver skips. The gateway fronts **any**
//! [`RequestService`] (the sequential `TrustedServer` or the pipelined
//! `ShardedTs`) without knowing which one it holds:
//!
//! * **Framing** — one canonical JSON object per line
//!   ([`hka_core::parse_wire_msg`]); oversized and unparseable frames
//!   are refused with an `err` reply, never partially applied.
//! * **Threading** — thread-per-connection (`std::net`): each accepted
//!   socket gets a reader and a writer thread; one *service thread*
//!   owns the backend and is the only code that touches it, so the
//!   backend needs no internal synchronization.
//! * **Backpressure** — a bounded inflight queue
//!   ([`GatewayConfig::inflight`]) between readers and the service
//!   thread. When it is full the gateway answers `suppressed /
//!   overload` at `degraded` **immediately** — the fail-closed rule
//!   from DESIGN.md extended to the network layer: overload makes the
//!   TS *refuse*, never forward something weaker than k. Overloaded
//!   location reports are dropped (losing a position can only shrink
//!   anonymity sets the TS believes in — fail-closed again).
//! * **Graceful drain** — [`Gateway::shutdown`] stops the listener,
//!   lets every queued envelope settle, sends `bye` on every
//!   connection, flushes the journal, and hands the backend back to
//!   the caller.
//! * **Chaos** — the accept loop, connection reads, frame decode, and
//!   response writes consult the `hka-faults` injector
//!   (`gateway.accept`, `conn.read`, `conn.frame`, `conn.write`), so
//!   seeded drills can tear frames and stall peers deterministically.
//! * **SLO watchdog** — an optional gateway-level
//!   [`SloMonitor`](hka_obs::SloMonitor) over end-to-end
//!   (enqueue→response) latency and queue depth; threshold crossings
//!   are journaled through the backend's hash chain like the server's
//!   own breaches.
//!
//! With stats emission off (the default) the gateway adds **zero**
//! journal records of its own: a journal produced behind TCP is
//! byte-identical to one produced in-process on the same traffic
//! (`tests/gateway.rs` pins this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;

pub use client::GatewayClient;

use hka_core::{
    RequestEnvelope, RequestService, ResponseEnvelope, ServerMode, WireMsg, WireOutcome, WireReply,
};
use hka_faults::{sites, FaultInjector, FaultKind};
use hka_trajectory::UserId;

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Gateway tuning knobs. `Default` is production-shaped: a 256-deep
/// inflight queue, 64-envelope service bursts, 64 KiB frames, no
/// fault injection, no SLO watchdog, and **no** stats records (so the
/// journal stays byte-identical to an in-process run).
#[derive(Clone)]
pub struct GatewayConfig {
    /// Bounded inflight queue depth between connection readers and the
    /// service thread; `try_send` overflow is answered `overload`.
    pub inflight: usize,
    /// Max envelopes the service thread ingests per burst before
    /// draining outcomes back to connections.
    pub batch: usize,
    /// Max frame length in bytes (including the newline); longer
    /// frames get an `err` reply and the connection is closed.
    pub max_frame: usize,
    /// Journal a `gw.stats` liveness record after every drain cycle.
    /// Off by default: stats records change journal bytes.
    pub emit_stats: bool,
    /// Gateway-level SLO watchdog (p999 end-to-end latency + queue
    /// depth). `None` disables it.
    pub slo: Option<hka_obs::SloConfig>,
    /// Fault injection for the four `gateway.*`/`conn.*` sites.
    pub faults: FaultInjector,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            inflight: 256,
            batch: 64,
            max_frame: 64 * 1024,
            emit_stats: false,
            slo: None,
            faults: FaultInjector::none(),
        }
    }
}

/// Live gateway counters, readable from any thread.
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Connections currently open.
    pub conns_open: AtomicU64,
    /// Connections accepted over the gateway's lifetime.
    pub conns_total: AtomicU64,
    /// Service-thread drain cycles completed.
    pub drains: AtomicU64,
    /// Requests refused with `overload` at the bounded queue.
    pub overloads: AtomicU64,
    /// Location reports dropped at the bounded queue.
    pub shed_locations: AtomicU64,
    /// Responses routed back to connections.
    pub responses: AtomicU64,
    /// Responses with outcome `forwarded`.
    pub forwarded: AtomicU64,
    /// Frames refused (`err` replies: parse failures, oversize).
    pub bad_frames: AtomicU64,
    /// Faults fired across the four gateway sites.
    pub faults_fired: AtomicU64,
}

/// A point-in-time copy of [`GatewayStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections currently open.
    pub conns_open: u64,
    /// Connections accepted over the gateway's lifetime.
    pub conns_total: u64,
    /// Drain cycles completed.
    pub drains: u64,
    /// Requests refused with `overload`.
    pub overloads: u64,
    /// Location reports dropped at the bounded queue.
    pub shed_locations: u64,
    /// Responses routed back.
    pub responses: u64,
    /// Responses with outcome `forwarded`.
    pub forwarded: u64,
    /// Frames refused.
    pub bad_frames: u64,
    /// Faults fired on gateway sites.
    pub faults_fired: u64,
}

impl GatewayStats {
    /// Reads every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            conns_open: self.conns_open.load(Ordering::Relaxed),
            conns_total: self.conns_total.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
            overloads: self.overloads.load(Ordering::Relaxed),
            shed_locations: self.shed_locations.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
            faults_fired: self.faults_fired.load(Ordering::Relaxed),
        }
    }
}

/// What a connection sends the service thread.
enum Cmd {
    /// Bind a session; answer on `reply`.
    Bind {
        user: UserId,
        reply: Sender<WireReply>,
    },
    /// An envelope; `reply` is `Some` for requests, `None` for
    /// fire-and-forget location reports.
    Submit {
        env: RequestEnvelope,
        enqueued: Instant,
        reply: Option<Sender<WireReply>>,
    },
    /// Settle everything submitted so far, then answer `drained`.
    Barrier { reply: Sender<WireReply> },
}

fn mode_to_u8(mode: ServerMode) -> u8 {
    match mode {
        ServerMode::Normal => 0,
        ServerMode::Degraded => 1,
        ServerMode::ReadOnly => 2,
    }
}

fn mode_from_u8(v: u8) -> ServerMode {
    match v {
        0 => ServerMode::Normal,
        1 => ServerMode::Degraded,
        _ => ServerMode::ReadOnly,
    }
}

/// A running TCP gateway. Dropping the handle without calling
/// [`Gateway::shutdown`] aborts the process-wide threads unjoined;
/// call `shutdown` for a graceful drain.
pub struct Gateway {
    addr: SocketAddr,
    stats: Arc<GatewayStats>,
    stop: Arc<AtomicBool>,
    listener_thread: Option<JoinHandle<()>>,
    service_thread: Option<JoinHandle<Box<dyn RequestService + Send>>>,
    /// Keeps the service-queue sender alive until shutdown; the
    /// service thread exits when every sender (this one + per-conn
    /// clones) is gone.
    cmd_tx: Option<SyncSender<Cmd>>,
}

impl Gateway {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `service`.
    pub fn spawn(
        addr: &str,
        service: Box<dyn RequestService + Send>,
        config: GatewayConfig,
    ) -> io::Result<Gateway> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stats = Arc::new(GatewayStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mode_cache = Arc::new(AtomicU8::new(mode_to_u8(service.mode())));

        let (cmd_tx, cmd_rx) = mpsc::sync_channel::<Cmd>(config.inflight.max(1));
        let service_thread = {
            let stats = Arc::clone(&stats);
            let mode_cache = Arc::clone(&mode_cache);
            let config = config.clone();
            std::thread::Builder::new()
                .name("gw-service".into())
                .spawn(move || service_loop(service, cmd_rx, stats, mode_cache, config))?
        };

        let listener_thread = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let mode_cache = Arc::clone(&mode_cache);
            let cmd_tx = cmd_tx.clone();
            let config = config.clone();
            std::thread::Builder::new()
                .name("gw-accept".into())
                .spawn(move || accept_loop(listener, cmd_tx, stats, stop, mode_cache, config))?
        };

        Ok(Gateway {
            addr: local,
            stats,
            stop,
            listener_thread: Some(listener_thread),
            service_thread: Some(service_thread),
            cmd_tx: Some(cmd_tx),
        })
    }

    /// The bound address (use with `127.0.0.1:0` to discover the port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters.
    pub fn stats(&self) -> &GatewayStats {
        &self.stats
    }

    /// Whether a peer asked the gateway to stop (wire `shutdown` op).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop accepting, close every connection (each
    /// gets `bye`), settle every queued envelope, flush the journal,
    /// and return the backend.
    pub fn shutdown(mut self) -> Box<dyn RequestService + Send> {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        // The listener joined every connection thread, so the only
        // remaining sender is ours; dropping it lets the service loop
        // settle the queue and exit.
        drop(self.cmd_tx.take());
        self.service_thread
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("service thread never panics")
    }
}

/// Accepts connections until the stop flag rises; joins every
/// connection thread before returning (so shutdown is a full drain).
fn accept_loop(
    listener: TcpListener,
    cmd_tx: SyncSender<Cmd>,
    stats: Arc<GatewayStats>,
    stop: Arc<AtomicBool>,
    mode_cache: Arc<AtomicU8>,
    config: GatewayConfig,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        match config.faults.check(sites::GATEWAY_ACCEPT) {
            Some(FaultKind::Drop) | Some(FaultKind::Io) | Some(FaultKind::Unavailable) => {
                // Refused at the door: the socket closes before any
                // frame is read, like a listener backlog overflow.
                stats.faults_fired.fetch_add(1, Ordering::Relaxed);
                drop(stream);
                continue;
            }
            _ => {}
        }
        stats.conns_total.fetch_add(1, Ordering::Relaxed);
        stats.conns_open.fetch_add(1, Ordering::Relaxed);
        let cmd_tx = cmd_tx.clone();
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        let mode_cache = Arc::clone(&mode_cache);
        let config = config.clone();
        let handle = std::thread::Builder::new()
            .name("gw-conn".into())
            .spawn(move || {
                connection(stream, cmd_tx, &stats, &stop, &mode_cache, &config);
                stats.conns_open.fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn connection thread");
        conns.push(handle);
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Outcome of one bounded frame read.
enum FrameRead {
    /// A complete line (newline stripped) is in the buffer.
    Frame(Vec<u8>),
    /// Clean EOF.
    Eof,
    /// Read timeout — check the stop flag and try again.
    Idle,
    /// The peer sent more than `max_frame` bytes without a newline.
    TooLarge,
}

/// Reads one newline-terminated frame, tolerating read timeouts
/// (partial bytes stay in `pending` across calls).
fn read_frame(
    reader: &mut BufReader<TcpStream>,
    pending: &mut Vec<u8>,
    max_frame: usize,
) -> io::Result<FrameRead> {
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(FrameRead::Idle)
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(FrameRead::Eof);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(idx) => {
                pending.extend_from_slice(&available[..idx]);
                reader.consume(idx + 1);
                if pending.len() > max_frame {
                    return Ok(FrameRead::TooLarge);
                }
                return Ok(FrameRead::Frame(std::mem::take(pending)));
            }
            None => {
                let n = available.len();
                pending.extend_from_slice(available);
                reader.consume(n);
                if pending.len() > max_frame {
                    return Ok(FrameRead::TooLarge);
                }
            }
        }
    }
}

/// One connection: this thread reads and parses frames; a paired
/// writer thread owns the response half of the socket.
fn connection(
    stream: TcpStream,
    cmd_tx: SyncSender<Cmd>,
    stats: &GatewayStats,
    stop: &AtomicBool,
    mode_cache: &AtomicU8,
    config: &GatewayConfig,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = mpsc::channel::<WireReply>();
    let writer_faults = config.faults.clone();
    let writer_stats_faults = Arc::new(AtomicU64::new(0));
    let writer_fault_count = Arc::clone(&writer_stats_faults);
    let writer = std::thread::Builder::new()
        .name("gw-write".into())
        .spawn(move || writer_loop(write_half, reply_rx, writer_faults, writer_fault_count))
        .expect("spawn writer thread");

    let mut reader = BufReader::new(stream);
    let mut pending = Vec::new();
    'conn: loop {
        if stop.load(Ordering::SeqCst) {
            let _ = reply_tx.send(WireReply::Bye);
            break;
        }
        // A stalled or reset peer: stop reading, close the connection.
        match config.faults.check(sites::CONN_READ) {
            Some(FaultKind::Io) | Some(FaultKind::Drop) | Some(FaultKind::Unavailable) => {
                stats.faults_fired.fetch_add(1, Ordering::Relaxed);
                break 'conn;
            }
            _ => {}
        }
        let mut frame = match read_frame(&mut reader, &mut pending, config.max_frame) {
            Ok(FrameRead::Frame(f)) => f,
            Ok(FrameRead::Idle) => continue,
            Ok(FrameRead::Eof) | Err(_) => break,
            Ok(FrameRead::TooLarge) => {
                stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(WireReply::Err {
                    code: "too_large".into(),
                    msg: format!("frame exceeds {} bytes", config.max_frame),
                });
                break;
            }
        };
        // Frame-level chaos: tear the line mid-bytes (a parse error the
        // peer sees as `err`) or lose it between read and decode.
        match config.faults.check(sites::CONN_FRAME) {
            Some(FaultKind::Torn) => {
                stats.faults_fired.fetch_add(1, Ordering::Relaxed);
                frame.truncate(frame.len() / 2);
            }
            Some(FaultKind::Drop) => {
                stats.faults_fired.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            _ => {}
        }
        let line = String::from_utf8_lossy(&frame);
        let msg = match hka_core::parse_wire_msg(&line) {
            Ok(m) => m,
            Err(e) => {
                stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(WireReply::Err {
                    code: "bad_frame".into(),
                    msg: e.0,
                });
                continue;
            }
        };
        match msg {
            WireMsg::Bind { user } => {
                if cmd_tx
                    .send(Cmd::Bind {
                        user,
                        reply: reply_tx.clone(),
                    })
                    .is_err()
                {
                    break;
                }
            }
            WireMsg::Drain => {
                if cmd_tx
                    .send(Cmd::Barrier {
                        reply: reply_tx.clone(),
                    })
                    .is_err()
                {
                    break;
                }
            }
            WireMsg::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                let _ = reply_tx.send(WireReply::Bye);
                break;
            }
            WireMsg::Env(env) => {
                let is_request = env.is_request();
                let req_id = env.req_id;
                let cmd = Cmd::Submit {
                    env,
                    enqueued: Instant::now(),
                    reply: is_request.then(|| reply_tx.clone()),
                };
                match cmd_tx.try_send(cmd) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        if is_request {
                            // Fail-closed overload: answer `suppressed`
                            // now, at (at least) degraded — the queue
                            // never grows unboundedly and the TS never
                            // serves a request it cannot protect.
                            stats.overloads.fetch_add(1, Ordering::Relaxed);
                            let mode = mode_from_u8(mode_cache.load(Ordering::Relaxed).max(1));
                            let _ = reply_tx.send(WireReply::Resp(ResponseEnvelope::refusal(
                                req_id,
                                WireOutcome::Suppressed,
                                "overload",
                                mode,
                            )));
                        } else {
                            stats.shed_locations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
        }
    }
    drop(reply_tx);
    let _ = writer.join();
    stats.faults_fired.fetch_add(
        writer_stats_faults.load(Ordering::Relaxed),
        Ordering::Relaxed,
    );
}

/// Writes replies until every sender is gone. Chaos on `conn.write`:
/// `Io`/`Drop` lose the response (the journal already holds the
/// decision — response loss is a durability/QoS event, never a privacy
/// one); `Torn` writes half the frame and kills the connection.
fn writer_loop(
    stream: TcpStream,
    replies: Receiver<WireReply>,
    faults: FaultInjector,
    fault_count: Arc<AtomicU64>,
) {
    let mut out = io::BufWriter::new(stream);
    for reply in replies {
        match faults.check(sites::CONN_WRITE) {
            Some(FaultKind::Io) | Some(FaultKind::Drop) | Some(FaultKind::Unavailable) => {
                fault_count.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            Some(FaultKind::Torn) => {
                fault_count.fetch_add(1, Ordering::Relaxed);
                let line = reply.to_wire();
                let half = &line.as_bytes()[..line.len() / 2];
                let _ = out.write_all(half);
                let _ = out.flush();
                return;
            }
            _ => {}
        }
        let line = reply.to_wire();
        if out
            .write_all(line.as_bytes())
            .and_then(|_| out.write_all(b"\n"))
            .and_then(|_| out.flush())
            .is_err()
        {
            return;
        }
    }
}

/// A request in flight through the backend, keyed by rewritten id.
struct Pending {
    client_req_id: u64,
    enqueued: Instant,
    reply: Option<Sender<WireReply>>,
}

/// The service thread: sole owner of the backend. Ingests command
/// bursts, drains settled responses back to their connections, feeds
/// the gateway SLO watchdog, and (optionally) journals liveness stats.
fn service_loop(
    mut service: Box<dyn RequestService + Send>,
    cmd_rx: Receiver<Cmd>,
    stats: Arc<GatewayStats>,
    mode_cache: Arc<AtomicU8>,
    config: GatewayConfig,
) -> Box<dyn RequestService + Send> {
    let mut slo = config.slo.map(hka_obs::SloMonitor::new);
    // Client req ids are per-connection; the backend needs process-wide
    // unique ones. Rewrite on the way in, restore on the way out.
    let mut next_id: u64 = 1;
    let mut pending: BTreeMap<u64, Pending> = BTreeMap::new();
    let mut batch: Vec<Cmd> = Vec::with_capacity(config.batch.max(1));
    let mut disconnected = false;
    while !disconnected {
        batch.clear();
        match cmd_rx.recv() {
            Ok(cmd) => batch.push(cmd),
            Err(_) => break,
        }
        while batch.len() < config.batch.max(1) {
            match cmd_rx.try_recv() {
                Ok(cmd) => batch.push(cmd),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let mut barriers: Vec<Sender<WireReply>> = Vec::new();
        for cmd in batch.drain(..) {
            match cmd {
                Cmd::Bind { user, reply } => {
                    let _ = reply.send(WireReply::Bound {
                        user,
                        pseudonym: service.pseudonym_of(user),
                        mode: service.mode(),
                    });
                }
                Cmd::Submit {
                    mut env,
                    enqueued,
                    reply,
                } => {
                    if env.is_request() {
                        let id = next_id;
                        next_id += 1;
                        pending.insert(
                            id,
                            Pending {
                                client_req_id: env.req_id,
                                enqueued,
                                reply,
                            },
                        );
                        env.req_id = id;
                    }
                    service.submit(&env);
                }
                Cmd::Barrier { reply } => barriers.push(reply),
            }
        }
        drain_cycle(
            &mut *service,
            &mut pending,
            &mut slo,
            &stats,
            &mode_cache,
            &config,
        );
        for reply in barriers {
            let _ = reply.send(WireReply::Drained { pending: 0 });
        }
    }
    // Settle everything that raced the shutdown, then make the journal
    // durable before handing the backend back.
    drain_cycle(
        &mut *service,
        &mut pending,
        &mut slo,
        &stats,
        &mode_cache,
        &config,
    );
    let _ = service.flush_journal();
    service
}

/// One drain: collect settled responses, route them to their
/// connections, observe SLOs, update caches, optionally journal stats.
fn drain_cycle(
    service: &mut dyn RequestService,
    pending: &mut BTreeMap<u64, Pending>,
    slo: &mut Option<hka_obs::SloMonitor>,
    stats: &GatewayStats,
    mode_cache: &AtomicU8,
    config: &GatewayConfig,
) {
    let responses = service.drain();
    stats.drains.fetch_add(1, Ordering::Relaxed);
    let mut transitions: Vec<hka_obs::SloEvent> = Vec::new();
    let degraded = service.mode() != ServerMode::Normal;
    for mut resp in responses {
        let Some(p) = pending.remove(&resp.req_id) else {
            continue;
        };
        resp.req_id = p.client_req_id;
        stats.responses.fetch_add(1, Ordering::Relaxed);
        if resp.outcome == WireOutcome::Forwarded {
            stats.forwarded.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(monitor) = slo.as_mut() {
            let latency = u64::try_from(p.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let suppressed = resp.outcome != WireOutcome::Forwarded;
            transitions.extend(monitor.observe_request(
                latency,
                suppressed,
                degraded,
                hka_obs::trace::TraceId(resp.trace),
            ));
        }
        if let Some(reply) = p.reply {
            let _ = reply.send(WireReply::Resp(resp));
        }
    }
    if let Some(monitor) = slo.as_mut() {
        transitions.extend(monitor.observe_queue_depth(pending.len()));
    }
    if !transitions.is_empty() {
        service.note_slo_events(&transitions);
    }
    mode_cache.store(mode_to_u8(service.mode()), Ordering::Relaxed);
    if config.emit_stats {
        service.note_gateway_stats(
            stats.conns_open.load(Ordering::Relaxed),
            stats.drains.load(Ordering::Relaxed),
            pending.len() as u64,
        );
    }
}

/// Replays a mobility-style event stream through a [`GatewayClient`]
/// as one session: binds `users`, streams envelopes, drains, and
/// returns the responses in submission order. A convenience for
/// drivers and drills; the open-loop bench paces itself instead.
pub fn serve_events(
    client: &mut GatewayClient,
    events: &[RequestEnvelope],
) -> io::Result<Vec<ResponseEnvelope>> {
    let mut expected = 0usize;
    for env in events {
        client.send_env(env)?;
        if env.is_request() {
            expected += 1;
        }
    }
    client.drain_responses(expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_core::{PrivacyLevel, TrustedServer, TsConfig};
    use hka_geo::{StPoint, TimeSec};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    fn backend(users: u64) -> Box<dyn RequestService + Send> {
        let mut ts = TrustedServer::new(TsConfig::default());
        for u in 0..users {
            ts.register_user(UserId(u), PrivacyLevel::Medium);
        }
        Box::new(ts)
    }

    #[test]
    fn serves_requests_over_tcp() {
        let gw = Gateway::spawn("127.0.0.1:0", backend(4), GatewayConfig::default()).unwrap();
        let mut client = GatewayClient::connect(gw.addr()).unwrap();
        let bound = client.bind(UserId(0)).unwrap();
        assert!(bound.is_some(), "registered user has a pseudonym");

        let mut envs = Vec::new();
        let mut req = 0u64;
        for t in 0..20i64 {
            for u in 0..4u64 {
                envs.push(RequestEnvelope::location(
                    req,
                    UserId(u),
                    sp(10.0 * u as f64 + t as f64, 5.0 * u as f64, t * 10),
                ));
                req += 1;
            }
        }
        envs.push(RequestEnvelope::request(
            req,
            UserId(1),
            sp(11.0, 5.0, 200),
            hka_anonymity::ServiceId(1),
        ));
        let responses = serve_events(&mut client, &envs).unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].req_id, req);
        assert!(matches!(
            responses[0].outcome,
            WireOutcome::Forwarded | WireOutcome::Suppressed
        ));
        let service = gw.shutdown();
        assert_eq!(service.mode(), ServerMode::Normal);
    }

    #[test]
    fn unknown_users_are_rejected_and_bad_frames_answered() {
        let gw = Gateway::spawn("127.0.0.1:0", backend(1), GatewayConfig::default()).unwrap();
        let mut client = GatewayClient::connect(gw.addr()).unwrap();
        assert_eq!(client.bind(UserId(77)).unwrap(), None);
        client
            .send_env(&RequestEnvelope::request(
                5,
                UserId(77),
                sp(0.0, 0.0, 1),
                hka_anonymity::ServiceId(1),
            ))
            .unwrap();
        let resp = client.drain_responses(1).unwrap();
        assert_eq!(resp[0].outcome, WireOutcome::Rejected);
        assert_eq!(resp[0].detail, "unknown_user");

        client.send_raw("this is not json").unwrap();
        let reply = client.recv_reply().unwrap();
        assert!(matches!(reply, WireReply::Err { .. }), "{reply:?}");
        gw.shutdown();
    }

    #[test]
    fn overload_answers_suppressed_at_degraded_never_forwarded() {
        // A 1-deep queue with a single slow drain cycle: flood it and
        // check every refusal is fail-closed.
        let config = GatewayConfig {
            inflight: 1,
            batch: 1,
            ..GatewayConfig::default()
        };
        let gw = Gateway::spawn("127.0.0.1:0", backend(2), config).unwrap();
        let mut client = GatewayClient::connect(gw.addr()).unwrap();
        let n = 200u64;
        for i in 0..n {
            client
                .send_env(&RequestEnvelope::request(
                    i,
                    UserId(0),
                    sp(1.0, 1.0, i as i64),
                    hka_anonymity::ServiceId(1),
                ))
                .unwrap();
        }
        let responses = client.drain_responses(n as usize).unwrap();
        assert_eq!(responses.len(), n as usize);
        let overloads = responses
            .iter()
            .filter(|r| r.detail == "overload")
            .collect::<Vec<_>>();
        for r in &overloads {
            assert_eq!(r.outcome, WireOutcome::Suppressed);
            assert!(r.mode >= ServerMode::Degraded, "overload implies degraded");
        }
        let snap = gw.stats().snapshot();
        assert_eq!(snap.overloads, overloads.len() as u64);
        gw.shutdown();
    }

    #[test]
    fn shutdown_drains_and_returns_the_backend() {
        let gw = Gateway::spawn("127.0.0.1:0", backend(2), GatewayConfig::default()).unwrap();
        let addr = gw.addr();
        let mut client = GatewayClient::connect(addr).unwrap();
        client
            .send_env(&RequestEnvelope::location(0, UserId(0), sp(1.0, 2.0, 3)))
            .unwrap();
        client.drain_responses(0).unwrap();
        let service = gw.shutdown();
        assert!(service.pseudonym_of(UserId(0)).is_some());
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly after close; a write must fail.
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(b"{\"op\":\"drain\"}\n").is_err() || {
                    let mut buf = [0u8; 1];
                    use std::io::Read;
                    let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                    !matches!(s.read(&mut buf), Ok(n) if n > 0)
                }
            },
            "listener is gone after shutdown"
        );
    }
}
