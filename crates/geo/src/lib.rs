//! # hka-geo
//!
//! Spatio-temporal geometry primitives for the historical k-anonymity
//! framework of Bettini, Wang and Jajodia (VLDB SDM 2005).
//!
//! The paper models user positions as points in two-dimensional space
//! observed at discrete instants, service requests as *generalized*
//! spatio-temporal contexts `⟨Area, TimeInterval⟩`, and the generalization
//! algorithm (Algorithm 1) as a search for "the smallest 3D space
//! (2D area + time)" containing a set of points. This crate provides those
//! building blocks:
//!
//! * [`Point`] — a position in the plane (meters).
//! * [`TimeSec`] — an absolute instant, integer seconds since the simulation
//!   epoch (Monday 2000-01-03 00:00, chosen so weekday arithmetic is exact).
//! * [`Rect`] — an axis-aligned closed rectangle (the paper's `Area`,
//!   "possibly \[specified\] by a pair of intervals \[x1,x2\]\[y1,y2\]").
//! * [`TimeInterval`] — a closed anchored interval `[t1, t2]`.
//! * [`DayWindow`] — an *unanchored* time-of-day interval such as
//!   `[7am, 9am]` ("an infinite set of intervals, one for each day").
//! * [`StPoint`] / [`StBox`] — points and boxes in space–time, i.e. the 3D
//!   objects Algorithm 1 manipulates.
//! * [`SpaceTimeScale`] — the metric used to compare spatial and temporal
//!   displacement when searching for "closest" 3D points.
//!
//! All geometry is deterministic and `Copy`; the trajectory index and the
//! trusted server sit on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metric;
mod point;
mod rect;
mod stbox;
mod time;

pub use metric::SpaceTimeScale;
pub use point::{angular_separation, Point};
pub use rect::Rect;
pub use stbox::{StBox, StPoint};
pub use time::{DayWindow, Duration, TimeInterval, TimeSec, DAY, HOUR, MINUTE, WEEK};
