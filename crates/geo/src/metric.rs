//! The space–time metric used for "closest 3D point" searches.

use crate::{StBox, StPoint};

/// Conversion rate between temporal and spatial displacement.
///
/// Algorithm 1 (line 2) asks for "the 3D point in \[a user's\] PHL closest
/// to ⟨x, y, t⟩", but space (meters) and time (seconds) are incommensurable.
/// Following the standard practice in moving-object databases, a scale
/// `v` (meters per second) maps a time difference `Δt` to an equivalent
/// spatial displacement `v·Δt`, yielding the metric
///
/// ```text
/// d(a, b) = √(Δx² + Δy² + (v·Δt)²)
/// ```
///
/// A natural choice for `v` is a typical user speed: two observations one
/// minute apart then count as far apart as two simultaneous observations
/// one minute of travel apart. `v = 0` degenerates to the purely spatial
/// distance; a very large `v` makes time dominate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceTimeScale {
    /// Meters of spatial displacement equivalent to one second.
    pub meters_per_second: f64,
}

impl SpaceTimeScale {
    /// Creates a scale with the given meters-per-second rate.
    pub fn new(meters_per_second: f64) -> Self {
        assert!(
            meters_per_second.is_finite() && meters_per_second >= 0.0,
            "scale must be finite and non-negative"
        );
        SpaceTimeScale { meters_per_second }
    }

    /// A walking-speed default (1.4 m/s), appropriate for pedestrian LBS.
    pub fn walking() -> Self {
        SpaceTimeScale::new(1.4)
    }

    /// An urban-driving default (10 m/s ≈ 36 km/h).
    pub fn driving() -> Self {
        SpaceTimeScale::new(10.0)
    }

    /// Squared space–time distance between two spatio-temporal points.
    pub fn dist_sq(&self, a: &StPoint, b: &StPoint) -> f64 {
        let dt = self.meters_per_second * (a.t - b.t) as f64;
        a.pos.dist_sq(&b.pos) + dt * dt
    }

    /// Space–time distance between two spatio-temporal points.
    pub fn dist(&self, a: &StPoint, b: &StPoint) -> f64 {
        self.dist_sq(a, b).sqrt()
    }

    /// Squared space–time distance from a point to a box (`0` inside).
    /// Used to prune grid cells during nearest-neighbour search.
    pub fn dist_sq_to_box(&self, p: &StPoint, b: &StBox) -> f64 {
        let spatial = b.rect.dist_sq_to(&p.pos);
        let dt = if b.span.contains(p.t) {
            0
        } else if p.t < b.span.start() {
            b.span.start() - p.t
        } else {
            p.t - b.span.end()
        };
        let dts = self.meters_per_second * dt as f64;
        spatial + dts * dts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rect, TimeInterval, TimeSec};

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    #[test]
    fn zero_scale_is_spatial_distance() {
        let m = SpaceTimeScale::new(0.0);
        assert_eq!(m.dist(&sp(0.0, 0.0, 0), &sp(3.0, 4.0, 99999)), 5.0);
    }

    #[test]
    fn time_contributes_scaled() {
        let m = SpaceTimeScale::new(2.0);
        // Pure temporal displacement of 5s at 2 m/s → 10 m.
        assert_eq!(m.dist(&sp(0.0, 0.0, 0), &sp(0.0, 0.0, 5)), 10.0);
        // Mixed: 3-4-? triangle with 10 in the time axis.
        let d = m.dist(&sp(0.0, 0.0, 0), &sp(3.0, 4.0, 5));
        assert!((d - (25.0f64 + 100.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn metric_is_symmetric_and_reflexive() {
        let m = SpaceTimeScale::walking();
        let a = sp(1.0, 2.0, 3);
        let b = sp(-4.0, 5.0, 60);
        assert_eq!(m.dist(&a, &b), m.dist(&b, &a));
        assert_eq!(m.dist(&a, &a), 0.0);
    }

    #[test]
    fn box_distance_zero_inside() {
        let m = SpaceTimeScale::new(1.0);
        let b = StBox::new(
            Rect::from_bounds(0.0, 0.0, 10.0, 10.0),
            TimeInterval::new(TimeSec(0), TimeSec(100)),
        );
        assert_eq!(m.dist_sq_to_box(&sp(5.0, 5.0, 50), &b), 0.0);
    }

    #[test]
    fn box_distance_combines_axes() {
        let m = SpaceTimeScale::new(2.0);
        let b = StBox::new(
            Rect::from_bounds(0.0, 0.0, 10.0, 10.0),
            TimeInterval::new(TimeSec(0), TimeSec(100)),
        );
        // 3 m east of the box, 4 s after it ends → √(9 + (2·4)²).
        let d = m.dist_sq_to_box(&sp(13.0, 5.0, 104), &b);
        assert!((d - (9.0 + 64.0)).abs() < 1e-12);
        // Before the interval.
        let d = m.dist_sq_to_box(&sp(5.0, 5.0, -3), &b);
        assert!((d - 36.0).abs() < 1e-12);
    }

    #[test]
    fn box_distance_lower_bounds_point_distance() {
        let m = SpaceTimeScale::walking();
        let b = StBox::new(
            Rect::from_bounds(0.0, 0.0, 10.0, 10.0),
            TimeInterval::new(TimeSec(0), TimeSec(100)),
        );
        let q = sp(20.0, -5.0, 130);
        for p in [sp(0.0, 0.0, 0), sp(10.0, 10.0, 100), sp(5.0, 5.0, 50)] {
            assert!(b.contains(&p));
            assert!(m.dist_sq_to_box(&q, &b) <= m.dist_sq(&q, &p) + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_rejected() {
        let _ = SpaceTimeScale::new(-1.0);
    }
}
