//! Planar points.

use std::fmt;

/// A position in the two-dimensional plane, in meters.
///
/// The paper represents user positions as pairs `⟨x, y⟩` "in bidimensional
/// space"; the synthetic city used by the workload generator adopts a local
/// Cartesian frame with the origin at the south-west corner.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed, e.g. nearest-neighbour search).
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to `other`; the commuter model moves along a
    /// rectilinear street grid, so travel times are L1-based.
    pub fn manhattan_dist(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Linear interpolation: the point a fraction `f` of the way from `self`
    /// to `other` (`f = 0` gives `self`, `f = 1` gives `other`).
    pub fn lerp(&self, other: &Point, f: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * f,
            self.y + (other.y - self.y) * f,
        )
    }

    /// Component-wise midpoint.
    pub fn midpoint(&self, other: &Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Translates the point by `(dx, dy)`.
    pub fn translate(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Returns `true` when both coordinates are finite (no NaN/∞); all
    /// public constructors in the higher layers assert this.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// The angle (radians, in `(-π, π]`) of the vector from `self` to
    /// `other`. Used by the on-demand mix-zone search to measure how much
    /// two users' post-zone trajectories diverge.
    pub fn bearing_to(&self, other: &Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// Absolute difference of two angles, folded into `[0, π]`.
///
/// `angular_separation(a, b)` is the smallest rotation carrying the
/// direction `a` onto `b`; two trajectories are "diverging" in the paper's
/// on-demand mix-zone sense when this separation is large.
pub fn angular_separation(a: f64, b: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut d = (a - b).rem_euclid(two_pi);
    if d > std::f64::consts::PI {
        d = two_pi - d;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn dist_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(-2.5, 7.0);
        let b = Point::new(10.0, -1.0);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn manhattan_dominates_euclidean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!(a.manhattan_dist(&b) >= a.dist(&b));
        assert_eq!(a.manhattan_dist(&b), 7.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 10.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.midpoint(&b), Point::new(5.0, 5.0));
    }

    #[test]
    fn translate_moves_coordinates() {
        let p = Point::new(1.0, 2.0).translate(-1.0, 3.0);
        assert_eq!(p, Point::new(0.0, 5.0));
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = Point::ORIGIN;
        assert_eq!(o.bearing_to(&Point::new(1.0, 0.0)), 0.0);
        assert!((o.bearing_to(&Point::new(0.0, 1.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((o.bearing_to(&Point::new(-1.0, 0.0)) - PI).abs() < 1e-12);
    }

    #[test]
    fn angular_separation_folds() {
        assert!((angular_separation(0.0, PI) - PI).abs() < 1e-12);
        assert!((angular_separation(-3.0, 3.0) - (std::f64::consts::TAU - 6.0)).abs() < 1e-12);
        assert_eq!(angular_separation(1.25, 1.25), 0.0);
    }

    #[test]
    fn non_finite_detected() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
