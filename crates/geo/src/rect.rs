//! Axis-aligned rectangles (the paper's `Area`).

use crate::Point;
use std::fmt;

/// A closed axis-aligned rectangle `[x1, x2] × [y1, y2]`.
///
/// This is the paper's `Area` — "a set of points in bidimensional space
/// (possibly by a pair of intervals \[x1,x2\]\[y1,y2\])". Degenerate rectangles
/// (zero width and/or height) are allowed and represent exact locations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// Creates a rectangle from coordinate bounds (any order per axis).
    pub fn from_bounds(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Rect::new(Point::new(x1, y1), Point::new(x2, y2))
    }

    /// The degenerate rectangle containing exactly `p`.
    pub fn point(p: Point) -> Self {
        Rect {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    /// A square of side `side` centered on `c`.
    pub fn square(c: Point, side: f64) -> Self {
        let h = side.abs() / 2.0;
        Rect::from_bounds(c.x - h, c.y - h, c.x + h, c.y + h)
    }

    /// South-west corner.
    pub fn min(&self) -> Point {
        Point::new(self.min_x, self.min_y)
    }

    /// North-east corner.
    pub fn max(&self) -> Point {
        Point::new(self.max_x, self.max_y)
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Extent along x.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Extent along y.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area in square meters (`0` for degenerate rectangles).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Whether `p` lies inside the closed rectangle.
    pub fn contains(&self, p: &Point) -> bool {
        self.min_x <= p.x && p.x <= self.max_x && self.min_y <= p.y && p.y <= self.max_y
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min_x <= other.min_x
            && self.min_y <= other.min_y
            && other.max_x <= self.max_x
            && other.max_y <= self.max_y
    }

    /// Whether the two closed rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// The overlapping region, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        })
    }

    /// Smallest rectangle containing both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Extends the rectangle to cover `p`.
    pub fn expand_to(&self, p: &Point) -> Rect {
        Rect {
            min_x: self.min_x.min(p.x),
            min_y: self.min_y.min(p.y),
            max_x: self.max_x.max(p.x),
            max_y: self.max_y.max(p.y),
        }
    }

    /// Minimum bounding rectangle of a non-empty point set.
    ///
    /// Returns `None` for an empty iterator. This is the planar half of
    /// Algorithm 1's "smallest 3D space containing these points".
    pub fn mbr<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::point(*first);
        for p in it {
            r = r.expand_to(p);
        }
        Some(r)
    }

    /// Grows the rectangle by `margin` on every side (shrinks for negative
    /// margins, collapsing to the center when over-shrunk).
    pub fn buffer(&self, margin: f64) -> Rect {
        let c = self.center();
        Rect {
            min_x: (self.min_x - margin).min(c.x),
            min_y: (self.min_y - margin).min(c.y),
            max_x: (self.max_x + margin).max(c.x),
            max_y: (self.max_y + margin).max(c.y),
        }
    }

    /// Uniformly shrinks the rectangle around `pivot` until its area does
    /// not exceed `max_area`, keeping `pivot` inside.
    ///
    /// This is the spatial half of line 12 of Algorithm 1 ("Area \[is\]
    /// uniformly reduced to satisfy the tolerance constraints"): both axes
    /// are scaled by the same factor `√(max_area / area)` and the result is
    /// re-anchored so that `pivot` remains covered.
    pub fn shrink_around(&self, pivot: &Point, max_area: f64) -> Rect {
        debug_assert!(self.contains(pivot), "pivot must lie inside the rect");
        let max_area = max_area.max(0.0);
        if self.area() <= max_area {
            return *self;
        }
        if max_area == 0.0 {
            return Rect::point(*pivot);
        }
        let scale = (max_area / self.area()).sqrt();
        let new_w = self.width() * scale;
        let new_h = self.height() * scale;
        // Anchor the shrunk rectangle at the same relative position the
        // pivot had in the original, which guarantees the pivot stays
        // inside and the result stays inside the original rectangle.
        let fx = if self.width() > 0.0 {
            (pivot.x - self.min_x) / self.width()
        } else {
            0.5
        };
        let fy = if self.height() > 0.0 {
            (pivot.y - self.min_y) / self.height()
        } else {
            0.5
        };
        let min_x = pivot.x - fx * new_w;
        let min_y = pivot.y - fy * new_h;
        let mut out = Rect {
            min_x,
            min_y,
            max_x: min_x + new_w,
            max_y: min_y + new_h,
        };
        // The budget is a hard cap: nudge edges inward by single ulps
        // until floating-point round-up is gone, always moving an edge the
        // pivot is not sitting on so containment is preserved.
        while out.area() > max_area {
            if out.max_x > pivot.x {
                out.max_x = f64::next_down(out.max_x);
            } else if out.min_x < pivot.x {
                out.min_x = f64::next_up(out.min_x);
            } else if out.max_y > pivot.y {
                out.max_y = f64::next_down(out.max_y);
            } else if out.min_y < pivot.y {
                out.min_y = f64::next_up(out.min_y);
            } else {
                break; // degenerate at the pivot: area is 0
            }
        }
        out
    }

    /// Splits into four equal quadrants (SW, SE, NW, NE) — used by the
    /// Gruteser–Grunwald quadtree baseline.
    pub fn quadrants(&self) -> [Rect; 4] {
        let c = self.center();
        [
            Rect::from_bounds(self.min_x, self.min_y, c.x, c.y),
            Rect::from_bounds(c.x, self.min_y, self.max_x, c.y),
            Rect::from_bounds(self.min_x, c.y, c.x, self.max_y),
            Rect::from_bounds(c.x, c.y, self.max_x, self.max_y),
        ]
    }

    /// Index (0..4, order SW/SE/NW/NE) of the quadrant containing `p`,
    /// resolving boundary ties towards the north-east.
    pub fn quadrant_of(&self, p: &Point) -> usize {
        let c = self.center();
        let east = p.x >= c.x;
        let north = p.y >= c.y;
        match (north, east) {
            (false, false) => 0,
            (false, true) => 1,
            (true, false) => 2,
            (true, true) => 3,
        }
    }

    /// Clamps `p` to the nearest point inside the rectangle.
    pub fn clamp(&self, p: &Point) -> Point {
        Point::new(
            p.x.clamp(self.min_x, self.max_x),
            p.y.clamp(self.min_y, self.max_y),
        )
    }

    /// Squared distance from `p` to the rectangle (`0` when inside).
    pub fn dist_sq_to(&self, p: &Point) -> f64 {
        self.clamp(p).dist_sq(p)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1},{:.1}]x[{:.1},{:.1}]",
            self.min_x, self.max_x, self.min_y, self.max_y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x1: f64, y1: f64, x2: f64, y2: f64) -> Rect {
        Rect::from_bounds(x1, y1, x2, y2)
    }

    #[test]
    fn corners_normalize() {
        let a = Rect::new(Point::new(5.0, 1.0), Point::new(2.0, 8.0));
        assert_eq!(a.min(), Point::new(2.0, 1.0));
        assert_eq!(a.max(), Point::new(5.0, 8.0));
    }

    #[test]
    fn area_width_height() {
        let a = r(0.0, 0.0, 4.0, 3.0);
        assert_eq!(a.width(), 4.0);
        assert_eq!(a.height(), 3.0);
        assert_eq!(a.area(), 12.0);
        assert_eq!(Rect::point(Point::new(1.0, 1.0)).area(), 0.0);
    }

    #[test]
    fn containment_is_closed() {
        let a = r(0.0, 0.0, 4.0, 3.0);
        assert!(a.contains(&Point::new(0.0, 0.0)));
        assert!(a.contains(&Point::new(4.0, 3.0)));
        assert!(!a.contains(&Point::new(4.0001, 3.0)));
    }

    #[test]
    fn rect_containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        assert!(outer.contains_rect(&r(1.0, 1.0, 9.0, 9.0)));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&r(1.0, 1.0, 11.0, 9.0)));
    }

    #[test]
    fn intersection_cases() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(2.0, 2.0, 6.0, 6.0);
        assert_eq!(a.intersection(&b), Some(r(2.0, 2.0, 4.0, 4.0)));
        let touching = r(4.0, 0.0, 6.0, 4.0);
        assert!(a.intersects(&touching));
        assert_eq!(touching.intersection(&a).unwrap().area(), 0.0);
        let apart = r(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersection(&apart), None);
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(5.0, -2.0, 6.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, -2.0, 6.0, 1.0));
    }

    #[test]
    fn mbr_of_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(4.0, 2.0),
        ];
        let m = Rect::mbr(pts.iter()).unwrap();
        assert_eq!(m, r(-2.0, 0.0, 4.0, 5.0));
        assert!(Rect::mbr([].iter()).is_none());
        assert_eq!(
            Rect::mbr([Point::new(3.0, 3.0)].iter()).unwrap(),
            Rect::point(Point::new(3.0, 3.0))
        );
    }

    #[test]
    fn buffer_grows_and_shrinks() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert_eq!(a.buffer(2.0), r(-2.0, -2.0, 12.0, 12.0));
        assert_eq!(a.buffer(-3.0), r(3.0, 3.0, 7.0, 7.0));
        // Over-shrinking collapses to the center rather than inverting.
        assert_eq!(a.buffer(-50.0), Rect::point(Point::new(5.0, 5.0)));
    }

    #[test]
    fn shrink_around_respects_budget_and_pivot() {
        let a = r(0.0, 0.0, 100.0, 100.0);
        let pivot = Point::new(90.0, 10.0);
        let s = a.shrink_around(&pivot, 100.0);
        assert!(s.area() <= 100.0 + 1e-9);
        assert!(s.contains(&pivot));
        assert!(a.contains_rect(&s));
    }

    #[test]
    fn shrink_around_noop_within_budget() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert_eq!(a.shrink_around(&Point::new(5.0, 5.0), 100.0), a);
    }

    #[test]
    fn shrink_to_zero_area_collapses() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let p = Point::new(2.0, 3.0);
        assert_eq!(a.shrink_around(&p, 0.0), Rect::point(p));
    }

    #[test]
    fn shrink_degenerate_rect_is_stable() {
        let a = r(0.0, 0.0, 10.0, 0.0); // zero height, zero area
        let p = Point::new(5.0, 0.0);
        assert_eq!(a.shrink_around(&p, 1.0), a);
    }

    #[test]
    fn quadrants_partition() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let qs = a.quadrants();
        let total: f64 = qs.iter().map(|q| q.area()).sum();
        assert_eq!(total, a.area());
        for q in &qs {
            assert!(a.contains_rect(q));
        }
        assert_eq!(a.quadrant_of(&Point::new(1.0, 1.0)), 0);
        assert_eq!(a.quadrant_of(&Point::new(9.0, 1.0)), 1);
        assert_eq!(a.quadrant_of(&Point::new(1.0, 9.0)), 2);
        assert_eq!(a.quadrant_of(&Point::new(9.0, 9.0)), 3);
        // Center belongs to the NE quadrant by the tie rule.
        assert_eq!(a.quadrant_of(&Point::new(5.0, 5.0)), 3);
    }

    #[test]
    fn clamp_and_distance() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert_eq!(a.clamp(&Point::new(-5.0, 5.0)), Point::new(0.0, 5.0));
        assert_eq!(a.dist_sq_to(&Point::new(-3.0, 4.0)), 9.0);
        assert_eq!(a.dist_sq_to(&Point::new(5.0, 5.0)), 0.0);
        assert_eq!(a.dist_sq_to(&Point::new(13.0, 14.0)), 25.0);
    }

    #[test]
    fn square_constructor() {
        let s = Rect::square(Point::new(5.0, 5.0), 4.0);
        assert_eq!(s, r(3.0, 3.0, 7.0, 7.0));
        assert_eq!(s.center(), Point::new(5.0, 5.0));
    }
}
