//! Points and boxes in space–time.

use crate::{Duration, Point, Rect, TimeInterval, TimeSec};
use std::fmt;

/// A spatio-temporal point `⟨x, y, t⟩` — one element of a Personal History
/// of Locations (paper Definition 6) and the exact context of a request as
/// seen by the trusted server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StPoint {
    /// Position in the plane.
    pub pos: Point,
    /// Instant of observation.
    pub t: TimeSec,
}

impl StPoint {
    /// Creates `⟨x, y, t⟩`.
    pub fn new(pos: Point, t: TimeSec) -> Self {
        StPoint { pos, t }
    }

    /// Convenience constructor from raw coordinates.
    pub fn xyt(x: f64, y: f64, t: TimeSec) -> Self {
        StPoint {
            pos: Point::new(x, y),
            t,
        }
    }
}

impl fmt::Display for StPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.pos, self.t)
    }
}

/// A box in space–time: the paper's generalized context
/// `⟨Area, TimeInterval⟩`, and the "3D space (2D area + time)" manipulated
/// by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StBox {
    /// Spatial extent.
    pub rect: Rect,
    /// Temporal extent.
    pub span: TimeInterval,
}

impl StBox {
    /// Creates a box from a rectangle and a time interval.
    pub fn new(rect: Rect, span: TimeInterval) -> Self {
        StBox { rect, span }
    }

    /// The degenerate box containing exactly `p` — an un-generalized
    /// request context.
    pub fn point(p: StPoint) -> Self {
        StBox {
            rect: Rect::point(p.pos),
            span: TimeInterval::instant(p.t),
        }
    }

    /// Whether the box contains the spatio-temporal point `p`
    /// (both extents are closed).
    pub fn contains(&self, p: &StPoint) -> bool {
        self.rect.contains(&p.pos) && self.span.contains(p.t)
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_box(&self, other: &StBox) -> bool {
        self.rect.contains_rect(&other.rect) && self.span.contains_interval(&other.span)
    }

    /// Whether the two boxes share at least one spatio-temporal point.
    pub fn intersects(&self, other: &StBox) -> bool {
        self.rect.intersects(&other.rect) && self.span.intersects(&other.span)
    }

    /// Smallest box containing both operands.
    pub fn union(&self, other: &StBox) -> StBox {
        StBox {
            rect: self.rect.union(&other.rect),
            span: self.span.union(&other.span),
        }
    }

    /// Extends the box to cover `p`.
    pub fn expand_to(&self, p: &StPoint) -> StBox {
        StBox {
            rect: self.rect.expand_to(&p.pos),
            span: self.span.expand_to(p.t),
        }
    }

    /// Minimum bounding box of a non-empty set of spatio-temporal points —
    /// Algorithm 1 line 3: "Compute ⟨Area, TimeInterval⟩ as the smallest 3D
    /// space containing these points". Returns `None` for an empty set.
    pub fn mbb<'a, I: IntoIterator<Item = &'a StPoint>>(points: I) -> Option<StBox> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = StBox::point(*first);
        for p in it {
            b = b.expand_to(p);
        }
        Some(b)
    }

    /// Spatial area in m².
    pub fn area(&self) -> f64 {
        self.rect.area()
    }

    /// Temporal length in seconds.
    pub fn duration(&self) -> Duration {
        self.span.duration()
    }

    /// Space–time volume `area × duration` (m²·s). Used as a single scalar
    /// measure of how much a request was generalized.
    pub fn volume(&self) -> f64 {
        self.area() * self.duration() as f64
    }

    /// Uniformly reduces the box around `pivot` so that it satisfies
    /// `max_area` / `max_duration` (Algorithm 1 line 12). The pivot — the
    /// true request point — always remains inside.
    pub fn shrink_around(&self, pivot: &StPoint, max_area: f64, max_duration: Duration) -> StBox {
        StBox {
            rect: self.rect.shrink_around(&pivot.pos, max_area),
            span: self.span.shrink_around(pivot.t, max_duration),
        }
    }
}

impl fmt::Display for StBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} × {}", self.rect, self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(x: f64, y: f64, t: i64) -> StPoint {
        StPoint::xyt(x, y, TimeSec(t))
    }

    #[test]
    fn point_box_is_degenerate_and_contains_seed() {
        let p = sp(3.0, 4.0, 100);
        let b = StBox::point(p);
        assert!(b.contains(&p));
        assert_eq!(b.area(), 0.0);
        assert_eq!(b.duration(), 0);
        assert_eq!(b.volume(), 0.0);
    }

    #[test]
    fn mbb_contains_all_inputs() {
        let pts = [sp(0.0, 0.0, 0), sp(5.0, -1.0, 50), sp(2.0, 9.0, 20)];
        let b = StBox::mbb(pts.iter()).unwrap();
        for p in &pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.rect, Rect::from_bounds(0.0, -1.0, 5.0, 9.0));
        assert_eq!(b.span, TimeInterval::new(TimeSec(0), TimeSec(50)));
        assert!(StBox::mbb([].iter()).is_none());
    }

    #[test]
    fn mbb_is_minimal() {
        // Removing any face of the MBB loses a point: check via area/span.
        let pts = [sp(0.0, 0.0, 0), sp(10.0, 10.0, 100)];
        let b = StBox::mbb(pts.iter()).unwrap();
        assert_eq!(b.area(), 100.0);
        assert_eq!(b.duration(), 100);
    }

    #[test]
    fn containment_and_intersection() {
        let b = StBox::new(
            Rect::from_bounds(0.0, 0.0, 10.0, 10.0),
            TimeInterval::new(TimeSec(0), TimeSec(100)),
        );
        let inner = StBox::new(
            Rect::from_bounds(1.0, 1.0, 2.0, 2.0),
            TimeInterval::new(TimeSec(10), TimeSec(20)),
        );
        assert!(b.contains_box(&inner));
        assert!(b.intersects(&inner));
        // Spatially overlapping but temporally disjoint boxes do not
        // intersect in space–time.
        let later = StBox::new(
            Rect::from_bounds(1.0, 1.0, 2.0, 2.0),
            TimeInterval::new(TimeSec(200), TimeSec(300)),
        );
        assert!(!b.intersects(&later));
    }

    #[test]
    fn union_covers_operands() {
        let a = StBox::point(sp(0.0, 0.0, 0));
        let b = StBox::point(sp(4.0, 4.0, 40));
        let u = a.union(&b);
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&b));
        assert_eq!(u.volume(), 16.0 * 40.0);
    }

    #[test]
    fn shrink_around_meets_tolerances() {
        let pts = [sp(0.0, 0.0, 0), sp(100.0, 100.0, 1000)];
        let b = StBox::mbb(pts.iter()).unwrap();
        let pivot = sp(30.0, 30.0, 300);
        let s = b.shrink_around(&pivot, 400.0, 60);
        assert!(s.area() <= 400.0 + 1e-9);
        assert!(s.duration() <= 60);
        assert!(s.contains(&pivot));
    }
}
