//! Instants, durations, anchored intervals and unanchored daily windows.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A signed span of time in whole seconds.
pub type Duration = i64;

/// One minute, in seconds.
pub const MINUTE: Duration = 60;
/// One hour, in seconds.
pub const HOUR: Duration = 3_600;
/// One day, in seconds.
pub const DAY: Duration = 86_400;
/// One (calendar) week, in seconds.
pub const WEEK: Duration = 7 * DAY;

/// An absolute instant: whole seconds since the simulation epoch.
///
/// The epoch is fixed at **Monday 2000-01-03 00:00 UTC**, so that
/// `t.day_index() % 7 == 0` is a Monday. The granularity subsystem
/// (`hka-granules`) builds its civil calendar on the same anchor, which
/// keeps weekday and week arithmetic exact without any timezone machinery
/// (the paper's model has a single trusted server clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeSec(pub i64);

impl TimeSec {
    /// The simulation epoch (Monday 2000-01-03 00:00).
    pub const EPOCH: TimeSec = TimeSec(0);

    /// Builds an instant from a day index and a second-of-day.
    ///
    /// `TimeSec::at(0, 7 * HOUR)` is 07:00 on the epoch Monday.
    pub fn at(day: i64, second_of_day: Duration) -> Self {
        TimeSec(day * DAY + second_of_day)
    }

    /// Builds an instant from hours/minutes on a given day.
    pub fn at_hm(day: i64, hour: u32, minute: u32) -> Self {
        TimeSec::at(day, i64::from(hour) * HOUR + i64::from(minute) * MINUTE)
    }

    /// The day index containing this instant (floor division, so negative
    /// instants fall on negative days).
    pub fn day_index(&self) -> i64 {
        self.0.div_euclid(DAY)
    }

    /// Seconds elapsed since the most recent midnight, in `[0, 86400)`.
    pub fn second_of_day(&self) -> Duration {
        self.0.rem_euclid(DAY)
    }

    /// Signed distance `self - other` in seconds.
    pub fn since(&self, other: TimeSec) -> Duration {
        self.0 - other.0
    }

    /// The earlier of two instants.
    pub fn min(self, other: TimeSec) -> TimeSec {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: TimeSec) -> TimeSec {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for TimeSec {
    type Output = TimeSec;
    fn add(self, rhs: Duration) -> TimeSec {
        TimeSec(self.0 + rhs)
    }
}

impl AddAssign<Duration> for TimeSec {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs;
    }
}

impl Sub<Duration> for TimeSec {
    type Output = TimeSec;
    fn sub(self, rhs: Duration) -> TimeSec {
        TimeSec(self.0 - rhs)
    }
}

impl Sub<TimeSec> for TimeSec {
    type Output = Duration;
    fn sub(self, rhs: TimeSec) -> Duration {
        self.0 - rhs.0
    }
}

impl fmt::Display for TimeSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.second_of_day();
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            self.day_index(),
            s / HOUR,
            (s % HOUR) / MINUTE,
            s % MINUTE
        )
    }
}

/// A closed, anchored time interval `[start, end]` (the paper's
/// `TimeInterval` field of a generalized request).
///
/// Invariant: `start <= end`. A degenerate interval (`start == end`)
/// represents an exact instant — the un-generalized case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    start: TimeSec,
    end: TimeSec,
}

impl TimeInterval {
    /// Creates `[start, end]`, normalizing the order of the endpoints.
    pub fn new(start: TimeSec, end: TimeSec) -> Self {
        if start <= end {
            TimeInterval { start, end }
        } else {
            TimeInterval {
                start: end,
                end: start,
            }
        }
    }

    /// The degenerate interval `[t, t]`.
    pub fn instant(t: TimeSec) -> Self {
        TimeInterval { start: t, end: t }
    }

    /// Left endpoint.
    pub fn start(&self) -> TimeSec {
        self.start
    }

    /// Right endpoint.
    pub fn end(&self) -> TimeSec {
        self.end
    }

    /// Length in seconds (`0` for an instant).
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// Midpoint (rounded towards `start`).
    pub fn midpoint(&self) -> TimeSec {
        self.start + self.duration() / 2
    }

    /// Whether `t` lies inside the closed interval.
    pub fn contains(&self, t: TimeSec) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_interval(&self, other: &TimeInterval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two closed intervals share at least one instant.
    pub fn intersects(&self, other: &TimeInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Smallest interval containing both operands.
    pub fn union(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Extends the interval to cover `t`.
    pub fn expand_to(&self, t: TimeSec) -> TimeInterval {
        TimeInterval {
            start: self.start.min(t),
            end: self.end.max(t),
        }
    }

    /// Clips the interval to at most `max` seconds while keeping `pivot`
    /// inside, shrinking both ends proportionally around it.
    ///
    /// This realizes line 12 of Algorithm 1 ("TimeInterval \[is\] uniformly
    /// reduced to satisfy the tolerance constraints"): the result always
    /// contains `pivot` (the true request instant must stay inside the
    /// reported context) and has `duration() <= max`.
    pub fn shrink_around(&self, pivot: TimeSec, max: Duration) -> TimeInterval {
        debug_assert!(self.contains(pivot), "pivot must lie inside the interval");
        let max = max.max(0);
        if self.duration() <= max {
            return *self;
        }
        let before = pivot - self.start;
        let after = self.end - pivot;
        let total = before + after;
        // Distribute the allowed duration proportionally to the original
        // excess on each side, rounding so the budget is never exceeded.
        let new_before = if total == 0 { 0 } else { max * before / total };
        let new_after = (max - new_before).min(after);
        let new_before = new_before.min(before);
        TimeInterval {
            start: pivot - new_before,
            end: pivot + new_after,
        }
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.start, self.end)
    }
}

/// An *unanchored* time-of-day window, e.g. `[7am, 9am]`.
///
/// The paper (Definition 1) attaches to each LBQID element a
/// `U-TimeInterval` that "does not identif\[y\] a specific time interval on
/// the timeline, but an infinite set of intervals, one for each day".
/// Windows may wrap midnight (`[22:00, 02:00]`), in which case an instant
/// matches when it falls in either the late-evening or the early-morning
/// part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DayWindow {
    /// Window start, seconds after midnight, in `[0, 86400)`.
    start: Duration,
    /// Window end, seconds after midnight, in `[0, 86400)`.
    end: Duration,
}

impl DayWindow {
    /// Creates a window from seconds-after-midnight endpoints.
    ///
    /// Both endpoints are reduced modulo one day; `start > end` denotes a
    /// window wrapping midnight.
    pub fn new(start: Duration, end: Duration) -> Self {
        DayWindow {
            start: start.rem_euclid(DAY),
            end: end.rem_euclid(DAY),
        }
    }

    /// Convenience constructor from `(hour, minute)` pairs.
    pub fn hm(start: (u32, u32), end: (u32, u32)) -> Self {
        DayWindow::new(
            i64::from(start.0) * HOUR + i64::from(start.1) * MINUTE,
            i64::from(end.0) * HOUR + i64::from(end.1) * MINUTE,
        )
    }

    /// The full-day window `[00:00, 24:00)`.
    pub fn all_day() -> Self {
        DayWindow {
            start: 0,
            end: DAY - 1,
        }
    }

    /// Window start (seconds after midnight).
    pub fn start(&self) -> Duration {
        self.start
    }

    /// Window end (seconds after midnight).
    pub fn end(&self) -> Duration {
        self.end
    }

    /// Whether the window wraps midnight.
    pub fn wraps(&self) -> bool {
        self.start > self.end
    }

    /// Length of the window in seconds.
    pub fn duration(&self) -> Duration {
        if self.wraps() {
            DAY - self.start + self.end
        } else {
            self.end - self.start
        }
    }

    /// Whether the instant `t` falls inside (one of the anchorings of)
    /// the window — Definition 2's "`t_i` is contained in one of the
    /// intervals denoted by `U-TimeInterval_j`".
    pub fn contains(&self, t: TimeSec) -> bool {
        let s = t.second_of_day();
        if self.wraps() {
            s >= self.start || s <= self.end
        } else {
            (self.start..=self.end).contains(&s)
        }
    }

    /// The concrete (anchored) interval this window denotes on the day
    /// containing `t`, assuming `self.contains(t)`.
    pub fn anchor_on(&self, t: TimeSec) -> TimeInterval {
        let day = if self.wraps() && t.second_of_day() <= self.end {
            // Early-morning part of a wrapping window: the window started
            // on the previous day.
            t.day_index() - 1
        } else {
            t.day_index()
        };
        let start = TimeSec::at(day, self.start);
        let end = if self.wraps() {
            TimeSec::at(day + 1, self.end)
        } else {
            TimeSec::at(day, self.end)
        };
        TimeInterval::new(start, end)
    }
}

impl fmt::Display for DayWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_sod = |s: Duration| format!("{:02}:{:02}", s / HOUR, (s % HOUR) / MINUTE);
        write!(f, "{}-{}", fmt_sod(self.start), fmt_sod(self.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(TimeSec::EPOCH.day_index(), 0);
        assert_eq!(TimeSec::EPOCH.second_of_day(), 0);
    }

    #[test]
    fn at_hm_composes() {
        let t = TimeSec::at_hm(3, 7, 30);
        assert_eq!(t.day_index(), 3);
        assert_eq!(t.second_of_day(), 7 * HOUR + 30 * MINUTE);
    }

    #[test]
    fn negative_instants_floor_correctly() {
        let t = TimeSec(-1);
        assert_eq!(t.day_index(), -1);
        assert_eq!(t.second_of_day(), DAY - 1);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = TimeSec::at(5, 1000);
        assert_eq!((t + 500) - 500, t);
        assert_eq!((t + 500) - t, 500);
        assert_eq!(t.since(TimeSec::EPOCH), 5 * DAY + 1000);
    }

    #[test]
    fn interval_normalizes_endpoints() {
        let i = TimeInterval::new(TimeSec(10), TimeSec(2));
        assert_eq!(i.start(), TimeSec(2));
        assert_eq!(i.end(), TimeSec(10));
        assert_eq!(i.duration(), 8);
    }

    #[test]
    fn interval_containment_is_closed() {
        let i = TimeInterval::new(TimeSec(2), TimeSec(10));
        assert!(i.contains(TimeSec(2)));
        assert!(i.contains(TimeSec(10)));
        assert!(!i.contains(TimeSec(11)));
        assert!(i.contains_interval(&TimeInterval::new(TimeSec(3), TimeSec(10))));
        assert!(!i.contains_interval(&TimeInterval::new(TimeSec(3), TimeSec(11))));
    }

    #[test]
    fn interval_intersection_touching_counts() {
        let a = TimeInterval::new(TimeSec(0), TimeSec(5));
        let b = TimeInterval::new(TimeSec(5), TimeSec(9));
        let c = TimeInterval::new(TimeSec(6), TimeSec(9));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn union_and_expand() {
        let a = TimeInterval::new(TimeSec(0), TimeSec(5));
        let b = TimeInterval::new(TimeSec(8), TimeSec(9));
        assert_eq!(a.union(&b), TimeInterval::new(TimeSec(0), TimeSec(9)));
        assert_eq!(
            a.expand_to(TimeSec(-3)),
            TimeInterval::new(TimeSec(-3), TimeSec(5))
        );
        assert_eq!(a.expand_to(TimeSec(3)), a);
    }

    #[test]
    fn shrink_keeps_pivot_and_respects_budget() {
        let i = TimeInterval::new(TimeSec(0), TimeSec(100));
        let s = i.shrink_around(TimeSec(80), 10);
        assert!(s.duration() <= 10);
        assert!(s.contains(TimeSec(80)));
        assert!(i.contains_interval(&s));
    }

    #[test]
    fn shrink_noop_when_within_budget() {
        let i = TimeInterval::new(TimeSec(0), TimeSec(10));
        assert_eq!(i.shrink_around(TimeSec(5), 10), i);
        assert_eq!(i.shrink_around(TimeSec(5), 1000), i);
    }

    #[test]
    fn shrink_to_zero_collapses_to_pivot() {
        let i = TimeInterval::new(TimeSec(0), TimeSec(100));
        let s = i.shrink_around(TimeSec(33), 0);
        assert_eq!(s, TimeInterval::instant(TimeSec(33)));
    }

    #[test]
    fn shrink_pivot_at_edge() {
        let i = TimeInterval::new(TimeSec(0), TimeSec(100));
        let s = i.shrink_around(TimeSec(0), 10);
        assert!(s.contains(TimeSec(0)));
        assert!(s.duration() <= 10);
        let s = i.shrink_around(TimeSec(100), 10);
        assert!(s.contains(TimeSec(100)));
        assert!(s.duration() <= 10);
    }

    #[test]
    fn day_window_plain_containment() {
        let w = DayWindow::hm((7, 0), (9, 0));
        assert!(w.contains(TimeSec::at_hm(0, 7, 0)));
        assert!(w.contains(TimeSec::at_hm(4, 8, 59)));
        assert!(w.contains(TimeSec::at_hm(4, 9, 0)));
        assert!(!w.contains(TimeSec::at_hm(4, 9, 1)));
        assert!(!w.contains(TimeSec::at_hm(4, 6, 59)));
        assert_eq!(w.duration(), 2 * HOUR);
    }

    #[test]
    fn day_window_wrapping() {
        let w = DayWindow::hm((22, 0), (2, 0));
        assert!(w.wraps());
        assert!(w.contains(TimeSec::at_hm(1, 23, 0)));
        assert!(w.contains(TimeSec::at_hm(2, 1, 0)));
        assert!(!w.contains(TimeSec::at_hm(2, 3, 0)));
        assert_eq!(w.duration(), 4 * HOUR);
    }

    #[test]
    fn anchor_plain_window() {
        let w = DayWindow::hm((7, 0), (9, 0));
        let t = TimeSec::at_hm(4, 8, 0);
        let a = w.anchor_on(t);
        assert_eq!(a.start(), TimeSec::at_hm(4, 7, 0));
        assert_eq!(a.end(), TimeSec::at_hm(4, 9, 0));
        assert!(a.contains(t));
    }

    #[test]
    fn anchor_wrapping_window_evening_and_morning() {
        let w = DayWindow::hm((22, 0), (2, 0));
        let evening = TimeSec::at_hm(4, 23, 0);
        let a = w.anchor_on(evening);
        assert_eq!(a.start(), TimeSec::at_hm(4, 22, 0));
        assert_eq!(a.end(), TimeSec::at_hm(5, 2, 0));
        let morning = TimeSec::at_hm(5, 1, 0);
        assert_eq!(w.anchor_on(morning), a);
    }

    #[test]
    fn all_day_contains_everything() {
        let w = DayWindow::all_day();
        assert!(w.contains(TimeSec::at_hm(9, 0, 0)));
        assert!(w.contains(TimeSec::at(9, DAY - 1)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TimeSec::at_hm(2, 7, 5).to_string(), "d2+07:05:00");
        assert_eq!(DayWindow::hm((7, 0), (9, 30)).to_string(), "07:00-09:30");
    }
}
