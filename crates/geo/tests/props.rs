//! Property-based tests for the geometry substrate.

use hka_geo::{
    angular_separation, DayWindow, Point, Rect, SpaceTimeScale, StBox, StPoint, TimeInterval,
    TimeSec, DAY,
};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_time() -> impl Strategy<Value = TimeSec> {
    (-10_000_000i64..10_000_000).prop_map(TimeSec)
}

fn arb_stpoint() -> impl Strategy<Value = StPoint> {
    (arb_point(), arb_time()).prop_map(|(p, t)| StPoint::new(p, t))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b))
}

fn arb_interval() -> impl Strategy<Value = TimeInterval> {
    (arb_time(), arb_time()).prop_map(|(a, b)| TimeInterval::new(a, b))
}

proptest! {
    #[test]
    fn dist_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-6);
    }

    #[test]
    fn dist_symmetry(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn lerp_stays_in_mbr(a in arb_point(), b in arb_point(), f in 0.0f64..1.0) {
        let r = Rect::new(a, b).buffer(1e-9);
        prop_assert!(r.contains(&a.lerp(&b, f)));
    }

    #[test]
    fn rect_union_commutes_and_covers(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert_eq!(u, b.union(&a));
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn rect_intersection_inside_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn mbr_contains_all_points(pts in prop::collection::vec(arb_point(), 1..30)) {
        let m = Rect::mbr(pts.iter()).unwrap();
        for p in &pts {
            prop_assert!(m.contains(p));
        }
        // Minimality: every face touches some point.
        let eps = 1e-9;
        prop_assert!(pts.iter().any(|p| (p.x - m.min().x).abs() < eps));
        prop_assert!(pts.iter().any(|p| (p.x - m.max().x).abs() < eps));
        prop_assert!(pts.iter().any(|p| (p.y - m.min().y).abs() < eps));
        prop_assert!(pts.iter().any(|p| (p.y - m.max().y).abs() < eps));
    }

    #[test]
    fn shrink_around_invariants(r in arb_rect(), fx in 0.0f64..=1.0, fy in 0.0f64..=1.0, max_area in 0.0f64..1e9) {
        let pivot = Point::new(
            r.min().x + fx * r.width(),
            r.min().y + fy * r.height(),
        );
        let s = r.shrink_around(&pivot, max_area);
        prop_assert!(s.area() <= max_area.max(0.0) * (1.0 + 1e-9) + 1e-9);
        prop_assert!(s.buffer(1e-6).contains(&pivot));
    }

    #[test]
    fn interval_shrink_invariants(i in arb_interval(), f in 0.0f64..=1.0, max in 0i64..100_000) {
        let pivot = i.start() + ((i.duration() as f64) * f) as i64;
        let s = i.shrink_around(pivot, max);
        prop_assert!(s.duration() <= max);
        prop_assert!(s.contains(pivot));
        prop_assert!(i.contains_interval(&s));
    }

    #[test]
    fn quadrants_cover_contained_points(r in arb_rect(), fx in 0.0f64..=1.0, fy in 0.0f64..=1.0) {
        let p = Point::new(r.min().x + fx * r.width(), r.min().y + fy * r.height());
        prop_assume!(r.contains(&p)); // guard against f64 rounding at the far edge
        let q = r.quadrants()[r.quadrant_of(&p)];
        prop_assert!(q.buffer(1e-9).contains(&p));
    }

    #[test]
    fn stbox_mbb_contains_and_unions(pts in prop::collection::vec(arb_stpoint(), 1..30)) {
        let b = StBox::mbb(pts.iter()).unwrap();
        for p in &pts {
            prop_assert!(b.contains(p));
        }
        // MBB equals the fold of unions of degenerate boxes.
        let folded = pts
            .iter()
            .map(|p| StBox::point(*p))
            .reduce(|acc, x| acc.union(&x))
            .unwrap();
        prop_assert_eq!(b, folded);
    }

    #[test]
    fn st_metric_triangle(a in arb_stpoint(), b in arb_stpoint(), c in arb_stpoint(), v in 0.0f64..50.0) {
        let m = SpaceTimeScale::new(v);
        prop_assert!(m.dist(&a, &c) <= m.dist(&a, &b) + m.dist(&b, &c) + 1e-4);
    }

    #[test]
    fn box_distance_is_lower_bound(p in arb_stpoint(), q in arb_stpoint(), r in arb_stpoint(), v in 0.0f64..50.0) {
        let m = SpaceTimeScale::new(v);
        let b = StBox::mbb([q, r].iter()).unwrap();
        // Distance to the box never exceeds distance to any point inside.
        prop_assert!(m.dist_sq_to_box(&p, &b) <= m.dist_sq(&p, &q) + 1e-6);
        prop_assert!(m.dist_sq_to_box(&p, &b) <= m.dist_sq(&p, &r) + 1e-6);
    }

    #[test]
    fn day_window_contains_iff_anchor_contains(
        start in 0i64..DAY,
        end in 0i64..DAY,
        t in arb_time(),
    ) {
        let w = DayWindow::new(start, end);
        if w.contains(t) {
            prop_assert!(w.anchor_on(t).contains(t));
        }
    }

    #[test]
    fn day_window_duration_bounds(start in 0i64..DAY, end in 0i64..DAY) {
        let w = DayWindow::new(start, end);
        prop_assert!(w.duration() >= 0);
        prop_assert!(w.duration() < DAY);
    }

    #[test]
    fn angular_separation_range(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let d = angular_separation(a, b);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&d));
        prop_assert!((d - angular_separation(b, a)).abs() < 1e-9);
    }
}
