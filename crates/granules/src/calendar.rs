//! A proleptic Gregorian civil calendar anchored at the simulation epoch.
//!
//! The epoch (day index `0`, [`hka_geo::TimeSec::EPOCH`]) is **Monday
//! 2000-01-03**. Day indices are signed, so dates before the epoch are
//! representable. Conversions use Howard Hinnant's `civil_from_days` /
//! `days_from_civil` algorithms, shifted from the Unix anchor by the fixed
//! offset between 1970-01-01 and 2000-01-03 (10 959 days).
//!
//! The trusted server runs on a single clock (the paper's TS "knows the
//! exact point and exact time when the user issued a request"), so a single
//! civil calendar without timezones or leap seconds is sufficient.

use hka_geo::TimeSec;

/// Days between 1970-01-01 (Unix epoch) and 2000-01-03 (simulation epoch).
const UNIX_TO_SIM_EPOCH_DAYS: i64 = 10_959;

/// Day of the week, Monday-first (matching the epoch anchor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Weekday {
    /// Monday (day index ≡ 0 mod 7).
    Monday = 0,
    /// Tuesday.
    Tuesday = 1,
    /// Wednesday.
    Wednesday = 2,
    /// Thursday.
    Thursday = 3,
    /// Friday.
    Friday = 4,
    /// Saturday.
    Saturday = 5,
    /// Sunday.
    Sunday = 6,
}

impl Weekday {
    /// All weekdays, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Builds a weekday from an index in `0..7` (0 = Monday).
    pub fn from_index(i: i64) -> Weekday {
        Weekday::ALL[i.rem_euclid(7) as usize]
    }

    /// `true` for Monday–Friday.
    pub fn is_business_day(&self) -> bool {
        (*self as u8) < 5
    }

    /// English name, capitalized ("Monday").
    pub fn name(&self) -> &'static str {
        match self {
            Weekday::Monday => "Monday",
            Weekday::Tuesday => "Tuesday",
            Weekday::Wednesday => "Wednesday",
            Weekday::Thursday => "Thursday",
            Weekday::Friday => "Friday",
            Weekday::Saturday => "Saturday",
            Weekday::Sunday => "Sunday",
        }
    }
}

/// A civil (proleptic Gregorian) date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CivilDate {
    /// Calendar year (e.g. 2000).
    pub year: i32,
    /// Month in `1..=12`.
    pub month: u8,
    /// Day of month in `1..=31`.
    pub day: u8,
}

impl CivilDate {
    /// Creates a date; panics on out-of-range month/day combinations.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && u32::from(day) <= days_in_month(year, month),
            "day out of range: {year}-{month:02}-{day:02}"
        );
        CivilDate { year, month, day }
    }
}

impl std::fmt::Display for CivilDate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in the given month.
pub fn days_in_month(year: i32, month: u8) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// Converts a simulation day index to a civil date
/// (Hinnant's `civil_from_days`, shifted to the simulation epoch).
pub fn date_of_day(day_index: i64) -> CivilDate {
    let z = day_index + UNIX_TO_SIM_EPOCH_DAYS + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    CivilDate {
        year: (if m <= 2 { y + 1 } else { y }) as i32,
        month: m as u8,
        day: d as u8,
    }
}

/// Converts a civil date to a simulation day index
/// (Hinnant's `days_from_civil`, shifted to the simulation epoch).
pub fn day_of_date(date: CivilDate) -> i64 {
    let y = i64::from(date.year) - i64::from(date.month <= 2);
    let m = i64::from(date.month);
    let d = i64::from(date.day);
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468 - UNIX_TO_SIM_EPOCH_DAYS
}

/// Weekday of a simulation day index (day 0 is a Monday).
pub fn weekday_of_day(day_index: i64) -> Weekday {
    Weekday::from_index(day_index)
}

/// Weekday of an instant.
pub fn weekday_of(t: TimeSec) -> Weekday {
    weekday_of_day(t.day_index())
}

/// Months elapsed since the epoch month (2000-01 is month `0`; months
/// before it are negative).
pub fn month_index_of_day(day_index: i64) -> i64 {
    let d = date_of_day(day_index);
    (i64::from(d.year) - 2000) * 12 + i64::from(d.month) - 1
}

/// First simulation day of the given month index.
pub fn month_start_day(month_index: i64) -> i64 {
    let year = 2000 + month_index.div_euclid(12);
    let month = month_index.rem_euclid(12) + 1;
    day_of_date(CivilDate {
        year: year as i32,
        month: month as u8,
        day: 1,
    })
}

/// Year containing the given day (as a calendar year number).
pub fn year_of_day(day_index: i64) -> i32 {
    date_of_day(day_index).year
}

/// First simulation day of the given calendar year.
pub fn year_start_day(year: i32) -> i64 {
    day_of_date(CivilDate {
        year,
        month: 1,
        day: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_2000_01_03_monday() {
        assert_eq!(date_of_day(0), CivilDate::new(2000, 1, 3));
        assert_eq!(weekday_of_day(0), Weekday::Monday);
        assert_eq!(day_of_date(CivilDate::new(2000, 1, 3)), 0);
    }

    #[test]
    fn known_dates() {
        // 2000-01-01 was a Saturday, two days before the epoch.
        assert_eq!(day_of_date(CivilDate::new(2000, 1, 1)), -2);
        assert_eq!(weekday_of_day(-2), Weekday::Saturday);
        // 2000-02-29 existed (leap year).
        assert_eq!(
            date_of_day(day_of_date(CivilDate::new(2000, 2, 29))).day,
            29
        );
        // 2004-07-04 was a Sunday.
        let d = day_of_date(CivilDate::new(2004, 7, 4));
        assert_eq!(weekday_of_day(d), Weekday::Sunday);
        // 1999-12-31 (before epoch) was a Friday.
        let d = day_of_date(CivilDate::new(1999, 12, 31));
        assert_eq!(weekday_of_day(d), Weekday::Friday);
    }

    #[test]
    fn roundtrip_over_a_wide_range() {
        for day in (-400_000..400_000).step_by(997) {
            let d = date_of_day(day);
            assert_eq!(day_of_date(d), day, "roundtrip failed for {d}");
        }
    }

    #[test]
    fn consecutive_days_advance_dates() {
        let mut prev = date_of_day(-500);
        for day in -499..500 {
            let cur = date_of_day(day);
            assert!(cur > prev, "{cur} should follow {prev}");
            prev = cur;
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000)); // divisible by 400
        assert!(!is_leap_year(1900)); // divisible by 100 only
        assert!(is_leap_year(2004));
        assert!(!is_leap_year(2001));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(2001, 2), 28);
        assert_eq!(days_in_month(2001, 4), 30);
        assert_eq!(days_in_month(2001, 12), 31);
    }

    #[test]
    fn month_indices() {
        assert_eq!(month_index_of_day(0), 0); // Jan 2000
        assert_eq!(month_start_day(0), day_of_date(CivilDate::new(2000, 1, 1)));
        assert_eq!(
            month_index_of_day(day_of_date(CivilDate::new(2000, 2, 1))),
            1
        );
        assert_eq!(
            month_index_of_day(day_of_date(CivilDate::new(2001, 1, 15))),
            12
        );
        assert_eq!(
            month_index_of_day(day_of_date(CivilDate::new(1999, 12, 31))),
            -1
        );
        // month_start_day is the inverse boundary of month_index_of_day.
        for mi in -30..30 {
            let start = month_start_day(mi);
            assert_eq!(month_index_of_day(start), mi);
            assert_eq!(month_index_of_day(start - 1), mi - 1);
        }
    }

    #[test]
    fn year_helpers() {
        assert_eq!(year_of_day(0), 2000);
        assert_eq!(
            year_start_day(2000),
            day_of_date(CivilDate::new(2000, 1, 1))
        );
        assert_eq!(year_of_day(year_start_day(2003)), 2003);
        assert_eq!(year_of_day(year_start_day(2003) - 1), 2002);
    }

    #[test]
    fn weekday_helpers() {
        assert!(Weekday::Friday.is_business_day());
        assert!(!Weekday::Saturday.is_business_day());
        assert_eq!(Weekday::from_index(7), Weekday::Monday);
        assert_eq!(Weekday::from_index(-1), Weekday::Sunday);
        assert_eq!(Weekday::Wednesday.name(), "Wednesday");
        assert_eq!(weekday_of(TimeSec::at_hm(1, 12, 0)), Weekday::Tuesday);
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn invalid_date_rejected() {
        let _ = CivilDate::new(2001, 2, 29);
    }
}
