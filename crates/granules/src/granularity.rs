//! Time granularities.

use crate::calendar;
use crate::calendar::Weekday;
use hka_geo::{TimeInterval, TimeSec, DAY, HOUR, MINUTE, WEEK};
use std::fmt;
use std::str::FromStr;

/// Index of a granule within a granularity (signed; granule 0 contains or
/// follows the epoch, negative granules precede it).
pub type GranuleId = i64;

/// A time granularity: a mapping from granule indices to non-overlapping
/// intervals of the time line, possibly with gaps.
///
/// This realizes the notion the paper imports from Bettini–Jajodia–Wang
/// (ref. \[3\]) to the extent its recurrence-formula syntax requires:
///
/// * uniform granularities (`Minutes`, `Hours`, `Days`, `Weeks`);
/// * calendar granularities (`Months`, `Years`);
/// * granularities with gaps — `Weekdays` (one granule per business day,
///   none on weekends) and `SpecificWeekday` (e.g. *Mondays*, which the
///   paper suggests for "same weekday for at least 3 weeks" patterns);
/// * the user-defined `ConsecutiveDays(n)` blocks the paper mentions for
///   "at least two consecutive days" patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One granule per minute.
    Minutes,
    /// One granule per hour.
    Hours,
    /// One granule per civil day.
    Days,
    /// One granule per *business* day (Mon–Fri); weekend instants belong
    /// to no granule.
    Weekdays,
    /// One granule per Saturday/Sunday; business-day instants belong to no
    /// granule.
    WeekendDays,
    /// One granule per calendar week (Monday through Sunday).
    Weeks,
    /// One granule per calendar month.
    Months,
    /// One granule per calendar year.
    Years,
    /// One granule per occurrence of the given weekday (granule `i` is that
    /// weekday of week `i`); all other instants belong to no granule.
    SpecificWeekday(Weekday),
    /// Granules of `n` consecutive days tiling the time line from day 0.
    ConsecutiveDays(u32),
}

impl Granularity {
    /// The granule containing `t`, or `None` when `t` falls in a gap
    /// (e.g. a Saturday under [`Granularity::Weekdays`]).
    pub fn granule_of(&self, t: TimeSec) -> Option<GranuleId> {
        match self {
            Granularity::Minutes => Some(t.0.div_euclid(MINUTE)),
            Granularity::Hours => Some(t.0.div_euclid(HOUR)),
            Granularity::Days => Some(t.day_index()),
            Granularity::Weekdays => {
                let day = t.day_index();
                let wd = day.rem_euclid(7);
                if wd < 5 {
                    // Five granules per week: week * 5 + weekday.
                    Some(day.div_euclid(7) * 5 + wd)
                } else {
                    None
                }
            }
            Granularity::WeekendDays => {
                let day = t.day_index();
                let wd = day.rem_euclid(7);
                if wd >= 5 {
                    Some(day.div_euclid(7) * 2 + (wd - 5))
                } else {
                    None
                }
            }
            Granularity::Weeks => Some(t.0.div_euclid(WEEK)),
            Granularity::Months => Some(calendar::month_index_of_day(t.day_index())),
            Granularity::Years => Some(i64::from(calendar::year_of_day(t.day_index())) - 2000),
            Granularity::SpecificWeekday(wd) => {
                let day = t.day_index();
                if day.rem_euclid(7) == *wd as i64 {
                    Some(day.div_euclid(7))
                } else {
                    None
                }
            }
            Granularity::ConsecutiveDays(n) => {
                let n = i64::from(*n).max(1);
                Some(t.day_index().div_euclid(n))
            }
        }
    }

    /// The closed time interval covered by granule `g`.
    ///
    /// `granule_of(t) == Some(g)` iff `granule_span(g).contains(t)`.
    pub fn granule_span(&self, g: GranuleId) -> TimeInterval {
        let day_span = |d: i64| TimeInterval::new(TimeSec::at(d, 0), TimeSec::at(d + 1, 0) - 1);
        match self {
            Granularity::Minutes => {
                TimeInterval::new(TimeSec(g * MINUTE), TimeSec((g + 1) * MINUTE - 1))
            }
            Granularity::Hours => TimeInterval::new(TimeSec(g * HOUR), TimeSec((g + 1) * HOUR - 1)),
            Granularity::Days => day_span(g),
            Granularity::Weekdays => {
                let week = g.div_euclid(5);
                let wd = g.rem_euclid(5);
                day_span(week * 7 + wd)
            }
            Granularity::WeekendDays => {
                let week = g.div_euclid(2);
                let wd = g.rem_euclid(2) + 5;
                day_span(week * 7 + wd)
            }
            Granularity::Weeks => TimeInterval::new(TimeSec(g * WEEK), TimeSec((g + 1) * WEEK - 1)),
            Granularity::Months => {
                let start = calendar::month_start_day(g);
                let end = calendar::month_start_day(g + 1);
                TimeInterval::new(TimeSec::at(start, 0), TimeSec::at(end, 0) - 1)
            }
            Granularity::Years => {
                let start = calendar::year_start_day((2000 + g) as i32);
                let end = calendar::year_start_day((2001 + g) as i32);
                TimeInterval::new(TimeSec::at(start, 0), TimeSec::at(end, 0) - 1)
            }
            Granularity::SpecificWeekday(wd) => day_span(g * 7 + *wd as i64),
            Granularity::ConsecutiveDays(n) => {
                let n = i64::from(*n).max(1);
                TimeInterval::new(TimeSec::at(g * n, 0), TimeSec::at((g + 1) * n, 0) - 1)
            }
        }
    }

    /// Whether two instants fall in the same granule (false if either falls
    /// in a gap). This is the temporal-constraint check the trusted server
    /// performs between consecutive LBQID elements: a sequence observation
    /// must complete within a single granule of the formula's first
    /// granularity.
    pub fn same_granule(&self, a: TimeSec, b: TimeSec) -> bool {
        match (self.granule_of(a), self.granule_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Whether the closed interval `iv` lies entirely within one granule;
    /// returns that granule if so.
    pub fn covering_granule(&self, iv: &TimeInterval) -> Option<GranuleId> {
        let g = self.granule_of(iv.start())?;
        if self.granule_span(g).contains_interval(iv) {
            Some(g)
        } else {
            None
        }
    }

    /// An upper bound on the granule length in seconds (used by monitors
    /// to expire stale partial matches).
    pub fn max_span(&self) -> i64 {
        match self {
            Granularity::Minutes => MINUTE,
            Granularity::Hours => HOUR,
            Granularity::Days
            | Granularity::Weekdays
            | Granularity::WeekendDays
            | Granularity::SpecificWeekday(_) => DAY,
            Granularity::Weeks => WEEK,
            Granularity::Months => 31 * DAY,
            Granularity::Years => 366 * DAY,
            Granularity::ConsecutiveDays(n) => i64::from(*n).max(1) * DAY,
        }
    }

    /// Canonical name, as used in recurrence formulas.
    pub fn name(&self) -> String {
        match self {
            Granularity::Minutes => "Minutes".into(),
            Granularity::Hours => "Hours".into(),
            Granularity::Days => "Days".into(),
            Granularity::Weekdays => "Weekdays".into(),
            Granularity::WeekendDays => "WeekendDays".into(),
            Granularity::Weeks => "Weeks".into(),
            Granularity::Months => "Months".into(),
            Granularity::Years => "Years".into(),
            Granularity::SpecificWeekday(wd) => format!("{}s", wd.name()),
            Granularity::ConsecutiveDays(n) => format!("ConsecutiveDays({n})"),
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Error produced when parsing a granularity or recurrence formula fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl FromStr for Granularity {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let lowered = s.to_ascii_lowercase();
        let g = match lowered.as_str() {
            "minutes" => Granularity::Minutes,
            "hours" => Granularity::Hours,
            "days" => Granularity::Days,
            "weekdays" => Granularity::Weekdays,
            "weekenddays" => Granularity::WeekendDays,
            "weeks" => Granularity::Weeks,
            "months" => Granularity::Months,
            "years" => Granularity::Years,
            "mondays" => Granularity::SpecificWeekday(Weekday::Monday),
            "tuesdays" => Granularity::SpecificWeekday(Weekday::Tuesday),
            "wednesdays" => Granularity::SpecificWeekday(Weekday::Wednesday),
            "thursdays" => Granularity::SpecificWeekday(Weekday::Thursday),
            "fridays" => Granularity::SpecificWeekday(Weekday::Friday),
            "saturdays" => Granularity::SpecificWeekday(Weekday::Saturday),
            "sundays" => Granularity::SpecificWeekday(Weekday::Sunday),
            _ => {
                if let Some(rest) = lowered
                    .strip_prefix("consecutivedays(")
                    .and_then(|r| r.strip_suffix(')'))
                {
                    let n: u32 = rest
                        .trim()
                        .parse()
                        .map_err(|_| ParseError(format!("bad day count in '{s}'")))?;
                    if n == 0 {
                        return Err(ParseError("ConsecutiveDays(0) is not a granularity".into()));
                    }
                    Granularity::ConsecutiveDays(n)
                } else {
                    return Err(ParseError(format!("unknown granularity '{s}'")));
                }
            }
        };
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: i64, h: u32) -> TimeSec {
        TimeSec::at_hm(day, h, 0)
    }

    #[test]
    fn days_and_weeks_are_uniform() {
        assert_eq!(Granularity::Days.granule_of(t(0, 12)), Some(0));
        assert_eq!(Granularity::Days.granule_of(t(3, 0)), Some(3));
        assert_eq!(Granularity::Weeks.granule_of(t(6, 23)), Some(0));
        assert_eq!(Granularity::Weeks.granule_of(t(7, 0)), Some(1));
        assert_eq!(Granularity::Weeks.granule_of(t(-1, 0)), Some(-1));
    }

    #[test]
    fn weekdays_have_weekend_gaps() {
        let g = Granularity::Weekdays;
        // Day 0 = Monday … day 4 = Friday are granules 0..=4.
        for d in 0..5 {
            assert_eq!(g.granule_of(t(d, 9)), Some(d));
        }
        // Saturday/Sunday are gaps.
        assert_eq!(g.granule_of(t(5, 9)), None);
        assert_eq!(g.granule_of(t(6, 9)), None);
        // Next Monday is granule 5.
        assert_eq!(g.granule_of(t(7, 9)), Some(5));
        // Negative weeks: the Friday before the epoch.
        assert_eq!(g.granule_of(t(-3, 9)), Some(-1));
    }

    #[test]
    fn weekend_days_are_the_complement() {
        let g = Granularity::WeekendDays;
        assert_eq!(g.granule_of(t(5, 9)), Some(0)); // first Saturday
        assert_eq!(g.granule_of(t(6, 9)), Some(1)); // first Sunday
        assert_eq!(g.granule_of(t(12, 9)), Some(2)); // second Saturday
        assert_eq!(g.granule_of(t(0, 9)), None);
    }

    #[test]
    fn specific_weekday_granules() {
        let mondays = Granularity::SpecificWeekday(Weekday::Monday);
        assert_eq!(mondays.granule_of(t(0, 9)), Some(0));
        assert_eq!(mondays.granule_of(t(7, 9)), Some(1));
        assert_eq!(mondays.granule_of(t(1, 9)), None);
        let sundays = Granularity::SpecificWeekday(Weekday::Sunday);
        assert_eq!(sundays.granule_of(t(6, 9)), Some(0));
    }

    #[test]
    fn consecutive_days_tile() {
        let g = Granularity::ConsecutiveDays(2);
        assert_eq!(g.granule_of(t(0, 9)), Some(0));
        assert_eq!(g.granule_of(t(1, 9)), Some(0));
        assert_eq!(g.granule_of(t(2, 9)), Some(1));
        assert_eq!(g.granule_of(t(-1, 9)), Some(-1));
        assert_eq!(g.granule_span(0).duration(), 2 * DAY - 1);
    }

    #[test]
    fn months_and_years_follow_calendar() {
        let m = Granularity::Months;
        // Epoch day 0 is 2000-01-03 → month granule 0.
        assert_eq!(m.granule_of(t(0, 0)), Some(0));
        // 2000-02-01 starts month 1 (Jan 2000 has 31 days; epoch is Jan 3
        // so Feb 1 is day 29).
        assert_eq!(m.granule_of(t(29, 0)), Some(1));
        assert_eq!(m.granule_of(t(28, 23)), Some(0));
        let y = Granularity::Years;
        assert_eq!(y.granule_of(t(0, 0)), Some(0));
        // 2000 is a leap year (366 days); the epoch is Jan 3, so Dec 31 is
        // day 363 and 2001-01-01 is day 364.
        assert_eq!(y.granule_of(t(363, 0)), Some(0));
        assert_eq!(y.granule_of(t(364, 0)), Some(1));
    }

    #[test]
    fn granule_span_roundtrip() {
        let grans = [
            Granularity::Minutes,
            Granularity::Hours,
            Granularity::Days,
            Granularity::Weekdays,
            Granularity::WeekendDays,
            Granularity::Weeks,
            Granularity::Months,
            Granularity::Years,
            Granularity::SpecificWeekday(Weekday::Wednesday),
            Granularity::ConsecutiveDays(3),
        ];
        for g in grans {
            for probe in [
                t(0, 0),
                t(0, 12),
                t(3, 7),
                t(5, 9),
                t(6, 23),
                t(40, 1),
                t(-8, 5),
                t(400, 13),
            ] {
                if let Some(id) = g.granule_of(probe) {
                    let span = g.granule_span(id);
                    assert!(
                        span.contains(probe),
                        "{g}: granule {id} span {span} should contain {probe}"
                    );
                    // Boundary instants map back to the same granule.
                    assert_eq!(g.granule_of(span.start()), Some(id), "{g} start of {id}");
                    assert_eq!(g.granule_of(span.end()), Some(id), "{g} end of {id}");
                }
            }
        }
    }

    #[test]
    fn same_granule_and_covering() {
        let g = Granularity::Weekdays;
        assert!(g.same_granule(t(0, 8), t(0, 17)));
        assert!(!g.same_granule(t(0, 8), t(1, 8)));
        assert!(!g.same_granule(t(5, 8), t(5, 9))); // both in a gap
        let iv = TimeInterval::new(t(0, 7), t(0, 18));
        assert_eq!(g.covering_granule(&iv), Some(0));
        let iv2 = TimeInterval::new(t(0, 7), t(1, 18));
        assert_eq!(g.covering_granule(&iv2), None);
        let gap = TimeInterval::new(t(5, 7), t(5, 8));
        assert_eq!(g.covering_granule(&gap), None);
    }

    #[test]
    fn parsing_granularities() {
        assert_eq!("Weekdays".parse::<Granularity>(), Ok(Granularity::Weekdays));
        assert_eq!("weeks".parse::<Granularity>(), Ok(Granularity::Weeks));
        assert_eq!(
            "Mondays".parse::<Granularity>(),
            Ok(Granularity::SpecificWeekday(Weekday::Monday))
        );
        assert_eq!(
            "ConsecutiveDays(2)".parse::<Granularity>(),
            Ok(Granularity::ConsecutiveDays(2))
        );
        assert!("Fortnights".parse::<Granularity>().is_err());
        assert!("ConsecutiveDays(0)".parse::<Granularity>().is_err());
        assert!("ConsecutiveDays(x)".parse::<Granularity>().is_err());
    }

    #[test]
    fn names_roundtrip_through_parser() {
        for g in [
            Granularity::Minutes,
            Granularity::Hours,
            Granularity::Days,
            Granularity::Weekdays,
            Granularity::WeekendDays,
            Granularity::Weeks,
            Granularity::Months,
            Granularity::Years,
            Granularity::SpecificWeekday(Weekday::Friday),
            Granularity::ConsecutiveDays(4),
        ] {
            assert_eq!(g.name().parse::<Granularity>(), Ok(g));
        }
    }

    #[test]
    fn max_span_bounds_real_spans() {
        for g in [
            Granularity::Minutes,
            Granularity::Days,
            Granularity::Weekdays,
            Granularity::Weeks,
            Granularity::Months,
            Granularity::Years,
            Granularity::ConsecutiveDays(5),
        ] {
            for id in [-3, 0, 7, 100] {
                assert!(g.granule_span(id).duration() <= g.max_span());
            }
        }
    }
}
