//! # hka-granules
//!
//! Time granularities and recurrence formulas for location-based
//! quasi-identifiers.
//!
//! The LBQID definition of Bettini–Wang–Jajodia (VLDB SDM 2005, Def. 1)
//! attaches to each spatio-temporal pattern a **recurrence formula**
//!
//! ```text
//! r1.G1 * r2.G2 * … * rn.Gn
//! ```
//!
//! where each `G_i` is a *time granularity* in the sense of the authors'
//! earlier book (*Time Granularities in Databases, Data Mining, and
//! Temporal Reasoning*, paper ref. \[3\]): a mapping from an integer index
//! set to non-overlapping intervals ("granules") of the time line, possibly
//! with gaps (e.g. `Weekdays` has no granule covering a Saturday).
//!
//! This crate implements the substrate the paper assumes:
//!
//! * a proleptic civil calendar ([`calendar`]) anchored at the simulation
//!   epoch (Monday 2000-01-03), giving exact day/weekday/month arithmetic
//!   without any timezone machinery;
//! * the [`Granularity`] type with the granularities the paper's examples
//!   need (`Weekdays`, `Weeks`, per-weekday granularities such as
//!   `Mondays`, user-defined `ConsecutiveDays(n)` blocks, …);
//! * [`Recurrence`] — parser and evaluator for recurrence formulas, with
//!   the hierarchical satisfaction semantics of Section 4 (see the module
//!   documentation of [`recurrence`] for the exact reading of the paper's
//!   informal semantics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
mod granularity;
pub mod recurrence;

pub use granularity::{Granularity, GranuleId};
pub use recurrence::{Recurrence, RecurrenceTerm};
