//! Recurrence formulas `r1.G1 * r2.G2 * … * rn.Gn` and their satisfaction
//! semantics.
//!
//! ## Semantics
//!
//! The paper (Section 4) describes the semantics informally:
//!
//! > each sequence must be observed within a single granule of `G1`. The
//! > value `r1` denotes the minimum number of such observations. All the
//! > `r1` observations should be within one granule of `G2`, and there
//! > should be at least `r2` occurrences of these observations.
//!
//! and, crucially, makes the counting explicit a paragraph later:
//!
//! > it is also implicitly necessary that there are at least `r_i` granules
//! > of `G_i`, each containing at least `r_{i−1}` granules of `G_{i−1}`.
//!
//! Together with Example 1 ("for at least 3 weekdays in the same week, and
//! for at least 2 weeks"), this fixes the reading implemented here, which
//! counts **distinct satisfied granules** at every level:
//!
//! * a granule of `G1` is *satisfied* when at least one complete sequence
//!   observation lies entirely within it;
//! * a granule of `G_{i+1}` is *satisfied* when it contains at least `r_i`
//!   satisfied granules of `G_i`;
//! * the formula holds when at least `r_n` granules of `G_n` are satisfied
//!   (the implicit trailing `1.⊤` granule — "any subexpression `1.G` at the
//!   end of a recurrence formula can be dropped").
//!
//! An observation is represented by the closed time interval spanning its
//! first and last matched request; granule membership at higher levels uses
//! the *midpoint* of the lower granule (the calendar granularities used by
//! the paper nest exactly, so for them this coincides with containment).
//!
//! The **empty formula** "is assumed equivalent to `1.`, hence the sequence
//! can actually appear just once at any time": it is satisfied by any
//! single complete observation, with no within-granule restriction.

use crate::granularity::{Granularity, ParseError};
use hka_geo::TimeInterval;
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// One `r.G` term of a recurrence formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecurrenceTerm {
    /// Minimum number of satisfied sub-granules (`r_i ≥ 1`).
    pub count: u32,
    /// The granularity `G_i`.
    pub granularity: Granularity,
}

impl fmt::Display for RecurrenceTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.count, self.granularity)
    }
}

/// A recurrence formula `r1.G1 * r2.G2 * … * rn.Gn` (possibly empty).
///
/// ```
/// use hka_granules::Recurrence;
/// use hka_geo::{TimeInterval, TimeSec};
///
/// let commute: Recurrence = "3.Weekdays * 2.Weeks".parse().unwrap();
/// // Observations on Mon/Tue/Wed of weeks 0 and 1 (day 0 is a Monday):
/// let obs: Vec<TimeInterval> = [0, 1, 2, 7, 8, 9]
///     .iter()
///     .map(|d| TimeInterval::new(TimeSec::at_hm(*d, 7, 0), TimeSec::at_hm(*d, 18, 0)))
///     .collect();
/// assert!(commute.is_satisfied(&obs));
/// assert!(!commute.is_satisfied(&obs[..4]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Recurrence {
    terms: Vec<RecurrenceTerm>,
}

impl Recurrence {
    /// The empty formula (`1.`): one observation anywhere suffices.
    pub fn once() -> Self {
        Recurrence { terms: Vec::new() }
    }

    /// Builds a formula from `(count, granularity)` pairs, first term
    /// innermost (the paper's left-to-right order). Zero counts are
    /// rejected.
    pub fn new(terms: Vec<(u32, Granularity)>) -> Result<Self, ParseError> {
        if terms.iter().any(|(r, _)| *r == 0) {
            return Err(ParseError("recurrence counts must be ≥ 1".into()));
        }
        Ok(Recurrence {
            terms: terms
                .into_iter()
                .map(|(count, granularity)| RecurrenceTerm { count, granularity })
                .collect(),
        })
    }

    /// The terms, innermost first. Empty for [`Recurrence::once`].
    pub fn terms(&self) -> &[RecurrenceTerm] {
        &self.terms
    }

    /// The innermost granularity `G1`, if any. A complete sequence
    /// observation must fit within a single granule of `G1`; the online
    /// monitor uses this to bound how long a partial match may stay alive.
    pub fn inner_granularity(&self) -> Option<Granularity> {
        self.terms.first().map(|t| t.granularity)
    }

    /// Normalizes the formula by dropping a trailing `1.G` term ("any
    /// subexpression `1.G` at the end of a recurrence formula can be
    /// dropped, since it is implicit") — but only when more than one term
    /// remains, because `1.G1` still constrains each observation to fit in
    /// one `G1` granule.
    pub fn normalized(mut self) -> Self {
        while self.terms.len() > 1 && self.terms.last().is_some_and(|t| t.count == 1) {
            self.terms.pop();
        }
        self
    }

    /// Evaluates the formula over a set of completed sequence observations
    /// (each the closed interval from its first to its last request).
    pub fn is_satisfied(&self, observations: &[TimeInterval]) -> bool {
        self.satisfied_outer_granules(observations) >= self.required_outer()
    }

    /// Number of satisfied granules still missing at the outermost level
    /// (`0` when the formula is satisfied). Gives the monitor a progress
    /// measure.
    pub fn missing_outer(&self, observations: &[TimeInterval]) -> u32 {
        let have = self.satisfied_outer_granules(observations);
        self.required_outer().saturating_sub(have)
    }

    fn required_outer(&self) -> u32 {
        self.terms.last().map_or(1, |t| t.count)
    }

    /// Counts satisfied granules of the outermost granularity `G_n`
    /// (or complete observations for the empty formula).
    fn satisfied_outer_granules(&self, observations: &[TimeInterval]) -> u32 {
        if self.terms.is_empty() {
            return u32::try_from(observations.len()).unwrap_or(u32::MAX);
        }
        // Level 1: G1 granules entirely containing ≥ 1 observation.
        let g1 = self.terms[0].granularity;
        let mut satisfied: BTreeSet<i64> = BTreeSet::new();
        for obs in observations {
            if let Some(id) = g1.covering_granule(obs) {
                satisfied.insert(id);
            }
        }
        // Levels 2..n: a G_{i+1} granule is satisfied when it contains at
        // least r_i satisfied G_i granules (grouped by granule midpoint).
        let mut level_gran = g1;
        for window in self.terms.windows(2) {
            let (inner, outer) = (window[0], window[1]);
            let mut counts: std::collections::BTreeMap<i64, u32> =
                std::collections::BTreeMap::new();
            for id in &satisfied {
                let mid = level_gran.granule_span(*id).midpoint();
                if let Some(outer_id) = outer.granularity.granule_of(mid) {
                    *counts.entry(outer_id).or_insert(0) += 1;
                }
            }
            satisfied = counts
                .into_iter()
                .filter(|(_, c)| *c >= inner.count)
                .map(|(id, _)| id)
                .collect();
            level_gran = outer.granularity;
        }
        u32::try_from(satisfied.len()).unwrap_or(u32::MAX)
    }
}

impl Recurrence {
    /// Incremental satisfiability: could the formula still become
    /// satisfied by `deadline`, given the observations already completed?
    ///
    /// Optimistic projection: every granule of the inner granularity `G1`
    /// that intersects `(now, deadline]` is assumed to receive a future
    /// observation; the formula is then evaluated over the union of real
    /// and projected observations. `false` therefore means the pattern
    /// *cannot* complete by the deadline no matter what the user does —
    /// the trusted server can lower an at-risk flag early — while `true`
    /// is a may-complete answer.
    ///
    /// The empty formula is completable iff it is already satisfied or
    /// `now < deadline` (any single future observation completes it).
    pub fn completable_by(
        &self,
        observations: &[TimeInterval],
        now: hka_geo::TimeSec,
        deadline: hka_geo::TimeSec,
    ) -> bool {
        if self.is_satisfied(observations) {
            return true;
        }
        if deadline <= now {
            return false;
        }
        let Some(g1) = self.inner_granularity() else {
            // Empty formula, not yet satisfied: one future observation
            // suffices.
            return true;
        };
        let mut projected = observations.to_vec();
        // Find the first G1 granule whose span ends after `now`
        // (granularities may have gaps, so probe forward in hour steps).
        let mut probe = now;
        let first = loop {
            if probe > deadline {
                break None;
            }
            if let Some(g) = g1.granule_of(probe) {
                break Some(g);
            }
            probe += hka_geo::HOUR;
        };
        if let Some(first) = first {
            let mut g = first;
            loop {
                let span = g1.granule_span(g);
                if span.start() > deadline {
                    break;
                }
                // The usable part of this granule in (now, deadline].
                let from = span.start().max(now + 1);
                let to = span.end().min(deadline);
                if from <= to {
                    // Any single usable instant of the granule stands in
                    // for a future observation.
                    projected.push(TimeInterval::instant(from));
                }
                g += 1;
            }
        }
        self.is_satisfied(&projected)
    }
}

impl fmt::Display for Recurrence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("1.");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(" * ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl FromStr for Recurrence {
    type Err = ParseError;

    /// Parses `"3.Weekdays * 2.Weeks"`. The empty string (or `"1."`)
    /// denotes the once-anywhere formula.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "1." {
            return Ok(Recurrence::once());
        }
        let mut terms = Vec::new();
        for part in s.split('*') {
            let part = part.trim();
            let (count_s, gran_s) = part
                .split_once('.')
                .ok_or_else(|| ParseError(format!("expected 'r.G', got '{part}'")))?;
            let count: u32 = count_s
                .trim()
                .parse()
                .map_err(|_| ParseError(format!("bad count in '{part}'")))?;
            if count == 0 {
                return Err(ParseError(format!("count must be ≥ 1 in '{part}'")));
            }
            let granularity: Granularity = gran_s.parse()?;
            terms.push(RecurrenceTerm { count, granularity });
        }
        Ok(Recurrence { terms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hka_geo::{TimeInterval, TimeSec};

    /// An observation spanning `[day h1:00, day h2:00]`.
    fn obs(day: i64, h1: u32, h2: u32) -> TimeInterval {
        TimeInterval::new(TimeSec::at_hm(day, h1, 0), TimeSec::at_hm(day, h2, 0))
    }

    fn commute() -> Recurrence {
        "3.Weekdays * 2.Weeks".parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let r = commute();
        assert_eq!(r.to_string(), "3.Weekdays * 2.Weeks");
        assert_eq!(r.to_string().parse::<Recurrence>().unwrap(), r);
        assert_eq!("".parse::<Recurrence>().unwrap(), Recurrence::once());
        assert_eq!("1.".parse::<Recurrence>().unwrap(), Recurrence::once());
        assert_eq!(Recurrence::once().to_string(), "1.");
    }

    #[test]
    fn parse_errors() {
        assert!("3Weekdays".parse::<Recurrence>().is_err());
        assert!("0.Weeks".parse::<Recurrence>().is_err());
        assert!("x.Weeks".parse::<Recurrence>().is_err());
        assert!("3.Lightyears".parse::<Recurrence>().is_err());
        assert!(Recurrence::new(vec![(0, Granularity::Days)]).is_err());
    }

    #[test]
    fn empty_formula_one_observation() {
        let r = Recurrence::once();
        assert!(!r.is_satisfied(&[]));
        assert!(r.is_satisfied(&[obs(0, 7, 19)]));
        // Even an observation spanning several days counts.
        let long = TimeInterval::new(TimeSec::at_hm(0, 7, 0), TimeSec::at_hm(3, 7, 0));
        assert!(r.is_satisfied(&[long]));
        assert_eq!(r.missing_outer(&[]), 1);
        assert_eq!(r.missing_outer(&[obs(0, 7, 19)]), 0);
    }

    #[test]
    fn papers_example_two_weeks_of_three_weekdays() {
        let r = commute();
        // Week 0: Mon/Tue/Wed (days 0,1,2); week 1: Mon/Wed/Fri (7,9,11).
        let good = vec![
            obs(0, 7, 19),
            obs(1, 7, 19),
            obs(2, 7, 19),
            obs(7, 7, 19),
            obs(9, 7, 19),
            obs(11, 7, 19),
        ];
        assert!(r.is_satisfied(&good));
    }

    #[test]
    fn insufficient_weeks_or_days_fail() {
        let r = commute();
        // Only one week with 3 weekdays.
        let one_week = vec![obs(0, 7, 19), obs(1, 7, 19), obs(2, 7, 19)];
        assert!(!r.is_satisfied(&one_week));
        assert_eq!(r.missing_outer(&one_week), 1);
        // Two weeks but only 2 weekdays in the second.
        let short_week = vec![
            obs(0, 7, 19),
            obs(1, 7, 19),
            obs(2, 7, 19),
            obs(7, 7, 19),
            obs(9, 7, 19),
        ];
        assert!(!r.is_satisfied(&short_week));
        // Six observations all on the same two weekdays of one week.
        let repeats = vec![
            obs(0, 7, 9),
            obs(0, 10, 12),
            obs(0, 13, 15),
            obs(1, 7, 9),
            obs(1, 10, 12),
            obs(1, 13, 15),
        ];
        assert!(!r.is_satisfied(&repeats), "distinct granules are required");
    }

    #[test]
    fn observation_crossing_midnight_does_not_count_for_weekdays() {
        let r = commute();
        // An "observation" stretching from Monday into Tuesday fits no
        // single Weekdays granule.
        let crossing = TimeInterval::new(TimeSec::at_hm(0, 22, 0), TimeSec::at_hm(1, 2, 0));
        assert!(!"1.Weekdays"
            .parse::<Recurrence>()
            .unwrap()
            .is_satisfied(&[crossing]));
        assert!(!r.is_satisfied(&[crossing; 6]));
    }

    #[test]
    fn weekend_observations_fall_in_weekday_gaps() {
        let r = "1.Weekdays".parse::<Recurrence>().unwrap();
        assert!(!r.is_satisfied(&[obs(5, 9, 11)])); // Saturday
        assert!(r.is_satisfied(&[obs(4, 9, 11)])); // Friday
    }

    #[test]
    fn single_term_counts_distinct_granules() {
        let r = "3.Days".parse::<Recurrence>().unwrap();
        assert!(!r.is_satisfied(&[obs(0, 7, 9), obs(0, 10, 12), obs(0, 13, 15)]));
        assert!(r.is_satisfied(&[obs(0, 7, 9), obs(1, 7, 9), obs(2, 7, 9)]));
    }

    #[test]
    fn same_weekday_for_three_weeks() {
        // The paper's "same weekday for at least 3 weeks" pattern via the
        // Mondays granularity: 1.Mondays * 3.Weeks … normalized semantics:
        // three week-granules each containing a satisfied Monday.
        let r = "1.Mondays * 3.Weeks".parse::<Recurrence>().unwrap();
        let mondays = vec![obs(0, 7, 9), obs(7, 7, 9), obs(14, 7, 9)];
        assert!(r.is_satisfied(&mondays));
        let mixed = vec![obs(0, 7, 9), obs(8, 7, 9), obs(14, 7, 9)]; // day 8 is a Tuesday
        assert!(!r.is_satisfied(&mixed));
    }

    #[test]
    fn consecutive_days_pattern() {
        // "at least two consecutive days for at least 2 weeks" via the
        // 2-day block granularity: 2.Days * 2.ConsecutiveDays(2)? The paper
        // suggests a special granularity of 2 contiguous days; require both
        // days of a block, for two blocks.
        let r = Recurrence::new(vec![
            (2, Granularity::Days),
            (2, Granularity::ConsecutiveDays(2)),
        ])
        .unwrap();
        // Days 0,1 (block 0) and days 14,15 (block 7).
        let good = vec![obs(0, 7, 9), obs(1, 7, 9), obs(14, 7, 9), obs(15, 7, 9)];
        assert!(r.is_satisfied(&good));
        // Days 1,2 straddle two blocks → not consecutive within a block.
        let straddle = vec![obs(1, 7, 9), obs(2, 7, 9), obs(14, 7, 9), obs(15, 7, 9)];
        assert!(!r.is_satisfied(&straddle));
    }

    #[test]
    fn three_level_formula() {
        // 2.Days * 2.Weeks * 2.Months: two months, each with two weeks,
        // each with two observed days.
        let r = "2.Days * 2.Weeks * 2.Months".parse::<Recurrence>().unwrap();
        let mut o = Vec::new();
        // Month 0 (Jan 2000, days 0..28): weeks 0 and 1.
        for d in [0, 1, 7, 8] {
            o.push(obs(d, 7, 9));
        }
        assert!(!r.is_satisfied(&o));
        // Month 2 (Mar 2000 starts day 58; weeks 9 (days 63..69) & 10).
        for d in [63, 64, 70, 71] {
            o.push(obs(d, 7, 9));
        }
        assert!(r.is_satisfied(&o), "two qualifying months should satisfy");
    }

    #[test]
    fn normalization_drops_trailing_unit_terms() {
        let r: Recurrence = "3.Weekdays * 2.Weeks * 1.Months * 1.Years".parse().unwrap();
        assert_eq!(r.normalized(), commute());
        // A single 1.G term is kept: it still constrains each observation.
        let single: Recurrence = "1.Weekdays".parse().unwrap();
        assert_eq!(single.clone().normalized(), single);
    }

    #[test]
    fn inner_granularity_accessor() {
        assert_eq!(commute().inner_granularity(), Some(Granularity::Weekdays));
        assert_eq!(Recurrence::once().inner_granularity(), None);
    }

    #[test]
    fn completability_projects_the_future() {
        use hka_geo::TimeSec;
        let r = commute(); // 3.Weekdays * 2.Weeks
                           // Nothing observed yet, three full weeks of runway: completable.
        assert!(r.completable_by(&[], TimeSec::at(0, 0), TimeSec::at(21, 0)));
        // Only four days of runway: a second week can never be reached.
        assert!(!r.completable_by(&[], TimeSec::at(0, 0), TimeSec::at(4, 0)));
        // One satisfied week behind us, deadline inside next week's
        // Wednesday: three weekdays still fit (Mon, Tue, Wed).
        let week0 = vec![obs(0, 7, 19), obs(1, 7, 19), obs(2, 7, 19)];
        assert!(r.completable_by(&week0, TimeSec::at(5, 0), TimeSec::at(9, 23)));
        // Deadline on next week's Tuesday: only two weekdays remain.
        assert!(!r.completable_by(&week0, TimeSec::at(5, 0), TimeSec::at(8, 23)));
        // Already satisfied: completable regardless of deadline.
        let full = vec![
            obs(0, 7, 19),
            obs(1, 7, 19),
            obs(2, 7, 19),
            obs(7, 7, 19),
            obs(8, 7, 19),
            obs(9, 7, 19),
        ];
        assert!(r.completable_by(&full, TimeSec::at(10, 0), TimeSec::at(10, 0)));
    }

    #[test]
    fn completability_empty_formula() {
        use hka_geo::TimeSec;
        let r = Recurrence::once();
        assert!(!r.completable_by(&[], TimeSec::at(1, 0), TimeSec::at(1, 0)));
        assert!(r.completable_by(&[], TimeSec::at(1, 0), TimeSec::at(1, 1)));
        assert!(r.completable_by(&[obs(0, 7, 9)], TimeSec::at(1, 0), TimeSec::at(1, 0)));
    }

    #[test]
    fn satisfaction_is_monotone_in_observations() {
        let r = commute();
        let all = vec![
            obs(0, 7, 19),
            obs(1, 7, 19),
            obs(2, 7, 19),
            obs(7, 7, 19),
            obs(9, 7, 19),
            obs(11, 7, 19),
        ];
        assert!(r.is_satisfied(&all));
        // Adding more observations can never unsatisfy.
        let mut more = all.clone();
        more.push(obs(5, 1, 2)); // weekend noise
        more.push(obs(21, 7, 19));
        assert!(r.is_satisfied(&more));
    }
}
