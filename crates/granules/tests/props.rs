//! Property-based tests for granularities and recurrence formulas.

use hka_geo::{TimeInterval, TimeSec, DAY, HOUR};
use hka_granules::calendar::{self, CivilDate, Weekday};
use hka_granules::{Granularity, Recurrence};
use proptest::prelude::*;

fn arb_granularity() -> impl Strategy<Value = Granularity> {
    prop_oneof![
        Just(Granularity::Minutes),
        Just(Granularity::Hours),
        Just(Granularity::Days),
        Just(Granularity::Weekdays),
        Just(Granularity::WeekendDays),
        Just(Granularity::Weeks),
        Just(Granularity::Months),
        Just(Granularity::Years),
        (0i64..7).prop_map(|i| Granularity::SpecificWeekday(Weekday::from_index(i))),
        (1u32..10).prop_map(Granularity::ConsecutiveDays),
    ]
}

fn arb_time() -> impl Strategy<Value = TimeSec> {
    (-2_000i64 * DAY..2_000 * DAY).prop_map(TimeSec)
}

proptest! {
    #[test]
    fn calendar_roundtrip(day in -500_000i64..500_000) {
        let d = calendar::date_of_day(day);
        prop_assert_eq!(calendar::day_of_date(d), day);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!(u32::from(d.day) <= calendar::days_in_month(d.year, d.month));
    }

    #[test]
    fn calendar_dates_are_monotone(day in -500_000i64..500_000) {
        prop_assert!(calendar::date_of_day(day) < calendar::date_of_day(day + 1));
    }

    #[test]
    fn weekday_cycles(day in -500_000i64..500_000) {
        let w = calendar::weekday_of_day(day);
        let w7 = calendar::weekday_of_day(day + 7);
        prop_assert_eq!(w, w7);
    }

    #[test]
    fn month_start_is_day_one(mi in -1_000i64..1_000) {
        let start = calendar::month_start_day(mi);
        let d = calendar::date_of_day(start);
        prop_assert_eq!(d.day, 1);
        prop_assert_eq!(calendar::month_index_of_day(start), mi);
    }

    #[test]
    fn granule_span_contains_probe(g in arb_granularity(), t in arb_time()) {
        if let Some(id) = g.granule_of(t) {
            let span = g.granule_span(id);
            prop_assert!(span.contains(t), "{} granule {} span {} !∋ {}", g, id, span, t);
            prop_assert_eq!(g.granule_of(span.start()), Some(id));
            prop_assert_eq!(g.granule_of(span.end()), Some(id));
            prop_assert!(span.duration() <= g.max_span());
        }
    }

    #[test]
    fn granules_are_disjoint_and_ordered(g in arb_granularity(), id in -1000i64..1000) {
        let a = g.granule_span(id);
        let b = g.granule_span(id + 1);
        prop_assert!(a.end() < b.start(), "{}: granule {} must precede {}", g, id, id + 1);
    }

    #[test]
    fn same_granule_is_equivalence_on_covered_instants(
        g in arb_granularity(), a in arb_time(), b in arb_time(), c in arb_time()
    ) {
        // Symmetry.
        prop_assert_eq!(g.same_granule(a, b), g.same_granule(b, a));
        // Reflexivity on covered instants.
        if g.granule_of(a).is_some() {
            prop_assert!(g.same_granule(a, a));
        }
        // Transitivity.
        if g.same_granule(a, b) && g.same_granule(b, c) {
            prop_assert!(g.same_granule(a, c));
        }
    }

    #[test]
    fn granularity_name_parses_back(g in arb_granularity()) {
        let parsed: Granularity = g.name().parse().unwrap();
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn recurrence_display_parses_back(
        r1 in 1u32..5, r2 in 1u32..5,
        g1 in arb_granularity(), g2 in arb_granularity()
    ) {
        let r = Recurrence::new(vec![(r1, g1), (r2, g2)]).unwrap();
        let back: Recurrence = r.to_string().parse().unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn recurrence_satisfaction_is_monotone(
        days in prop::collection::vec(0i64..60, 0..25),
        extra in prop::collection::vec(0i64..60, 0..5),
    ) {
        let r: Recurrence = "2.Weekdays * 2.Weeks".parse().unwrap();
        let to_obs = |d: &i64| TimeInterval::new(
            TimeSec::at(*d, 8 * HOUR),
            TimeSec::at(*d, 9 * HOUR),
        );
        let base: Vec<_> = days.iter().map(to_obs).collect();
        let mut more = base.clone();
        more.extend(extra.iter().map(to_obs));
        if r.is_satisfied(&base) {
            prop_assert!(r.is_satisfied(&more), "adding observations must not unsatisfy");
        }
        // missing_outer is 0 iff satisfied.
        prop_assert_eq!(r.missing_outer(&base) == 0, r.is_satisfied(&base));
    }

    #[test]
    fn normalization_preserves_satisfaction(
        days in prop::collection::vec(0i64..40, 0..20),
    ) {
        let r: Recurrence = "2.Days * 2.Weeks * 1.Months".parse().unwrap();
        let n = r.clone().normalized();
        let obs: Vec<_> = days
            .iter()
            .map(|d| TimeInterval::new(TimeSec::at(*d, 8 * HOUR), TimeSec::at(*d, 9 * HOUR)))
            .collect();
        // Dropping the trailing 1.Months can only relax: anything satisfied
        // under r stays satisfied under the normalized formula, and the
        // converse holds when all observations fall within one month.
        if r.is_satisfied(&obs) {
            prop_assert!(n.is_satisfied(&obs));
        }
    }

    /// Completability is monotone in the deadline, implied by
    /// satisfaction, and consistent with the definition: a formula
    /// satisfied by projecting every future granule really is the upper
    /// bound of what more observations could achieve.
    #[test]
    fn completability_monotone_in_deadline(
        days in prop::collection::vec(0i64..28, 0..15),
        now_day in 0i64..28,
        d1 in 0i64..28,
        d2 in 0i64..28,
    ) {
        let r: Recurrence = "2.Weekdays * 2.Weeks".parse().unwrap();
        let obs: Vec<TimeInterval> = days
            .iter()
            .map(|d| TimeInterval::new(TimeSec::at(*d, 8 * HOUR), TimeSec::at(*d, 9 * HOUR)))
            .collect();
        let now = TimeSec::at(now_day, 12 * HOUR);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let early = TimeSec::at(lo, 12 * HOUR);
        let late = TimeSec::at(hi, 12 * HOUR);
        if r.completable_by(&obs, now, early) {
            prop_assert!(r.completable_by(&obs, now, late),
                "a later deadline can only help");
        }
        if r.is_satisfied(&obs) {
            prop_assert!(r.completable_by(&obs, now, early.min(now)),
                "satisfied formulas are trivially completable");
        }
    }

    #[test]
    fn leap_years_have_feb_29(year in -2000i32..4000) {
        let has = std::panic::catch_unwind(|| CivilDate::new(year, 2, 29)).is_ok();
        prop_assert_eq!(has, calendar::is_leap_year(year));
    }
}
